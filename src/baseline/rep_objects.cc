#include "baseline/rep_objects.h"

#include <algorithm>
#include <map>
#include <utility>

namespace schemex::baseline {

namespace {

using typing::TypeId;

/// One outgoing-only refinement round; returns the new block count.
size_t RefineOnce(graph::GraphView g, std::vector<TypeId>* block) {
  using Sig = std::vector<std::pair<graph::LabelId, TypeId>>;
  std::map<std::pair<TypeId, Sig>, TypeId> next_id;
  std::vector<TypeId> next(block->size(), typing::kInvalidType);
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (!g.IsComplex(o)) continue;
    Sig sig;
    for (const graph::HalfEdge& e : g.OutEdges(o)) {
      sig.emplace_back(e.label, g.IsAtomic(e.other) ? typing::kAtomicType
                                                    : (*block)[e.other]);
    }
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
    auto key = std::make_pair((*block)[o], std::move(sig));
    auto it =
        next_id.try_emplace(std::move(key), static_cast<TypeId>(next_id.size()))
            .first;
    next[o] = it->second;
  }
  *block = std::move(next);
  return next_id.size();
}

}  // namespace

std::vector<TypeId> DegreeKClasses(graph::GraphView g, size_t k,
                                   size_t* num_classes) {
  std::vector<TypeId> block(g.NumObjects(), typing::kInvalidType);
  size_t count = 0;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsComplex(o)) {
      block[o] = 0;
      count = 1;
    }
  }
  for (size_t round = 0; round < k; ++round) {
    size_t next = RefineOnce(g, &block);
    if (next == count) break;  // already stable
    count = next;
  }
  if (num_classes != nullptr) *num_classes = count;
  return block;
}

size_t FullRepObjectClassCount(graph::GraphView g) {
  std::vector<TypeId> block(g.NumObjects(), typing::kInvalidType);
  size_t count = 0;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsComplex(o)) {
      block[o] = 0;
      count = 1;
    }
  }
  for (;;) {
    size_t next = RefineOnce(g, &block);
    if (next == count) return count;
    count = next;
  }
}

}  // namespace schemex::baseline
