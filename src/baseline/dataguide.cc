#include "baseline/dataguide.h"

#include <algorithm>
#include <map>
#include <queue>

#include "util/string_util.h"

namespace schemex::baseline {

util::StatusOr<DataGuide> BuildStrongDataGuide(graph::GraphView g,
                                               size_t max_nodes) {
  // Virtual root target set: sources (complex objects with no incoming
  // edges), or all complex objects if everything has incoming edges.
  std::vector<graph::ObjectId> roots;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsComplex(o) && g.InEdges(o).empty()) roots.push_back(o);
  }
  if (roots.empty()) {
    for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
      if (g.IsComplex(o)) roots.push_back(o);
    }
  }

  DataGuide guide;
  std::map<std::vector<graph::ObjectId>, int> index;
  std::queue<int> work;

  auto intern = [&](std::vector<graph::ObjectId> set) {
    auto it = index.find(set);
    if (it != index.end()) return it->second;
    int id = static_cast<int>(guide.nodes.size());
    guide.nodes.push_back(DataGuide::Node{std::move(set), {}});
    index.emplace(guide.nodes[static_cast<size_t>(id)].targets, id);
    work.push(id);
    return id;
  };

  std::sort(roots.begin(), roots.end());
  intern(std::move(roots));

  while (!work.empty()) {
    int id = work.front();
    work.pop();
    if (guide.nodes.size() > max_nodes) {
      return util::Status::FailedPrecondition(util::StringPrintf(
          "dataguide exceeded %zu nodes (powerset blow-up)", max_nodes));
    }
    // Group the union of outgoing edges of the target set by label.
    std::map<graph::LabelId, std::vector<graph::ObjectId>> by_label;
    // Copy targets: intern() may reallocate guide.nodes while we expand.
    std::vector<graph::ObjectId> targets = guide.nodes[static_cast<size_t>(id)].targets;
    for (graph::ObjectId o : targets) {
      for (const graph::HalfEdge& e : g.OutEdges(o)) {
        by_label[e.label].push_back(e.other);
      }
    }
    std::vector<std::pair<graph::LabelId, int>> children;
    for (auto& [label, set] : by_label) {
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
      children.emplace_back(label, intern(std::move(set)));
      ++guide.num_edges;
    }
    guide.nodes[static_cast<size_t>(id)].children = std::move(children);
  }
  return guide;
}

std::vector<graph::ObjectId> DataGuide::Lookup(
    graph::GraphView g, const std::vector<std::string>& path) const {
  if (nodes.empty()) return {};
  int cur = 0;
  for (const std::string& name : path) {
    graph::LabelId label = g.labels().Find(name);
    if (label == graph::kInvalidLabel) return {};
    const Node& node = nodes[static_cast<size_t>(cur)];
    int next = -1;
    for (const auto& [l, child] : node.children) {
      if (l == label) {
        next = child;
        break;
      }
    }
    if (next < 0) return {};
    cur = next;
  }
  return nodes[static_cast<size_t>(cur)].targets;
}

}  // namespace schemex::baseline
