#ifndef SCHEMEX_BASELINE_REP_OBJECTS_H_
#define SCHEMEX_BASELINE_REP_OBJECTS_H_

#include <cstddef>
#include <vector>

#include "graph/graph_view.h"
#include "typing/typed_link.h"

namespace schemex::baseline {

/// Degree-k representative objects (Nestorov, Ullman, Wiener, Chawathe,
/// ICDE '97 — the paper's reference [15]): objects are equivalent iff
/// their *outgoing* label-path trees agree to depth k. Implemented as k
/// rounds of outgoing-only partition refinement starting from one block.
///
/// Returns the block id per object (kInvalidType for atomic objects) and
/// sets `*num_classes`. k = 0 puts all complex objects in one class; as k
/// grows the partition converges to the outgoing-only simulation classes
/// (a one-directional cousin of Stage 1's partition, which also refines
/// on incoming edges).
std::vector<typing::TypeId> DegreeKClasses(graph::GraphView g,
                                           size_t k, size_t* num_classes);

/// Number of classes once the outgoing-only refinement converges (the
/// "full representative object" granularity).
size_t FullRepObjectClassCount(graph::GraphView g);

}  // namespace schemex::baseline

#endif  // SCHEMEX_BASELINE_REP_OBJECTS_H_
