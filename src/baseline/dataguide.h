#ifndef SCHEMEX_BASELINE_DATAGUIDE_H_
#define SCHEMEX_BASELINE_DATAGUIDE_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_view.h"
#include "util/statusor.h"

namespace schemex::baseline {

/// A *strong DataGuide* (Goldman & Widom, VLDB '97) — the perfect-typing
/// baseline the paper contrasts with (§1, [10]): a deterministic summary
/// graph in which every node stands for the exact set of database objects
/// reachable by some label path from the root. Built by the standard
/// powerset (NFA->DFA style) construction over *outgoing* edges.
///
/// Because real semistructured databases are rarely rooted, construction
/// adds a virtual root with an edge to every complex object that has no
/// incoming edges (or to every complex object when none qualifies).
struct DataGuide {
  struct Node {
    /// Database objects this guide node summarizes (sorted).
    std::vector<graph::ObjectId> targets;
    /// Outgoing guide edges (label, child node index), sorted by label.
    std::vector<std::pair<graph::LabelId, int>> children;
  };

  /// nodes[0] is the root (the virtual root's target set).
  std::vector<Node> nodes;
  size_t num_edges = 0;

  size_t NumNodes() const { return nodes.size(); }

  /// Objects reachable by following `path` (labels by name) from the
  /// root; empty vector if the path leaves the guide.
  std::vector<graph::ObjectId> Lookup(
      graph::GraphView g,
      const std::vector<std::string>& path) const;
};

/// Builds the strong DataGuide of `g`. Worst case exponential (powerset),
/// like the original; fails with FailedPrecondition if the node count
/// exceeds `max_nodes`.
util::StatusOr<DataGuide> BuildStrongDataGuide(graph::GraphView g,
                                               size_t max_nodes = 1 << 20);

}  // namespace schemex::baseline

#endif  // SCHEMEX_BASELINE_DATAGUIDE_H_
