#ifndef SCHEMEX_RELATIONAL_CSV_H_
#define SCHEMEX_RELATIONAL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace schemex::relational {

/// A parsed CSV table: a header row plus data rows, all cells as strings.
struct Csv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  size_t NumColumns() const { return header.size(); }
  size_t NumRows() const { return rows.size(); }

  /// Column index by name, or npos.
  size_t FindColumn(std::string_view name) const;

  static constexpr size_t npos = static_cast<size_t>(-1);
};

/// RFC-4180-flavoured parser: comma separated, double-quote quoting with
/// "" escapes, \r\n or \n row ends, quoted cells may contain newlines.
/// Every row must have exactly the header's column count.
util::StatusOr<Csv> ParseCsv(std::string_view text);

}  // namespace schemex::relational

#endif  // SCHEMEX_RELATIONAL_CSV_H_
