#include "relational/csv.h"

#include "util/string_util.h"

namespace schemex::relational {

size_t Csv::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return npos;
}

util::StatusOr<Csv> ParseCsv(std::string_view text) {
  Csv csv;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  size_t line = 1;

  auto end_cell = [&]() {
    row.push_back(std::move(cell));
    cell.clear();
    cell_was_quoted = false;
  };
  auto end_row = [&]() -> util::Status {
    end_cell();
    if (csv.header.empty()) {
      csv.header = std::move(row);
      if (csv.header.empty() ||
          (csv.header.size() == 1 && csv.header[0].empty())) {
        return util::Status::ParseError("empty header row");
      }
    } else {
      if (row.size() != csv.header.size()) {
        return util::Status::ParseError(util::StringPrintf(
            "line %zu: %zu cells, expected %zu", line, row.size(),
            csv.header.size()));
      }
      csv.rows.push_back(std::move(row));
    }
    row.clear();
    return util::Status::OK();
  };

  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      if (c == '\n') ++line;
      cell += c;
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!cell.empty() || cell_was_quoted) {
          return util::Status::ParseError(
              util::StringPrintf("line %zu: stray quote", line));
        }
        in_quotes = true;
        cell_was_quoted = true;
        ++i;
        break;
      case ',':
        end_cell();
        ++i;
        break;
      case '\r':
        ++i;  // swallowed; the \n ends the row
        break;
      case '\n':
        SCHEMEX_RETURN_IF_ERROR(end_row());
        ++line;
        ++i;
        break;
      default:
        cell += c;
        ++i;
    }
  }
  if (in_quotes) return util::Status::ParseError("unterminated quote");
  // Final row without trailing newline.
  if (!cell.empty() || cell_was_quoted || !row.empty()) {
    SCHEMEX_RETURN_IF_ERROR(end_row());
  }
  if (csv.header.empty()) return util::Status::ParseError("empty input");
  return csv;
}

}  // namespace schemex::relational
