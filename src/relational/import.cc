#include "relational/import.h"

#include <map>

#include "util/string_util.h"

namespace schemex::relational {

util::StatusOr<graph::DataGraph> ImportTables(
    const std::vector<TableSpec>& tables, const ImportOptions& options) {
  // Parse everything first.
  std::vector<Csv> parsed;
  parsed.reserve(tables.size());
  for (const TableSpec& t : tables) {
    auto csv = ParseCsv(t.csv_text);
    if (!csv.ok()) {
      return util::Status::ParseError(
          util::StringPrintf("table '%s': %s", t.name.c_str(),
                             csv.status().message().c_str()));
    }
    parsed.push_back(std::move(csv).value());
  }

  // Index foreign keys by (table index, column index) and validate.
  std::map<std::pair<size_t, size_t>, const ForeignKey*> fk_by_column;
  auto table_index = [&](const std::string& name) -> size_t {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i].name == name) return i;
    }
    return Csv::npos;
  };
  for (const ForeignKey& fk : options.foreign_keys) {
    size_t from = table_index(fk.from_table);
    size_t to = table_index(fk.to_table);
    if (from == Csv::npos || to == Csv::npos) {
      return util::Status::InvalidArgument(
          "foreign key references unknown table");
    }
    size_t col = parsed[from].FindColumn(fk.from_column);
    size_t key = parsed[to].FindColumn(fk.to_key_column);
    if (col == Csv::npos || key == Csv::npos) {
      return util::Status::InvalidArgument(
          "foreign key references unknown column");
    }
    fk_by_column[{from, col}] = &fk;
  }

  graph::DataGraph g;

  // Row objects, plus a key-value index per (table, column) for FK
  // resolution.
  std::vector<std::vector<graph::ObjectId>> row_ids(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    row_ids[t].reserve(parsed[t].NumRows());
    for (size_t r = 0; r < parsed[t].NumRows(); ++r) {
      row_ids[t].push_back(g.AddComplex(
          util::StringPrintf("%s#%zu", tables[t].name.c_str(), r)));
    }
  }
  // (table, key column, value) -> row object.
  std::map<std::tuple<size_t, size_t, std::string>, graph::ObjectId> key_index;
  for (const ForeignKey& fk : options.foreign_keys) {
    size_t to = table_index(fk.to_table);
    size_t key = parsed[to].FindColumn(fk.to_key_column);
    for (size_t r = 0; r < parsed[to].NumRows(); ++r) {
      key_index.emplace(std::make_tuple(to, key, parsed[to].rows[r][key]),
                        row_ids[to][r]);
    }
  }

  // Attribute edges, with optional atom sharing.
  std::map<std::pair<std::string, std::string>, graph::ObjectId> atom_pool;
  auto atom_for = [&](const std::string& column, const std::string& value) {
    if (!options.share_atoms) return g.AddAtomic(value);
    auto key = std::make_pair(column, value);
    auto it = atom_pool.find(key);
    if (it != atom_pool.end()) return it->second;
    graph::ObjectId id = g.AddAtomic(value);
    atom_pool.emplace(std::move(key), id);
    return id;
  };

  for (size_t t = 0; t < tables.size(); ++t) {
    const Csv& csv = parsed[t];
    for (size_t r = 0; r < csv.NumRows(); ++r) {
      for (size_t c = 0; c < csv.NumColumns(); ++c) {
        const std::string& value = csv.rows[r][c];
        if (value == options.null_literal) continue;
        auto fk_it = fk_by_column.find({t, c});
        if (fk_it != fk_by_column.end()) {
          const ForeignKey& fk = *fk_it->second;
          size_t to = table_index(fk.to_table);
          size_t key = parsed[to].FindColumn(fk.to_key_column);
          auto target = key_index.find(std::make_tuple(to, key, value));
          if (target == key_index.end()) continue;  // dangling FK: drop
          g.MergeEdge(row_ids[t][r], target->second, csv.header[c]);
        } else {
          g.MergeEdge(row_ids[t][r], atom_for(csv.header[c], value),
                      csv.header[c]);
        }
      }
    }
  }
  return g;
}

}  // namespace schemex::relational
