#ifndef SCHEMEX_RELATIONAL_IMPORT_H_
#define SCHEMEX_RELATIONAL_IMPORT_H_

#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "relational/csv.h"
#include "util/statusor.h"

namespace schemex::relational {

/// The paper's §2 justification instance: "consider some relational data
/// represented with link and atomic in the natural way: the entries of
/// the tables are represented by atomic objects, the tuples by complex
/// objects, and the labels are the attributes of relations." On such
/// data, Stage 1 recovers exactly one type per relation (assuming no two
/// relations share their full attribute set) — tested in
/// tests/relational_test.cc.

/// One input table.
struct TableSpec {
  std::string name;
  std::string csv_text;
};

/// Turns a (from_table.from_column) value into an edge to the row of
/// to_table whose to_key_column has the same value, instead of an atomic
/// attribute — so multi-table databases become general (non-bipartite)
/// graphs with reference links.
struct ForeignKey {
  std::string from_table;
  std::string from_column;
  std::string to_table;
  std::string to_key_column;
};

struct ImportOptions {
  /// Cells equal to this literal produce NO edge (null semantics — the
  /// source of relational irregularity).
  std::string null_literal;

  /// Share one atomic object per distinct (column, value) pair instead of
  /// one atomic per cell.
  bool share_atoms = true;

  std::vector<ForeignKey> foreign_keys;
};

/// Imports the tables into one DataGraph: one complex object per row
/// (named "<table>#<rowidx>"), one edge per non-null cell, labeled by the
/// column name, to an atomic holding the cell value — except foreign-key
/// columns, which become row->row reference edges. Unresolvable foreign
/// keys (no matching target row) are dropped like nulls.
util::StatusOr<graph::DataGraph> ImportTables(
    const std::vector<TableSpec>& tables, const ImportOptions& options = {});

}  // namespace schemex::relational

#endif  // SCHEMEX_RELATIONAL_IMPORT_H_
