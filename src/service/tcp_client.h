#ifndef SCHEMEX_SERVICE_TCP_CLIENT_H_
#define SCHEMEX_SERVICE_TCP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "json/json.h"
#include "util/status.h"
#include "util/statusor.h"

namespace schemex::service {

/// A small blocking NDJSON client for the schemexd TCP front end, used by
/// the test harness, the stress driver, bench_tcp, and the `schemexctl`
/// one-shot tool. Not thread-safe; one connection per thread.
///
/// Error mapping: connect/send/receive failures are kInternal, a closed
/// peer is kFailedPrecondition ("connection closed..."), and an exhausted
/// wait budget is kDeadlineExceeded.
class TcpClient {
 public:
  /// Connects to host:port. `host` is a numeric IPv4 address or a name
  /// resolvable via getaddrinfo ("localhost"). `connect_timeout_s` bounds
  /// the TCP handshake.
  static util::StatusOr<TcpClient> Connect(const std::string& host,
                                           uint16_t port,
                                           double connect_timeout_s = 5.0);

  TcpClient(TcpClient&& other) noexcept;
  TcpClient& operator=(TcpClient&& other) noexcept;
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;
  ~TcpClient();

  /// Sends `line` plus a trailing newline, looping over partial writes.
  util::Status SendLine(std::string_view line);

  /// Sends exactly `bytes` — no newline appended. Lets tests produce
  /// half-lines, embedded NULs, and unterminated-at-EOF requests.
  util::Status SendRaw(std::string_view bytes);

  /// Blocks until one full response line arrives (newline stripped) or
  /// `timeout_s` elapses (kDeadlineExceeded). A connection closed cleanly
  /// with no buffered partial line is kFailedPrecondition; a final
  /// unterminated line before EOF is returned like any other.
  util::StatusOr<std::string> ReadLine(double timeout_s = 30.0);

  /// SendLine + ReadLine + json::Parse of the response envelope.
  util::StatusOr<json::Value> Call(std::string_view request_line,
                                   double timeout_s = 30.0);

  /// Half-close: no more sends; the server sees EOF but can still
  /// respond to everything already written.
  void ShutdownWrite();

  /// Full close (also run by the destructor). Idempotent.
  void Close();

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  explicit TcpClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string rbuf_;  ///< bytes received past the last returned line
};

}  // namespace schemex::service

#endif  // SCHEMEX_SERVICE_TCP_CLIENT_H_
