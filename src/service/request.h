#ifndef SCHEMEX_SERVICE_REQUEST_H_
#define SCHEMEX_SERVICE_REQUEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.h"
#include "util/status.h"
#include "util/statusor.h"

namespace schemex::service {

/// The service verbs. Wire names are the snake_case strings accepted in a
/// request's "verb" field ("load_workspace", "extract", ...).
enum class Verb {
  kLoadWorkspace,
  kExtract,
  kType,
  kQuery,
  kStats,
  kListWorkspaces,
  kApplyDelta,
  kReExtract,
};

std::string_view VerbToString(Verb v);
util::StatusOr<Verb> VerbFromString(std::string_view s);

/// load_workspace: read a SaveWorkspace directory into the cache.
struct LoadWorkspaceParams {
  std::string name;  ///< cache key; replaces any existing entry
  std::string dir;   ///< directory previously written by SaveWorkspace
};

/// extract: run the paper's three-stage method on a cached workspace and
/// install the resulting program + assignment back into the cache.
struct ExtractParams {
  std::string workspace;
  /// Target number of types (the paper's k). 0 = pick k automatically by
  /// the §8 knee rule over a sensitivity sweep.
  uint64_t k = 0;
  /// Knee tolerance when k == 0: accept the smallest k whose defect is
  /// within `epsilon` of the best in range (extract/knee.h).
  double epsilon = 1.25;
  /// Knee search range cap when k == 0 (0 = uncapped).
  uint64_t max_types = 20;
  bool decompose_roles = false;
  /// Stage-1 algorithm: "refinement" (default) or "gfp".
  std::string stage1 = "refinement";
  /// Worker parallelism for every extraction stage (Stage-1 refinement
  /// and GFP, Stage-2 clustering, Stage-3 recast): 0 = defer to the
  /// server's default (which itself defaults to auto = hardware
  /// concurrency), 1 = the sequential reference path, N > 1 = exactly N
  /// workers. Identical results for every setting.
  uint64_t parallelism = 0;
  /// When non-empty, also persist the updated workspace here (atomic
  /// SaveWorkspace), so a restarted server can load_workspace it back.
  std::string save_dir;
};

/// type: apply a typing program to a cached workspace's graph via the
/// greatest fixpoint (typing/gfp.h) and report the extents.
struct TypeParams {
  std::string workspace;
  /// Datalog text of the program to apply; empty = the workspace's own
  /// program (error if the workspace has none).
  std::string program;
  /// Install the GFP extents as the workspace's assignment (and the
  /// parsed program as its program, when `program` was given).
  bool commit = false;
};

/// query: evaluate a path query (query/path_query.h) on a cached
/// workspace, optionally pruned by the schema guide.
struct QueryParams {
  std::string workspace;
  std::string query;
  /// Prune start candidates through the workspace's schema (ignored when
  /// the workspace has no program).
  bool use_guide = true;
  /// Maximum number of result object names echoed back (the count field
  /// is always exact).
  uint64_t limit = 100;
};

/// One mutation inside an apply_delta batch. `op` selects which of the
/// remaining fields are read:
///   "add_object": kind ("complex" | "atomic"), name, value (atomic only).
///                 The new object's id is the view's NumObjects at the
///                 time the op applies, so ops later in the same batch
///                 can reference it (first new id = current object count,
///                 echoed back in the response's new_ids).
///   "add_link":   from, to, label (label is interned if new).
///   "del_link":   from, to, label (label must exist, as must the edge).
struct DeltaOp {
  std::string op;
  std::string kind = "complex";
  std::string name;
  std::string value;
  uint64_t from = 0;
  uint64_t to = 0;
  std::string label;
};

/// apply_delta: mutate a cached workspace through a DeltaOverlay (created
/// on first use, extended thereafter), online-typing new complex objects
/// against the current program. The frozen snapshot is never touched.
struct ApplyDeltaParams {
  std::string workspace;
  std::vector<DeltaOp> ops;
  /// Fold the overlay into a fresh FrozenGraph after applying the batch
  /// (bounds overlay growth; costs a full graph rebuild).
  bool compact = false;
};

/// re_extract: incremental re-extraction of a mutated workspace, seeded
/// from the extraction cache the last extract left behind (error if none).
struct ReExtractParams {
  std::string workspace;
  /// Target number of types; 0 = reuse the cached run's k.
  uint64_t k = 0;
  uint64_t parallelism = 0;
  std::string save_dir;
  /// Dirty-set fallback threshold for incremental Stage 1 (fraction of
  /// complex objects; exceeding it falls back to a cold refinement).
  double max_dirty_fraction = 0.25;
};

/// One parsed request. Only the params struct matching `verb` is
/// meaningful; the others stay default-initialized.
struct Request {
  int64_t id = 0;
  Verb verb = Verb::kStats;
  /// Per-request wall-clock budget in seconds; 0 = server default.
  double timeout_s = 0;

  LoadWorkspaceParams load;
  ExtractParams extract;
  TypeParams type;
  QueryParams query;
  ApplyDeltaParams apply_delta;
  ReExtractParams re_extract;
};

/// Wire format:
///   {"id": 7, "verb": "query", "timeout_s": 2.5,
///    "params": {"workspace": "dbg", "query": "project.name"}}
/// Unknown fields are ignored; a missing "params" is an empty object.
util::StatusOr<Request> ParseRequest(const json::Value& v);

/// Parse a newline-delimited-JSON request line (malformed JSON or a
/// non-object yields ParseError, never a crash).
util::StatusOr<Request> ParseRequestJson(std::string_view line);

/// A response: either `status` is OK and `result` holds the verb-specific
/// payload, or `status` carries the error (result ignored).
struct Response {
  int64_t id = 0;
  util::Status status;
  json::Value result;
};

/// Wire format (one line, no trailing newline):
///   {"id": 7, "ok": true, "result": {...}}
///   {"id": 7, "ok": false, "error": {"code": "NotFound", "message": "..."}}
std::string SerializeResponse(const Response& r);

/// Convenience builders for integer-preserving JSON numbers.
json::Value JsonInt(int64_t n);
json::Value JsonUint(uint64_t n);

}  // namespace schemex::service

#endif  // SCHEMEX_SERVICE_REQUEST_H_
