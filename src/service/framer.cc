#include "service/framer.h"

#include <utility>

#include "util/string_util.h"

namespace schemex::service {

namespace {

// Compact the consumed prefix once it dominates the buffer, so a
// long-lived connection does not retain every byte it ever framed.
constexpr size_t kCompactThreshold = 64 * 1024;

}  // namespace

Framer::Framer(const FramerOptions& options) : options_(options) {}

void Framer::Feed(std::string_view bytes) {
  if (finished_ || bytes.empty()) return;
  buf_.append(bytes.data(), bytes.size());
}

void Framer::Finish() { finished_ = true; }

bool Framer::Emit(std::string line, util::StatusOr<std::string>* out) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (util::Trim(line).empty()) return false;  // blank: skip for free
  ++lines_framed_;
  if (options_.max_line_bytes > 0 && line.size() > options_.max_line_bytes) {
    *out = util::Status::InvalidArgument(util::StringPrintf(
        "request line of %zu bytes exceeds the %zu-byte limit", line.size(),
        options_.max_line_bytes));
    return true;
  }
  if (line.find('\0') != std::string::npos) {
    *out = util::Status::InvalidArgument(
        "request line contains an embedded NUL byte");
    return true;
  }
  *out = std::move(line);
  return true;
}

bool Framer::Next(util::StatusOr<std::string>* out) {
  for (;;) {
    size_t nl = buf_.find('\n', scan_);
    if (nl == std::string::npos) {
      scan_ = buf_.size();
      size_t pending = buf_.size() - start_;
      if (discarding_) {
        // Drop the oversized line's tail as it streams in; the error was
        // already reported when the limit was first crossed.
        buf_.clear();
        start_ = scan_ = 0;
        return false;
      }
      if (options_.max_line_bytes > 0 && pending > options_.max_line_bytes) {
        // The unterminated line already blew the budget: reject it now
        // (bounding memory) and discard until the next newline.
        discarding_ = true;
        buf_.clear();
        start_ = scan_ = 0;
        ++lines_framed_;
        *out = util::Status::InvalidArgument(util::StringPrintf(
            "request line exceeds the %zu-byte limit",
            options_.max_line_bytes));
        return true;
      }
      if (finished_ && pending > 0) {
        // EOF with no trailing newline: the final partial line is a real
        // request, not garbage to drop.
        std::string line = buf_.substr(start_);
        buf_.clear();
        start_ = scan_ = 0;
        if (Emit(std::move(line), out)) return true;
        continue;
      }
      if (start_ > kCompactThreshold) {
        buf_.erase(0, start_);
        scan_ -= start_;
        start_ = 0;
      }
      return false;
    }

    std::string line = buf_.substr(start_, nl - start_);
    start_ = nl + 1;
    scan_ = start_;
    if (start_ > kCompactThreshold) {
      buf_.erase(0, start_);
      start_ = scan_ = 0;
    }
    if (discarding_) {
      // This newline terminates the oversized line; resume framing.
      discarding_ = false;
      continue;
    }
    if (Emit(std::move(line), out)) return true;
  }
}

}  // namespace schemex::service
