#include "service/request.h"

#include <cmath>
#include <map>

namespace schemex::service {

namespace {

using json::Value;

/// Field accessors with "absent = default" semantics but hard type
/// errors: a request that spells a field with the wrong type is rejected
/// rather than silently defaulted.
class Fields {
 public:
  explicit Fields(const std::map<std::string, Value>& obj) : obj_(obj) {}

  util::Status GetString(const std::string& key, std::string* out,
                         bool required = false) const {
    const Value* v = Find(key);
    if (v == nullptr) {
      if (required) return Missing(key);
      return util::Status::OK();
    }
    if (v->kind() != Value::Kind::kString) return WrongType(key, "string");
    *out = v->AsString();
    return util::Status::OK();
  }

  util::Status GetUint(const std::string& key, uint64_t* out) const {
    const Value* v = Find(key);
    if (v == nullptr) return util::Status::OK();
    if (v->kind() != Value::Kind::kNumber || v->AsNumber() < 0 ||
        v->AsNumber() != std::floor(v->AsNumber())) {
      return WrongType(key, "non-negative integer");
    }
    *out = static_cast<uint64_t>(v->AsNumber());
    return util::Status::OK();
  }

  util::Status GetInt(const std::string& key, int64_t* out) const {
    const Value* v = Find(key);
    if (v == nullptr) return util::Status::OK();
    if (v->kind() != Value::Kind::kNumber ||
        v->AsNumber() != std::floor(v->AsNumber())) {
      return WrongType(key, "integer");
    }
    *out = static_cast<int64_t>(v->AsNumber());
    return util::Status::OK();
  }

  util::Status GetDouble(const std::string& key, double* out) const {
    const Value* v = Find(key);
    if (v == nullptr) return util::Status::OK();
    if (v->kind() != Value::Kind::kNumber) return WrongType(key, "number");
    *out = v->AsNumber();
    return util::Status::OK();
  }

  util::Status GetBool(const std::string& key, bool* out) const {
    const Value* v = Find(key);
    if (v == nullptr) return util::Status::OK();
    if (v->kind() != Value::Kind::kBool) return WrongType(key, "bool");
    *out = v->AsBool();
    return util::Status::OK();
  }

 private:
  const Value* Find(const std::string& key) const {
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
  }
  static util::Status Missing(const std::string& key) {
    return util::Status::InvalidArgument("missing required field \"" + key +
                                         "\"");
  }
  static util::Status WrongType(const std::string& key, const char* want) {
    return util::Status::InvalidArgument("field \"" + key + "\" must be a " +
                                         want);
  }

  const std::map<std::string, Value>& obj_;
};

const std::map<std::string, Value> kEmptyObject;

// Parses the apply_delta "ops" array (required, possibly empty). Fields
// has no array accessor, so the array itself is pulled from the raw
// params object; each element then reuses the Fields machinery.
util::Status ParseDeltaOps(const std::map<std::string, Value>& params,
                           std::vector<DeltaOp>* out) {
  auto it = params.find("ops");
  if (it == params.end()) {
    return util::Status::InvalidArgument("missing required field \"ops\"");
  }
  if (it->second.kind() != Value::Kind::kArray) {
    return util::Status::InvalidArgument("field \"ops\" must be an array");
  }
  const auto& arr = it->second.AsArray();
  out->reserve(arr.size());
  for (size_t i = 0; i < arr.size(); ++i) {
    if (arr[i].kind() != Value::Kind::kObject) {
      return util::Status::InvalidArgument(
          "ops[" + std::to_string(i) + "] must be an object");
    }
    Fields f(arr[i].AsObject());
    DeltaOp op;
    SCHEMEX_RETURN_IF_ERROR(f.GetString("op", &op.op, /*required=*/true));
    if (op.op != "add_object" && op.op != "add_link" && op.op != "del_link") {
      return util::Status::InvalidArgument(
          "ops[" + std::to_string(i) +
          "].op must be \"add_object\", \"add_link\" or \"del_link\"");
    }
    if (op.op == "add_object") {
      SCHEMEX_RETURN_IF_ERROR(f.GetString("kind", &op.kind));
      if (op.kind != "complex" && op.kind != "atomic") {
        return util::Status::InvalidArgument(
            "ops[" + std::to_string(i) +
            "].kind must be \"complex\" or \"atomic\"");
      }
      SCHEMEX_RETURN_IF_ERROR(f.GetString("name", &op.name));
      SCHEMEX_RETURN_IF_ERROR(f.GetString("value", &op.value));
    } else {
      SCHEMEX_RETURN_IF_ERROR(f.GetUint("from", &op.from));
      SCHEMEX_RETURN_IF_ERROR(f.GetUint("to", &op.to));
      SCHEMEX_RETURN_IF_ERROR(
          f.GetString("label", &op.label, /*required=*/true));
    }
    out->push_back(std::move(op));
  }
  return util::Status::OK();
}

}  // namespace

std::string_view VerbToString(Verb v) {
  switch (v) {
    case Verb::kLoadWorkspace:
      return "load_workspace";
    case Verb::kExtract:
      return "extract";
    case Verb::kType:
      return "type";
    case Verb::kQuery:
      return "query";
    case Verb::kStats:
      return "stats";
    case Verb::kListWorkspaces:
      return "list_workspaces";
    case Verb::kApplyDelta:
      return "apply_delta";
    case Verb::kReExtract:
      return "re_extract";
  }
  return "unknown";
}

util::StatusOr<Verb> VerbFromString(std::string_view s) {
  if (s == "load_workspace") return Verb::kLoadWorkspace;
  if (s == "extract") return Verb::kExtract;
  if (s == "type") return Verb::kType;
  if (s == "query") return Verb::kQuery;
  if (s == "stats") return Verb::kStats;
  if (s == "list_workspaces") return Verb::kListWorkspaces;
  if (s == "apply_delta") return Verb::kApplyDelta;
  if (s == "re_extract") return Verb::kReExtract;
  return util::Status::InvalidArgument("unknown verb \"" + std::string(s) +
                                       "\"");
}

util::StatusOr<Request> ParseRequest(const json::Value& v) {
  if (v.kind() != Value::Kind::kObject) {
    return util::Status::InvalidArgument("request must be a JSON object");
  }
  Fields top(v.AsObject());
  Request req;
  SCHEMEX_RETURN_IF_ERROR(top.GetInt("id", &req.id));

  std::string verb;
  SCHEMEX_RETURN_IF_ERROR(top.GetString("verb", &verb, /*required=*/true));
  SCHEMEX_ASSIGN_OR_RETURN(req.verb, VerbFromString(verb));

  SCHEMEX_RETURN_IF_ERROR(top.GetDouble("timeout_s", &req.timeout_s));
  if (req.timeout_s < 0) {
    return util::Status::InvalidArgument("timeout_s must be >= 0");
  }

  const auto& obj = v.AsObject();
  auto params_it = obj.find("params");
  if (params_it != obj.end() &&
      params_it->second.kind() != Value::Kind::kObject) {
    return util::Status::InvalidArgument("\"params\" must be an object");
  }
  Fields params(params_it == obj.end() ? kEmptyObject
                                       : params_it->second.AsObject());

  switch (req.verb) {
    case Verb::kLoadWorkspace:
      SCHEMEX_RETURN_IF_ERROR(
          params.GetString("name", &req.load.name, /*required=*/true));
      SCHEMEX_RETURN_IF_ERROR(
          params.GetString("dir", &req.load.dir, /*required=*/true));
      break;
    case Verb::kExtract:
      SCHEMEX_RETURN_IF_ERROR(params.GetString(
          "workspace", &req.extract.workspace, /*required=*/true));
      SCHEMEX_RETURN_IF_ERROR(params.GetUint("k", &req.extract.k));
      SCHEMEX_RETURN_IF_ERROR(params.GetDouble("epsilon", &req.extract.epsilon));
      if (req.extract.epsilon < 1.0) {
        return util::Status::InvalidArgument("epsilon must be >= 1.0");
      }
      SCHEMEX_RETURN_IF_ERROR(
          params.GetUint("max_types", &req.extract.max_types));
      SCHEMEX_RETURN_IF_ERROR(
          params.GetBool("decompose_roles", &req.extract.decompose_roles));
      SCHEMEX_RETURN_IF_ERROR(params.GetString("stage1", &req.extract.stage1));
      if (req.extract.stage1 != "refinement" && req.extract.stage1 != "gfp") {
        return util::Status::InvalidArgument(
            "stage1 must be \"refinement\" or \"gfp\"");
      }
      SCHEMEX_RETURN_IF_ERROR(
          params.GetUint("parallelism", &req.extract.parallelism));
      SCHEMEX_RETURN_IF_ERROR(
          params.GetString("save_dir", &req.extract.save_dir));
      break;
    case Verb::kType:
      SCHEMEX_RETURN_IF_ERROR(
          params.GetString("workspace", &req.type.workspace, /*required=*/true));
      SCHEMEX_RETURN_IF_ERROR(params.GetString("program", &req.type.program));
      SCHEMEX_RETURN_IF_ERROR(params.GetBool("commit", &req.type.commit));
      break;
    case Verb::kQuery:
      SCHEMEX_RETURN_IF_ERROR(params.GetString(
          "workspace", &req.query.workspace, /*required=*/true));
      SCHEMEX_RETURN_IF_ERROR(
          params.GetString("query", &req.query.query, /*required=*/true));
      SCHEMEX_RETURN_IF_ERROR(params.GetBool("use_guide", &req.query.use_guide));
      SCHEMEX_RETURN_IF_ERROR(params.GetUint("limit", &req.query.limit));
      break;
    case Verb::kApplyDelta:
      SCHEMEX_RETURN_IF_ERROR(params.GetString(
          "workspace", &req.apply_delta.workspace, /*required=*/true));
      SCHEMEX_RETURN_IF_ERROR(
          ParseDeltaOps(params_it == obj.end() ? kEmptyObject
                                               : params_it->second.AsObject(),
                        &req.apply_delta.ops));
      SCHEMEX_RETURN_IF_ERROR(
          params.GetBool("compact", &req.apply_delta.compact));
      break;
    case Verb::kReExtract:
      SCHEMEX_RETURN_IF_ERROR(params.GetString(
          "workspace", &req.re_extract.workspace, /*required=*/true));
      SCHEMEX_RETURN_IF_ERROR(params.GetUint("k", &req.re_extract.k));
      SCHEMEX_RETURN_IF_ERROR(
          params.GetUint("parallelism", &req.re_extract.parallelism));
      SCHEMEX_RETURN_IF_ERROR(
          params.GetString("save_dir", &req.re_extract.save_dir));
      SCHEMEX_RETURN_IF_ERROR(params.GetDouble(
          "max_dirty_fraction", &req.re_extract.max_dirty_fraction));
      if (req.re_extract.max_dirty_fraction < 0 ||
          req.re_extract.max_dirty_fraction > 1) {
        return util::Status::InvalidArgument(
            "max_dirty_fraction must be in [0, 1]");
      }
      break;
    case Verb::kStats:
    case Verb::kListWorkspaces:
      break;
  }
  return req;
}

util::StatusOr<Request> ParseRequestJson(std::string_view line) {
  SCHEMEX_ASSIGN_OR_RETURN(json::Value v, json::Parse(line));
  return ParseRequest(v);
}

std::string SerializeResponse(const Response& r) {
  std::map<std::string, json::Value> top;
  top["id"] = JsonInt(r.id);
  top["ok"] = json::Value::Bool(r.status.ok());
  if (r.status.ok()) {
    top["result"] = r.result;
  } else {
    std::map<std::string, json::Value> err;
    err["code"] =
        json::Value::String(std::string(StatusCodeToString(r.status.code())));
    err["message"] = json::Value::String(r.status.message());
    top["error"] = json::Value::Object(std::move(err));
  }
  return json::Serialize(json::Value::Object(std::move(top)));
}

json::Value JsonInt(int64_t n) {
  return json::Value::Number(static_cast<double>(n), std::to_string(n));
}

json::Value JsonUint(uint64_t n) {
  return json::Value::Number(static_cast<double>(n), std::to_string(n));
}

}  // namespace schemex::service
