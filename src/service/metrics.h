#ifndef SCHEMEX_SERVICE_METRICS_H_
#define SCHEMEX_SERVICE_METRICS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "json/json.h"
#include "util/thread_annotations.h"

namespace schemex::service {

/// Latency summary of one verb, produced by MetricsRegistry::Snapshot().
/// Percentiles are read off a fixed log-scale histogram, so they carry
/// bucket-resolution error (~25%) — plenty for a `stats` verb whose job
/// is spotting order-of-magnitude regressions.
struct VerbStats {
  std::string verb;
  uint64_t count = 0;     ///< requests finished (ok + error)
  uint64_t errors = 0;    ///< non-OK responses, timeouts included
  uint64_t timeouts = 0;  ///< subset of errors: DeadlineExceeded
  double total_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  json::Value ToJson() const;
};

/// Thread-safe per-verb counters + latency histograms for the service.
///
/// The histogram is a fixed ladder of ~64 buckets growing geometrically
/// from 1 microsecond; recording is a mutex-guarded increment (the mutex
/// is per-registry: contention is negligible next to request work, and a
/// single lock keeps Snapshot consistent).
///
/// Besides the per-verb histograms the registry carries named integer
/// counters for transport-level metrics (connection counts, bytes in/out
/// of the TCP front end). Counters are signed so gauges like
/// `tcp.connections_open` can go both ways.
class MetricsRegistry {
 public:
  static constexpr size_t kNumBuckets = 64;

  /// Records one finished request for `verb`.
  void Record(const std::string& verb, double latency_ms, bool ok,
              bool timeout) SCHEMEX_EXCLUDES(mu_);

  /// Adds `delta` (possibly negative) to the named counter, creating it
  /// at zero on first touch.
  void AddCounter(const std::string& name, int64_t delta)
      SCHEMEX_EXCLUDES(mu_);

  /// Consistent snapshot of every verb seen so far, sorted by verb name.
  std::vector<VerbStats> Snapshot() const SCHEMEX_EXCLUDES(mu_);

  /// Snapshot of all named counters, sorted by name.
  std::vector<std::pair<std::string, int64_t>> CounterSnapshot() const
      SCHEMEX_EXCLUDES(mu_);

  /// Upper bound (ms) of histogram bucket `i` — exposed for tests.
  static double BucketUpperMs(size_t i);

 private:
  struct Recorder {
    uint64_t count = 0;
    uint64_t errors = 0;
    uint64_t timeouts = 0;
    double total_ms = 0;
    double max_ms = 0;
    std::array<uint64_t, kNumBuckets> buckets{};
  };

  mutable util::Mutex mu_;
  // Small map; a vector of pairs keeps Snapshot ordering deterministic.
  std::vector<std::pair<std::string, Recorder>> recorders_
      SCHEMEX_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, int64_t>> counters_
      SCHEMEX_GUARDED_BY(mu_);
};

}  // namespace schemex::service

#endif  // SCHEMEX_SERVICE_METRICS_H_
