#include "service/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "service/framer.h"
#include "service/request.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace schemex::service {

namespace {

using Clock = std::chrono::steady_clock;

util::Status ErrnoStatus(const char* what) {
  return util::Status::Internal(
      util::StringPrintf("%s: %s", what, std::strerror(errno)));
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// Per-connection state. The poll thread owns the fd and the framer;
/// `mu` guards everything both the poll thread and pool workers touch
/// (outbox, in_flight, closed, last_activity).
struct TcpServer::Connection {
  int fd = -1;  ///< set once before the connection is published
  // Poll-thread only: framing state and the read-side EOF/drain flag.
  Framer framer;
  bool read_closed = false;  ///< peer EOF or drain: no more requests framed

  util::Mutex mu;
  std::string outbox SCHEMEX_GUARDED_BY(mu);  ///< responses awaiting write
  size_t in_flight SCHEMEX_GUARDED_BY(mu) =
      0;  ///< dispatched requests without a response yet
  bool closed SCHEMEX_GUARDED_BY(mu) =
      false;  ///< fd closed; late responses are dropped
  /// Both the poll thread (reads, idle sweep) and pool workers (flushes)
  /// stamp activity, so the timestamp shares the connection mutex.
  Clock::time_point last_activity SCHEMEX_GUARDED_BY(mu);

  explicit Connection(const FramerOptions& fopt)
      : framer(fopt), last_activity(Clock::now()) {}
};

struct TcpServer::WakeHandle {
  util::Mutex mu;
  int write_fd SCHEMEX_GUARDED_BY(mu) = -1;  ///< -1 once the server shut down
};

TcpServer::TcpServer(Server* server, const TcpServerOptions& options)
    : server_(server),
      options_(options),
      metrics_(&server->mutable_metrics()) {}

TcpServer::~TcpServer() { Shutdown(); }

util::Status TcpServer::Start() {
  if (running_.load()) {
    return util::Status::FailedPrecondition("TcpServer already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return util::Status::InvalidArgument("bad bind address \"" +
                                         options_.bind_address + "\"");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    util::Status st = ErrnoStatus("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) != 0) {
    util::Status st = ErrnoStatus("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    util::Status st = ErrnoStatus("getsockname");
    ::close(fd);
    return st;
  }
  if (!SetNonBlocking(fd)) {
    util::Status st = ErrnoStatus("fcntl(listener O_NONBLOCK)");
    ::close(fd);
    return st;
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    util::Status st = ErrnoStatus("pipe2");
    ::close(fd);
    return st;
  }

  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  wake_read_fd_ = pipe_fds[0];
  wake_ = std::make_shared<WakeHandle>();
  wake_->write_fd = pipe_fds[1];
  draining_.store(false);
  stopped_.store(false);
  running_.store(true);
  {
    util::MutexLock lock(join_mu_);
    loop_thread_ = std::thread([this] { Loop(); });
  }
  return util::Status::OK();
}

void TcpServer::Shutdown() {
  // The CAS elects one winner to drive the drain; every caller (winner
  // or not) still serializes on join_mu_ below, so concurrent Shutdown
  // never races on the thread object and nobody returns before the poll
  // thread is gone.
  bool expected = false;
  const bool winner = stopped_.compare_exchange_strong(expected, true);
  if (!running_.load()) return;  // never started: nothing to drain
  if (winner) {
    draining_.store(true);
    Wake();
  }
  {
    util::MutexLock lock(join_mu_);
    if (loop_thread_.joinable()) loop_thread_.join();
  }
  if (!winner) return;

  // Invalidate the wake pipe under the handle's lock so a pool worker
  // completing after this point writes nowhere instead of into a
  // recycled fd.
  int wfd = -1;
  {
    util::MutexLock lock(wake_->mu);
    wfd = wake_->write_fd;
    wake_->write_fd = -1;
  }
  if (wfd >= 0) ::close(wfd);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  wake_read_fd_ = listen_fd_ = -1;
  running_.store(false);
}

void TcpServer::Wake() {
  util::MutexLock lock(wake_->mu);
  if (wake_->write_fd >= 0) {
    char b = 0;
    // A full pipe already guarantees a wake-up; ignore EAGAIN.
    [[maybe_unused]] ssize_t n = ::write(wake_->write_fd, &b, 1);
  }
}

void TcpServer::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                                std::string line) {
  line.push_back('\n');
  {
    util::MutexLock lock(conn->mu);
    if (conn->closed) return;
    conn->outbox += line;
  }
  // Opportunistic flush: on the poll thread this usually completes the
  // write without waiting for the next POLLOUT round trip.
  FlushWrites(conn);
}

void TcpServer::FlushWrites(const std::shared_ptr<Connection>& conn) {
  util::MutexLock lock(conn->mu);
  while (!conn->closed && !conn->outbox.empty()) {
    ssize_t n = ::send(conn->fd, conn->outbox.data(), conn->outbox.size(),
                       MSG_NOSIGNAL);
    if (n > 0) {
      metrics_->AddCounter("tcp.bytes_out", n);
      conn->outbox.erase(0, static_cast<size_t>(n));
      conn->last_activity = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer vanished mid-write: drop the rest; the poll loop reaps the
    // connection on its next POLLERR/POLLHUP.
    conn->outbox.clear();
    break;
  }
}

void TcpServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  size_t dropped = 0;
  {
    util::MutexLock lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    dropped = conn->in_flight;
    conn->outbox.clear();
    ::close(conn->fd);
  }
  if (dropped > 0) {
    metrics_->AddCounter("tcp.responses_dropped",
                         static_cast<int64_t>(dropped));
  }
  metrics_->AddCounter("tcp.connections_open", -1);
  open_connections_.fetch_sub(1);
}

void TcpServer::AcceptNew() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient accept error: try later
    if (draining_.load() || conns_.size() >= options_.max_connections) {
      metrics_->AddCounter("tcp.connections_refused", 1);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    FramerOptions fopt;
    fopt.max_line_bytes = options_.max_line_bytes;
    auto conn = std::make_shared<Connection>(fopt);
    conn->fd = fd;
    conns_.push_back(conn);
    metrics_->AddCounter("tcp.connections_accepted", 1);
    metrics_->AddCounter("tcp.connections_open", 1);
    open_connections_.fetch_add(1);
  }
}

void TcpServer::DispatchLines(const std::shared_ptr<Connection>& conn) {
  util::StatusOr<std::string> line = std::string();
  while (conn->framer.Next(&line)) {
    if (!line.ok()) {
      // Framing violation (oversized / embedded NUL): structured error
      // with id 0, exactly like a malformed JSON line.
      metrics_->AddCounter("tcp.lines_rejected", 1);
      metrics_->Record("invalid", 0.0, /*ok=*/false, /*timeout=*/false);
      Response resp;
      resp.status = line.status();
      EnqueueResponse(conn, SerializeResponse(resp));
      continue;
    }
    auto req = ParseRequestJson(*line);
    if (!req.ok()) {
      metrics_->AddCounter("tcp.lines_rejected", 1);
      metrics_->Record("invalid", 0.0, /*ok=*/false, /*timeout=*/false);
      Response resp;
      resp.status = req.status();
      EnqueueResponse(conn, SerializeResponse(resp));
      continue;
    }
    {
      util::MutexLock lock(conn->mu);
      ++conn->in_flight;
    }
    // The callback runs on a pool worker and may outlive the TcpServer:
    // it only touches the connection (kept alive by the shared_ptr), the
    // wake handle (invalidated under its lock at shutdown), and the
    // server's metrics (the Server joins its pool before destruction).
    auto wake = wake_;
    MetricsRegistry* metrics = metrics_;
    server_->HandleAsync(
        *std::move(req), [conn, wake, metrics](Response resp) {
          std::string out = SerializeResponse(resp);
          out.push_back('\n');
          bool dropped = false;
          {
            util::MutexLock lock(conn->mu);
            --conn->in_flight;
            if (conn->closed) {
              dropped = true;
            } else {
              conn->outbox += out;
            }
          }
          if (dropped) metrics->AddCounter("tcp.responses_dropped", 1);
          util::MutexLock lock(wake->mu);
          if (wake->write_fd >= 0) {
            char b = 0;
            [[maybe_unused]] ssize_t n = ::write(wake->write_fd, &b, 1);
          }
        });
  }
}

void TcpServer::ReadFrom(const std::shared_ptr<Connection>& conn) {
  char buf[16 * 1024];
  size_t total = 0;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      metrics_->AddCounter("tcp.bytes_in", n);
      {
        // A pool worker flushing this connection's outbox stamps
        // last_activity concurrently, so the poll thread must take the
        // lock too (TSan catches the unlocked variant).
        util::MutexLock lock(conn->mu);
        conn->last_activity = Clock::now();
      }
      conn->framer.Feed(std::string_view(buf, static_cast<size_t>(n)));
      total += static_cast<size_t>(n);
      // Cap per-iteration reads so one fire-hose client cannot starve
      // the rest of the loop; level-triggered poll() reports the socket
      // readable again next round.
      if (total >= 256 * 1024) break;
      continue;
    }
    if (n == 0) {
      // Peer half-closed: a final unterminated line still counts.
      conn->framer.Finish();
      conn->read_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    // Hard receive error: treat as an abortive disconnect.
    conn->framer.Finish();
    conn->read_closed = true;
    break;
  }
  DispatchLines(conn);
}

void TcpServer::Loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  bool drain_seen = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    const bool draining = draining_.load();
    if (draining && !drain_seen) {
      drain_seen = true;
      drain_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 std::max(0.0, options_.drain_timeout_s)));
      // Stop reading everywhere: in-flight work finishes, new requests
      // (even ones already buffered but unframed) are not admitted.
      for (auto& c : conns_) c->read_closed = true;
    }

    fds.clear();
    polled.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    const bool accepting = !draining;
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& c : conns_) {
      short events = 0;
      if (!c->read_closed) events |= POLLIN;
      {
        util::MutexLock lock(c->mu);
        if (!c->outbox.empty()) events |= POLLOUT;
      }
      fds.push_back({c->fd, events, 0});
      polled.push_back(c);
    }

    // Finite timeout: it bounds the idle sweep and the drain deadline
    // check even when no fd fires.
    const int timeout_ms = draining ? 10 : 100;
    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR && errno != EAGAIN) break;

    size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      char drain_buf[256];
      while (::read(wake_read_fd_, drain_buf, sizeof(drain_buf)) > 0) {
      }
    }
    ++idx;
    if (accepting) {
      if (fds[idx].revents & POLLIN) AcceptNew();
      ++idx;
    }

    for (size_t i = 0; i < polled.size(); ++i, ++idx) {
      const auto& conn = polled[i];
      const short re = fds[idx].revents;
      if (re & POLLERR) {
        // Abortive disconnect; POLLHUP alone still allows reading the
        // tail the peer sent before closing, so only POLLERR is fatal.
        CloseConnection(conn);
        continue;
      }
      if (re & (POLLIN | POLLHUP)) ReadFrom(conn);
      if (re & POLLOUT) FlushWrites(conn);
    }

    // Reap: a connection is done when reads ended and every dispatched
    // request has flushed its response. Idle connections (no traffic, no
    // work) hit the idle/read timeout.
    const Clock::time_point now = Clock::now();
    for (auto& conn : conns_) {
      bool done = false;
      bool idle = false;
      {
        util::MutexLock lock(conn->mu);
        if (conn->closed) continue;
        const bool quiescent = conn->in_flight == 0 && conn->outbox.empty();
        done = conn->read_closed && quiescent;
        idle = !draining && quiescent && options_.idle_timeout_s > 0 &&
               std::chrono::duration<double>(now - conn->last_activity)
                       .count() > options_.idle_timeout_s;
      }
      if (done || idle) CloseConnection(conn);
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::shared_ptr<Connection>& c) {
                                  util::MutexLock lock(c->mu);
                                  return c->closed;
                                }),
                 conns_.end());

    if (draining) {
      if (conns_.empty()) break;
      if (now >= drain_deadline) {
        // Budget blown: force-close; stragglers' responses are dropped.
        for (auto& conn : conns_) CloseConnection(conn);
        conns_.clear();
        break;
      }
    }
  }
}

}  // namespace schemex::service
