#ifndef SCHEMEX_SERVICE_SERVER_H_
#define SCHEMEX_SERVICE_SERVER_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/workspace.h"
#include "service/metrics.h"
#include "service/request.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace schemex::service {

struct ServerOptions {
  /// Worker threads handling requests.
  size_t num_threads = 4;
  /// Wall-clock budget applied when a request does not set timeout_s.
  /// 0 disables the default (requests may still set their own).
  double default_timeout_s = 60.0;
  /// Parallelism for all three extraction stages, applied when an extract
  /// request leaves its "parallelism" field at 0: 0 = auto (hardware
  /// concurrency, moderated by graph size), 1 = sequential reference
  /// path, N = exactly N workers. Extract results are identical for
  /// every setting.
  size_t default_parallelism = 0;
};

/// The schemexd dispatcher: a long-lived, concurrent schema service.
///
/// Workspaces live in a read-mostly cache keyed by name. Each entry is an
/// immutable `shared_ptr<const Workspace>` snapshot; a `shared_mutex`
/// guards only the map. Readers (query/type/list) take the shared lock
/// just long enough to copy the pointer and then evaluate lock-free on
/// the snapshot; writers (load/extract/type-commit) build the replacement
/// workspace off-lock and swap it in under the exclusive lock. A query
/// racing a re-extract therefore always sees a consistent workspace —
/// either the old one or the new one, never a mix.
///
/// Requests are routed onto a fixed ThreadPool. Timeouts are enforced at
/// three points: a request that out-waits its budget in the queue fails
/// without executing, the extract pipeline polls its deadline between
/// stage boundaries and aborts with kDeadlineExceeded, and the
/// synchronous Handle() stops waiting once the budget elapses (the worker
/// then discards its late result).
class Server {
 public:
  explicit Server(const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Dispatches onto the pool and blocks for the response, enforcing the
  /// request's wall-clock budget. Thread-safe; concurrent callers simply
  /// become concurrent requests.
  Response Handle(const Request& req);

  /// Parses one newline-delimited JSON request, dispatches it, and
  /// serializes the response. Malformed input yields a structured error
  /// response (id 0 when the id could not be parsed).
  std::string HandleJsonLine(const std::string& line);

  /// Fire-and-forget dispatch; `done` runs on a pool worker after the
  /// handler (or queue-deadline rejection) finishes.
  void HandleAsync(Request req, std::function<void(Response)> done);

  /// Installs (or replaces) a workspace directly — the programmatic
  /// equivalent of load_workspace, used by tests and --workspace preloads.
  util::Status InstallWorkspace(const std::string& name,
                                catalog::Workspace ws);

  /// Names of cached workspaces, sorted.
  std::vector<std::string> WorkspaceNames() const SCHEMEX_EXCLUDES(cache_mu_);

  const ServerOptions& options() const { return options_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Registry handle for transport front ends (the TCP listener folds its
  /// connection/byte counters into the same registry the verbs use, so
  /// one `stats` request covers both).
  MetricsRegistry& mutable_metrics() { return metrics_; }

 private:
  using Clock = std::chrono::steady_clock;
  using WorkspacePtr = std::shared_ptr<const catalog::Workspace>;

  /// Resolves the effective budget for a request (0 = unlimited).
  double EffectiveTimeout(const Request& req) const;

  /// Runs the verb handler (on a pool worker). `deadline` is the absolute
  /// point at which the request's budget expires (`Clock::time_point::max()`
  /// = unlimited); long-running handlers poll it cooperatively.
  util::StatusOr<json::Value> Dispatch(const Request& req,
                                       Clock::time_point deadline);

  util::StatusOr<json::Value> HandleLoadWorkspace(const LoadWorkspaceParams& p);
  util::StatusOr<json::Value> HandleExtract(const ExtractParams& p,
                                            Clock::time_point deadline);
  util::StatusOr<json::Value> HandleType(const TypeParams& p);
  util::StatusOr<json::Value> HandleQuery(const QueryParams& p);
  util::StatusOr<json::Value> HandleStats();
  util::StatusOr<json::Value> HandleListWorkspaces();
  util::StatusOr<json::Value> HandleApplyDelta(const ApplyDeltaParams& p);
  util::StatusOr<json::Value> HandleReExtract(const ReExtractParams& p,
                                              Clock::time_point deadline);

  /// Snapshot of a cache entry (shared lock held only for the map read).
  util::StatusOr<WorkspacePtr> GetWorkspace(const std::string& name) const
      SCHEMEX_EXCLUDES(cache_mu_);

  /// Swaps `ws` in under the exclusive lock.
  void PutWorkspace(const std::string& name, catalog::Workspace ws)
      SCHEMEX_EXCLUDES(cache_mu_);

  ServerOptions options_;
  MetricsRegistry metrics_;

  mutable util::SharedMutex cache_mu_;
  std::map<std::string, WorkspacePtr> cache_ SCHEMEX_GUARDED_BY(cache_mu_);

  // Last member: destroyed (joined) first, so in-flight workers never
  // touch an already-destroyed cache or registry.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace schemex::service

#endif  // SCHEMEX_SERVICE_SERVER_H_
