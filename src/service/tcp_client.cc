#include "service/tcp_client.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace schemex::service {

namespace {

using Clock = std::chrono::steady_clock;

util::Status ErrnoStatus(const char* what) {
  return util::Status::Internal(
      util::StringPrintf("%s: %s", what, std::strerror(errno)));
}

int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

}  // namespace

util::StatusOr<TcpClient> TcpClient::Connect(const std::string& host,
                                             uint16_t port,
                                             double connect_timeout_s) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0 || res == nullptr) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "cannot resolve \"%s\": %s", host.c_str(), gai_strerror(rc)));
  }

  int fd = ::socket(res->ai_family, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return ErrnoStatus("socket");
  }
  // Non-blocking connect so the handshake honors the timeout, then back
  // to blocking: reads are poll()-gated and writes may simply block.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    util::Status st = ErrnoStatus("connect");
    ::close(fd);
    return st;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int timeout_ms = static_cast<int>(connect_timeout_s * 1e3);
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      ::close(fd);
      return rc == 0 ? util::Status::DeadlineExceeded(util::StringPrintf(
                           "connect to %s:%u timed out after %.3fs",
                           host.c_str(), port, connect_timeout_s))
                     : ErrnoStatus("poll(connect)");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return util::Status::Internal(util::StringPrintf(
          "connect to %s:%u: %s", host.c_str(), port, std::strerror(err)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpClient(fd);
}

TcpClient::TcpClient(TcpClient&& other) noexcept
    : fd_(other.fd_), rbuf_(std::move(other.rbuf_)) {
  other.fd_ = -1;
}

TcpClient& TcpClient::operator=(TcpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    rbuf_ = std::move(other.rbuf_);
    other.fd_ = -1;
  }
  return *this;
}

TcpClient::~TcpClient() { Close(); }

void TcpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

util::Status TcpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return util::Status::FailedPrecondition("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    off += static_cast<size_t>(n);
  }
  return util::Status::OK();
}

util::Status TcpClient::SendLine(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  return SendRaw(framed);
}

util::StatusOr<std::string> TcpClient::ReadLine(double timeout_s) {
  if (fd_ < 0) return util::Status::FailedPrecondition("not connected");
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rbuf_.substr(0, nl);
      rbuf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, RemainingMs(deadline));
    if (rc == 0) {
      return util::Status::DeadlineExceeded(util::StringPrintf(
          "no response line within %.3fs", timeout_s));
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    char buf[16 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return ErrnoStatus("recv");
    // EOF: a final unterminated line still counts as a line.
    if (!rbuf_.empty()) {
      std::string line = std::move(rbuf_);
      rbuf_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    return util::Status::FailedPrecondition(
        "connection closed before a response line arrived");
  }
}

util::StatusOr<json::Value> TcpClient::Call(std::string_view request_line,
                                            double timeout_s) {
  SCHEMEX_RETURN_IF_ERROR(SendLine(request_line));
  SCHEMEX_ASSIGN_OR_RETURN(std::string line, ReadLine(timeout_s));
  return json::Parse(line);
}

}  // namespace schemex::service
