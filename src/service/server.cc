#include "service/server.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <set>
#include <string_view>
#include <utility>

#include "extract/extractor.h"
#include "extract/incremental_extract.h"
#include "extract/knee.h"
#include "graph/delta_overlay.h"
#include "query/path_query.h"
#include "query/schema_guide.h"
#include "snapshot/mapped_file.h"
#include "typing/defect.h"
#include "typing/gfp.h"
#include "typing/incremental.h"
#include "typing/program_io.h"
#include "typing/recast.h"
#include "util/string_util.h"

namespace schemex::service {

namespace {

using json::Value;

double SecondsSince(std::chrono::steady_clock::time_point t0,
                    std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double>(now - t0).count();
}

/// Cumulative online-typing tallies since the last extraction, including
/// the §6 "re-extract now?" recommendation.
Value MisfitFields(const catalog::Workspace& ws) {
  const size_t fallback = ws.delta_arrivals - ws.delta_exact;
  std::map<std::string, Value> m;
  m["arrivals"] = JsonUint(ws.delta_arrivals);
  m["exact"] = JsonUint(ws.delta_exact);
  m["fallback"] = JsonUint(fallback);
  m["misfit_fraction"] = Value::Number(
      ws.delta_arrivals == 0
          ? 0.0
          : static_cast<double>(fallback) /
                static_cast<double>(ws.delta_arrivals));
  m["retype_recommended"] = Value::Bool(
      typing::IncrementalTyper::RetypeRecommended(ws.delta_arrivals, fallback));
  return Value::Object(std::move(m));
}

std::map<std::string, Value> WorkspaceSummaryFields(
    const std::string& name, const catalog::Workspace& ws) {
  // Counts reflect the workspace as readers see it — overlay included.
  graph::GraphView view = ws.View();
  std::map<std::string, Value> f;
  f["name"] = Value::String(name);
  f["objects"] = JsonUint(view.NumObjects());
  f["complex_objects"] = JsonUint(view.NumComplexObjects());
  f["atomic_objects"] = JsonUint(view.NumAtomicObjects());
  f["edges"] = JsonUint(view.NumEdges());
  f["num_types"] = JsonUint(ws.program.NumTypes());
  f["typed_objects"] = JsonUint(ws.assignment.NumTypedObjects());
  // Identity + footprint of the frozen snapshot. Two generations of the
  // same workspace report the same graph_id when (and only when) they
  // share the same FrozenGraph instance.
  f["graph_id"] = JsonUint(ws.graph->id());
  f["graph_bytes"] = JsonUint(ws.graph->MemoryUsage());
  f["generation"] = JsonUint(ws.generation);
  if (ws.overlay != nullptr) {
    std::map<std::string, Value> d;
    d["added_objects"] = JsonUint(ws.overlay->NumAddedObjects());
    d["added_links"] = JsonUint(ws.overlay->NumAddedLinks());
    d["deleted_links"] = JsonUint(ws.overlay->NumDeletedLinks());
    d["touched_complex"] =
        JsonUint(ws.overlay->TouchedComplexObjects().size());
    d["overlay_bytes"] = JsonUint(ws.overlay->MemoryUsage());
    f["overlay"] = Value::Object(std::move(d));
  }
  f["retype_recommended"] = Value::Bool(typing::IncrementalTyper::
      RetypeRecommended(ws.delta_arrivals,
                        ws.delta_arrivals - ws.delta_exact));
  return f;
}

Value WorkspaceSummary(const std::string& name, const catalog::Workspace& ws) {
  return Value::Object(WorkspaceSummaryFields(name, ws));
}

/// Turns an absolute deadline into a cooperative-cancellation hook for
/// the extract pipeline; kMax disables polling entirely.
constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

std::function<util::Status()> DeadlineHook(
    std::chrono::steady_clock::time_point deadline) {
  if (deadline == kNoDeadline) return nullptr;
  return [deadline]() -> util::Status {
    auto now = std::chrono::steady_clock::now();
    if (now < deadline) return util::Status::OK();
    return util::Status::DeadlineExceeded(util::StringPrintf(
        "extract pipeline exceeded its budget (%.3fs past the deadline at "
        "a stage boundary)",
        std::chrono::duration<double>(now - deadline).count()));
  };
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      pool_(std::make_unique<util::ThreadPool>(options.num_threads)) {}

Server::~Server() { pool_->Shutdown(); }

double Server::EffectiveTimeout(const Request& req) const {
  return req.timeout_s > 0 ? req.timeout_s : options_.default_timeout_s;
}

void Server::HandleAsync(Request req, std::function<void(Response)> done) {
  const Clock::time_point arrival = Clock::now();
  const double timeout_s = EffectiveTimeout(req);
  pool_->Submit([this, req = std::move(req), done = std::move(done), arrival,
                 timeout_s]() {
    Response resp;
    resp.id = req.id;
    const double queued_s = SecondsSince(arrival, Clock::now());
    if (timeout_s > 0 && queued_s > timeout_s) {
      resp.status = util::Status::DeadlineExceeded(util::StringPrintf(
          "request spent %.3fs queued, budget %.3fs", queued_s, timeout_s));
    } else {
      const Clock::time_point deadline =
          timeout_s > 0
              ? arrival + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(timeout_s))
              : Clock::time_point::max();
      auto result = Dispatch(req, deadline);
      if (result.ok()) {
        resp.result = *std::move(result);
      } else {
        resp.status = result.status();
      }
    }
    const double latency_ms = SecondsSince(arrival, Clock::now()) * 1e3;
    metrics_.Record(
        std::string(VerbToString(req.verb)), latency_ms, resp.status.ok(),
        resp.status.code() == util::StatusCode::kDeadlineExceeded);
    done(resp);
  });
}

Response Server::Handle(const Request& req) {
  const Clock::time_point arrival = Clock::now();
  const double timeout_s = EffectiveTimeout(req);

  // `delivered` decides who reports the outcome: normally the worker; on
  // a wait-timeout the caller wins the flag, reports DeadlineExceeded,
  // and the worker's late result is discarded (it must not double-count
  // metrics for a request the client already gave up on).
  struct SyncState {
    std::promise<Response> promise;
    std::atomic<bool> delivered{false};
  };
  auto state = std::make_shared<SyncState>();
  std::future<Response> future = state->promise.get_future();

  pool_->Submit([this, req, state, arrival, timeout_s]() {
    Response resp;
    resp.id = req.id;
    const double queued_s = SecondsSince(arrival, Clock::now());
    if (timeout_s > 0 && queued_s > timeout_s) {
      resp.status = util::Status::DeadlineExceeded(util::StringPrintf(
          "request spent %.3fs queued, budget %.3fs", queued_s, timeout_s));
    } else {
      const Clock::time_point deadline =
          timeout_s > 0
              ? arrival + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(timeout_s))
              : Clock::time_point::max();
      auto result = Dispatch(req, deadline);
      if (result.ok()) {
        resp.result = *std::move(result);
      } else {
        resp.status = result.status();
      }
    }
    bool expected = false;
    if (state->delivered.compare_exchange_strong(expected, true)) {
      const double latency_ms = SecondsSince(arrival, Clock::now()) * 1e3;
      metrics_.Record(
          std::string(VerbToString(req.verb)), latency_ms, resp.status.ok(),
          resp.status.code() == util::StatusCode::kDeadlineExceeded);
      state->promise.set_value(std::move(resp));
    }
  });

  if (timeout_s > 0) {
    if (future.wait_for(std::chrono::duration<double>(timeout_s)) ==
        std::future_status::timeout) {
      bool expected = false;
      if (state->delivered.compare_exchange_strong(expected, true)) {
        Response resp;
        resp.id = req.id;
        resp.status = util::Status::DeadlineExceeded(util::StringPrintf(
            "request exceeded its %.3fs budget (worker still running; "
            "result discarded)",
            timeout_s));
        metrics_.Record(std::string(VerbToString(req.verb)), timeout_s * 1e3,
                        /*ok=*/false, /*timeout=*/true);
        return resp;
      }
      // The worker delivered in the race window; fall through and take
      // its response.
    }
  }
  return future.get();
}

std::string Server::HandleJsonLine(const std::string& line) {
  auto req = ParseRequestJson(line);
  if (!req.ok()) {
    Response resp;
    resp.status = req.status();
    metrics_.Record("invalid", 0.0, /*ok=*/false, /*timeout=*/false);
    return SerializeResponse(resp);
  }
  return SerializeResponse(Handle(*req));
}

util::Status Server::InstallWorkspace(const std::string& name,
                                      catalog::Workspace ws) {
  if (name.empty()) {
    return util::Status::InvalidArgument("workspace name must be non-empty");
  }
  SCHEMEX_RETURN_IF_ERROR(ws.Validate());
  PutWorkspace(name, std::move(ws));
  return util::Status::OK();
}

std::vector<std::string> Server::WorkspaceNames() const {
  util::ReaderMutexLock lock(cache_mu_);
  std::vector<std::string> names;
  names.reserve(cache_.size());
  for (const auto& [name, ws] : cache_) names.push_back(name);
  return names;
}

util::StatusOr<Server::WorkspacePtr> Server::GetWorkspace(
    const std::string& name) const {
  util::ReaderMutexLock lock(cache_mu_);
  auto it = cache_.find(name);
  if (it == cache_.end()) {
    return util::Status::NotFound("no workspace named \"" + name +
                                  "\" (load_workspace first)");
  }
  return it->second;
}

void Server::PutWorkspace(const std::string& name, catalog::Workspace ws) {
  auto snapshot = std::make_shared<const catalog::Workspace>(std::move(ws));
  util::WriterMutexLock lock(cache_mu_);
  cache_[name] = std::move(snapshot);
}

util::StatusOr<json::Value> Server::Dispatch(const Request& req,
                                             Clock::time_point deadline) {
  switch (req.verb) {
    case Verb::kLoadWorkspace:
      return HandleLoadWorkspace(req.load);
    case Verb::kExtract:
      return HandleExtract(req.extract, deadline);
    case Verb::kType:
      return HandleType(req.type);
    case Verb::kQuery:
      return HandleQuery(req.query);
    case Verb::kStats:
      return HandleStats();
    case Verb::kListWorkspaces:
      return HandleListWorkspaces();
    case Verb::kApplyDelta:
      return HandleApplyDelta(req.apply_delta);
    case Verb::kReExtract:
      return HandleReExtract(req.re_extract, deadline);
  }
  return util::Status::Internal("unhandled verb");
}

util::StatusOr<json::Value> Server::HandleLoadWorkspace(
    const LoadWorkspaceParams& p) {
  if (p.name.empty()) {
    return util::Status::InvalidArgument("workspace name must be non-empty");
  }
  catalog::LoadInfo load_info;
  SCHEMEX_ASSIGN_OR_RETURN(catalog::Workspace ws,
                           catalog::LoadWorkspace(p.dir, &load_info));
  metrics_.AddCounter(load_info.from_snapshot ? "workspace.load_snapshot"
                                              : "workspace.load_text",
                      1);
  std::map<std::string, Value> f = WorkspaceSummaryFields(p.name, ws);
  // Surface how the graph was obtained, and — when a snapshot existed
  // but was rejected — why the load fell back to the text files.
  f["source"] =
      Value::String(load_info.from_snapshot ? "snapshot" : "text");
  if (!load_info.from_snapshot &&
      load_info.snapshot_status.code() != util::StatusCode::kNotFound) {
    f["snapshot_error"] =
        Value::String(load_info.snapshot_status.ToString());
  }
  PutWorkspace(p.name, std::move(ws));
  return Value::Object(std::move(f));
}

util::StatusOr<json::Value> Server::HandleExtract(const ExtractParams& p,
                                                  Clock::time_point deadline) {
  SCHEMEX_ASSIGN_OR_RETURN(WorkspacePtr snapshot, GetWorkspace(p.workspace));
  graph::GraphView g = snapshot->View();

  extract::ExtractorOptions opt;
  opt.stage1 = p.stage1 == "gfp"
                   ? extract::ExtractorOptions::Stage1Algorithm::kGfp
                   : extract::ExtractorOptions::Stage1Algorithm::kRefinement;
  opt.decompose_roles = p.decompose_roles;
  opt.parallelism =
      p.parallelism != 0 ? static_cast<size_t>(p.parallelism)
                         : options_.default_parallelism;
  opt.check_cancel = DeadlineHook(deadline);

  // k == 0 = automatic: sweep the k axis and take the §8 knee within the
  // epsilon tolerance.
  size_t chosen_k = static_cast<size_t>(p.k);
  bool auto_k = chosen_k == 0;
  if (auto_k) {
    extract::KneeOptions knee_opt;
    knee_opt.max_types = static_cast<size_t>(p.max_types);
    knee_opt.tolerance = p.epsilon;
    SCHEMEX_ASSIGN_OR_RETURN(std::vector<extract::SensitivityPoint> sweep,
                             extract::SensitivitySweep(g, opt));
    extract::Knee knee = extract::FindKnee(sweep, knee_opt);
    chosen_k = knee.k;  // 0 on an empty sweep: keep the perfect typing
  }
  opt.target_num_types = chosen_k;

  SCHEMEX_ASSIGN_OR_RETURN(extract::ExtractionResult result,
                           extract::SchemaExtractor(opt).Run(g));

  // Share the graph (and any overlay): the new generation differs only
  // in its schema/assignment, so the swap is O(schema), not O(graph).
  // The extraction leaves a cache behind — the seed of a later
  // re_extract — and clears the mutation log: the new partition reflects
  // every delta applied so far, so the log is spent.
  catalog::Workspace next = *snapshot;
  next.program = result.final_program;
  next.assignment = result.recast.assignment;
  next.extraction_cache = std::make_shared<const extract::ExtractionCache>(
      extract::MakeExtractionCache(result, opt));
  next.mutation_log.clear();
  next.delta_arrivals = 0;
  next.delta_exact = 0;
  SCHEMEX_RETURN_IF_ERROR(next.Validate());

  if (!p.save_dir.empty()) {
    SCHEMEX_RETURN_IF_ERROR(catalog::SaveWorkspace(next, p.save_dir));
  }

  std::map<std::string, Value> f;
  f["workspace"] = Value::String(p.workspace);
  f["k"] = JsonUint(chosen_k);
  f["auto_k"] = Value::Bool(auto_k);
  f["num_perfect_types"] = JsonUint(result.num_perfect_types);
  f["num_final_types"] = JsonUint(result.num_final_types);
  {
    std::map<std::string, Value> d;
    d["excess"] = JsonUint(result.defect.excess);
    d["deficit"] = JsonUint(result.defect.deficit);
    d["defect"] = JsonUint(result.defect.defect());
    f["defect"] = Value::Object(std::move(d));
  }
  {
    std::map<std::string, Value> r;
    r["exact"] = JsonUint(result.recast.num_exact);
    r["fallback"] = JsonUint(result.recast.num_fallback);
    r["untyped"] = JsonUint(result.recast.num_untyped);
    f["recast"] = Value::Object(std::move(r));
  }
  {
    // Per-stage wall time, echoed in the response and folded into
    // per-stage histograms (extract.stage1, ...) surfaced via `stats`.
    std::map<std::string, Value> t;
    t["stage1_ms"] = Value::Number(result.timings.stage1_ms);
    t["cluster_ms"] = Value::Number(result.timings.cluster_ms);
    t["recast_ms"] = Value::Number(result.timings.recast_ms);
    t["total_ms"] = Value::Number(result.timings.total_ms);
    f["timings"] = Value::Object(std::move(t));
    metrics_.Record("extract.stage1", result.timings.stage1_ms,
                    /*ok=*/true, /*timeout=*/false);
    metrics_.Record("extract.cluster", result.timings.cluster_ms,
                    /*ok=*/true, /*timeout=*/false);
    metrics_.Record("extract.recast", result.timings.recast_ms,
                    /*ok=*/true, /*timeout=*/false);
  }
  if (!p.save_dir.empty()) f["saved_to"] = Value::String(p.save_dir);

  PutWorkspace(p.workspace, std::move(next));
  return Value::Object(std::move(f));
}

util::StatusOr<json::Value> Server::HandleType(const TypeParams& p) {
  SCHEMEX_ASSIGN_OR_RETURN(WorkspacePtr snapshot, GetWorkspace(p.workspace));
  graph::GraphView g = snapshot->View();

  // Parse against a copy of the graph's interner: existing labels keep
  // their ids; labels unknown to the graph get fresh out-of-table ids and
  // simply never match an edge. The shared snapshot is never mutated.
  typing::TypingProgram program;
  bool inline_program = !p.program.empty();
  if (inline_program) {
    graph::LabelInterner labels = g.labels();
    SCHEMEX_ASSIGN_OR_RETURN(program,
                             typing::ReadTypingProgram(p.program, &labels));
  } else {
    if (snapshot->program.NumTypes() == 0) {
      return util::Status::FailedPrecondition(
          "workspace has no schema; pass \"program\" or run extract");
    }
    program = snapshot->program;
  }

  typing::GfpStats gfp_stats;
  SCHEMEX_ASSIGN_OR_RETURN(typing::Extents extents,
                           typing::ComputeGfp(program, g, &gfp_stats));

  std::vector<Value> types;
  size_t nonempty = 0;
  for (size_t t = 0; t < extents.NumTypes(); ++t) {
    size_t count = extents.per_type[t].Count();
    if (count > 0) ++nonempty;
    std::map<std::string, Value> tf;
    tf["name"] = Value::String(program.type(static_cast<typing::TypeId>(t)).name);
    tf["extent"] = JsonUint(count);
    types.push_back(Value::Object(std::move(tf)));
  }

  std::map<std::string, Value> f;
  f["workspace"] = Value::String(p.workspace);
  f["num_types"] = JsonUint(program.NumTypes());
  f["nonempty_extents"] = JsonUint(nonempty);
  f["types"] = Value::Array(std::move(types));
  {
    std::map<std::string, Value> s;
    s["initial_candidates"] = JsonUint(gfp_stats.initial_candidates);
    s["rechecks"] = JsonUint(gfp_stats.rechecks);
    s["removed"] = JsonUint(gfp_stats.removed);
    f["gfp"] = Value::Object(std::move(s));
  }
  f["committed"] = Value::Bool(p.commit);

  if (p.commit) {
    // Shared graph/overlay; commit swaps only the schema + assignment
    // (the extraction cache and mutation log describe the graph, which
    // this verb never changes, so they carry over).
    catalog::Workspace next = *snapshot;
    next.program = std::move(program);
    next.assignment = typing::ExtentsToAssignment(extents);
    // An inline program may reference labels outside the graph's table;
    // Validate rejects that, so a bad commit fails before the swap.
    SCHEMEX_RETURN_IF_ERROR(next.Validate());
    PutWorkspace(p.workspace, std::move(next));
  }
  return Value::Object(std::move(f));
}

util::StatusOr<json::Value> Server::HandleQuery(const QueryParams& p) {
  SCHEMEX_ASSIGN_OR_RETURN(WorkspacePtr snapshot, GetWorkspace(p.workspace));
  graph::GraphView g = snapshot->View();

  SCHEMEX_ASSIGN_OR_RETURN(query::PathQuery q,
                           query::ParsePathQuery(p.query));

  query::QueryStats qstats;
  std::vector<graph::ObjectId> results;
  const bool guided = p.use_guide && snapshot->program.NumTypes() > 0;
  if (guided) {
    // The guide borrows the snapshot's program/assignment; the
    // shared_ptr keeps them alive for the whole evaluation.
    query::SchemaGuide guide(snapshot->program, snapshot->assignment);
    results = guide.Evaluate(g, q, &qstats);
  } else {
    results = query::EvaluatePathQuery(g, q, {}, &qstats);
  }

  std::vector<Value> objects;
  const size_t limit = static_cast<size_t>(p.limit);
  objects.reserve(std::min(results.size(), limit));
  for (size_t i = 0; i < results.size() && i < limit; ++i) {
    graph::ObjectId o = results[i];
    std::string_view name = g.Name(o);
    std::map<std::string, Value> of;
    of["id"] = JsonUint(o);
    of["name"] = Value::String(
        name.empty() ? util::StringPrintf("_o%u", o) : std::string(name));
    if (g.IsAtomic(o)) of["value"] = Value::String(std::string(g.Value(o)));
    objects.push_back(Value::Object(std::move(of)));
  }

  std::map<std::string, Value> f;
  f["workspace"] = Value::String(p.workspace);
  f["count"] = JsonUint(results.size());
  f["guided"] = Value::Bool(guided);
  f["objects"] = Value::Array(std::move(objects));
  {
    std::map<std::string, Value> s;
    s["edges_scanned"] = JsonUint(qstats.edges_scanned);
    s["objects_visited"] = JsonUint(qstats.objects_visited);
    f["stats"] = Value::Object(std::move(s));
  }
  return Value::Object(std::move(f));
}

util::StatusOr<json::Value> Server::HandleStats() {
  std::vector<Value> verbs;
  for (const VerbStats& s : metrics_.Snapshot()) {
    verbs.push_back(s.ToJson());
  }
  // Frozen graphs are shared across workspace generations (and possibly
  // across workspaces), so account each distinct instance once.
  size_t graph_bytes = 0;
  std::set<uint64_t> seen_graphs;
  std::vector<Value> delta_rows;
  {
    util::ReaderMutexLock lock(cache_mu_);
    for (const auto& [name, ws] : cache_) {
      if (ws->graph && seen_graphs.insert(ws->graph->id()).second) {
        graph_bytes += ws->graph->MemoryUsage();
      }
      // Per-workspace mutation state, including the §6 "re-extract now?"
      // signal, for workspaces with any delta activity.
      if (ws->generation > 0 || ws->overlay != nullptr ||
          !ws->mutation_log.empty()) {
        std::map<std::string, Value> r;
        r["workspace"] = Value::String(name);
        r["generation"] = JsonUint(ws->generation);
        r["pending_batches"] = JsonUint(ws->mutation_log.size());
        r["overlay"] = Value::Bool(ws->overlay != nullptr);
        r["misfit"] = MisfitFields(*ws);
        delta_rows.push_back(Value::Object(std::move(r)));
      }
    }
  }
  std::map<std::string, Value> f;
  f["verbs"] = Value::Array(std::move(verbs));
  if (!delta_rows.empty()) f["delta"] = Value::Array(std::move(delta_rows));
  // Transport-level counters (tcp.* when the TCP front end is attached).
  {
    std::map<std::string, Value> c;
    for (const auto& [name, value] : metrics_.CounterSnapshot()) {
      c[name] = JsonInt(value);
    }
    if (!c.empty()) f["counters"] = Value::Object(std::move(c));
  }
  f["workspaces"] = JsonUint(WorkspaceNames().size());
  f["distinct_graphs"] = JsonUint(seen_graphs.size());
  f["graph_bytes"] = JsonUint(graph_bytes);
  // Snapshot-backed graphs: bytes are file-backed (demand-paged), not
  // heap, so they are reported separately from graph_bytes.
  f["mapped_snapshots"] = JsonUint(snapshot::LiveMappings().size());
  f["mapped_bytes"] = JsonUint(snapshot::LiveMappedBytes());
  f["threads"] = JsonUint(pool_->num_threads());
  f["queue_depth"] = JsonUint(pool_->QueueDepth());
  return Value::Object(std::move(f));
}

util::StatusOr<json::Value> Server::HandleListWorkspaces() {
  std::vector<std::pair<std::string, WorkspacePtr>> entries;
  {
    util::ReaderMutexLock lock(cache_mu_);
    entries.assign(cache_.begin(), cache_.end());
  }
  std::vector<Value> out;
  out.reserve(entries.size());
  for (const auto& [name, ws] : entries) {
    out.push_back(WorkspaceSummary(name, *ws));
  }
  std::map<std::string, Value> f;
  f["workspaces"] = Value::Array(std::move(out));
  return Value::Object(std::move(f));
}

util::StatusOr<json::Value> Server::HandleApplyDelta(const ApplyDeltaParams& p) {
  SCHEMEX_ASSIGN_OR_RETURN(WorkspacePtr snapshot, GetWorkspace(p.workspace));

  // Mutate a private copy of the overlay (or a fresh one over the frozen
  // snapshot): the cached workspace stays untouched until the final swap,
  // so an op failing mid-batch leaves no trace.
  auto overlay = snapshot->overlay
                     ? std::make_shared<graph::DeltaOverlay>(*snapshot->overlay)
                     : std::make_shared<graph::DeltaOverlay>(snapshot->graph);

  std::vector<graph::ObjectId> new_ids;
  std::vector<graph::ObjectId> batch_touched;
  size_t objects_added = 0, links_added = 0, links_deleted = 0;
  auto touch = [&](uint64_t id) {
    if (id < overlay->NumObjects() &&
        overlay->IsComplex(static_cast<graph::ObjectId>(id))) {
      batch_touched.push_back(static_cast<graph::ObjectId>(id));
    }
  };
  for (size_t i = 0; i < p.ops.size(); ++i) {
    const DeltaOp& op = p.ops[i];
    util::Status s;
    if (op.op == "add_object") {
      graph::ObjectId id = op.kind == "atomic"
                               ? overlay->AddAtomic(op.value, op.name)
                               : overlay->AddComplex(op.name);
      new_ids.push_back(id);
      ++objects_added;
      if (op.kind != "atomic") batch_touched.push_back(id);
    } else if (op.op == "add_link") {
      s = overlay->AddEdge(static_cast<graph::ObjectId>(op.from),
                           static_cast<graph::ObjectId>(op.to),
                           std::string_view(op.label));
      if (s.ok()) {
        ++links_added;
        touch(op.from);
        touch(op.to);
      }
    } else {  // del_link (parse guarantees the op set)
      graph::LabelId label = overlay->labels().Find(op.label);
      if (label == graph::kInvalidLabel) {
        s = util::Status::NotFound("unknown label \"" + op.label + "\"");
      } else {
        s = overlay->RemoveEdge(static_cast<graph::ObjectId>(op.from),
                                static_cast<graph::ObjectId>(op.to), label);
      }
      if (s.ok()) {
        ++links_deleted;
        touch(op.from);
        touch(op.to);
      }
    }
    if (!s.ok()) {
      return util::Status(
          s.code(), util::StringPrintf("ops[%zu]: ", i) + s.message());
    }
  }
  std::sort(batch_touched.begin(), batch_touched.end());
  batch_touched.erase(std::unique(batch_touched.begin(), batch_touched.end()),
                      batch_touched.end());

  // Online typing (§6): each new complex object joins every type it
  // satisfies exactly; a misfit falls back to the nearest type by the
  // simple distance. Counters feed the retype recommendation.
  graph::GraphView view(*overlay);
  typing::TypeAssignment tau = snapshot->assignment;
  if (tau.NumObjects() != 0) tau.Resize(view.NumObjects());
  size_t arrivals = 0, exact = 0;
  if (snapshot->program.NumTypes() > 0 && tau.NumObjects() != 0) {
    for (graph::ObjectId id : new_ids) {
      if (view.IsAtomic(id)) continue;
      ++arrivals;
      bool fits = false;
      for (size_t t = 0; t < snapshot->program.NumTypes(); ++t) {
        typing::TypeId tid = static_cast<typing::TypeId>(t);
        if (typing::SatisfiesUnderAssignment(
                snapshot->program.type(tid).signature, view, tau, id)) {
          tau.Assign(id, tid);
          fits = true;
        }
      }
      if (fits) {
        ++exact;
        continue;
      }
      typing::TypeId nearest =
          typing::NearestType(snapshot->program, view, tau, id);
      if (nearest != typing::kInvalidType) tau.Assign(id, nearest);
    }
  }

  catalog::Workspace next = *snapshot;
  next.assignment = std::move(tau);
  next.generation = snapshot->generation + 1;
  if (p.compact) {
    next.graph = overlay->Compact();
    next.overlay = nullptr;
  } else {
    next.overlay = overlay;
  }
  catalog::MutationRecord rec;
  rec.generation = next.generation;
  rec.touched_complex = batch_touched;
  rec.objects_added = objects_added;
  rec.links_added = links_added;
  rec.links_deleted = links_deleted;
  next.mutation_log.push_back(std::move(rec));
  next.delta_arrivals += arrivals;
  next.delta_exact += exact;
  SCHEMEX_RETURN_IF_ERROR(next.Validate());

  metrics_.AddCounter("delta.batches", 1);
  metrics_.AddCounter("delta.objects_added",
                      static_cast<int64_t>(objects_added));
  metrics_.AddCounter("delta.links_added", static_cast<int64_t>(links_added));
  metrics_.AddCounter("delta.links_deleted",
                      static_cast<int64_t>(links_deleted));
  if (p.compact) metrics_.AddCounter("delta.compactions", 1);

  std::map<std::string, Value> f;
  f["workspace"] = Value::String(p.workspace);
  f["generation"] = JsonUint(next.generation);
  {
    std::vector<Value> ids;
    ids.reserve(new_ids.size());
    for (graph::ObjectId id : new_ids) ids.push_back(JsonUint(id));
    f["new_ids"] = Value::Array(std::move(ids));
  }
  f["objects_added"] = JsonUint(objects_added);
  f["links_added"] = JsonUint(links_added);
  f["links_deleted"] = JsonUint(links_deleted);
  f["touched_complex"] = JsonUint(batch_touched.size());
  f["compacted"] = Value::Bool(p.compact);
  f["misfit"] = MisfitFields(next);

  PutWorkspace(p.workspace, std::move(next));
  return Value::Object(std::move(f));
}

util::StatusOr<json::Value> Server::HandleReExtract(
    const ReExtractParams& p, Clock::time_point deadline) {
  SCHEMEX_ASSIGN_OR_RETURN(WorkspacePtr snapshot, GetWorkspace(p.workspace));
  if (snapshot->extraction_cache == nullptr) {
    return util::Status::FailedPrecondition(
        "workspace \"" + p.workspace +
        "\" has no extraction cache; run extract first");
  }
  const extract::ExtractionCache& cache = *snapshot->extraction_cache;
  graph::GraphView g = snapshot->View();

  // Dirty seed: every complex object any batch since the last extraction
  // touched. The log (not the overlay's cumulative set) is what matters —
  // a compacted workspace has no overlay but still owes these objects a
  // re-check, and an extract resets the log.
  std::vector<graph::ObjectId> touched;
  for (const catalog::MutationRecord& r : snapshot->mutation_log) {
    touched.insert(touched.end(), r.touched_complex.begin(),
                   r.touched_complex.end());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  const size_t parallelism = p.parallelism != 0
                                 ? static_cast<size_t>(p.parallelism)
                                 : options_.default_parallelism;
  extract::IncrementalOptions inc;
  inc.max_dirty_fraction = p.max_dirty_fraction;
  extract::ReExtractStats rstats;
  SCHEMEX_ASSIGN_OR_RETURN(
      extract::ExtractionResult result,
      extract::ReExtract(g, cache, touched, static_cast<size_t>(p.k),
                         parallelism, DeadlineHook(deadline), inc, &rstats));
  const size_t chosen_k =
      p.k != 0 ? static_cast<size_t>(p.k) : cache.chosen_k;

  // The options the run effectively replayed, for the fresh cache.
  extract::ExtractorOptions opt;
  opt.stage1 = cache.options.stage1;
  opt.decompose_roles = cache.options.decompose_roles;
  opt.psi = cache.options.psi;
  opt.enable_empty_type = cache.options.enable_empty_type;
  opt.recast = cache.options.recast;
  opt.target_num_types = chosen_k;

  catalog::Workspace next = *snapshot;
  next.program = result.final_program;
  next.assignment = result.recast.assignment;
  next.extraction_cache = std::make_shared<const extract::ExtractionCache>(
      extract::MakeExtractionCache(result, opt));
  next.mutation_log.clear();
  next.delta_arrivals = 0;
  next.delta_exact = 0;
  SCHEMEX_RETURN_IF_ERROR(next.Validate());

  if (!p.save_dir.empty()) {
    SCHEMEX_RETURN_IF_ERROR(catalog::SaveWorkspace(next, p.save_dir));
  }

  metrics_.AddCounter("delta.re_extracts", 1);
  if (rstats.incremental_stage1) {
    metrics_.AddCounter("delta.incremental_stage1", 1);
  }
  if (rstats.stage2_reused) metrics_.AddCounter("delta.stage2_reused", 1);

  std::map<std::string, Value> f;
  f["workspace"] = Value::String(p.workspace);
  f["k"] = JsonUint(chosen_k);
  f["generation"] = JsonUint(next.generation);
  f["num_perfect_types"] = JsonUint(result.num_perfect_types);
  f["num_final_types"] = JsonUint(result.num_final_types);
  {
    std::map<std::string, Value> d;
    d["excess"] = JsonUint(result.defect.excess);
    d["deficit"] = JsonUint(result.defect.deficit);
    d["defect"] = JsonUint(result.defect.defect());
    f["defect"] = Value::Object(std::move(d));
  }
  {
    std::map<std::string, Value> r;
    r["exact"] = JsonUint(result.recast.num_exact);
    r["fallback"] = JsonUint(result.recast.num_fallback);
    r["untyped"] = JsonUint(result.recast.num_untyped);
    f["recast"] = Value::Object(std::move(r));
  }
  {
    std::map<std::string, Value> t;
    t["stage1_ms"] = Value::Number(result.timings.stage1_ms);
    t["cluster_ms"] = Value::Number(result.timings.cluster_ms);
    t["recast_ms"] = Value::Number(result.timings.recast_ms);
    t["total_ms"] = Value::Number(result.timings.total_ms);
    f["timings"] = Value::Object(std::move(t));
    metrics_.Record("extract.stage1", result.timings.stage1_ms,
                    /*ok=*/true, /*timeout=*/false);
    metrics_.Record("extract.cluster", result.timings.cluster_ms,
                    /*ok=*/true, /*timeout=*/false);
    metrics_.Record("extract.recast", result.timings.recast_ms,
                    /*ok=*/true, /*timeout=*/false);
  }
  {
    std::map<std::string, Value> i;
    i["stage1_incremental"] = Value::Bool(rstats.incremental_stage1);
    if (!rstats.stage1_fallback_reason.empty()) {
      i["stage1_fallback_reason"] =
          Value::String(rstats.stage1_fallback_reason);
    }
    i["dirty_seed"] = JsonUint(rstats.dirty_seed);
    i["dirty_peak"] = JsonUint(rstats.dirty_peak);
    i["rounds"] = JsonUint(rstats.rounds);
    i["stage2_reused"] = Value::Bool(rstats.stage2_reused);
    f["incremental"] = Value::Object(std::move(i));
  }
  if (!p.save_dir.empty()) f["saved_to"] = Value::String(p.save_dir);

  PutWorkspace(p.workspace, std::move(next));
  return Value::Object(std::move(f));
}

}  // namespace schemex::service
