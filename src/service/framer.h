#ifndef SCHEMEX_SERVICE_FRAMER_H_
#define SCHEMEX_SERVICE_FRAMER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/statusor.h"

namespace schemex::service {

struct FramerOptions {
  /// Maximum bytes in one request line (the newline excluded). A longer
  /// line is rejected with kInvalidArgument and the framer resynchronizes
  /// at the next newline, so one oversized request cannot wedge or
  /// memory-exhaust the connection. 0 = unlimited.
  size_t max_line_bytes = 1 << 20;
};

/// Incremental NDJSON line framing, shared by the stdio and TCP front
/// ends so both paths agree on the wire format's edge cases:
///
///  * A trailing line without a final newline at EOF is still framed
///    (after Finish()), never silently dropped.
///  * A line with an embedded NUL is rejected with kInvalidArgument —
///    NUL cannot appear in JSON text and historically truncated the line
///    in C-string handling downstream.
///  * Blank lines (only ASCII whitespace, e.g. keep-alive newlines or a
///    CRLF tail) are skipped for free.
///  * An oversized line yields exactly one kInvalidArgument and the
///    framer discards input until the next newline; framing then resumes.
///
/// Usage: Feed() raw bytes as they arrive, then drain with Next() until
/// it returns false. At end of input call Finish() and drain once more.
class Framer {
 public:
  explicit Framer(const FramerOptions& options = {});

  /// Appends raw bytes to the frame buffer.
  void Feed(std::string_view bytes);

  /// Pops the next complete line into `*out` — either a framed line or a
  /// kInvalidArgument status (oversized / embedded NUL). Returns false
  /// when no complete line is buffered yet.
  bool Next(util::StatusOr<std::string>* out);

  /// Signals end of input: a buffered unterminated final line becomes
  /// available to Next(). Feed() after Finish() is a no-op.
  void Finish();

  bool finished() const { return finished_; }

  /// Bytes buffered but not yet framed into a line.
  size_t buffered_bytes() const { return buf_.size() - start_; }

  /// Lines handed out by Next() so far (errors included).
  size_t lines_framed() const { return lines_framed_; }

 private:
  /// Validates one raw line (CR stripped) and fills `*out`. Returns false
  /// for a blank line, which the caller skips.
  bool Emit(std::string line, util::StatusOr<std::string>* out);

  FramerOptions options_;
  std::string buf_;
  size_t start_ = 0;      ///< offset of the current line's first byte
  size_t scan_ = 0;       ///< offset up to which buf_ was scanned for '\n'
  bool discarding_ = false;  ///< inside an oversized line, waiting for '\n'
  bool finished_ = false;
  size_t lines_framed_ = 0;
};

}  // namespace schemex::service

#endif  // SCHEMEX_SERVICE_FRAMER_H_
