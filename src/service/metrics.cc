#include "service/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace schemex::service {

namespace {

// Bucket i covers (BucketUpperMs(i-1), BucketUpperMs(i)]. The ladder
// starts at 1us and grows by 1.6x per step; 64 steps reach ~10^10 ms,
// far past any plausible request.
constexpr double kFirstUpperMs = 1e-3;
constexpr double kGrowth = 1.6;

size_t BucketIndex(double latency_ms) {
  if (latency_ms <= kFirstUpperMs) return 0;
  double upper = kFirstUpperMs;
  for (size_t i = 1; i < MetricsRegistry::kNumBuckets; ++i) {
    upper *= kGrowth;
    if (latency_ms <= upper) return i;
  }
  return MetricsRegistry::kNumBuckets - 1;
}

double PercentileFromBuckets(
    const std::array<uint64_t, MetricsRegistry::kNumBuckets>& buckets,
    uint64_t count, double q) {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return MetricsRegistry::BucketUpperMs(i);
  }
  return MetricsRegistry::BucketUpperMs(buckets.size() - 1);
}

}  // namespace

double MetricsRegistry::BucketUpperMs(size_t i) {
  double upper = kFirstUpperMs;
  for (size_t k = 0; k < i; ++k) upper *= kGrowth;
  return upper;
}

void MetricsRegistry::Record(const std::string& verb, double latency_ms,
                             bool ok, bool timeout) {
  util::MutexLock lock(mu_);
  auto it = std::find_if(recorders_.begin(), recorders_.end(),
                         [&](const auto& p) { return p.first == verb; });
  if (it == recorders_.end()) {
    recorders_.emplace_back(verb, Recorder{});
    it = recorders_.end() - 1;
  }
  Recorder& r = it->second;
  ++r.count;
  if (!ok) ++r.errors;
  if (timeout) ++r.timeouts;
  r.total_ms += latency_ms;
  r.max_ms = std::max(r.max_ms, latency_ms);
  ++r.buckets[BucketIndex(latency_ms)];
}

void MetricsRegistry::AddCounter(const std::string& name, int64_t delta) {
  util::MutexLock lock(mu_);
  auto it = std::find_if(counters_.begin(), counters_.end(),
                         [&](const auto& p) { return p.first == name; });
  if (it == counters_.end()) {
    counters_.emplace_back(name, delta);
  } else {
    it->second += delta;
  }
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterSnapshot()
    const {
  std::vector<std::pair<std::string, int64_t>> out;
  {
    util::MutexLock lock(mu_);
    out = counters_;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VerbStats> MetricsRegistry::Snapshot() const {
  std::vector<VerbStats> out;
  {
    util::MutexLock lock(mu_);
    out.reserve(recorders_.size());
    for (const auto& [verb, r] : recorders_) {
      VerbStats s;
      s.verb = verb;
      s.count = r.count;
      s.errors = r.errors;
      s.timeouts = r.timeouts;
      s.total_ms = r.total_ms;
      s.max_ms = r.max_ms;
      // A percentile is a bucket's upper bound, which can overshoot the
      // true maximum on sparse data — clamp so p50 <= max always holds.
      s.p50_ms =
          std::min(PercentileFromBuckets(r.buckets, r.count, 0.50), r.max_ms);
      s.p95_ms =
          std::min(PercentileFromBuckets(r.buckets, r.count, 0.95), r.max_ms);
      s.p99_ms =
          std::min(PercentileFromBuckets(r.buckets, r.count, 0.99), r.max_ms);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const VerbStats& a, const VerbStats& b) { return a.verb < b.verb; });
  return out;
}

json::Value VerbStats::ToJson() const {
  std::map<std::string, json::Value> f;
  f["verb"] = json::Value::String(verb);
  f["count"] = json::Value::Number(static_cast<double>(count),
                                   std::to_string(count));
  f["errors"] = json::Value::Number(static_cast<double>(errors),
                                    std::to_string(errors));
  f["timeouts"] = json::Value::Number(static_cast<double>(timeouts),
                                      std::to_string(timeouts));
  f["total_ms"] = json::Value::Number(total_ms);
  f["p50_ms"] = json::Value::Number(p50_ms);
  f["p95_ms"] = json::Value::Number(p95_ms);
  f["p99_ms"] = json::Value::Number(p99_ms);
  f["max_ms"] = json::Value::Number(max_ms);
  return json::Value::Object(std::move(f));
}

}  // namespace schemex::service
