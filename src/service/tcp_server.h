#ifndef SCHEMEX_SERVICE_TCP_SERVER_H_
#define SCHEMEX_SERVICE_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/server.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace schemex::service {

struct TcpServerOptions {
  /// Address to bind; loopback by default so a test or dev instance is
  /// not reachable from off-host unless asked for ("0.0.0.0").
  std::string bind_address = "127.0.0.1";
  /// Port to listen on; 0 picks an ephemeral port (read it back via
  /// port(), e.g. for tests).
  uint16_t port = 0;
  int backlog = 128;
  /// Connections beyond this are accepted and immediately closed, so the
  /// kernel backlog cannot silently park unbounded clients.
  size_t max_connections = 1024;
  /// Per-line cap handed to the shared Framer (0 = unlimited).
  size_t max_line_bytes = 1 << 20;
  /// Close a connection with no traffic and no in-flight requests after
  /// this long (0 = never). Doubles as the read timeout: a client that
  /// stalls mid-line is dropped once the budget elapses.
  double idle_timeout_s = 300.0;
  /// Graceful-shutdown budget: how long Shutdown() lets in-flight
  /// requests finish and responses flush before force-closing.
  double drain_timeout_s = 10.0;
};

/// TCP front end for the schemexd dispatcher.
///
/// One background thread runs a poll()/accept() loop over non-blocking
/// sockets. Each connection owns a `Framer` (the same NDJSON framing the
/// stdio path uses); complete lines are parsed and dispatched onto the
/// shared `Server` via HandleAsync, so the worker pool, the
/// workspace-snapshot cache, per-request deadlines, and FrozenGraph
/// sharing all behave exactly as they do over stdin/stdout. Responses
/// come back in completion order per connection — clients correlate by
/// "id" — and connections never see each other's responses.
///
/// All socket lifecycle stays on the poll thread; pool workers only
/// append serialized responses to a per-connection outbox (mutex-guarded)
/// and wake the poll thread through a self-pipe. A connection that dies
/// with requests in flight simply drops their late responses.
///
/// Transport counters (tcp.connections_accepted / _open / _refused,
/// tcp.bytes_in / _out, tcp.lines_rejected, tcp.responses_dropped) are
/// folded into the server's MetricsRegistry and show up under the stats
/// verb's "counters" object.
///
/// Shutdown() (also run by the destructor) drains gracefully: the
/// listener closes, reads stop, in-flight requests run to completion and
/// their responses are flushed, bounded by `drain_timeout_s`.
class TcpServer {
 public:
  /// `server` must outlive this object.
  TcpServer(Server* server, const TcpServerOptions& options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the poll thread. Fails (without leaking
  /// fds) if the address cannot be bound.
  util::Status Start();

  /// The actual bound port (after Start); useful with `port = 0`.
  uint16_t port() const { return port_; }

  /// True between a successful Start() and Shutdown().
  bool running() const { return running_.load(); }

  /// Connections currently open (poll-thread snapshot, approximate).
  size_t open_connections() const { return open_connections_.load(); }

  /// Graceful drain, then join the poll thread. Idempotent and safe to
  /// call concurrently from any thread except the poll thread itself;
  /// every caller returns only after the poll thread has exited.
  void Shutdown() SCHEMEX_EXCLUDES(join_mu_);

 private:
  struct Connection;
  /// State a pool-worker callback may outlive the TcpServer through: the
  /// wake pipe's write end, invalidated under the mutex at shutdown.
  struct WakeHandle;

  void Loop();
  void AcceptNew();
  /// Reads everything available; frames, parses, and dispatches lines.
  void ReadFrom(const std::shared_ptr<Connection>& conn);
  void DispatchLines(const std::shared_ptr<Connection>& conn);
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       std::string line);
  /// Flushes as much of the outbox as the socket accepts right now.
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void Wake();

  Server* server_;
  TcpServerOptions options_;
  MetricsRegistry* metrics_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  std::shared_ptr<WakeHandle> wake_;
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<size_t> open_connections_{0};

  // Owned and touched by the poll thread only.
  std::vector<std::shared_ptr<Connection>> conns_;

  /// Serializes concurrent Shutdown callers around the join, so the
  /// loser never races the winner on loop_thread_.
  util::Mutex join_mu_;
  std::thread loop_thread_ SCHEMEX_GUARDED_BY(join_mu_);
};

}  // namespace schemex::service

#endif  // SCHEMEX_SERVICE_TCP_SERVER_H_
