#ifndef SCHEMEX_XML_XML_H_
#define SCHEMEX_XML_XML_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace schemex::xml {

/// A parsed XML element: tag, attributes, child elements, and the
/// concatenated (trimmed) text content between them. The parser is a
/// deliberately small subset of XML 1.0: elements, attributes
/// (single/double quoted), text, comments, processing instructions and
/// the <?xml?> declaration (both skipped), CDATA, and the five standard
/// entities. No DTDs, no namespaces semantics (prefixes kept verbatim).
struct Element {
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attributes;  // in order
  std::vector<std::unique_ptr<Element>> children;
  std::string text;  ///< concatenated trimmed text runs

  /// First attribute value by name, or nullptr.
  const std::string* FindAttribute(std::string_view name) const;
};

/// Parses a document and returns its root element. Returns ParseError
/// with an offset for malformed input (mismatched tags, bad entities,
/// stray content after the root, ...).
util::StatusOr<std::unique_ptr<Element>> ParseXml(std::string_view text);

}  // namespace schemex::xml

#endif  // SCHEMEX_XML_XML_H_
