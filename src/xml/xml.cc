#include "xml/xml.h"

#include <cctype>

#include "util/string_util.h"

namespace schemex::xml {

const std::string* Element::FindAttribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::StatusOr<std::unique_ptr<Element>> Run() {
    SkipMisc();
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Error("expected root element");
    }
    SCHEMEX_ASSIGN_OR_RETURN(std::unique_ptr<Element> root, ParseElement());
    SkipMisc();
    if (pos_ != text_.size()) return Error("content after root element");
    return root;
  }

 private:
  util::Status Error(const char* why) const {
    return util::Status::ParseError(
        util::StringPrintf("xml offset %zu: %s", pos_, why));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool StartsWithHere(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }

  /// Skips whitespace, comments, PIs, and the xml declaration.
  void SkipMisc() {
    for (;;) {
      SkipWs();
      if (StartsWithHere("<!--")) {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      if (StartsWithHere("<?")) {
        size_t end = text_.find("?>", pos_ + 2);
        pos_ = end == std::string_view::npos ? text_.size() : end + 2;
        continue;
      }
      return;
    }
  }

  bool IsNameChar(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  util::StatusOr<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  util::StatusOr<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return Error("unterminated entity");
      std::string_view name = raw.substr(i + 1, semi - i - 1);
      if (name == "lt") {
        out += '<';
      } else if (name == "gt") {
        out += '>';
      } else if (name == "amp") {
        out += '&';
      } else if (name == "quot") {
        out += '"';
      } else if (name == "apos") {
        out += '\'';
      } else if (!name.empty() && name[0] == '#') {
        uint64_t code = 0;
        bool ok = name.size() > 1 && name[1] == 'x'
                      ? !!sscanf(std::string(name.substr(2)).c_str(), "%llx",
                                 reinterpret_cast<unsigned long long*>(&code))
                      : util::ParseUint64(name.substr(1), &code);
        if (!ok || code == 0 || code > 0x10FFFF) return Error("bad char ref");
        // Minimal UTF-8 encode.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (code >> 18));
          out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
      } else {
        return Error("unknown entity");
      }
      i = semi;
    }
    return out;
  }

  util::StatusOr<std::unique_ptr<Element>> ParseElement() {
    ++pos_;  // '<'
    auto elem = std::make_unique<Element>();
    SCHEMEX_ASSIGN_OR_RETURN(elem->tag, ParseName());
    // Attributes.
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated tag");
      if (text_[pos_] == '>' || StartsWithHere("/>")) break;
      SCHEMEX_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Error("expected '=' in attribute");
      }
      ++pos_;
      SkipWs();
      if (pos_ >= text_.size() ||
          (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = text_[pos_++];
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated attribute");
      SCHEMEX_ASSIGN_OR_RETURN(
          std::string value,
          DecodeEntities(text_.substr(start, pos_ - start)));
      ++pos_;
      elem->attributes.emplace_back(std::move(key), std::move(value));
    }
    if (StartsWithHere("/>")) {
      pos_ += 2;
      return elem;
    }
    ++pos_;  // '>'

    // Content. Plain text runs are entity-decoded; CDATA is verbatim.
    std::string content;
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated element");
      if (StartsWithHere("<![CDATA[")) {
        size_t end = text_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        content.append(text_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        continue;
      }
      if (StartsWithHere("<!--")) {
        size_t end = text_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Error("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (StartsWithHere("</")) {
        pos_ += 2;
        SCHEMEX_ASSIGN_OR_RETURN(std::string closing, ParseName());
        if (closing != elem->tag) return Error("mismatched closing tag");
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Error("expected '>' after closing tag");
        }
        ++pos_;
        elem->text = std::string(util::Trim(content));
        return elem;
      }
      if (text_[pos_] == '<') {
        SCHEMEX_ASSIGN_OR_RETURN(std::unique_ptr<Element> child,
                                 ParseElement());
        elem->children.push_back(std::move(child));
        continue;
      }
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
      SCHEMEX_ASSIGN_OR_RETURN(
          std::string decoded,
          DecodeEntities(text_.substr(start, pos_ - start)));
      content += decoded;
    }
  }

  // OWNER: the Parse() argument; the parser is stack-local to one call
  // and copies out names, attributes, and decoded text.
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

util::StatusOr<std::unique_ptr<Element>> ParseXml(std::string_view text) {
  Parser p(text);
  return p.Run();
}

}  // namespace schemex::xml
