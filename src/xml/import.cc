#include "xml/import.h"

namespace schemex::xml {

namespace {

class Importer {
 public:
  explicit Importer(const XmlImportOptions& options) : options_(options) {}

  graph::DataGraph Take() && { return std::move(g_); }

  /// Imports `e` and returns its node — atomic when it is a collapsible
  /// text leaf, complex otherwise.
  graph::ObjectId Import(const Element& e) {
    if (options_.collapse_text_leaves && e.children.empty() &&
        e.attributes.empty() && !e.text.empty()) {
      return g_.AddAtomic(e.text, e.tag);
    }
    graph::ObjectId id = g_.AddComplex(e.tag);
    for (const auto& [key, value] : e.attributes) {
      g_.MergeEdge(id, g_.AddAtomic(value), key);
    }
    for (const auto& child : e.children) {
      g_.MergeEdge(id, Import(*child), child->tag);
    }
    if (!e.text.empty()) {
      g_.MergeEdge(id, g_.AddAtomic(e.text),
                    std::string(options_.text_label));
    }
    return id;
  }

 private:
  XmlImportOptions options_;
  graph::DataGraph g_;
};

}  // namespace

graph::DataGraph ImportElement(const Element& root,
                               const XmlImportOptions& options) {
  Importer importer(options);
  importer.Import(root);
  return std::move(importer).Take();
}

util::StatusOr<graph::DataGraph> ImportXml(std::string_view text,
                                           const XmlImportOptions& options) {
  SCHEMEX_ASSIGN_OR_RETURN(std::unique_ptr<Element> root, ParseXml(text));
  return ImportElement(*root, options);
}

}  // namespace schemex::xml
