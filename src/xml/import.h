#ifndef SCHEMEX_XML_IMPORT_H_
#define SCHEMEX_XML_IMPORT_H_

#include <string_view>

#include "graph/data_graph.h"
#include "util/statusor.h"
#include "xml/xml.h"

namespace schemex::xml {

/// Maps an XML document into the paper's data model, OEM-style (the
/// paper's semistructured sources were exactly this kind of tagged web
/// data):
///  * an element becomes a complex object named after its tag;
///  * each attribute k="v" becomes an edge labeled k to an atomic v;
///  * each child element <t> becomes an edge labeled t to its object;
///  * non-empty text content becomes an edge (labeled `text_label`) to
///    an atomic holding the text — except for *leaf* elements with text
///    and no attributes/children, which collapse directly into a single
///    atomic object (so <name>Gates</name> is one atomic reached via a
///    "name" edge, matching the paper's modeling of record fields).
struct XmlImportOptions {
  // OWNER: caller (the default binds a string literal); must outlive the
  // Import* call, which interns the label before returning.
  std::string_view text_label = "text";
  bool collapse_text_leaves = true;
};

graph::DataGraph ImportElement(const Element& root,
                               const XmlImportOptions& options = {});

/// Parses and imports in one step.
util::StatusOr<graph::DataGraph> ImportXml(
    std::string_view text, const XmlImportOptions& options = {});

}  // namespace schemex::xml

#endif  // SCHEMEX_XML_IMPORT_H_
