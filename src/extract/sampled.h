#ifndef SCHEMEX_EXTRACT_SAMPLED_H_
#define SCHEMEX_EXTRACT_SAMPLED_H_

#include <cstdint>

#include "extract/extractor.h"
#include "graph/graph_view.h"
#include "util/statusor.h"

namespace schemex::extract {

/// Sampling-based extraction for databases too large (or too irregular)
/// to cluster whole: extract the schema from a uniform sample of complex
/// objects, then recast the FULL database into it (§3's "process this
/// large collection in an effective way" via the natural estimator —
/// the approximate typing of a sample approximates the typing of the
/// population because type frequencies concentrate).
struct SampleOptions {
  /// Number of complex objects to sample (clamped to the population).
  size_t sample_complex_objects = 2000;
  uint64_t seed = 1;
  /// Pipeline configuration applied to the sample.
  ExtractorOptions extract;
};

struct SampledExtractionResult {
  /// Program extracted from the sample (label ids valid for the full
  /// graph — the sample shares the original label table).
  typing::TypingProgram program;
  /// Stage 3 over the FULL database (exact GFP types + nearest-type
  /// fallback; no homes, since homes only exist for sampled objects).
  typing::RecastResult recast;
  typing::DefectReport defect;  ///< measured on the full database
  size_t sample_complex = 0;
  size_t sample_edges = 0;
  size_t sample_perfect_types = 0;
};

/// Runs the sampled pipeline. The sample keeps every edge between two
/// sampled complex objects plus every sampled-object -> atomic edge.
util::StatusOr<SampledExtractionResult> ExtractFromSample(
    graph::GraphView g, const SampleOptions& options);

}  // namespace schemex::extract

#endif  // SCHEMEX_EXTRACT_SAMPLED_H_
