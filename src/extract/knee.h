#ifndef SCHEMEX_EXTRACT_KNEE_H_
#define SCHEMEX_EXTRACT_KNEE_H_

#include <cstddef>
#include <vector>

#include "extract/extractor.h"

namespace schemex::extract {

/// Knee selection over a sensitivity sweep — §7.2/§8's "optimal number
/// (or a small range) of types": "the algorithm can find the optimal
/// trade-off point and suggest a 'natural' typing (or a small set)".
struct KneeOptions {
  /// Only consider typings with at most this many types (the regime
  /// where a typing is usable as a schema). 0 = no cap.
  size_t max_types = 20;

  /// Accept any k whose defect is within this factor of the best defect
  /// in range, then prefer the smallest such k (smaller schema at nearly
  /// the same quality).
  double tolerance = 1.25;
};

struct Knee {
  size_t k = 0;
  size_t defect = 0;
  /// The best (minimum) defect seen within the considered range — the
  /// anchor the tolerance was applied to.
  size_t best_defect_in_range = 0;
};

/// Finds the knee. Returns k = 0 on an empty sweep. Points may be in any
/// order (SensitivitySweep emits them high-k to low-k).
Knee FindKnee(const std::vector<SensitivityPoint>& points,
              const KneeOptions& options = {});

/// The §8 "small set" variant: all k (ascending) within tolerance of the
/// best defect in range — the natural typings worth offering a user.
std::vector<size_t> NaturalTypeCounts(
    const std::vector<SensitivityPoint>& points,
    const KneeOptions& options = {});

}  // namespace schemex::extract

#endif  // SCHEMEX_EXTRACT_KNEE_H_
