#ifndef SCHEMEX_EXTRACT_PIPELINE_INTERNAL_H_
#define SCHEMEX_EXTRACT_PIPELINE_INTERNAL_H_

#include <functional>
#include <vector>

#include "extract/extractor.h"

/// Pipeline stages shared by SchemaExtractor::Run, SensitivitySweep and
/// the incremental re-extractor (incremental_extract.cc). The
/// incremental path's bit-identity contract — its output must equal a
/// cold extraction of the same graph — holds by construction because
/// both paths execute THESE functions for Stages 2 and 3; only Stage 1
/// differs (incremental re-refinement vs. a cold run, themselves pinned
/// identical by typing/incremental_refine.h).
namespace schemex::extract::internal {

/// Effective worker count. 0 (auto) takes the hardware concurrency,
/// moderated so each worker gets a few thousand complex objects.
size_t ResolveParallelism(size_t requested, size_t num_complex);

/// Stage 1 with the options' algorithm, parallelism, and cancellation.
/// parallelism == 1 routes refinement to the sequential reference
/// implementation; every other setting uses the hash-refinement engine.
util::StatusOr<typing::PerfectTypingResult> RunStage1(
    const ExtractorOptions& options, graph::GraphView g,
    util::ThreadPool* pool, size_t threads);

/// Stage-1 (or roles) home sets + weights for clustering.
struct PreClusterState {
  typing::TypingProgram program;
  std::vector<std::vector<typing::TypeId>> homes;  // per object, program ids
  std::vector<uint32_t> weights;  // per type: #objects with home
};

PreClusterState PrepareForClustering(const ExtractorOptions& options,
                                     const typing::PerfectTypingResult& perfect,
                                     typing::RoleDecomposition* roles,
                                     bool* roles_applied);

/// Applies a stage1->final type map to home sets, dropping empty-type
/// entries and deduplicating.
std::vector<std::vector<typing::TypeId>> MapHomesThrough(
    const std::vector<std::vector<typing::TypeId>>& homes,
    const std::vector<typing::TypeId>& map);

/// Polls an optional cancellation hook; stages run only between OK polls.
util::Status PollCancel(const std::function<util::Status()>& check_cancel);

/// A cached Stage-2 run offered to FinishExtraction: the clustering
/// output is adopted verbatim iff the fresh Stage-2 inputs match the
/// cached ones exactly (program and weights compared element-wise; the
/// hot case is an unchanged perfect typing after a type-preserving
/// delta). The CALLER is responsible for only offering a cache whose
/// ClusteringOptions-affecting fields (psi, target_num_types,
/// enable_empty_type) match `options` — FinishExtraction cannot see the
/// cached run's options.
struct Stage2Reuse {
  const typing::TypingProgram* program = nullptr;   // cached stage-2 input
  const std::vector<uint32_t>* weights = nullptr;   // cached input weights
  const cluster::ClusteringResult* clustering = nullptr;  // cached output
};

/// Stages 2 + 3 + defect over a finished Stage-1 result: role
/// decomposition, clustering (or the reuse short-circuit), recast and
/// defect measurement. Fills every ExtractionResult field except
/// timings.stage1_ms / timings.total_ms, which belong to the caller.
/// `stage2_reused` (optional) reports whether `reuse` was adopted.
util::StatusOr<ExtractionResult> FinishExtraction(
    const ExtractorOptions& options, graph::GraphView g,
    typing::PerfectTypingResult perfect, const typing::ExecOptions& exec,
    const Stage2Reuse* reuse = nullptr, bool* stage2_reused = nullptr);

}  // namespace schemex::extract::internal

#endif  // SCHEMEX_EXTRACT_PIPELINE_INTERNAL_H_
