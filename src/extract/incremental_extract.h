#ifndef SCHEMEX_EXTRACT_INCREMENTAL_EXTRACT_H_
#define SCHEMEX_EXTRACT_INCREMENTAL_EXTRACT_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "extract/extractor.h"

namespace schemex::extract {

/// The option fingerprint a cache was produced under. ReExtract rebuilds
/// its ExtractorOptions from this, so the incremental run replays the
/// cached run's configuration exactly (the bit-identity contract is
/// against a cold extraction *with the same options*).
struct ExtractionCacheOptions {
  ExtractorOptions::Stage1Algorithm stage1 =
      ExtractorOptions::Stage1Algorithm::kRefinement;
  bool decompose_roles = false;
  cluster::PsiKind psi = cluster::PsiKind::kPsi2;
  bool enable_empty_type = true;
  typing::RecastOptions recast;
};

/// Everything a finished extraction leaves behind for the next
/// incremental one: the Stage-1 partition (the seed of incremental
/// re-refinement) and, when clustering ran without role decomposition,
/// the exact Stage-2 inputs and output so a delta that leaves the
/// perfect typing unchanged skips Stage 2 entirely.
struct ExtractionCache {
  typing::PerfectTypingResult perfect;

  /// Stage-2 reuse state; meaningful only when clustering_cached.
  /// stage2_program/stage2_weights are the inputs ClusterTypes saw
  /// (== perfect program/weights when roles are off), clustering its
  /// output.
  bool clustering_cached = false;
  typing::TypingProgram stage2_program;
  std::vector<uint32_t> stage2_weights;
  cluster::ClusteringResult clustering;

  /// The k the cached run used (options.target_num_types, possibly
  /// knee-selected by the service); re_extract without an explicit k
  /// reuses it.
  size_t chosen_k = 0;

  ExtractionCacheOptions options;
};

/// Captures the reusable state of a finished `Run(options)` extraction.
/// Role-decomposed runs cache only the Stage-1 result (their Stage-2
/// inputs are the role program, which the result does not carry in
/// reusable form), so their re-extractions re-cluster cold.
ExtractionCache MakeExtractionCache(const ExtractionResult& result,
                                    const ExtractorOptions& options);

/// Knobs for the incremental Stage 1 inside ReExtract (forwarded to
/// typing::IncrementalRefine).
struct IncrementalOptions {
  double max_dirty_fraction = 0.25;
  size_t max_rounds = 64;
};

/// What the incremental machinery actually did, for responses/benches.
struct ReExtractStats {
  /// Stage 1 ran incrementally (no fallback). False means the cold
  /// refinement ran — because the dirty set blew the threshold, the
  /// cache was produced by the GFP algorithm, or the inputs were
  /// inconsistent; reason says which.
  bool incremental_stage1 = false;
  std::string stage1_fallback_reason;
  size_t dirty_seed = 0;
  size_t dirty_peak = 0;
  size_t rounds = 0;
  /// Stage 2 adopted the cached clustering instead of re-running.
  bool stage2_reused = false;
};

/// Incremental re-extraction: the cached run's pipeline re-executed over
/// the mutated graph `g`, with Stage 1 seeded from the cached partition
/// (dirty set = `touched`, typically DeltaOverlay::TouchedComplexObjects())
/// and Stage 2 skipped when its inputs are unchanged. `k` = 0 reuses the
/// cached k; `parallelism`/`check_cancel` override the run-time knobs.
/// The result is bit-identical to SchemaExtractor::Run over `g` with the
/// cache's options (same k) at any thread count — Stages 2/3 share the
/// cold code path outright, and incremental Stage 1 is pinned against
/// the cold refinement by construction and by determinism tests.
util::StatusOr<ExtractionResult> ReExtract(
    graph::GraphView g, const ExtractionCache& cache,
    std::span<const graph::ObjectId> touched, size_t k, size_t parallelism,
    const std::function<util::Status()>& check_cancel,
    const IncrementalOptions& inc = {}, ReExtractStats* stats = nullptr);

}  // namespace schemex::extract

#endif  // SCHEMEX_EXTRACT_INCREMENTAL_EXTRACT_H_
