#ifndef SCHEMEX_EXTRACT_PRIOR_H_
#define SCHEMEX_EXTRACT_PRIOR_H_

#include "extract/extractor.h"
#include "graph/graph_view.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::extract {

/// The §2 "a priori knowledge" extension: "this may often occur in
/// practice for instance if we attempt to integrate data with a known
/// structure to semistructured data discovered on the net."
///
/// ExtractWithPrior keeps the user's known types verbatim: objects that
/// satisfy a prior type (GFP) are claimed by it; the three-stage pipeline
/// then runs only over the *unclaimed* remainder, and the final program
/// is the prior followed by the newly discovered types.
struct PriorExtractionResult {
  /// Prior types first (ids preserved), discovered types appended.
  typing::TypingProgram program;
  size_t num_prior_types = 0;
  size_t num_new_types = 0;

  /// Complex objects claimed by the prior (in >= 1 prior GFP extent).
  size_t num_prior_claimed = 0;

  /// Stage 3 over the full database with the merged program.
  typing::RecastResult recast;
  typing::DefectReport defect;
};

/// Runs the pipeline. `options.target_num_types` budgets the NEW types
/// only. Discovered types describe the unclaimed subgraph: links from
/// unclaimed objects to claimed ones are not part of their local
/// pictures (the prior's objects act as an opaque boundary), which keeps
/// the prior authoritative but can cost some fit — measured by `defect`.
util::StatusOr<PriorExtractionResult> ExtractWithPrior(
    graph::GraphView g, const typing::TypingProgram& prior,
    const ExtractorOptions& options);

}  // namespace schemex::extract

#endif  // SCHEMEX_EXTRACT_PRIOR_H_
