#ifndef SCHEMEX_EXTRACT_EXTRACTOR_H_
#define SCHEMEX_EXTRACT_EXTRACTOR_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "cluster/greedy.h"
#include "graph/graph_view.h"
#include "typing/defect.h"
#include "typing/perfect_typing.h"
#include "typing/recast.h"
#include "typing/roles.h"
#include "util/statusor.h"

namespace schemex::extract {

/// End-to-end configuration of the three-stage method (§3).
struct ExtractorOptions {
  enum class Stage1Algorithm {
    kGfp,         ///< the paper's candidate-program + extent-merge (§4.1)
    kRefinement,  ///< scalable partition refinement (bisimulation-style)
  };
  Stage1Algorithm stage1 = Stage1Algorithm::kRefinement;

  /// Worker parallelism for all three stages: Stage-1 hashing/GFP, the
  /// Stage-2 all-pairs scan and per-merge distance/best maintenance, and
  /// the Stage-3 GFP, exact sweep, and nearest-type fallback. 0 = auto
  /// (hardware concurrency, moderated by the graph's size so tiny inputs
  /// stay inline); 1 = the sequential reference implementations; N > 1 =
  /// shard across exactly N workers (one transient pool per Run call,
  /// shared by every stage). Every setting produces bit-identical
  /// results — the knob only trades wall-clock for cores.
  size_t parallelism = 0;

  /// Run the multiple-roles pass (§4.2) between Stages 1 and 2.
  bool decompose_roles = false;

  /// Weighted distance for Stage 2 (the paper's experiments use psi2, the
  /// weighted Manhattan distance).
  cluster::PsiKind psi = cluster::PsiKind::kPsi2;

  /// Number of types to cluster down to. 0 keeps the perfect typing
  /// (Stage 2 skipped).
  size_t target_num_types = 0;

  /// Allow Stage 2 to move types to the implicit empty type instead of
  /// merging them (Example 5.3).
  bool enable_empty_type = true;

  typing::RecastOptions recast;

  /// Cooperative cancellation hook, polled at every stage boundary
  /// (after Stage 1, after Stage 2, and between sweep snapshots) and
  /// *inside* Stage 1 (between refinement rounds, between GFP phases, and
  /// every few thousand GFP worklist pops), so long extracts abort
  /// mid-stage. Return a non-OK status — typically DeadlineExceeded — to
  /// abort the pipeline; the status is propagated verbatim. Null = never
  /// cancel.
  std::function<util::Status()> check_cancel;
};

/// Per-stage wall-clock of one extraction, for benchmarks and the
/// service's extract.stage1_ms-style histograms.
struct StageTimings {
  double stage1_ms = 0;  ///< perfect typing (refinement or GFP)
  double cluster_ms = 0; ///< Stage 2 (0 when clustering was skipped)
  double recast_ms = 0;  ///< Stage 3 + defect measurement
  double total_ms = 0;
};

/// Everything the pipeline produced, including intermediates for
/// inspection.
struct ExtractionResult {
  /// Stage 1: the minimal perfect typing.
  typing::PerfectTypingResult perfect;

  /// Multiple-roles pass output (program == perfect.program reduced);
  /// only meaningful when options.decompose_roles.
  typing::RoleDecomposition roles;
  bool roles_applied = false;

  /// Stage 2 output; only meaningful when clustering ran.
  cluster::ClusteringResult clustering;
  bool clustering_applied = false;

  /// The program the data was recast into (== perfect/roles program when
  /// Stage 2 was skipped).
  typing::TypingProgram final_program;

  /// Per-object home type sets in final_program ids (empty set = object
  /// moved to the empty type).
  std::vector<std::vector<typing::TypeId>> final_homes;

  /// Stage 3 output.
  typing::RecastResult recast;

  /// Defect of the final assignment (Table 1's "Defect" column).
  typing::DefectReport defect;

  size_t num_perfect_types = 0;
  size_t num_final_types = 0;

  /// Wall-clock spent in each stage of this run.
  StageTimings timings;
};

/// Orchestrates Stage 1 -> (roles) -> Stage 2 -> Stage 3 -> defect.
class SchemaExtractor {
 public:
  explicit SchemaExtractor(ExtractorOptions options) : options_(options) {}

  util::StatusOr<ExtractionResult> Run(graph::GraphView g) const;

  const ExtractorOptions& options() const { return options_; }

 private:
  ExtractorOptions options_;
};

/// One point of the paper's Figure 6: the typing quality at `k` types.
struct SensitivityPoint {
  size_t k;
  double total_distance;  ///< cumulative greedy clustering cost
  size_t excess;
  size_t deficit;
  size_t defect;
};

/// Re-runs Stages 2+3 at every k from the perfect-type count down to
/// `min_k` (single clustering run with snapshots) and measures the defect
/// at each k — the sliding-scale mechanism of §6 and the curves of
/// Figure 6. `options.target_num_types` is ignored.
util::StatusOr<std::vector<SensitivityPoint>> SensitivitySweep(
    graph::GraphView g, const ExtractorOptions& options,
    size_t min_k = 1);

}  // namespace schemex::extract

#endif  // SCHEMEX_EXTRACT_EXTRACTOR_H_
