#include "extract/sampled.h"

#include <algorithm>

#include "graph/subgraph.h"
#include "typing/defect.h"
#include "util/random.h"

namespace schemex::extract {

util::StatusOr<SampledExtractionResult> ExtractFromSample(
    graph::GraphView g, const SampleOptions& options) {
  if (options.sample_complex_objects == 0) {
    return util::Status::InvalidArgument("sample size must be > 0");
  }
  // Choose the sampled complex objects.
  std::vector<graph::ObjectId> complex_objects;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsComplex(o)) complex_objects.push_back(o);
  }
  util::Rng rng(options.seed);
  std::vector<size_t> picks = rng.SampleIndices(
      complex_objects.size(),
      std::min(options.sample_complex_objects, complex_objects.size()));
  std::sort(picks.begin(), picks.end());

  // Build the induced sample. InducedSubgraph shares g's label table, so
  // the extracted program's label ids apply to the full graph directly.
  std::vector<graph::ObjectId> kept;
  kept.reserve(picks.size());
  for (size_t idx : picks) kept.push_back(complex_objects[idx]);
  graph::DataGraph sample = graph::InducedSubgraph(g, kept);

  // Extract on the sample.
  SchemaExtractor extractor(options.extract);
  SCHEMEX_ASSIGN_OR_RETURN(ExtractionResult sample_result,
                           extractor.Run(sample));

  SampledExtractionResult result;
  result.program = std::move(sample_result.final_program);
  result.sample_complex = sample.NumComplexObjects();
  result.sample_edges = sample.NumEdges();
  result.sample_perfect_types = sample_result.num_perfect_types;

  // Recast the FULL database (no homes — only sampled objects had them).
  std::vector<std::vector<typing::TypeId>> no_homes(g.NumObjects());
  SCHEMEX_ASSIGN_OR_RETURN(
      result.recast,
      typing::Recast(result.program, g, no_homes, options.extract.recast));
  result.defect =
      typing::ComputeDefect(result.program, g, result.recast.assignment);
  return result;
}

}  // namespace schemex::extract
