#include "extract/incremental_extract.h"

#include <utility>

#include "extract/pipeline_internal.h"
#include "typing/incremental_refine.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace schemex::extract {

ExtractionCache MakeExtractionCache(const ExtractionResult& result,
                                    const ExtractorOptions& options) {
  ExtractionCache cache;
  cache.perfect = result.perfect;
  cache.chosen_k = options.target_num_types;
  cache.options.stage1 = options.stage1;
  cache.options.decompose_roles = options.decompose_roles;
  cache.options.psi = options.psi;
  cache.options.enable_empty_type = options.enable_empty_type;
  cache.options.recast = options.recast;
  if (result.clustering_applied && !options.decompose_roles) {
    cache.clustering_cached = true;
    // Without roles, the Stage-2 inputs are exactly the perfect program
    // and its per-type weights (PrepareForClustering's identity path).
    cache.stage2_program = result.perfect.program;
    cache.stage2_weights = result.perfect.weight;
    cache.clustering = result.clustering;
  }
  return cache;
}

util::StatusOr<ExtractionResult> ReExtract(
    graph::GraphView g, const ExtractionCache& cache,
    std::span<const graph::ObjectId> touched, size_t k, size_t parallelism,
    const std::function<util::Status()>& check_cancel,
    const IncrementalOptions& inc, ReExtractStats* stats) {
  ReExtractStats local_stats;
  ReExtractStats& st = stats ? *stats : local_stats;
  st = ReExtractStats{};

  util::WallTimer total_timer;

  // Replay the cached run's configuration; only k and the run-time knobs
  // (parallelism, cancellation) are caller-controlled.
  ExtractorOptions options;
  options.stage1 = cache.options.stage1;
  options.decompose_roles = cache.options.decompose_roles;
  options.psi = cache.options.psi;
  options.enable_empty_type = cache.options.enable_empty_type;
  options.recast = cache.options.recast;
  options.target_num_types = k == 0 ? cache.chosen_k : k;
  options.parallelism = parallelism;
  options.check_cancel = check_cancel;

  size_t threads =
      internal::ResolveParallelism(parallelism, g.NumComplexObjects());
  util::PoolRef pool(nullptr, threads);
  typing::ExecOptions exec;
  exec.num_threads = threads;
  exec.pool = pool.get();
  exec.check_cancel = check_cancel;

  // Stage 1: incremental re-refinement from the cached partition. Only
  // refinement-produced caches qualify — the GFP algorithm's partition
  // is defined by extent equality, which the re-refiner does not model.
  util::WallTimer stage_timer;
  typing::PerfectTypingResult perfect;
  if (options.stage1 == ExtractorOptions::Stage1Algorithm::kRefinement) {
    typing::IncrementalRefineOptions ro;
    ro.max_dirty_fraction = inc.max_dirty_fraction;
    ro.max_rounds = inc.max_rounds;
    ro.exec = exec;
    typing::IncrementalRefineStats rstats;
    SCHEMEX_ASSIGN_OR_RETURN(
        perfect,
        typing::IncrementalRefine(g, cache.perfect, touched, ro, &rstats));
    st.incremental_stage1 = !rstats.fell_back;
    st.stage1_fallback_reason = rstats.fallback_reason;
    st.dirty_seed = rstats.seed_dirty;
    st.dirty_peak = rstats.peak_dirty;
    st.rounds = rstats.rounds;
  } else {
    SCHEMEX_ASSIGN_OR_RETURN(
        perfect, internal::RunStage1(options, g, pool.get(), threads));
    st.stage1_fallback_reason =
        "cache produced by stage1=gfp; incremental Stage 1 requires "
        "refinement";
  }
  double stage1_ms = stage_timer.ElapsedMillis();
  SCHEMEX_RETURN_IF_ERROR(internal::PollCancel(check_cancel));

  // Stages 2+3 via the cold pipeline, offering the cached clustering for
  // reuse when it exists and was produced at the same k (the other
  // option fields match by construction above).
  internal::Stage2Reuse reuse;
  const internal::Stage2Reuse* reuse_ptr = nullptr;
  if (cache.clustering_cached &&
      options.target_num_types == cache.chosen_k) {
    reuse.program = &cache.stage2_program;
    reuse.weights = &cache.stage2_weights;
    reuse.clustering = &cache.clustering;
    reuse_ptr = &reuse;
  }
  SCHEMEX_ASSIGN_OR_RETURN(
      ExtractionResult result,
      internal::FinishExtraction(options, g, std::move(perfect), exec,
                                 reuse_ptr, &st.stage2_reused));
  result.timings.stage1_ms = stage1_ms;
  result.timings.total_ms = total_timer.ElapsedMillis();
  return result;
}

}  // namespace schemex::extract
