#include "extract/knee.h"

#include <algorithm>
#include <limits>

namespace schemex::extract {

namespace {

bool InRange(const SensitivityPoint& p, const KneeOptions& options) {
  return options.max_types == 0 || p.k <= options.max_types;
}

}  // namespace

Knee FindKnee(const std::vector<SensitivityPoint>& points,
              const KneeOptions& options) {
  Knee knee;
  size_t best = std::numeric_limits<size_t>::max();
  for (const SensitivityPoint& p : points) {
    if (InRange(p, options)) best = std::min(best, p.defect);
  }
  if (best == std::numeric_limits<size_t>::max()) return knee;  // empty
  knee.best_defect_in_range = best;
  double cap = static_cast<double>(best) * options.tolerance;
  size_t chosen_k = std::numeric_limits<size_t>::max();
  size_t chosen_defect = 0;
  for (const SensitivityPoint& p : points) {
    if (!InRange(p, options)) continue;
    if (static_cast<double>(p.defect) <= cap && p.k < chosen_k) {
      chosen_k = p.k;
      chosen_defect = p.defect;
    }
  }
  knee.k = chosen_k;
  knee.defect = chosen_defect;
  return knee;
}

std::vector<size_t> NaturalTypeCounts(
    const std::vector<SensitivityPoint>& points, const KneeOptions& options) {
  Knee knee = FindKnee(points, options);
  std::vector<size_t> out;
  if (knee.k == 0) return out;
  double cap =
      static_cast<double>(knee.best_defect_in_range) * options.tolerance;
  for (const SensitivityPoint& p : points) {
    if (InRange(p, options) && static_cast<double>(p.defect) <= cap) {
      out.push_back(p.k);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace schemex::extract
