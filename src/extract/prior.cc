#include "extract/prior.h"

#include "graph/subgraph.h"
#include "typing/defect.h"
#include "typing/gfp.h"
#include "typing/recast.h"

namespace schemex::extract {

util::StatusOr<PriorExtractionResult> ExtractWithPrior(
    graph::GraphView g, const typing::TypingProgram& prior,
    const ExtractorOptions& options) {
  SCHEMEX_RETURN_IF_ERROR(prior.Validate());
  PriorExtractionResult result;
  result.num_prior_types = prior.NumTypes();

  // 1. Claim objects with the prior.
  SCHEMEX_ASSIGN_OR_RETURN(typing::Extents prior_extents,
                           typing::ComputeGfp(prior, g));
  std::vector<bool> claimed(g.NumObjects(), false);
  for (const auto& ext : prior_extents.per_type) {
    ext.ForEach([&](size_t o) { claimed[o] = true; });
  }
  std::vector<graph::ObjectId> unclaimed;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsComplex(o)) {
      if (claimed[o]) {
        ++result.num_prior_claimed;
      } else {
        unclaimed.push_back(o);
      }
    }
  }

  // 2-3. Extract over the unclaimed remainder.
  std::vector<std::vector<typing::TypeId>> homes(g.NumObjects());
  result.program = prior;
  if (!unclaimed.empty()) {
    std::vector<graph::ObjectId> old_to_new;
    graph::DataGraph rest = graph::InducedSubgraph(g, unclaimed, {},
                                                   &old_to_new);
    SchemaExtractor extractor(options);
    SCHEMEX_ASSIGN_OR_RETURN(ExtractionResult sub, extractor.Run(rest));
    result.num_new_types = sub.final_program.NumTypes();

    // 4. Append discovered types, offsetting their internal targets.
    const typing::TypeId offset =
        static_cast<typing::TypeId>(prior.NumTypes());
    std::vector<typing::TypeId> shift(sub.final_program.NumTypes());
    for (size_t t = 0; t < shift.size(); ++t) {
      shift[t] = static_cast<typing::TypeId>(t) + offset;
    }
    for (size_t t = 0; t < sub.final_program.NumTypes(); ++t) {
      typing::TypeSignature sig =
          sub.final_program.type(static_cast<typing::TypeId>(t)).signature;
      sig.RemapTargets(shift);
      result.program.AddType(
          sub.final_program.type(static_cast<typing::TypeId>(t)).name,
          std::move(sig));
    }

    // 5. Pull the subgraph homes back to full-graph object ids.
    for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
      if (old_to_new[o] == graph::kInvalidObject ||
          !g.IsComplex(o)) {
        continue;
      }
      for (typing::TypeId t : sub.final_homes[old_to_new[o]]) {
        homes[o].push_back(t + offset);
      }
    }
  }

  // 6-7. Recast the whole database and measure.
  SCHEMEX_ASSIGN_OR_RETURN(
      result.recast,
      typing::Recast(result.program, g, homes, options.recast));
  result.defect =
      typing::ComputeDefect(result.program, g, result.recast.assignment);
  return result;
}

}  // namespace schemex::extract
