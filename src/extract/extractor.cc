#include "extract/extractor.h"

#include <algorithm>
#include <utility>

namespace schemex::extract {

namespace {

using typing::TypeId;

/// Stage-1 (or roles) home sets + weights for clustering.
struct PreClusterState {
  typing::TypingProgram program;
  std::vector<std::vector<TypeId>> homes;  // per object, in program ids
  std::vector<uint32_t> weights;           // per type: #objects with home
};

PreClusterState PrepareForClustering(const ExtractorOptions& options,
                                     const typing::PerfectTypingResult& perfect,
                                     typing::RoleDecomposition* roles,
                                     bool* roles_applied) {
  PreClusterState state;
  if (options.decompose_roles) {
    *roles = typing::DecomposeRoles(perfect.program);
    *roles_applied = true;
    state.program = roles->program;
    state.homes = roles->MapHomes(perfect.home);
  } else {
    state.program = perfect.program;
    state.homes.resize(perfect.home.size());
    for (size_t o = 0; o < perfect.home.size(); ++o) {
      if (perfect.home[o] != typing::kInvalidType) {
        state.homes[o] = {perfect.home[o]};
      }
    }
  }
  state.weights.assign(state.program.NumTypes(), 0);
  for (const auto& hs : state.homes) {
    for (TypeId t : hs) ++state.weights[static_cast<size_t>(t)];
  }
  return state;
}

/// Applies a stage1->final type map to home sets, dropping empty-type
/// entries and deduplicating.
std::vector<std::vector<TypeId>> MapHomesThrough(
    const std::vector<std::vector<TypeId>>& homes,
    const std::vector<TypeId>& map) {
  std::vector<std::vector<TypeId>> out(homes.size());
  for (size_t o = 0; o < homes.size(); ++o) {
    for (TypeId t : homes[o]) {
      TypeId m = map[static_cast<size_t>(t)];
      if (m != cluster::kEmptyType) out[o].push_back(m);
    }
    std::sort(out[o].begin(), out[o].end());
    out[o].erase(std::unique(out[o].begin(), out[o].end()), out[o].end());
  }
  return out;
}

/// Polls an optional cancellation hook; stages run only between OK polls.
util::Status Poll(const std::function<util::Status()>& check_cancel) {
  return check_cancel ? check_cancel() : util::Status::OK();
}

}  // namespace

util::StatusOr<ExtractionResult> SchemaExtractor::Run(
    graph::GraphView g) const {
  ExtractionResult result;

  // Stage 1.
  if (options_.stage1 == ExtractorOptions::Stage1Algorithm::kGfp) {
    SCHEMEX_ASSIGN_OR_RETURN(result.perfect, typing::PerfectTypingViaGfp(g));
  } else {
    SCHEMEX_ASSIGN_OR_RETURN(result.perfect,
                             typing::PerfectTypingViaRefinement(g));
  }
  result.num_perfect_types = result.perfect.program.NumTypes();
  SCHEMEX_RETURN_IF_ERROR(Poll(options_.check_cancel));

  PreClusterState state = PrepareForClustering(
      options_, result.perfect, &result.roles, &result.roles_applied);

  // Stage 2.
  if (options_.target_num_types > 0 &&
      options_.target_num_types < state.program.NumTypes()) {
    cluster::ClusteringOptions copt;
    copt.psi = options_.psi;
    copt.target_num_types = options_.target_num_types;
    copt.enable_empty_type = options_.enable_empty_type;
    SCHEMEX_ASSIGN_OR_RETURN(
        result.clustering,
        cluster::ClusterTypes(state.program, state.weights, copt));
    result.clustering_applied = true;
    result.final_program = result.clustering.final_program;
    result.final_homes = MapHomesThrough(state.homes,
                                         result.clustering.final_map);
  } else {
    result.final_program = state.program;
    result.final_homes = state.homes;
  }
  result.num_final_types = result.final_program.NumTypes();
  SCHEMEX_RETURN_IF_ERROR(Poll(options_.check_cancel));

  // Stage 3.
  SCHEMEX_ASSIGN_OR_RETURN(
      result.recast,
      typing::Recast(result.final_program, g, result.final_homes,
                     options_.recast));

  result.defect =
      typing::ComputeDefect(result.final_program, g, result.recast.assignment);
  return result;
}

util::StatusOr<std::vector<SensitivityPoint>> SensitivitySweep(
    graph::GraphView g, const ExtractorOptions& options,
    size_t min_k) {
  // Stage 1 once.
  typing::PerfectTypingResult perfect;
  if (options.stage1 == ExtractorOptions::Stage1Algorithm::kGfp) {
    SCHEMEX_ASSIGN_OR_RETURN(perfect, typing::PerfectTypingViaGfp(g));
  } else {
    SCHEMEX_ASSIGN_OR_RETURN(perfect, typing::PerfectTypingViaRefinement(g));
  }
  SCHEMEX_RETURN_IF_ERROR(Poll(options.check_cancel));
  typing::RoleDecomposition roles;
  bool roles_applied = false;
  PreClusterState state =
      PrepareForClustering(options, perfect, &roles, &roles_applied);

  // Stage 2 once, all the way down, recording snapshots.
  cluster::ClusteringOptions copt;
  copt.psi = options.psi;
  copt.target_num_types = std::max<size_t>(min_k, 1);
  copt.enable_empty_type = options.enable_empty_type;
  copt.record_snapshots = true;
  SCHEMEX_ASSIGN_OR_RETURN(
      cluster::ClusteringResult clustering,
      cluster::ClusterTypes(state.program, state.weights, copt));

  // Stage 3 + defect per snapshot.
  std::vector<SensitivityPoint> points;
  points.reserve(clustering.snapshots.size());
  for (const cluster::Snapshot& snap : clustering.snapshots) {
    SCHEMEX_RETURN_IF_ERROR(Poll(options.check_cancel));
    std::vector<std::vector<TypeId>> homes =
        MapHomesThrough(state.homes, snap.stage1_to_snapshot);
    SCHEMEX_ASSIGN_OR_RETURN(
        typing::RecastResult recast,
        typing::Recast(snap.program, g, homes, options.recast));
    typing::DefectReport defect =
        typing::ComputeDefect(snap.program, g, recast.assignment);
    points.push_back(SensitivityPoint{snap.num_types, snap.total_distance,
                                      defect.excess, defect.deficit,
                                      defect.defect()});
  }
  return points;
}

}  // namespace schemex::extract
