#include "extract/extractor.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "extract/pipeline_internal.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace schemex::extract {

namespace internal {

using typing::TypeId;

size_t ResolveParallelism(size_t requested, size_t num_complex) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  size_t by_size = std::max<size_t>(1, num_complex / 4096);
  return std::min(hw, by_size);
}

util::StatusOr<typing::PerfectTypingResult> RunStage1(
    const ExtractorOptions& options, graph::GraphView g,
    util::ThreadPool* pool, size_t threads) {
  typing::ExecOptions exec;
  exec.num_threads = threads;
  exec.pool = pool;
  exec.check_cancel = options.check_cancel;
  if (options.stage1 == ExtractorOptions::Stage1Algorithm::kGfp) {
    return typing::PerfectTypingViaGfp(g, exec);
  }
  if (options.parallelism == 1) {
    return typing::PerfectTypingViaRefinement(g);
  }
  return typing::PerfectTypingViaHashRefinement(g, exec);
}

PreClusterState PrepareForClustering(const ExtractorOptions& options,
                                     const typing::PerfectTypingResult& perfect,
                                     typing::RoleDecomposition* roles,
                                     bool* roles_applied) {
  PreClusterState state;
  if (options.decompose_roles) {
    *roles = typing::DecomposeRoles(perfect.program);
    *roles_applied = true;
    state.program = roles->program;
    state.homes = roles->MapHomes(perfect.home);
  } else {
    state.program = perfect.program;
    state.homes.resize(perfect.home.size());
    for (size_t o = 0; o < perfect.home.size(); ++o) {
      if (perfect.home[o] != typing::kInvalidType) {
        state.homes[o] = {perfect.home[o]};
      }
    }
  }
  state.weights.assign(state.program.NumTypes(), 0);
  for (const auto& hs : state.homes) {
    for (TypeId t : hs) ++state.weights[static_cast<size_t>(t)];
  }
  return state;
}

std::vector<std::vector<TypeId>> MapHomesThrough(
    const std::vector<std::vector<TypeId>>& homes,
    const std::vector<TypeId>& map) {
  std::vector<std::vector<TypeId>> out(homes.size());
  for (size_t o = 0; o < homes.size(); ++o) {
    for (TypeId t : homes[o]) {
      TypeId m = map[static_cast<size_t>(t)];
      if (m != cluster::kEmptyType) out[o].push_back(m);
    }
    std::sort(out[o].begin(), out[o].end());
    out[o].erase(std::unique(out[o].begin(), out[o].end()), out[o].end());
  }
  return out;
}

util::Status PollCancel(const std::function<util::Status()>& check_cancel) {
  return check_cancel ? check_cancel() : util::Status::OK();
}

util::StatusOr<ExtractionResult> FinishExtraction(
    const ExtractorOptions& options, graph::GraphView g,
    typing::PerfectTypingResult perfect, const typing::ExecOptions& exec,
    const Stage2Reuse* reuse, bool* stage2_reused) {
  ExtractionResult result;
  result.perfect = std::move(perfect);
  result.num_perfect_types = result.perfect.program.NumTypes();
  if (stage2_reused) *stage2_reused = false;

  PreClusterState state = PrepareForClustering(
      options, result.perfect, &result.roles, &result.roles_applied);

  // Stage 2.
  util::WallTimer stage_timer;
  if (options.target_num_types > 0 &&
      options.target_num_types < state.program.NumTypes()) {
    if (reuse != nullptr && reuse->program != nullptr &&
        *reuse->program == state.program && *reuse->weights == state.weights) {
      // Identical inputs (and, per the caller's contract, identical
      // clustering options) mean re-running greedy clustering would
      // reproduce the cached result verbatim — adopt it instead. This
      // is the incremental hot path: Stage 2 dominates cold extraction
      // cost, and a delta that leaves the perfect typing unchanged
      // skips it entirely.
      result.clustering = *reuse->clustering;
      if (stage2_reused) *stage2_reused = true;
    } else {
      cluster::ClusteringOptions copt;
      copt.psi = options.psi;
      copt.target_num_types = options.target_num_types;
      copt.enable_empty_type = options.enable_empty_type;
      SCHEMEX_ASSIGN_OR_RETURN(
          result.clustering,
          cluster::ClusterTypes(state.program, state.weights, copt, exec));
    }
    result.clustering_applied = true;
    result.final_program = result.clustering.final_program;
    result.final_homes =
        MapHomesThrough(state.homes, result.clustering.final_map);
    result.timings.cluster_ms = stage_timer.ElapsedMillis();
  } else {
    result.final_program = state.program;
    result.final_homes = state.homes;
  }
  result.num_final_types = result.final_program.NumTypes();
  SCHEMEX_RETURN_IF_ERROR(PollCancel(options.check_cancel));

  // Stage 3.
  stage_timer.Restart();
  SCHEMEX_ASSIGN_OR_RETURN(
      result.recast, typing::Recast(result.final_program, g,
                                    result.final_homes, options.recast, exec));

  result.defect =
      typing::ComputeDefect(result.final_program, g, result.recast.assignment);
  result.timings.recast_ms = stage_timer.ElapsedMillis();
  return result;
}

}  // namespace internal

util::StatusOr<ExtractionResult> SchemaExtractor::Run(
    graph::GraphView g) const {
  util::WallTimer total_timer;

  // One pool for the whole run — Stage 1 shards its hashing and GFP
  // phases on it, Stage 2 its distance/best maintenance, Stage 3 its
  // GFP, exact sweep, and fallback precompute; nullptr when the resolved
  // parallelism is 1.
  size_t threads =
      internal::ResolveParallelism(options_.parallelism, g.NumComplexObjects());
  util::PoolRef pool(nullptr, threads);
  typing::ExecOptions exec;
  exec.num_threads = threads;
  exec.pool = pool.get();
  exec.check_cancel = options_.check_cancel;

  // Stage 1.
  util::WallTimer stage_timer;
  typing::PerfectTypingResult perfect;
  SCHEMEX_ASSIGN_OR_RETURN(perfect,
                           internal::RunStage1(options_, g, pool.get(),
                                               threads));
  double stage1_ms = stage_timer.ElapsedMillis();
  SCHEMEX_RETURN_IF_ERROR(internal::PollCancel(options_.check_cancel));

  SCHEMEX_ASSIGN_OR_RETURN(
      ExtractionResult result,
      internal::FinishExtraction(options_, g, std::move(perfect), exec));
  result.timings.stage1_ms = stage1_ms;
  result.timings.total_ms = total_timer.ElapsedMillis();
  return result;
}

util::StatusOr<std::vector<SensitivityPoint>> SensitivitySweep(
    graph::GraphView g, const ExtractorOptions& options,
    size_t min_k) {
  using internal::MapHomesThrough;
  using internal::PollCancel;
  using internal::PreClusterState;
  using typing::TypeId;

  // Stage 1 once.
  size_t threads =
      internal::ResolveParallelism(options.parallelism, g.NumComplexObjects());
  util::PoolRef pool(nullptr, threads);
  typing::ExecOptions exec;
  exec.num_threads = threads;
  exec.pool = pool.get();
  exec.check_cancel = options.check_cancel;
  typing::PerfectTypingResult perfect;
  SCHEMEX_ASSIGN_OR_RETURN(
      perfect, internal::RunStage1(options, g, pool.get(), threads));
  SCHEMEX_RETURN_IF_ERROR(PollCancel(options.check_cancel));
  typing::RoleDecomposition roles;
  bool roles_applied = false;
  PreClusterState state =
      internal::PrepareForClustering(options, perfect, &roles, &roles_applied);

  // Stage 2 once, all the way down, recording snapshots.
  cluster::ClusteringOptions copt;
  copt.psi = options.psi;
  copt.target_num_types = std::max<size_t>(min_k, 1);
  copt.enable_empty_type = options.enable_empty_type;
  copt.record_snapshots = true;
  SCHEMEX_ASSIGN_OR_RETURN(
      cluster::ClusteringResult clustering,
      cluster::ClusterTypes(state.program, state.weights, copt, exec));

  // Stage 3 + defect per snapshot.
  std::vector<SensitivityPoint> points;
  points.reserve(clustering.snapshots.size());
  for (const cluster::Snapshot& snap : clustering.snapshots) {
    SCHEMEX_RETURN_IF_ERROR(PollCancel(options.check_cancel));
    std::vector<std::vector<TypeId>> homes =
        MapHomesThrough(state.homes, snap.stage1_to_snapshot);
    SCHEMEX_ASSIGN_OR_RETURN(
        typing::RecastResult recast,
        typing::Recast(snap.program, g, homes, options.recast, exec));
    typing::DefectReport defect =
        typing::ComputeDefect(snap.program, g, recast.assignment);
    points.push_back(SensitivityPoint{snap.num_types, snap.total_distance,
                                      defect.excess, defect.deficit,
                                      defect.defect()});
  }
  return points;
}

}  // namespace schemex::extract
