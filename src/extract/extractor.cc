#include "extract/extractor.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/parallel_for.h"
#include "util/timer.h"

namespace schemex::extract {

namespace {

using typing::TypeId;

/// Effective Stage-1 worker count. 0 (auto) takes the hardware
/// concurrency, moderated so each worker gets a few thousand complex
/// objects — below that a pool costs more than it saves.
size_t ResolveParallelism(size_t requested, size_t num_complex) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  size_t by_size = std::max<size_t>(1, num_complex / 4096);
  return std::min(hw, by_size);
}

/// Stage 1 with the options' algorithm, parallelism, and cancellation.
/// parallelism == 1 routes refinement to the sequential reference
/// implementation (the baseline the hash path is pinned against); every
/// other setting uses the hash-refinement engine.
util::StatusOr<typing::PerfectTypingResult> RunStage1(
    const ExtractorOptions& options, graph::GraphView g,
    util::ThreadPool* pool, size_t threads) {
  typing::ExecOptions exec;
  exec.num_threads = threads;
  exec.pool = pool;
  exec.check_cancel = options.check_cancel;
  if (options.stage1 == ExtractorOptions::Stage1Algorithm::kGfp) {
    return typing::PerfectTypingViaGfp(g, exec);
  }
  if (options.parallelism == 1) {
    return typing::PerfectTypingViaRefinement(g);
  }
  return typing::PerfectTypingViaHashRefinement(g, exec);
}

/// Stage-1 (or roles) home sets + weights for clustering.
struct PreClusterState {
  typing::TypingProgram program;
  std::vector<std::vector<TypeId>> homes;  // per object, in program ids
  std::vector<uint32_t> weights;           // per type: #objects with home
};

PreClusterState PrepareForClustering(const ExtractorOptions& options,
                                     const typing::PerfectTypingResult& perfect,
                                     typing::RoleDecomposition* roles,
                                     bool* roles_applied) {
  PreClusterState state;
  if (options.decompose_roles) {
    *roles = typing::DecomposeRoles(perfect.program);
    *roles_applied = true;
    state.program = roles->program;
    state.homes = roles->MapHomes(perfect.home);
  } else {
    state.program = perfect.program;
    state.homes.resize(perfect.home.size());
    for (size_t o = 0; o < perfect.home.size(); ++o) {
      if (perfect.home[o] != typing::kInvalidType) {
        state.homes[o] = {perfect.home[o]};
      }
    }
  }
  state.weights.assign(state.program.NumTypes(), 0);
  for (const auto& hs : state.homes) {
    for (TypeId t : hs) ++state.weights[static_cast<size_t>(t)];
  }
  return state;
}

/// Applies a stage1->final type map to home sets, dropping empty-type
/// entries and deduplicating.
std::vector<std::vector<TypeId>> MapHomesThrough(
    const std::vector<std::vector<TypeId>>& homes,
    const std::vector<TypeId>& map) {
  std::vector<std::vector<TypeId>> out(homes.size());
  for (size_t o = 0; o < homes.size(); ++o) {
    for (TypeId t : homes[o]) {
      TypeId m = map[static_cast<size_t>(t)];
      if (m != cluster::kEmptyType) out[o].push_back(m);
    }
    std::sort(out[o].begin(), out[o].end());
    out[o].erase(std::unique(out[o].begin(), out[o].end()), out[o].end());
  }
  return out;
}

/// Polls an optional cancellation hook; stages run only between OK polls.
util::Status Poll(const std::function<util::Status()>& check_cancel) {
  return check_cancel ? check_cancel() : util::Status::OK();
}

}  // namespace

util::StatusOr<ExtractionResult> SchemaExtractor::Run(
    graph::GraphView g) const {
  ExtractionResult result;
  util::WallTimer total_timer;

  // One pool for the whole run — Stage 1 shards its hashing and GFP
  // phases on it, Stage 2 its distance/best maintenance, Stage 3 its
  // GFP, exact sweep, and fallback precompute; nullptr when the resolved
  // parallelism is 1.
  size_t threads =
      ResolveParallelism(options_.parallelism, g.NumComplexObjects());
  util::PoolRef pool(nullptr, threads);
  typing::ExecOptions exec;
  exec.num_threads = threads;
  exec.pool = pool.get();
  exec.check_cancel = options_.check_cancel;

  // Stage 1.
  util::WallTimer stage_timer;
  SCHEMEX_ASSIGN_OR_RETURN(result.perfect,
                           RunStage1(options_, g, pool.get(), threads));
  result.timings.stage1_ms = stage_timer.ElapsedMillis();
  result.num_perfect_types = result.perfect.program.NumTypes();
  SCHEMEX_RETURN_IF_ERROR(Poll(options_.check_cancel));

  PreClusterState state = PrepareForClustering(
      options_, result.perfect, &result.roles, &result.roles_applied);

  // Stage 2.
  stage_timer.Restart();
  if (options_.target_num_types > 0 &&
      options_.target_num_types < state.program.NumTypes()) {
    cluster::ClusteringOptions copt;
    copt.psi = options_.psi;
    copt.target_num_types = options_.target_num_types;
    copt.enable_empty_type = options_.enable_empty_type;
    SCHEMEX_ASSIGN_OR_RETURN(
        result.clustering,
        cluster::ClusterTypes(state.program, state.weights, copt, exec));
    result.clustering_applied = true;
    result.final_program = result.clustering.final_program;
    result.final_homes = MapHomesThrough(state.homes,
                                         result.clustering.final_map);
    result.timings.cluster_ms = stage_timer.ElapsedMillis();
  } else {
    result.final_program = state.program;
    result.final_homes = state.homes;
  }
  result.num_final_types = result.final_program.NumTypes();
  SCHEMEX_RETURN_IF_ERROR(Poll(options_.check_cancel));

  // Stage 3.
  stage_timer.Restart();
  SCHEMEX_ASSIGN_OR_RETURN(
      result.recast,
      typing::Recast(result.final_program, g, result.final_homes,
                     options_.recast, exec));

  result.defect =
      typing::ComputeDefect(result.final_program, g, result.recast.assignment);
  result.timings.recast_ms = stage_timer.ElapsedMillis();
  result.timings.total_ms = total_timer.ElapsedMillis();
  return result;
}

util::StatusOr<std::vector<SensitivityPoint>> SensitivitySweep(
    graph::GraphView g, const ExtractorOptions& options,
    size_t min_k) {
  // Stage 1 once.
  size_t threads =
      ResolveParallelism(options.parallelism, g.NumComplexObjects());
  util::PoolRef pool(nullptr, threads);
  typing::ExecOptions exec;
  exec.num_threads = threads;
  exec.pool = pool.get();
  exec.check_cancel = options.check_cancel;
  typing::PerfectTypingResult perfect;
  SCHEMEX_ASSIGN_OR_RETURN(perfect, RunStage1(options, g, pool.get(), threads));
  SCHEMEX_RETURN_IF_ERROR(Poll(options.check_cancel));
  typing::RoleDecomposition roles;
  bool roles_applied = false;
  PreClusterState state =
      PrepareForClustering(options, perfect, &roles, &roles_applied);

  // Stage 2 once, all the way down, recording snapshots.
  cluster::ClusteringOptions copt;
  copt.psi = options.psi;
  copt.target_num_types = std::max<size_t>(min_k, 1);
  copt.enable_empty_type = options.enable_empty_type;
  copt.record_snapshots = true;
  SCHEMEX_ASSIGN_OR_RETURN(
      cluster::ClusteringResult clustering,
      cluster::ClusterTypes(state.program, state.weights, copt, exec));

  // Stage 3 + defect per snapshot.
  std::vector<SensitivityPoint> points;
  points.reserve(clustering.snapshots.size());
  for (const cluster::Snapshot& snap : clustering.snapshots) {
    SCHEMEX_RETURN_IF_ERROR(Poll(options.check_cancel));
    std::vector<std::vector<TypeId>> homes =
        MapHomesThrough(state.homes, snap.stage1_to_snapshot);
    SCHEMEX_ASSIGN_OR_RETURN(
        typing::RecastResult recast,
        typing::Recast(snap.program, g, homes, options.recast, exec));
    typing::DefectReport defect =
        typing::ComputeDefect(snap.program, g, recast.assignment);
    points.push_back(SensitivityPoint{snap.num_types, snap.total_distance,
                                      defect.excess, defect.deficit,
                                      defect.defect()});
  }
  return points;
}

}  // namespace schemex::extract
