#ifndef SCHEMEX_TYPING_TYPED_LINK_H_
#define SCHEMEX_TYPING_TYPED_LINK_H_

#include <compare>
#include <cstdint>
#include <string>

#include "graph/label.h"

namespace schemex::typing {

/// Index of a type within a TypingProgram. The paper writes types as
/// tau_1..tau_n with the implicit tau_0 holding all atomic objects; we use
/// kAtomicType for that implicit target.
using TypeId = int32_t;

/// Target marker for "the other end is an atomic object" (the paper's
/// superscript 0).
inline constexpr TypeId kAtomicType = -1;

inline constexpr TypeId kInvalidType = -2;

/// Edge direction as seen from the object being typed.
enum class Direction : uint8_t {
  kIncoming,  ///< paper notation: left arrow,  link(Y, X, l) & type_j(Y)
  kOutgoing,  ///< paper notation: right arrow, link(X, Y, l) & type_j(Y)
};

/// One conjunct of a type definition: an incoming or outgoing edge with a
/// fixed label whose far end lies in a given type (or is atomic).
///
/// Invariant: incoming links never target kAtomicType, since atomic objects
/// have no outgoing edges (DataGraph invariant).
struct TypedLink {
  Direction dir;
  graph::LabelId label;
  TypeId target;

  static TypedLink In(graph::LabelId l, TypeId from_type) {
    return TypedLink{Direction::kIncoming, l, from_type};
  }
  static TypedLink Out(graph::LabelId l, TypeId to_type) {
    return TypedLink{Direction::kOutgoing, l, to_type};
  }
  static TypedLink OutAtomic(graph::LabelId l) {
    return TypedLink{Direction::kOutgoing, l, kAtomicType};
  }

  friend bool operator==(const TypedLink&, const TypedLink&) = default;
  friend auto operator<=>(const TypedLink&, const TypedLink&) = default;
};

/// Paper-style rendering: "<-label^j", "->label^j", "->label^0" where j is
/// the 1-based type index (or a name when the caller substitutes one).
std::string TypedLinkToString(const TypedLink& link,
                              const graph::LabelInterner& labels);

/// 64-bit mixing hash; suitable for unordered containers of TypedLink.
uint64_t HashTypedLink(const TypedLink& link);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_TYPED_LINK_H_
