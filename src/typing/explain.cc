#include "typing/explain.h"

#include "util/string_util.h"

namespace schemex::typing {

util::StatusOr<MembershipExplanation> ExplainMembership(
    const TypingProgram& program, graph::GraphView g,
    const Extents& m, graph::ObjectId o, TypeId t) {
  if (t < 0 || static_cast<size_t>(t) >= program.NumTypes()) {
    return util::Status::InvalidArgument("type id out of range");
  }
  MembershipExplanation out;
  out.object = o;
  out.type = t;
  for (const TypedLink& l : program.type(t).signature.links()) {
    graph::ObjectId witness = graph::kInvalidObject;
    if (l.dir == Direction::kOutgoing) {
      for (const graph::HalfEdge& e : g.OutEdges(o)) {
        if (e.label != l.label) continue;
        if (l.target == kAtomicType ? g.IsAtomic(e.other)
                                    : m.Contains(l.target, e.other)) {
          witness = e.other;
          break;
        }
      }
    } else {
      for (const graph::HalfEdge& e : g.InEdges(o)) {
        if (e.label != l.label) continue;
        if (m.Contains(l.target, e.other)) {
          witness = e.other;
          break;
        }
      }
    }
    if (witness == graph::kInvalidObject) {
      return util::Status::FailedPrecondition(util::StringPrintf(
          "object %u does not satisfy type %d (typed link without "
          "witness)",
          o, t));
    }
    out.witnesses.push_back(LinkWitness{l, witness});
  }
  return out;
}

std::string MembershipExplanation::ToString(
    graph::GraphView g, const TypingProgram& program) const {
  auto obj_name = [&](graph::ObjectId o) {
    std::string_view n = g.Name(o);
    return n.empty() ? util::StringPrintf("_o%u", o) : std::string(n);
  };
  std::string out = util::StringPrintf(
      "%s : %s because ", obj_name(object).c_str(),
      program.type(type).name.c_str());
  if (witnesses.empty()) {
    out += "its rule body is empty (every object qualifies)";
    return out;
  }
  for (size_t i = 0; i < witnesses.size(); ++i) {
    if (i > 0) out += ", ";
    out += TypedLinkToString(witnesses[i].link, g.labels()) + " via " +
           obj_name(witnesses[i].witness);
  }
  return out;
}

}  // namespace schemex::typing
