#ifndef SCHEMEX_TYPING_RECAST_H_
#define SCHEMEX_TYPING_RECAST_H_

#include <cstddef>
#include <vector>

#include "graph/graph_view.h"
#include "typing/assignment.h"
#include "typing/bit_signature.h"
#include "typing/exec_options.h"
#include "typing/gfp.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::typing {

/// Stage 3 knobs (§6).
struct RecastOptions {
  /// Assign objects to every type they satisfy exactly under the greatest
  /// fixpoint of the final program (beyond their home types).
  bool add_gfp_types = true;

  /// Objects with neither a home nor an exact GFP type get the nearest
  /// type by the simple distance d between their local picture and the
  /// type's signature. Set false to leave such objects untyped (the
  /// paper's "empty set type").
  bool nearest_type_fallback = true;
};

/// Stage 3 output.
struct RecastResult {
  /// Final object -> type-set assignment (homes plus GFP types plus
  /// nearest-type fallbacks).
  TypeAssignment assignment;

  /// GFP extents of the final program, for inspection.
  Extents gfp;

  size_t num_exact = 0;     ///< complex objects in >= 1 GFP extent
  size_t num_fallback = 0;  ///< complex objects typed via nearest-distance
  size_t num_untyped = 0;   ///< complex objects left untyped
};

/// Recasts the database into `program`: every object keeps its home types
/// (`homes`, possibly empty per object — e.g. objects moved to the empty
/// type by clustering), gains all types it satisfies exactly (GFP), and,
/// failing everything, the nearest type by d.
///
/// `exec` parallelizes the GFP (see ComputeGfp), the home/exact sweep
/// (per-object rows are disjoint), and the nearest-type fallback. The
/// fallback preserves its sequential semantics — stragglers' pictures see
/// earlier stragglers' final types — by precomputing every nearest type
/// against the pre-fallback assignment in sharded workers, then reducing
/// in object order and recomputing only the stragglers with a neighbor
/// assigned earlier in the pass. Results are bit-identical for every
/// thread count. exec.check_cancel is polled between phases and every
/// kGfpCancelPollInterval stragglers.
util::StatusOr<RecastResult> Recast(
    const TypingProgram& program, graph::GraphView g,
    const std::vector<std::vector<TypeId>>& homes,
    const RecastOptions& options = {}, const ExecOptions& exec = {});

/// The local picture of `o` expressed over `tau`: one ->l^0 per edge to an
/// atomic object, one ->l^t / <-l^t per edge to/from a complex neighbor
/// and each type t the neighbor is assigned to.
TypeSignature ObjectPicture(graph::GraphView g,
                            const TypeAssignment& tau, graph::ObjectId o);

/// Nearest type to `o` by d(picture(o), signature) — the paper's rule for
/// typing objects that fit no type precisely (also used for new objects
/// arriving after extraction). Ties break toward the lowest type id.
/// Returns kInvalidType for an empty program; `*out_distance` (optional)
/// receives the winning distance.
TypeId NearestType(const TypingProgram& program, graph::GraphView g,
                   const TypeAssignment& tau, graph::ObjectId o,
                   size_t* out_distance = nullptr);

/// NearestType on the bit kernel: `index` spans (at least) the program's
/// typed links and `type_encs` holds the program signatures encoded by it
/// (one per type, in type order). Out-of-universe picture links are
/// tallied via EncodeFrozen extras, so the result — including the
/// tie-break toward the lowest type id — is identical to NearestType.
/// Callers that probe repeatedly (the Recast fallback, IncrementalTyper)
/// build the index once instead of re-merging sorted vectors per probe.
TypeId NearestTypeIndexed(graph::GraphView g, const TypeAssignment& tau,
                          graph::ObjectId o, const BitSignatureIndex& index,
                          const std::vector<BitSignature>& type_encs,
                          size_t* out_distance = nullptr);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_RECAST_H_
