#ifndef SCHEMEX_TYPING_ATOMIC_SORTS_H_
#define SCHEMEX_TYPING_ATOMIC_SORTS_H_

#include <functional>
#include <string>
#include <string_view>

#include "graph/graph_view.h"
#include "util/statusor.h"

namespace schemex::typing {

/// The paper's Remark 2.1: "in practice, it is often easy to separate the
/// atomic values into different sorts, e.g., integer, string, gif, sound
/// ... It is straightforward to extend the framework to handle multiple
/// atomic types."
///
/// We implement the extension as a *reduction*: RefineAtomicSorts returns
/// a copy of the database in which every edge leading to an atomic object
/// has its label refined from `l` to `l@<sort>`. All downstream machinery
/// (Stage 1-3, defect, clustering) then distinguishes sorts for free, and
/// extracted programs read naturally: `->age@int^0`, `->photo@url^0`.
/// Object ids are preserved exactly, so assignments computed on the
/// refined graph apply verbatim to the original.

/// Built-in sorts recognized by ClassifyValue, in matching priority order.
enum class AtomicSort {
  kInt,
  kReal,
  kBool,
  kDate,   ///< YYYY-MM-DD
  kUrl,    ///< http:// or https:// prefix
  kEmail,  ///< contains '@' with non-empty local/domain parts
  kString, ///< everything else
};

/// Stable lowercase name ("int", "real", ...).
std::string_view AtomicSortName(AtomicSort sort);

/// Classifies a value into a built-in sort.
AtomicSort ClassifyValue(std::string_view value);

/// Maps an atomic value to a sort *name*. Applications substitute their
/// own (the paper: "one can also apply (application specific) analysis
/// techniques to enrich the world of atomic types with domains such as
/// names, dates or addresses").
using SortClassifier = std::function<std::string(std::string_view)>;

/// The built-in classifier: AtomicSortName(ClassifyValue(v)).
std::string DefaultSortClassifier(std::string_view value);

/// Returns a copy of `g` with every complex->atomic edge relabeled
/// "label@sort". Complex->complex edges and all objects are unchanged.
graph::DataGraph RefineAtomicSorts(
    graph::GraphView g,
    const SortClassifier& classifier = DefaultSortClassifier);

/// The §2 "specific atomic values" extension (classifying by
/// "Male"/"Female" in a sex subobject): for edges with label
/// `label_name`, when the number of distinct atomic values at the far
/// end is at most `max_distinct`, refines the label to "label=<value>".
/// Returns NotFound if the label does not occur, FailedPrecondition if
/// the value diversity exceeds `max_distinct` (refining would shred the
/// schema).
util::StatusOr<graph::DataGraph> RefineByValueEnum(graph::GraphView g,
                                                   std::string_view label_name,
                                                   size_t max_distinct = 8);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_ATOMIC_SORTS_H_
