#include "typing/defect.h"

#include <set>

#include "util/string_util.h"

namespace schemex::typing {

namespace {

/// Smallest-id member of each type under `tau`, or kInvalidObject.
std::vector<graph::ObjectId> CanonicalMembers(const TypingProgram& program,
                                              const TypeAssignment& tau) {
  std::vector<graph::ObjectId> member(program.NumTypes(),
                                      graph::kInvalidObject);
  for (graph::ObjectId o = 0; o < tau.NumObjects(); ++o) {
    for (TypeId t : tau.TypesOf(o)) {
      if (member[static_cast<size_t>(t)] == graph::kInvalidObject) {
        member[static_cast<size_t>(t)] = o;
      }
    }
  }
  return member;
}

graph::ObjectId SmallestAtomic(graph::GraphView g) {
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsAtomic(o)) return o;
  }
  return graph::kInvalidObject;
}

}  // namespace

std::string DefectReport::ToString() const {
  return util::StringPrintf("defect=%zu (excess=%zu, deficit=%zu)", defect(),
                            excess, deficit);
}

size_t ComputeExcess(const TypingProgram& program, graph::GraphView g,
                     const TypeAssignment& tau, bool collect_facts,
                     DefectReport* report) {
  size_t excess = 0;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    const std::vector<TypeId>& from_types = tau.TypesOf(o);
    for (const graph::HalfEdge& e : g.OutEdges(o)) {
      bool used = false;
      if (g.IsAtomic(e.other)) {
        for (TypeId c : from_types) {
          if (program.type(c).signature.Contains(
                  TypedLink::OutAtomic(e.label))) {
            used = true;
            break;
          }
        }
      } else {
        const std::vector<TypeId>& to_types = tau.TypesOf(e.other);
        for (TypeId c : from_types) {
          for (TypeId c2 : to_types) {
            if (program.type(c).signature.Contains(
                    TypedLink::Out(e.label, c2)) ||
                program.type(c2).signature.Contains(
                    TypedLink::In(e.label, c))) {
              used = true;
              break;
            }
          }
          if (used) break;
        }
      }
      if (!used) {
        ++excess;
        if (collect_facts && report != nullptr) {
          report->excess_edges.push_back(EdgeFact{o, e.other, e.label});
        }
      }
    }
  }
  if (report != nullptr) report->excess = excess;
  return excess;
}

size_t ComputeDeficit(const TypingProgram& program, graph::GraphView g,
                      const TypeAssignment& tau, bool collect_facts,
                      DefectReport* report) {
  std::vector<graph::ObjectId> member = CanonicalMembers(program, tau);
  graph::ObjectId atomic_witness = SmallestAtomic(g);

  std::set<EdgeFact> invented;
  for (graph::ObjectId o = 0; o < tau.NumObjects(); ++o) {
    for (TypeId t : tau.TypesOf(o)) {
      for (const TypedLink& l : program.type(t).signature.links()) {
        bool witnessed = false;
        if (l.dir == Direction::kOutgoing) {
          for (const graph::HalfEdge& e : g.OutEdges(o)) {
            if (e.label != l.label) continue;
            if (l.target == kAtomicType ? g.IsAtomic(e.other)
                                        : tau.Has(e.other, l.target)) {
              witnessed = true;
              break;
            }
          }
          if (!witnessed) {
            graph::ObjectId w = l.target == kAtomicType
                                    ? atomic_witness
                                    : member[static_cast<size_t>(l.target)];
            invented.insert(EdgeFact{o, w, l.label});
          }
        } else {
          for (const graph::HalfEdge& e : g.InEdges(o)) {
            if (e.label != l.label) continue;
            if (tau.Has(e.other, l.target)) {
              witnessed = true;
              break;
            }
          }
          if (!witnessed) {
            graph::ObjectId w = member[static_cast<size_t>(l.target)];
            invented.insert(EdgeFact{w, o, l.label});
          }
        }
      }
    }
  }
  if (report != nullptr) {
    report->deficit = invented.size();
    if (collect_facts) {
      report->invented_edges.assign(invented.begin(), invented.end());
    }
  }
  return invented.size();
}

DefectReport ComputeDefect(const TypingProgram& program,
                           graph::GraphView g,
                           const TypeAssignment& tau, bool collect_facts) {
  DefectReport report;
  ComputeExcess(program, g, tau, collect_facts, &report);
  ComputeDeficit(program, g, tau, collect_facts, &report);
  return report;
}

TypeAssignment ExtentsToAssignment(const Extents& m) {
  size_t n = m.per_type.empty() ? 0 : m.per_type[0].size();
  TypeAssignment tau(n);
  for (size_t t = 0; t < m.per_type.size(); ++t) {
    m.per_type[t].ForEach([&](size_t o) {
      tau.Assign(static_cast<graph::ObjectId>(o), static_cast<TypeId>(t));
    });
  }
  return tau;
}

}  // namespace schemex::typing
