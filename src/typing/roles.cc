#include "typing/roles.h"

#include <algorithm>
#include <numeric>

namespace schemex::typing {

namespace {

/// Greedy set cover of `target` using signatures from `candidates`
/// (indices into program). Returns chosen candidate indices, or empty if
/// no full cover exists.
std::vector<TypeId> GreedyCover(const TypingProgram& program,
                                const TypeSignature& target,
                                const std::vector<TypeId>& candidates) {
  std::vector<TypeId> chosen;
  TypeSignature covered;
  while (covered.size() < target.size()) {
    TypeId best = kInvalidType;
    size_t best_gain = 0;
    for (TypeId s : candidates) {
      if (std::find(chosen.begin(), chosen.end(), s) != chosen.end()) continue;
      const TypeSignature& sig = program.type(s).signature;
      size_t gain = 0;
      for (const TypedLink& l : sig.links()) {
        if (!covered.Contains(l)) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = s;
      }
    }
    if (best == kInvalidType) return {};  // stuck: no full cover
    chosen.push_back(best);
    covered = TypeSignature::Union(covered, program.type(best).signature);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

RoleDecomposition DecomposeRoles(const TypingProgram& program,
                                 size_t min_cover_size) {
  const size_t n = program.NumTypes();
  std::vector<bool> eliminated(n, false);
  std::vector<std::vector<TypeId>> raw_cover(n);  // old ids

  // Process in decreasing signature size so that a composite type is
  // decided before any type it could cover.
  std::vector<TypeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  // DETERMINISM: signature sizes tie frequently; without the TypeId
  // tiebreak the cover assignment below would depend on sort internals.
  std::sort(order.begin(), order.end(), [&](TypeId a, TypeId b) {
    size_t sa = program.type(a).signature.size();
    size_t sb = program.type(b).signature.size();
    if (sa != sb) return sa > sb;
    return a < b;
  });

  for (TypeId t : order) {
    const TypeSignature& sig = program.type(t).signature;
    if (sig.size() < 2) continue;
    std::vector<TypeId> candidates;
    for (size_t s = 0; s < n; ++s) {
      TypeId sid = static_cast<TypeId>(s);
      if (sid == t || eliminated[s]) continue;
      const TypeSignature& ssig = program.type(sid).signature;
      if (ssig.size() < sig.size() && !ssig.empty() && ssig.IsSubsetOf(sig)) {
        candidates.push_back(sid);
      }
    }
    std::vector<TypeId> cover = GreedyCover(program, sig, candidates);
    if (cover.size() >= min_cover_size) {
      eliminated[static_cast<size_t>(t)] = true;
      raw_cover[static_cast<size_t>(t)] = std::move(cover);
    }
  }

  // Resolve covers transitively: a cover member eliminated later (it is
  // strictly smaller, so processed after t) is replaced by its own cover.
  auto resolve = [&](TypeId t) {
    std::vector<TypeId> out;
    std::vector<TypeId> stack = raw_cover[static_cast<size_t>(t)];
    while (!stack.empty()) {
      TypeId s = stack.back();
      stack.pop_back();
      if (eliminated[static_cast<size_t>(s)]) {
        for (TypeId c : raw_cover[static_cast<size_t>(s)]) stack.push_back(c);
      } else {
        out.push_back(s);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  RoleDecomposition result;
  result.type_map.assign(n, kInvalidType);
  result.covers.assign(n, {});

  // Survivor ids in original order.
  for (size_t t = 0; t < n; ++t) {
    if (!eliminated[t]) {
      result.type_map[t] =
          static_cast<TypeId>(result.program.NumTypes());
      result.program.AddType(program.type(static_cast<TypeId>(t)).name,
                             program.type(static_cast<TypeId>(t)).signature);
    } else {
      ++result.num_eliminated;
    }
  }

  // Old-target -> new-target map: survivors map through; eliminated types
  // map to their largest surviving cover member.
  std::vector<TypeId> target_map(n);
  for (size_t t = 0; t < n; ++t) {
    if (!eliminated[t]) {
      target_map[t] = result.type_map[t];
      continue;
    }
    std::vector<TypeId> cover = resolve(static_cast<TypeId>(t));
    result.covers[t].reserve(cover.size());
    for (TypeId c : cover) result.covers[t].push_back(result.type_map[c]);
    TypeId biggest = cover.empty() ? kInvalidType : cover[0];
    for (TypeId c : cover) {
      if (program.type(c).signature.size() >
          program.type(biggest).signature.size()) {
        biggest = c;
      }
    }
    target_map[t] =
        biggest == kInvalidType ? kInvalidType : result.type_map[biggest];
  }
  for (size_t t = 0; t < result.program.NumTypes(); ++t) {
    result.program.type(static_cast<TypeId>(t))
        .signature.RemapTargets(target_map);
  }
  return result;
}

std::vector<std::vector<TypeId>> RoleDecomposition::MapHomes(
    const std::vector<TypeId>& home) const {
  std::vector<std::vector<TypeId>> out(home.size());
  for (size_t o = 0; o < home.size(); ++o) {
    TypeId h = home[o];
    if (h == kInvalidType) continue;
    if (type_map[static_cast<size_t>(h)] != kInvalidType) {
      out[o] = {type_map[static_cast<size_t>(h)]};
    } else {
      out[o] = covers[static_cast<size_t>(h)];
    }
  }
  return out;
}

}  // namespace schemex::typing
