#ifndef SCHEMEX_TYPING_INCREMENTAL_REFINE_H_
#define SCHEMEX_TYPING_INCREMENTAL_REFINE_H_

#include <cstddef>
#include <span>
#include <string>

#include "graph/graph_view.h"
#include "typing/exec_options.h"
#include "typing/perfect_typing.h"
#include "util/statusor.h"

namespace schemex::typing {

/// Knobs for the incremental Stage-1 re-refiner.
struct IncrementalRefineOptions {
  /// Fall back to full refinement when a round's dirty set exceeds this
  /// fraction of the complex objects — past that point propagating the
  /// delta costs more than restarting, and the fallback is always safe
  /// (the result contract is identical either way).
  double max_dirty_fraction = 0.25;

  /// Hard cap on propagation rounds. The incremental iteration is not
  /// a plain refinement (deletions *merge* blocks), so unlike the cold
  /// path it has no monotone progress measure; pathological deltas
  /// (e.g. mutually referential fresh objects chasing each other's new
  /// block ids) could cycle. The cap converts "might not settle" into
  /// "run the cold path".
  size_t max_rounds = 64;

  ExecOptions exec;
};

/// Introspection of one IncrementalRefine call.
struct IncrementalRefineStats {
  bool fell_back = false;       ///< cold PerfectTypingViaHashRefinement ran
  std::string fallback_reason;  ///< empty when !fell_back
  size_t seed_dirty = 0;        ///< dirty objects in round 1
  size_t peak_dirty = 0;        ///< largest per-round dirty set
  size_t rounds = 0;            ///< propagation rounds executed
  size_t moved_objects = 0;     ///< block moves across all rounds
  size_t live_blocks = 0;       ///< blocks entering quotient coarsening
};

/// Incremental Stage 1: re-refines `previous` — a partition produced by
/// PerfectTypingViaRefinement / ViaHashRefinement on an earlier version
/// of the graph — into the perfect typing of `g`, touching only the
/// changed neighbourhood instead of restarting.
///
/// `touched` seeds the dirty set: every complex object whose local
/// picture may differ from the old graph's (delta endpoints plus newly
/// added complex objects; graph::DeltaOverlay::TouchedComplexObjects()
/// produces exactly this). Objects beyond previous.home.size() are
/// treated as new and always start dirty, so appended objects need not
/// appear in `touched`. Old objects must keep their ids and kinds;
/// `previous` must not assign a type to an object that is atomic in `g`.
///
/// The result is bit-identical to a cold PerfectTypingViaHashRefinement
/// of `g` at any thread count — same program, homes, weights, names.
/// Internally: (1) propagate — dirty objects re-key their canonical
/// picture encoding against the current blocks, joining an existing
/// block with an equal signature or founding a fresh one, and moves
/// dirty their complex neighbours for the next round; (2) coarsen — an
/// exact partition refinement over the surviving *blocks* (each block
/// is one node carrying its signature) recovers the coarsest stable
/// partition, undoing any over-splitting the propagation left behind;
/// (3) renumber by first occurrence in object order and assemble via
/// the cold path's own AssembleRefinementResult. When the dirty set
/// blows past options.max_dirty_fraction (or rounds past max_rounds),
/// falls back to the cold path wholesale — same result, full cost.
util::StatusOr<PerfectTypingResult> IncrementalRefine(
    graph::GraphView g, const PerfectTypingResult& previous,
    std::span<const graph::ObjectId> touched,
    const IncrementalRefineOptions& options = {},
    IncrementalRefineStats* stats = nullptr);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_INCREMENTAL_REFINE_H_
