#include "typing/recast.h"

#include "util/bitset.h"
#include "util/parallel_for.h"

namespace schemex::typing {

TypeSignature ObjectPicture(graph::GraphView g,
                            const TypeAssignment& tau, graph::ObjectId o) {
  std::vector<TypedLink> links;
  for (const graph::HalfEdge& e : g.OutEdges(o)) {
    if (g.IsAtomic(e.other)) {
      links.push_back(TypedLink::OutAtomic(e.label));
    } else {
      for (TypeId t : tau.TypesOf(e.other)) {
        links.push_back(TypedLink::Out(e.label, t));
      }
    }
  }
  for (const graph::HalfEdge& e : g.InEdges(o)) {
    for (TypeId t : tau.TypesOf(e.other)) {
      links.push_back(TypedLink::In(e.label, t));
    }
  }
  return TypeSignature::FromLinks(std::move(links));
}

TypeId NearestType(const TypingProgram& program, graph::GraphView g,
                   const TypeAssignment& tau, graph::ObjectId o,
                   size_t* out_distance) {
  TypeSignature picture = ObjectPicture(g, tau, o);
  TypeId best = kInvalidType;
  size_t best_d = 0;
  for (size_t t = 0; t < program.NumTypes(); ++t) {
    size_t d = TypeSignature::SymmetricDifferenceSize(
        picture, program.type(static_cast<TypeId>(t)).signature);
    if (best == kInvalidType || d < best_d) {
      best = static_cast<TypeId>(t);
      best_d = d;
    }
  }
  if (out_distance != nullptr) *out_distance = best_d;
  return best;
}

TypeId NearestTypeIndexed(graph::GraphView g, const TypeAssignment& tau,
                          graph::ObjectId o, const BitSignatureIndex& index,
                          const std::vector<BitSignature>& type_encs,
                          size_t* out_distance) {
  BitSignature picture = index.EncodeFrozen(ObjectPicture(g, tau, o));
  TypeId best = kInvalidType;
  size_t best_d = 0;
  for (size_t t = 0; t < type_encs.size(); ++t) {
    size_t d = BitSignatureIndex::Distance(picture, type_encs[t]);
    if (best == kInvalidType || d < best_d) {
      best = static_cast<TypeId>(t);
      best_d = d;
    }
  }
  if (out_distance != nullptr) *out_distance = best_d;
  return best;
}

util::StatusOr<RecastResult> Recast(
    const TypingProgram& program, graph::GraphView g,
    const std::vector<std::vector<TypeId>>& homes,
    const RecastOptions& options, const ExecOptions& exec) {
  RecastResult result;
  SCHEMEX_ASSIGN_OR_RETURN(result.gfp, ComputeGfp(program, g, nullptr, exec));

  const size_t num_objects = g.NumObjects();
  util::PoolRef pool(exec.pool, exec.num_threads);
  result.assignment = TypeAssignment(num_objects);

  // Homes + exact GFP types. Each object's type row is written only by
  // its shard; extents are read-only here, so shards are independent.
  {
    auto shards = util::ShardRanges(num_objects, pool.num_threads());
    std::vector<size_t> shard_exact(shards.size(), 0);
    util::RunShards(pool.get(), shards.size(), [&](size_t s) {
      for (size_t i = shards[s].first; i < shards[s].second; ++i) {
        auto o = static_cast<graph::ObjectId>(i);
        if (i < homes.size()) {
          for (TypeId t : homes[i]) result.assignment.Assign(o, t);
        }
        if (!g.IsComplex(o)) continue;
        bool exact = false;
        for (size_t t = 0; t < program.NumTypes(); ++t) {
          if (result.gfp.Contains(static_cast<TypeId>(t), o)) {
            exact = true;
            if (options.add_gfp_types) {
              result.assignment.Assign(o, static_cast<TypeId>(t));
            }
          }
        }
        if (exact) ++shard_exact[s];
      }
    });
    for (size_t c : shard_exact) result.num_exact += c;
  }
  SCHEMEX_RETURN_IF_ERROR(exec.Poll());

  // Fallback pass runs against the assignment built so far, so pictures of
  // stragglers see their neighbors' final types.
  const bool fallback = options.nearest_type_fallback && program.NumTypes() > 0;
  std::vector<graph::ObjectId> stragglers;
  for (size_t i = 0; i < num_objects; ++i) {
    auto o = static_cast<graph::ObjectId>(i);
    if (!g.IsComplex(o)) continue;
    if (!result.assignment.TypesOf(o).empty()) continue;
    if (fallback) {
      stragglers.push_back(o);
    } else {
      ++result.num_untyped;
    }
  }
  if (stragglers.empty()) return result;

  // Speculative phase: every straggler's nearest type against the
  // *pre-fallback* assignment, sharded on the bit kernel.
  BitSignatureIndex index(program);
  std::vector<BitSignature> type_encs(program.NumTypes());
  for (size_t t = 0; t < program.NumTypes(); ++t) {
    type_encs[t] =
        index.EncodeFrozen(program.type(static_cast<TypeId>(t)).signature);
  }
  std::vector<TypeId> speculative(stragglers.size(), kInvalidType);
  {
    auto shards = util::ShardRanges(stragglers.size(), pool.num_threads());
    util::RunShards(pool.get(), shards.size(), [&](size_t s) {
      for (size_t i = shards[s].first; i < shards[s].second; ++i) {
        speculative[i] = NearestTypeIndexed(g, result.assignment,
                                            stragglers[i], index, type_encs);
      }
    });
  }

  // Sequential reduce in object order. A speculative answer is stale only
  // if some neighbor was fallback-assigned earlier in this pass (its
  // picture gained a link); those recompute against the live assignment.
  // A straggler is never its own neighbor here: its bit is set *after* it
  // is typed, matching the sequential reference where an object's picture
  // is taken before its own assignment.
  util::DenseBitset assigned_in_pass(num_objects);
  for (size_t i = 0; i < stragglers.size(); ++i) {
    if (i % kGfpCancelPollInterval == 0) SCHEMEX_RETURN_IF_ERROR(exec.Poll());
    graph::ObjectId o = stragglers[i];
    bool stale = false;
    for (const graph::HalfEdge& e : g.OutEdges(o)) {
      if (!g.IsAtomic(e.other) && assigned_in_pass.Test(e.other)) {
        stale = true;
        break;
      }
    }
    if (!stale) {
      for (const graph::HalfEdge& e : g.InEdges(o)) {
        if (assigned_in_pass.Test(e.other)) {
          stale = true;
          break;
        }
      }
    }
    TypeId t = stale ? NearestTypeIndexed(g, result.assignment, o, index,
                                          type_encs)
                     : speculative[i];
    result.assignment.Assign(o, t);
    assigned_in_pass.Set(o);
    ++result.num_fallback;
  }
  return result;
}

}  // namespace schemex::typing
