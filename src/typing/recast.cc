#include "typing/recast.h"

namespace schemex::typing {

TypeSignature ObjectPicture(graph::GraphView g,
                            const TypeAssignment& tau, graph::ObjectId o) {
  std::vector<TypedLink> links;
  for (const graph::HalfEdge& e : g.OutEdges(o)) {
    if (g.IsAtomic(e.other)) {
      links.push_back(TypedLink::OutAtomic(e.label));
    } else {
      for (TypeId t : tau.TypesOf(e.other)) {
        links.push_back(TypedLink::Out(e.label, t));
      }
    }
  }
  for (const graph::HalfEdge& e : g.InEdges(o)) {
    for (TypeId t : tau.TypesOf(e.other)) {
      links.push_back(TypedLink::In(e.label, t));
    }
  }
  return TypeSignature::FromLinks(std::move(links));
}

TypeId NearestType(const TypingProgram& program, graph::GraphView g,
                   const TypeAssignment& tau, graph::ObjectId o,
                   size_t* out_distance) {
  TypeSignature picture = ObjectPicture(g, tau, o);
  TypeId best = kInvalidType;
  size_t best_d = 0;
  for (size_t t = 0; t < program.NumTypes(); ++t) {
    size_t d = TypeSignature::SymmetricDifferenceSize(
        picture, program.type(static_cast<TypeId>(t)).signature);
    if (best == kInvalidType || d < best_d) {
      best = static_cast<TypeId>(t);
      best_d = d;
    }
  }
  if (out_distance != nullptr) *out_distance = best_d;
  return best;
}

util::StatusOr<RecastResult> Recast(
    const TypingProgram& program, graph::GraphView g,
    const std::vector<std::vector<TypeId>>& homes,
    const RecastOptions& options) {
  RecastResult result;
  SCHEMEX_ASSIGN_OR_RETURN(result.gfp, ComputeGfp(program, g));

  result.assignment = TypeAssignment(g.NumObjects());
  for (size_t o = 0; o < homes.size(); ++o) {
    for (TypeId t : homes[o]) {
      result.assignment.Assign(static_cast<graph::ObjectId>(o), t);
    }
  }
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (!g.IsComplex(o)) continue;
    bool exact = false;
    for (size_t t = 0; t < program.NumTypes(); ++t) {
      if (result.gfp.Contains(static_cast<TypeId>(t), o)) {
        exact = true;
        if (options.add_gfp_types) {
          result.assignment.Assign(o, static_cast<TypeId>(t));
        }
      }
    }
    if (exact) ++result.num_exact;
  }

  // Fallback pass runs against the assignment built so far, so pictures of
  // stragglers see their neighbors' final types.
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (!g.IsComplex(o)) continue;
    if (!result.assignment.TypesOf(o).empty()) continue;
    if (options.nearest_type_fallback && program.NumTypes() > 0) {
      TypeId t = NearestType(program, g, result.assignment, o);
      result.assignment.Assign(o, t);
      ++result.num_fallback;
    } else {
      ++result.num_untyped;
    }
  }
  return result;
}

}  // namespace schemex::typing
