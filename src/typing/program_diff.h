#ifndef SCHEMEX_TYPING_PROGRAM_DIFF_H_
#define SCHEMEX_TYPING_PROGRAM_DIFF_H_

#include <string>
#include <vector>

#include "graph/label.h"
#include "typing/typing_program.h"

namespace schemex::typing {

/// Structural diff between two typing programs — e.g. schemas extracted
/// from two crawls of the same source, to see how the implicit structure
/// drifted. Types are matched greedily by minimal simple distance d
/// between rule bodies (ties to lower ids); leftovers on either side are
/// additions/removals.
struct TypeMatch {
  TypeId before;
  TypeId after;
  size_t distance;  ///< d(before.signature, after.signature)

  friend bool operator==(const TypeMatch&, const TypeMatch&) = default;
};

struct ProgramDiff {
  std::vector<TypeMatch> matched;   ///< sorted by `before`
  std::vector<TypeId> removed;      ///< types of `before` with no partner
  std::vector<TypeId> added;        ///< types of `after` with no partner

  /// Sum of matched distances — 0 iff matched types are body-identical.
  size_t total_drift = 0;

  bool identical() const {
    return removed.empty() && added.empty() && total_drift == 0;
  }

  /// Human-readable report ("~ person: 2 links changed", "+ blog", ...).
  std::string ToString(const TypingProgram& before,
                       const TypingProgram& after,
                       const graph::LabelInterner& labels) const;
};

/// Matching is size-bounded greedy: repeatedly pair the globally closest
/// (before, after) types until one side runs out or the closest pair is
/// farther than `max_match_distance` (then the rest are adds/removes).
ProgramDiff DiffPrograms(const TypingProgram& before,
                         const TypingProgram& after,
                         size_t max_match_distance = 1000);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_PROGRAM_DIFF_H_
