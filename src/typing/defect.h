#ifndef SCHEMEX_TYPING_DEFECT_H_
#define SCHEMEX_TYPING_DEFECT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "typing/assignment.h"
#include "typing/gfp.h"
#include "typing/typing_program.h"

namespace schemex::typing {

/// An edge fact, used for reporting excess edges and invented (deficit)
/// facts. `from`/`to` may be kInvalidObject in invented facts when the
/// target type has an empty extent and no concrete witness exists.
struct EdgeFact {
  graph::ObjectId from;
  graph::ObjectId to;
  graph::LabelId label;

  friend bool operator==(const EdgeFact&, const EdgeFact&) = default;
  friend auto operator<=>(const EdgeFact&, const EdgeFact&) = default;
};

/// The paper's typing-quality measure (§2 "Defect: Excess and Deficit").
struct DefectReport {
  /// Ground link facts not used to justify any type membership.
  size_t excess = 0;
  /// Minimum (greedily approximated, see ComputeDeficit) number of ground
  /// link facts that must be invented so every assignment is derivable.
  size_t deficit = 0;

  size_t defect() const { return excess + deficit; }

  /// The actual offending facts (populated when `collect_facts`).
  std::vector<EdgeFact> excess_edges;
  std::vector<EdgeFact> invented_edges;

  std::string ToString() const;
};

/// Counts the excess of assignment `tau` for `program` on `g`: an edge
/// (o -l-> o') is *used* iff some c with o in tau(c) has ->l^{c'} for some
/// c' with o' in tau(c') (or ->l^0 when o' is atomic), or some such c' has
/// <-l^{c}. Everything else is excess.
size_t ComputeExcess(const TypingProgram& program, graph::GraphView g,
                     const TypeAssignment& tau, bool collect_facts,
                     DefectReport* report);

/// Counts the deficit of assignment `tau`: for every (object o, type t in
/// tau(o), typed link of t) without a witness under tau, one link fact is
/// invented. Witnesses are chosen canonically (the smallest-id member of
/// the target type / smallest atomic object), and identical invented facts
/// are counted once — a greedy upper bound on the true minimum, which is
/// itself NP-hard to compute exactly (the paper likewise only bounds it,
/// §5.2 end).
size_t ComputeDeficit(const TypingProgram& program, graph::GraphView g,
                      const TypeAssignment& tau, bool collect_facts,
                      DefectReport* report);

/// Excess + deficit in one report.
DefectReport ComputeDefect(const TypingProgram& program,
                           graph::GraphView g,
                           const TypeAssignment& tau,
                           bool collect_facts = false);

/// Adapter: views GFP extents as an assignment (every object assigned to
/// every type whose extent contains it).
TypeAssignment ExtentsToAssignment(const Extents& m);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_DEFECT_H_
