#include "typing/gfp.h"

#include <algorithm>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "util/parallel_for.h"

namespace schemex::typing {

namespace {

/// Encodes what a typed link consumes — (direction, label, target type) —
/// into one comparable word. When an object leaves `target`'s extent,
/// every neighbor across a matching edge may lose its justification for
/// any type whose signature contains this key. Layout (injective for
/// label < 2^31, target >= 0):
///   [63:33] label   [32] direction   [31:0] target
inline uint64_t EncodeDependencyKey(Direction dir, graph::LabelId label,
                                    TypeId target) {
  return (static_cast<uint64_t>(label) << 33) |
         (static_cast<uint64_t>(dir == Direction::kOutgoing ? 1 : 0) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(target));
}

/// Flat sorted dependency index: dependents of key k are the TypeIds in
/// types[offsets[i]..offsets[i+1]) where keys[i] == k. Replaces the
/// std::map<DependencyKey, vector<TypeId>> of the original implementation
/// — one binary search over a contiguous array per lookup, no node
/// allocations.
struct DependencyIndex {
  std::vector<uint64_t> keys;      // sorted, unique
  std::vector<uint32_t> offsets;   // size keys.size() + 1
  std::vector<TypeId> types;       // grouped by key, TypeId ascending

  static DependencyIndex Build(const TypingProgram& program) {
    std::vector<std::pair<uint64_t, TypeId>> pairs;
    for (size_t t = 0; t < program.NumTypes(); ++t) {
      for (const TypedLink& l :
           program.type(static_cast<TypeId>(t)).signature.links()) {
        if (l.target == kAtomicType) continue;  // atomic extents never shrink
        pairs.emplace_back(EncodeDependencyKey(l.dir, l.label, l.target),
                           static_cast<TypeId>(t));
      }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

    DependencyIndex index;
    index.keys.reserve(pairs.size());
    index.types.reserve(pairs.size());
    for (const auto& [key, type] : pairs) {
      if (index.keys.empty() || index.keys.back() != key) {
        index.keys.push_back(key);
        index.offsets.push_back(static_cast<uint32_t>(index.types.size()));
      }
      index.types.push_back(type);
    }
    index.offsets.push_back(static_cast<uint32_t>(index.types.size()));
    return index;
  }

  std::span<const TypeId> Lookup(Direction dir, graph::LabelId label,
                                 TypeId target) const {
    uint64_t key = EncodeDependencyKey(dir, label, target);
    auto it = std::lower_bound(keys.begin(), keys.end(), key);
    if (it == keys.end() || *it != key) return {};
    size_t i = static_cast<size_t>(it - keys.begin());
    return {types.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
};

}  // namespace

bool SatisfiesSignature(const TypeSignature& sig, graph::GraphView g,
                        const Extents& m, graph::ObjectId o) {
  for (const TypedLink& l : sig.links()) {
    bool ok = false;
    if (l.dir == Direction::kOutgoing) {
      for (const graph::HalfEdge& e : g.OutEdges(o)) {
        if (e.label != l.label) continue;
        if (l.target == kAtomicType ? g.IsAtomic(e.other)
                                    : m.Contains(l.target, e.other)) {
          ok = true;
          break;
        }
      }
    } else {
      for (const graph::HalfEdge& e : g.InEdges(o)) {
        if (e.label != l.label) continue;
        if (m.Contains(l.target, e.other)) {
          ok = true;
          break;
        }
      }
    }
    if (!ok) return false;
  }
  return true;
}

util::StatusOr<Extents> ComputeGfp(const TypingProgram& program,
                                   graph::GraphView g,
                                   GfpStats* stats,
                                   const ExecOptions& options) {
  SCHEMEX_RETURN_IF_ERROR(program.Validate());
  const size_t n = g.NumObjects();
  const size_t num_types = program.NumTypes();

  util::PoolRef pool(options.pool, options.num_threads);

  Extents m;
  m.per_type.assign(num_types, util::DenseBitset(n));

  // --- Step 1: label/direction prefilter. -------------------------------
  // For each complex object, collect its out- and in-label sets once, then
  // test every type's label requirements against them. Sharded over
  // word-aligned object ranges: workers set bits of disjoint 64-bit words
  // in every extent, so the phase is race-free and the resulting bitsets
  // are identical for any thread count.
  GfpStats local_stats;
  {
    auto shards = util::ShardRanges(n, pool.num_threads(), /*align=*/64);
    std::vector<size_t> shard_candidates(shards.size(), 0);
    util::RunShards(pool.get(), shards.size(), [&](size_t s) {
      std::vector<graph::LabelId> out_labels, in_labels, out_atomic_labels;
      size_t candidates = 0;
      for (graph::ObjectId o = static_cast<graph::ObjectId>(shards[s].first);
           o < shards[s].second; ++o) {
        if (!g.IsComplex(o)) continue;
        out_labels.clear();
        in_labels.clear();
        // Track which labels also reach an atomic object (for ->l^0).
        out_atomic_labels.clear();
        for (const graph::HalfEdge& e : g.OutEdges(o)) {
          out_labels.push_back(e.label);
          if (g.IsAtomic(e.other)) out_atomic_labels.push_back(e.label);
        }
        for (const graph::HalfEdge& e : g.InEdges(o)) {
          in_labels.push_back(e.label);
        }
        auto uniq = [](std::vector<graph::LabelId>& v) {
          std::sort(v.begin(), v.end());
          v.erase(std::unique(v.begin(), v.end()), v.end());
        };
        uniq(out_labels);
        uniq(in_labels);
        uniq(out_atomic_labels);
        auto has = [](const std::vector<graph::LabelId>& v,
                      graph::LabelId l) {
          return std::binary_search(v.begin(), v.end(), l);
        };
        for (size_t t = 0; t < num_types; ++t) {
          bool candidate = true;
          for (const TypedLink& l :
               program.type(static_cast<TypeId>(t)).signature.links()) {
            bool present =
                l.dir == Direction::kOutgoing
                    ? (l.target == kAtomicType ? has(out_atomic_labels, l.label)
                                               : has(out_labels, l.label))
                    : has(in_labels, l.label);
            if (!present) {
              candidate = false;
              break;
            }
          }
          if (candidate) {
            m.per_type[t].Set(o);
            ++candidates;
          }
        }
      }
      shard_candidates[s] = candidates;
    });
    for (size_t c : shard_candidates) local_stats.initial_candidates += c;
  }
  SCHEMEX_RETURN_IF_ERROR(options.Poll());

  // --- Step 2: worklist refinement. --------------------------------------
  DependencyIndex dependents = DependencyIndex::Build(program);

  // Initial full check of every candidate pair, sharded over type ranges.
  // Workers only read the prefiltered extents and record failures locally;
  // the removals are applied (and the worklist seeded) sequentially in
  // (type, object) order afterwards. A pair that passes here but loses its
  // justification once the removals land is caught by worklist
  // propagation, so the fixpoint — which is unique — is unchanged.
  std::deque<std::pair<graph::ObjectId, TypeId>> work;
  {
    auto shards = util::ShardRanges(num_types, pool.num_threads());
    std::vector<std::vector<std::pair<graph::ObjectId, TypeId>>> failed(
        shards.size());
    std::vector<size_t> shard_rechecks(shards.size(), 0);
    util::RunShards(pool.get(), shards.size(), [&](size_t s) {
      size_t rechecks = 0;
      for (size_t t = shards[s].first; t < shards[s].second; ++t) {
        const TypeSignature& sig =
            program.type(static_cast<TypeId>(t)).signature;
        m.per_type[t].ForEach([&](size_t o) {
          ++rechecks;
          if (!SatisfiesSignature(sig, g, m,
                                  static_cast<graph::ObjectId>(o))) {
            failed[s].emplace_back(static_cast<graph::ObjectId>(o),
                                   static_cast<TypeId>(t));
          }
        });
      }
      shard_rechecks[s] = rechecks;
    });
    for (size_t s = 0; s < shards.size(); ++s) {
      local_stats.rechecks += shard_rechecks[s];
      // Removing members only makes signatures harder to satisfy, so every
      // recorded failure still fails after earlier removals: clear directly.
      for (auto [o, t] : failed[s]) {
        m.per_type[static_cast<size_t>(t)].Clear(o);
        ++local_stats.removed;
        work.emplace_back(o, t);
      }
    }
  }
  SCHEMEX_RETURN_IF_ERROR(options.Poll());

  auto recheck = [&](graph::ObjectId o, TypeId t) {
    if (!m.per_type[static_cast<size_t>(t)].Test(o)) return;
    ++local_stats.rechecks;
    if (!SatisfiesSignature(program.type(t).signature, g, m, o)) {
      m.per_type[static_cast<size_t>(t)].Clear(o);
      ++local_stats.removed;
      work.emplace_back(o, t);
    }
  };

  size_t pops = 0;
  while (!work.empty()) {
    if (options.check_cancel && pops % kGfpCancelPollInterval == 0) {
      SCHEMEX_RETURN_IF_ERROR(options.check_cancel());
    }
    ++pops;
    auto [x, t_lost] = work.front();
    work.pop_front();
    // x left t_lost. A neighbor o with an OUTGOING l-edge to x depended on
    // key (kOutgoing, l, t_lost); a neighbor with an INCOMING l-edge from x
    // depended on key (kIncoming, l, t_lost).
    for (const graph::HalfEdge& e : g.InEdges(x)) {
      for (TypeId t :
           dependents.Lookup(Direction::kOutgoing, e.label, t_lost)) {
        recheck(e.other, t);
      }
    }
    for (const graph::HalfEdge& e : g.OutEdges(x)) {
      for (TypeId t :
           dependents.Lookup(Direction::kIncoming, e.label, t_lost)) {
        recheck(e.other, t);
      }
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return m;
}

}  // namespace schemex::typing
