#include "typing/gfp.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

namespace schemex::typing {

namespace {

/// Key describing what a typed link consumes: (direction, label, target
/// type). When an object leaves `target`'s extent, every neighbor across a
/// matching edge may lose its justification for any type whose signature
/// contains this key.
struct DependencyKey {
  Direction dir;
  graph::LabelId label;
  TypeId target;

  friend auto operator<=>(const DependencyKey&, const DependencyKey&) =
      default;
};

}  // namespace

bool SatisfiesSignature(const TypeSignature& sig, graph::GraphView g,
                        const Extents& m, graph::ObjectId o) {
  for (const TypedLink& l : sig.links()) {
    bool ok = false;
    if (l.dir == Direction::kOutgoing) {
      for (const graph::HalfEdge& e : g.OutEdges(o)) {
        if (e.label != l.label) continue;
        if (l.target == kAtomicType ? g.IsAtomic(e.other)
                                    : m.Contains(l.target, e.other)) {
          ok = true;
          break;
        }
      }
    } else {
      for (const graph::HalfEdge& e : g.InEdges(o)) {
        if (e.label != l.label) continue;
        if (m.Contains(l.target, e.other)) {
          ok = true;
          break;
        }
      }
    }
    if (!ok) return false;
  }
  return true;
}

util::StatusOr<Extents> ComputeGfp(const TypingProgram& program,
                                   graph::GraphView g,
                                   GfpStats* stats) {
  SCHEMEX_RETURN_IF_ERROR(program.Validate());
  const size_t n = g.NumObjects();
  const size_t num_types = program.NumTypes();

  Extents m;
  m.per_type.assign(num_types, util::DenseBitset(n));

  // --- Step 1: label/direction prefilter. -------------------------------
  // For each complex object, collect its out- and in-label sets once, then
  // test every type's label requirements against them.
  GfpStats local_stats;
  std::vector<graph::LabelId> out_labels, in_labels;
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (!g.IsComplex(o)) continue;
    out_labels.clear();
    in_labels.clear();
    // Track which labels also reach an atomic object (for ->l^0 checks).
    std::vector<graph::LabelId> out_atomic_labels;
    for (const graph::HalfEdge& e : g.OutEdges(o)) {
      out_labels.push_back(e.label);
      if (g.IsAtomic(e.other)) out_atomic_labels.push_back(e.label);
    }
    for (const graph::HalfEdge& e : g.InEdges(o)) in_labels.push_back(e.label);
    auto uniq = [](std::vector<graph::LabelId>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    uniq(out_labels);
    uniq(in_labels);
    uniq(out_atomic_labels);
    auto has = [](const std::vector<graph::LabelId>& v, graph::LabelId l) {
      return std::binary_search(v.begin(), v.end(), l);
    };
    for (size_t t = 0; t < num_types; ++t) {
      bool candidate = true;
      for (const TypedLink& l :
           program.type(static_cast<TypeId>(t)).signature.links()) {
        bool present =
            l.dir == Direction::kOutgoing
                ? (l.target == kAtomicType ? has(out_atomic_labels, l.label)
                                           : has(out_labels, l.label))
                : has(in_labels, l.label);
        if (!present) {
          candidate = false;
          break;
        }
      }
      if (candidate) {
        m.per_type[t].Set(o);
        ++local_stats.initial_candidates;
      }
    }
  }

  // --- Step 2: worklist refinement. --------------------------------------
  // dependents[(dir, label, target)] = types whose signatures contain that
  // typed link. Note the key's direction is as seen by the *dependent*
  // object, so when x leaves `target` we walk x's edges in the opposite
  // direction to find dependents.
  std::map<DependencyKey, std::vector<TypeId>> dependents;
  for (size_t t = 0; t < num_types; ++t) {
    for (const TypedLink& l :
         program.type(static_cast<TypeId>(t)).signature.links()) {
      if (l.target == kAtomicType) continue;  // atomic extents never shrink
      dependents[DependencyKey{l.dir, l.label, l.target}].push_back(
          static_cast<TypeId>(t));
    }
  }

  std::deque<std::pair<graph::ObjectId, TypeId>> work;
  auto recheck = [&](graph::ObjectId o, TypeId t) {
    if (!m.per_type[static_cast<size_t>(t)].Test(o)) return;
    ++local_stats.rechecks;
    if (!SatisfiesSignature(program.type(t).signature, g, m, o)) {
      m.per_type[static_cast<size_t>(t)].Clear(o);
      ++local_stats.removed;
      work.emplace_back(o, t);
    }
  };

  // Initial full check of every candidate pair.
  for (size_t t = 0; t < num_types; ++t) {
    std::vector<graph::ObjectId> members;
    m.per_type[t].ForEach(
        [&](size_t o) { members.push_back(static_cast<graph::ObjectId>(o)); });
    for (graph::ObjectId o : members) recheck(o, static_cast<TypeId>(t));
  }

  while (!work.empty()) {
    auto [x, t_lost] = work.front();
    work.pop_front();
    // x left t_lost. A neighbor o with an OUTGOING l-edge to x depended on
    // key (kOutgoing, l, t_lost); a neighbor with an INCOMING l-edge from x
    // depended on key (kIncoming, l, t_lost).
    for (const graph::HalfEdge& e : g.InEdges(x)) {
      auto it =
          dependents.find(DependencyKey{Direction::kOutgoing, e.label, t_lost});
      if (it == dependents.end()) continue;
      for (TypeId t : it->second) recheck(e.other, t);
    }
    for (const graph::HalfEdge& e : g.OutEdges(x)) {
      auto it =
          dependents.find(DependencyKey{Direction::kIncoming, e.label, t_lost});
      if (it == dependents.end()) continue;
      for (TypeId t : it->second) recheck(e.other, t);
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return m;
}

}  // namespace schemex::typing
