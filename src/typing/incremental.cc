#include "typing/incremental.h"

namespace schemex::typing {

bool SatisfiesUnderAssignment(const TypeSignature& sig, graph::GraphView g,
                              const TypeAssignment& tau, graph::ObjectId o) {
  for (const TypedLink& l : sig.links()) {
    bool ok = false;
    if (l.dir == Direction::kOutgoing) {
      for (const graph::HalfEdge& e : g.OutEdges(o)) {
        if (e.label != l.label) continue;
        if (l.target == kAtomicType ? g.IsAtomic(e.other)
                                    : tau.Has(e.other, l.target)) {
          ok = true;
          break;
        }
      }
    } else {
      for (const graph::HalfEdge& e : g.InEdges(o)) {
        if (e.label != l.label) continue;
        if (tau.Has(e.other, l.target)) {
          ok = true;
          break;
        }
      }
    }
    if (!ok) return false;
  }
  return true;
}

IncrementalTyper::IncrementalTyper(TypingProgram program,
                                   graph::DataGraph base,
                                   TypeAssignment assignment)
    : program_(std::move(program)),
      graph_(std::move(base)),
      assignment_(std::move(assignment)),
      index_(program_) {
  assignment_.Resize(graph_.NumObjects());
  type_encs_.resize(program_.NumTypes());
  for (size_t t = 0; t < program_.NumTypes(); ++t) {
    type_encs_[t] =
        index_.EncodeFrozen(program_.type(static_cast<TypeId>(t)).signature);
  }
}

util::StatusOr<IncrementalTyper::TypedObject> IncrementalTyper::AddAndType(
    const NewObject& object) {
  // Validate references before mutating anything.
  for (const auto& [label, target] : object.refs) {
    if (target >= graph_.NumObjects()) {
      return util::Status::InvalidArgument("reference target out of range");
    }
  }
  TypedObject result;
  result.id = graph_.AddComplex(object.name);
  for (const auto& [label, value] : object.fields) {
    graph::ObjectId atom = graph_.AddAtomic(value);
    SCHEMEX_RETURN_IF_ERROR(graph_.AddEdge(result.id, atom, label));
  }
  for (const auto& [label, target] : object.refs) {
    SCHEMEX_RETURN_IF_ERROR(graph_.AddEdge(result.id, target, label));
  }
  assignment_.Resize(graph_.NumObjects());

  for (size_t t = 0; t < program_.NumTypes(); ++t) {
    if (SatisfiesUnderAssignment(
            program_.type(static_cast<TypeId>(t)).signature, graph_,
            assignment_, result.id)) {
      result.exact_types.push_back(static_cast<TypeId>(t));
    }
  }
  ++num_added_;
  if (!result.exact_types.empty()) {
    ++num_exact_;
    for (TypeId t : result.exact_types) assignment_.Assign(result.id, t);
  } else if (program_.NumTypes() > 0) {
    result.fallback_type =
        NearestTypeIndexed(graph_, assignment_, result.id, index_, type_encs_,
                           &result.fallback_distance);
    assignment_.Assign(result.id, result.fallback_type);
    total_fallback_distance_ += result.fallback_distance;
  }
  return result;
}

double IncrementalTyper::MeanFallbackDistance() const {
  size_t fallbacks = num_fallback();
  return fallbacks == 0 ? 0.0
                        : static_cast<double>(total_fallback_distance_) /
                              static_cast<double>(fallbacks);
}

bool IncrementalTyper::RetypeRecommended(double misfit_fraction,
                                         size_t min_arrivals) const {
  return RetypeRecommended(num_added_, num_fallback(), misfit_fraction,
                           min_arrivals);
}

bool IncrementalTyper::RetypeRecommended(size_t num_added, size_t num_fallback,
                                         double misfit_fraction,
                                         size_t min_arrivals) {
  if (num_added < min_arrivals) return false;
  return static_cast<double>(num_fallback) >
         misfit_fraction * static_cast<double>(num_added);
}

}  // namespace schemex::typing
