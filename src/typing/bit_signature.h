#ifndef SCHEMEX_TYPING_BIT_SIGNATURE_H_
#define SCHEMEX_TYPING_BIT_SIGNATURE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "typing/type_signature.h"
#include "typing/typing_program.h"

namespace schemex::typing {

/// A TypeSignature packed into fixed-width bit-vector form: one bit per
/// distinct typed link of the owning BitSignatureIndex's universe, so the
/// paper's symmetric-difference distance d(t1, t2) (§5.2) becomes an
/// XOR + popcount loop over uint64_t words instead of a sorted-vector
/// merge. `extra` counts links of the source signature that lie OUTSIDE
/// the universe (only EncodeFrozen produces them); each such link can
/// never match a universe-only signature, so it contributes exactly +1 to
/// any distance against one.
struct BitSignature {
  std::vector<uint64_t> words;
  uint32_t extra = 0;
};

/// Maps the distinct typed links of a program (plus any discovered later)
/// to dense bit positions, assigned in first-encounter order — rebuilding
/// the index over the same signatures in the same order always yields the
/// same packing, which keeps every parallel consumer deterministic.
///
/// Two encoding modes:
///  * Encode() registers unseen links, growing the universe; use it for
///    signatures that themselves define the space (Stage-2 rule bodies,
///    which mutate as clustering coalesces targets).
///  * EncodeFrozen() is const and counts unseen links in `extra`; use it
///    for probe signatures (Stage-3 object pictures) compared only
///    against universe-only signatures.
///
/// Encodings taken at different universe sizes stay comparable: Distance
/// zero-extends the shorter word vector, and bits are only ever appended,
/// never reassigned.
///
/// Not thread-safe for Encode; EncodeFrozen and Distance are safe to call
/// concurrently with each other (no mutation).
class BitSignatureIndex {
 public:
  BitSignatureIndex() = default;

  /// Registers every distinct typed link of `program`, in type order.
  explicit BitSignatureIndex(const TypingProgram& program);

  /// Number of distinct typed links registered so far (the live L).
  size_t NumBits() const { return bit_of_.size(); }

  /// Words needed to hold every registered bit.
  size_t NumWords() const { return (NumBits() + 63) / 64; }

  /// Packs `sig`, assigning fresh bits to unseen links (mutating).
  BitSignature Encode(const TypeSignature& sig);

  /// Packs `sig` without growing the universe; out-of-universe links are
  /// tallied in the result's `extra`.
  BitSignature EncodeFrozen(const TypeSignature& sig) const;

  /// |a Δ b| over the packed words (+ both extras). Exactly equal to
  /// TypeSignature::SymmetricDifferenceSize for encodings of this index
  /// whenever at most one side carries extras and the other is
  /// universe-only — the only way this class hands them out.
  static size_t Distance(const BitSignature& a, const BitSignature& b);

 private:
  struct LinkHash {
    size_t operator()(const TypedLink& l) const {
      return static_cast<size_t>(HashTypedLink(l));
    }
  };

  uint32_t GetOrAddBit(const TypedLink& l);

  std::unordered_map<TypedLink, uint32_t, LinkHash> bit_of_;
};

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_BIT_SIGNATURE_H_
