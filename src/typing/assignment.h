#ifndef SCHEMEX_TYPING_ASSIGNMENT_H_
#define SCHEMEX_TYPING_ASSIGNMENT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "graph/data_graph.h"
#include "typing/typed_link.h"

namespace schemex::typing {

/// A *type assignment* tau (§2 "Defect"): for every object, the set of
/// types it is assigned to. Unlike Extents (which are GFP-derived), an
/// assignment is free-form — objects may be assigned to types they do not
/// fully satisfy; the deficit measures exactly that gap.
class TypeAssignment {
 public:
  TypeAssignment() = default;

  /// Creates an empty assignment over `num_objects` objects.
  explicit TypeAssignment(size_t num_objects) : types_of_(num_objects) {}

  size_t NumObjects() const { return types_of_.size(); }

  /// Grows (or shrinks) the object space; new objects start untyped.
  void Resize(size_t num_objects) { types_of_.resize(num_objects); }

  /// Adds `t` to `o`'s type set (no-op if already present).
  void Assign(graph::ObjectId o, TypeId t) {
    auto& v = types_of_[o];
    auto it = std::lower_bound(v.begin(), v.end(), t);
    if (it == v.end() || *it != t) v.insert(it, t);
  }

  /// Removes `t` from `o`'s type set if present.
  void Unassign(graph::ObjectId o, TypeId t) {
    auto& v = types_of_[o];
    auto it = std::lower_bound(v.begin(), v.end(), t);
    if (it != v.end() && *it == t) v.erase(it);
  }

  bool Has(graph::ObjectId o, TypeId t) const {
    const auto& v = types_of_[o];
    return std::binary_search(v.begin(), v.end(), t);
  }

  /// Sorted set of types assigned to `o`.
  const std::vector<TypeId>& TypesOf(graph::ObjectId o) const {
    return types_of_[o];
  }

  /// Objects assigned to `t` (scan; intended for tests/inspection).
  std::vector<graph::ObjectId> ObjectsOf(TypeId t) const {
    std::vector<graph::ObjectId> out;
    for (size_t o = 0; o < types_of_.size(); ++o) {
      if (Has(static_cast<graph::ObjectId>(o), t)) {
        out.push_back(static_cast<graph::ObjectId>(o));
      }
    }
    return out;
  }

  /// Number of objects with at least one type.
  size_t NumTypedObjects() const {
    size_t n = 0;
    for (const auto& v : types_of_) n += v.empty() ? 0 : 1;
    return n;
  }

  friend bool operator==(const TypeAssignment&, const TypeAssignment&) =
      default;

 private:
  std::vector<std::vector<TypeId>> types_of_;
};

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_ASSIGNMENT_H_
