#ifndef SCHEMEX_TYPING_PERFECT_TYPING_H_
#define SCHEMEX_TYPING_PERFECT_TYPING_H_

#include <cstdint>
#include <vector>

#include "graph/graph_view.h"
#include "typing/exec_options.h"
#include "typing/gfp.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::typing {

/// Output of Stage 1 (§4): the minimal perfect typing program plus the
/// *home type* of every object.
struct PerfectTypingResult {
  TypingProgram program;

  /// Per object: the home type, or kInvalidType for atomic objects.
  std::vector<TypeId> home;

  /// Per type: number of objects whose home it is (the clustering weights
  /// of Stage 2).
  std::vector<uint32_t> weight;

  /// Number of complex objects typed.
  size_t NumComplexObjects() const;
};

/// The paper's §4.1 algorithm, literally:
///  1. build the candidate program Q_D with one type per complex object
///     whose rule is the object's local picture,
///  2. compute the greatest fixpoint M of Q_D,
///  3. merge candidate types with equal extents (Remark 4.1) and rewrite
///     one representative rule per equivalence class.
///
/// Exact but O(N^2)-ish; intended for small/medium databases and as the
/// reference the refinement algorithm is tested against. `options`
/// parallelizes the GFP engine underneath and threads cancellation
/// through it; the result is identical for every setting.
util::StatusOr<PerfectTypingResult> PerfectTypingViaGfp(
    graph::GraphView g, const ExecOptions& options = {});

/// Scalable Stage 1 via partition refinement (the bisimulation-style
/// computation of §4.1 "Computational Efficiency"): start with one block
/// of all complex objects and repeatedly split blocks by the set of
/// (direction, label, neighbor-block) triples until stable. Produces the
/// coarsest partition where equivalent objects have identical local
/// pictures up to the partition — the same partition PerfectTypingViaGfp
/// computes on databases where extent-equality coincides with local-
/// picture-equality (verified against the GFP method in tests).
///
/// This is the sequential reference implementation (one TypeSignature +
/// ordered-map key per object per round); production paths use
/// PerfectTypingViaHashRefinement, which is pinned bit-identical to it.
util::StatusOr<PerfectTypingResult> PerfectTypingViaRefinement(
    graph::GraphView g);

/// Allocation-lean, optionally parallel partition refinement. Computes
/// exactly the partition (and block numbering, and program) of
/// PerfectTypingViaRefinement:
///
///  - Per round, each complex object's local picture is folded into a
///    64-bit hash combined with its previous block id — no TypeSignature
///    or std::map node is materialized. The canonical sorted/deduplicated
///    link encoding is kept in a per-shard arena, so hash-bucket
///    collisions are resolved by comparing the encodings exactly: the
///    partition is the exact coarsest full bisimulation regardless of
///    hash quality (options.debug_force_hash_collisions pins this).
///  - Per-object hashing is sharded across options.pool / num_threads
///    workers over the read-only graph; block ids are then assigned by a
///    sequential reduce in object order, so the result is bit-identical
///    for any thread count.
///  - options.check_cancel is polled between rounds, making long extracts
///    cancellable mid-Stage-1.
util::StatusOr<PerfectTypingResult> PerfectTypingViaHashRefinement(
    graph::GraphView g, const ExecOptions& options = {});

/// Convenience: extents of the result program under GFP semantics. Because
/// typing rules have no negation, extents may overlap and strictly contain
/// the home sets (§4.2): an object with *more* links than its home type
/// requires also satisfies the richer types' generalizations.
util::StatusOr<Extents> PerfectTypingExtents(const PerfectTypingResult& r,
                                             graph::GraphView g);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_PERFECT_TYPING_H_
