#ifndef SCHEMEX_TYPING_PERFECT_TYPING_H_
#define SCHEMEX_TYPING_PERFECT_TYPING_H_

#include <cstdint>
#include <vector>

#include "graph/graph_view.h"
#include "typing/gfp.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::typing {

/// Output of Stage 1 (§4): the minimal perfect typing program plus the
/// *home type* of every object.
struct PerfectTypingResult {
  TypingProgram program;

  /// Per object: the home type, or kInvalidType for atomic objects.
  std::vector<TypeId> home;

  /// Per type: number of objects whose home it is (the clustering weights
  /// of Stage 2).
  std::vector<uint32_t> weight;

  /// Number of complex objects typed.
  size_t NumComplexObjects() const;
};

/// The paper's §4.1 algorithm, literally:
///  1. build the candidate program Q_D with one type per complex object
///     whose rule is the object's local picture,
///  2. compute the greatest fixpoint M of Q_D,
///  3. merge candidate types with equal extents (Remark 4.1) and rewrite
///     one representative rule per equivalence class.
///
/// Exact but O(N^2)-ish; intended for small/medium databases and as the
/// reference the refinement algorithm is tested against.
util::StatusOr<PerfectTypingResult> PerfectTypingViaGfp(
    graph::GraphView g);

/// Scalable Stage 1 via partition refinement (the bisimulation-style
/// computation of §4.1 "Computational Efficiency"): start with one block
/// of all complex objects and repeatedly split blocks by the set of
/// (direction, label, neighbor-block) triples until stable. Produces the
/// coarsest partition where equivalent objects have identical local
/// pictures up to the partition — the same partition PerfectTypingViaGfp
/// computes on databases where extent-equality coincides with local-
/// picture-equality (verified against the GFP method in tests).
util::StatusOr<PerfectTypingResult> PerfectTypingViaRefinement(
    graph::GraphView g);

/// Convenience: extents of the result program under GFP semantics. Because
/// typing rules have no negation, extents may overlap and strictly contain
/// the home sets (§4.2): an object with *more* links than its home type
/// requires also satisfies the richer types' generalizations.
util::StatusOr<Extents> PerfectTypingExtents(const PerfectTypingResult& r,
                                             graph::GraphView g);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_PERFECT_TYPING_H_
