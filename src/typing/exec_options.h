#ifndef SCHEMEX_TYPING_EXEC_OPTIONS_H_
#define SCHEMEX_TYPING_EXEC_OPTIONS_H_

#include <cstddef>
#include <functional>

#include "util/status.h"
#include "util/thread_pool.h"

namespace schemex::typing {

/// Execution knobs shared by the Stage-1 algorithms and the GFP engine.
/// The defaults run everything inline on the caller with no cancellation —
/// exactly the pre-parallel behaviour. Every algorithm taking ExecOptions
/// guarantees a result bit-identical to its sequential run for any thread
/// count (sharded phases only compute per-object values; block/type ids
/// are always assigned by a deterministic sequential reduce).
struct ExecOptions {
  /// Worker count for sharded phases; <= 1 runs inline. When `pool` is
  /// set, the pool's size wins and this field is ignored.
  size_t num_threads = 1;

  /// Optional externally owned pool, sized to the desired parallelism.
  /// When null and num_threads > 1, the algorithm spins up a transient
  /// pool for the duration of one call.
  util::ThreadPool* pool = nullptr;

  /// Cooperative cancellation: polled between refinement rounds, between
  /// GFP phases, and every few thousand worklist pops. Return non-OK
  /// (typically DeadlineExceeded) to abort; the status propagates
  /// verbatim. Null = never cancel.
  std::function<util::Status()> check_cancel;

  /// Test-only: collapse every refinement signature hash to one bucket so
  /// the exact collision-verification fallback carries the whole
  /// partition. The result must not change.
  bool debug_force_hash_collisions = false;

  /// Polls check_cancel if set.
  util::Status Poll() const {
    return check_cancel ? check_cancel() : util::Status::OK();
  }
};

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_EXEC_OPTIONS_H_
