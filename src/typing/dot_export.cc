#include "typing/dot_export.h"

#include "util/string_util.h"

namespace schemex::typing {

namespace {

std::string DotEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\' || c == '{' || c == '}' || c == '|' ||
        c == '<' || c == '>') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string ProgramToDot(const TypingProgram& program,
                         const graph::LabelInterner& labels,
                         const DotOptions& options) {
  std::string out =
      "digraph " + options.graph_name + " {\n  rankdir=LR;\n  node "
      "[shape=record, fontsize=10];\n";
  bool need_atom_node = false;

  for (size_t t = 0; t < program.NumTypes(); ++t) {
    const TypeDef& def = program.type(static_cast<TypeId>(t));
    std::string attrs;
    for (const TypedLink& l : def.signature.links()) {
      if (l.dir == Direction::kOutgoing && l.target == kAtomicType &&
          options.inline_atomic_links) {
        if (!attrs.empty()) attrs += "\\l";
        attrs += DotEscape(labels.Name(l.label));
      }
    }
    std::string title = DotEscape(def.name);
    if (t < options.weights.size()) {
      title += util::StringPrintf(" (%llu)",
                                  static_cast<unsigned long long>(
                                      options.weights[t]));
    }
    out += util::StringPrintf("  t%zu [label=\"{%s", t, title.c_str());
    if (!attrs.empty()) out += "|" + attrs + "\\l";
    out += "}\"];\n";
  }

  for (size_t t = 0; t < program.NumTypes(); ++t) {
    const TypeDef& def = program.type(static_cast<TypeId>(t));
    for (const TypedLink& l : def.signature.links()) {
      std::string label = DotEscape(labels.Name(l.label));
      if (l.target == kAtomicType) {
        if (!options.inline_atomic_links) {
          need_atom_node = true;
          out += util::StringPrintf("  t%zu -> atom [label=\"%s\"];\n", t,
                                    label.c_str());
        }
        continue;
      }
      if (l.dir == Direction::kOutgoing) {
        out += util::StringPrintf("  t%zu -> t%d [label=\"%s\"];\n", t,
                                  l.target, label.c_str());
      } else {
        // Declared on the target side: draw from the source type, dashed.
        out += util::StringPrintf(
            "  t%d -> t%zu [label=\"%s\", style=dashed];\n", l.target, t,
            label.c_str());
      }
    }
  }
  if (need_atom_node) {
    out += "  atom [label=\"ATOM\", shape=ellipse];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace schemex::typing
