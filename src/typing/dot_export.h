#ifndef SCHEMEX_TYPING_DOT_EXPORT_H_
#define SCHEMEX_TYPING_DOT_EXPORT_H_

#include <string>
#include <vector>

#include "graph/label.h"
#include "typing/typing_program.h"

namespace schemex::typing {

/// Options for rendering a typing program as a Graphviz digraph — the
/// "graphical query interfaces" use-case the paper motivates typing
/// with (§1).
struct DotOptions {
  /// Per-type object counts shown in node labels (empty = omitted).
  std::vector<uint64_t> weights;

  /// Atomic-valued links ("->l^0") listed inside the node box; set false
  /// to draw an explicit ATOM node instead.
  bool inline_atomic_links = true;

  std::string graph_name = "schema";
};

/// Renders the program: one node per type (record-style label listing its
/// atomic attributes) and one edge per inter-type typed link, labeled
/// with the edge label; incoming links are drawn from their source type
/// with a dashed style to distinguish declared-incoming from
/// declared-outgoing.
std::string ProgramToDot(const TypingProgram& program,
                         const graph::LabelInterner& labels,
                         const DotOptions& options = {});

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_DOT_EXPORT_H_
