#include "typing/perfect_typing.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "typing/refine_internal.h"
#include "util/parallel_for.h"
#include "util/string_util.h"

namespace schemex::typing {

namespace {

/// Builds the local picture of complex object `o` where complex neighbors
/// are mapped through `class_of` (candidate ids in the GFP method, block
/// ids in refinement) and atomic neighbors become kAtomicType targets.
TypeSignature LocalPicture(graph::GraphView g, graph::ObjectId o,
                           const std::vector<TypeId>& class_of) {
  std::vector<TypedLink> links;
  for (const graph::HalfEdge& e : g.OutEdges(o)) {
    if (g.IsAtomic(e.other)) {
      links.push_back(TypedLink::OutAtomic(e.label));
    } else {
      links.push_back(TypedLink::Out(e.label, class_of[e.other]));
    }
  }
  for (const graph::HalfEdge& e : g.InEdges(o)) {
    links.push_back(TypedLink::In(e.label, class_of[e.other]));
  }
  return TypeSignature::FromLinks(std::move(links));
}

// --- Hash refinement internals. -------------------------------------------

/// Shared with the incremental re-refiner — see refine_internal.h.
using internal::EncodeRefineLink;
using internal::Mix64;

/// Per-worker state for one shard of complex objects, reused across
/// rounds so steady-state rounds allocate nothing.
struct RefinementShard {
  size_t begin = 0;  ///< range [begin, end) of complex-object indices
  size_t end = 0;
  std::vector<uint64_t> arena;   ///< canonical encodings, back to back
  std::vector<uint64_t> scratch; ///< one object's links, sorted + deduped
};

}  // namespace

namespace internal {

PerfectTypingResult AssembleRefinementResult(graph::GraphView g,
                                             const std::vector<TypeId>& class_of,
                                             size_t num_classes,
                                             const char* name_prefix) {
  PerfectTypingResult result;
  result.home.assign(g.NumObjects(), kInvalidType);
  result.weight.assign(num_classes, 0);

  // One representative object per class defines the class's rule; its
  // local picture is expressed directly over class ids.
  std::vector<graph::ObjectId> representative(num_classes,
                                              graph::kInvalidObject);
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (!g.IsComplex(o)) continue;
    TypeId c = class_of[o];
    result.home[o] = c;
    ++result.weight[static_cast<size_t>(c)];
    if (representative[static_cast<size_t>(c)] == graph::kInvalidObject) {
      representative[static_cast<size_t>(c)] = o;
    }
  }
  for (size_t c = 0; c < num_classes; ++c) {
    TypeSignature sig = LocalPicture(g, representative[c], class_of);
    result.program.AddType(util::StringPrintf("%s%zu", name_prefix, c + 1),
                           std::move(sig));
  }
  return result;
}

}  // namespace internal

size_t PerfectTypingResult::NumComplexObjects() const {
  size_t n = 0;
  for (TypeId t : home) {
    if (t != kInvalidType) ++n;
  }
  return n;
}

util::StatusOr<PerfectTypingResult> PerfectTypingViaGfp(
    graph::GraphView g, const ExecOptions& options) {
  const size_t n = g.NumObjects();

  // Candidate ids: dense over complex objects; candidates double as type
  // targets in Q_D's rules, so map every object to its candidate id.
  std::vector<TypeId> candidate(n, kInvalidType);
  std::vector<graph::ObjectId> complex_objects;
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (g.IsComplex(o)) {
      candidate[o] = static_cast<TypeId>(complex_objects.size());
      complex_objects.push_back(o);
    }
  }

  // Step 1: Q_D — one rule per complex object: its local picture.
  TypingProgram qd;
  for (graph::ObjectId o : complex_objects) {
    qd.AddType(util::StringPrintf("cand%u", o), LocalPicture(g, o, candidate));
  }
  SCHEMEX_RETURN_IF_ERROR(options.Poll());

  // Step 2: greatest fixpoint of Q_D.
  SCHEMEX_ASSIGN_OR_RETURN(Extents m, ComputeGfp(qd, g, nullptr, options));

  // Step 3: group candidate types by extent equality. Hash and popcount
  // every extent once up front; within a hash bucket, candidates compare
  // popcounts before falling back to full word-level equality (which
  // itself stops at the first differing word).
  const size_t num_cand = complex_objects.size();
  std::vector<uint64_t> extent_hash(num_cand);
  std::vector<size_t> extent_count(num_cand);
  for (size_t t = 0; t < num_cand; ++t) {
    extent_hash[t] = m.per_type[t].Hash();
    extent_count[t] = m.per_type[t].Count();
  }
  std::unordered_map<uint64_t, std::vector<TypeId>> buckets;
  buckets.reserve(num_cand);
  std::vector<TypeId> class_of_candidate(num_cand, kInvalidType);
  size_t num_classes = 0;
  for (size_t t = 0; t < num_cand; ++t) {
    TypeId tid = static_cast<TypeId>(t);
    TypeId found = kInvalidType;
    std::vector<TypeId>& bucket = buckets[extent_hash[t]];
    for (TypeId other : bucket) {
      if (extent_count[static_cast<size_t>(other)] != extent_count[t]) {
        continue;
      }
      if (m.per_type[static_cast<size_t>(other)] ==
          m.per_type[static_cast<size_t>(tid)]) {
        found = class_of_candidate[static_cast<size_t>(other)];
        break;
      }
    }
    if (found == kInvalidType) {
      found = static_cast<TypeId>(num_classes++);
      bucket.push_back(tid);
    }
    class_of_candidate[t] = found;
  }

  // Rewrite: class of each object = class of its candidate.
  std::vector<TypeId> class_of(n, kInvalidType);
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (g.IsComplex(o)) {
      class_of[o] = class_of_candidate[static_cast<size_t>(candidate[o])];
    }
  }
  return internal::AssembleRefinementResult(g, class_of, num_classes, "type");
}

util::StatusOr<PerfectTypingResult> PerfectTypingViaRefinement(
    graph::GraphView g) {
  const size_t n = g.NumObjects();
  std::vector<TypeId> block(n, kInvalidType);
  std::vector<graph::ObjectId> complex_objects;
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (g.IsComplex(o)) {
      block[o] = 0;
      complex_objects.push_back(o);
    }
  }
  size_t num_blocks = complex_objects.empty() ? 0 : 1;

  // Iterate: split blocks by (previous block, local picture over previous
  // blocks). Partitions only get finer, so the block count is a monotone
  // progress measure; stop when a round does not increase it.
  for (;;) {
    using Key = std::pair<TypeId, TypeSignature>;
    std::map<Key, TypeId> next_id;
    std::vector<TypeId> next_block(n, kInvalidType);
    for (graph::ObjectId o : complex_objects) {
      Key key{block[o], LocalPicture(g, o, block)};  // split within old block
      auto it = next_id.try_emplace(std::move(key),
                                    static_cast<TypeId>(next_id.size()))
                    .first;
      next_block[o] = it->second;
    }
    size_t next_count = next_id.size();
    block = std::move(next_block);
    if (next_count == num_blocks) break;
    num_blocks = next_count;
  }
  return internal::AssembleRefinementResult(g, block, num_blocks, "type");
}

util::StatusOr<PerfectTypingResult> PerfectTypingViaHashRefinement(
    graph::GraphView g, const ExecOptions& options) {
  if (g.labels().size() >= (1ULL << 31)) {
    // The 64-bit link encoding reserves 31 bits for the label; beyond that
    // the packing is no longer injective, so fall back to the exact
    // reference path rather than risk an unsound partition.
    return PerfectTypingViaRefinement(g);
  }

  const size_t n = g.NumObjects();
  std::vector<TypeId> block(n, kInvalidType);
  std::vector<graph::ObjectId> complex_objects;
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (g.IsComplex(o)) {
      block[o] = 0;
      complex_objects.push_back(o);
    }
  }
  const size_t num_complex = complex_objects.size();
  size_t num_blocks = num_complex == 0 ? 0 : 1;

  util::PoolRef pool(options.pool, options.num_threads);
  auto ranges = util::ShardRanges(num_complex, pool.num_threads());
  std::vector<RefinementShard> shards(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    shards[s].begin = ranges[s].first;
    shards[s].end = ranges[s].second;
  }

  // Per complex-object index: this round's signature hash and the span of
  // its canonical encoding inside its shard's arena. `shard_of` maps an
  // index back to its shard so the reduce can locate any object's span.
  std::vector<uint64_t> hash(num_complex);
  std::vector<size_t> span_off(num_complex);
  std::vector<uint32_t> span_len(num_complex);
  std::vector<uint32_t> shard_of(num_complex);
  for (size_t s = 0; s < shards.size(); ++s) {
    for (size_t i = shards[s].begin; i < shards[s].end; ++i) {
      shard_of[i] = static_cast<uint32_t>(s);
    }
  }

  std::vector<TypeId> next_block(n, kInvalidType);
  /// Blocks discovered this round, bucketed by hash. Each entry remembers
  /// one representative object index whose (previous block, canonical
  /// encoding) defines the block, for exact comparison on bucket hits.
  struct BlockEntry {
    uint32_t rep;  ///< complex-object index
    TypeId id;
  };
  std::unordered_map<uint64_t, std::vector<BlockEntry>> table;

  // Iterate: split blocks by (previous block, local picture over previous
  // blocks), same monotone progress measure as the reference path. Each
  // round: a sharded hashing phase (read-only over the graph and `block`,
  // writing disjoint slices of the per-index arrays), then a sequential
  // reduce assigning block ids by first occurrence in object order —
  // exactly the numbering std::map::try_emplace produced in the reference
  // implementation, and independent of the thread count.
  for (;;) {
    SCHEMEX_RETURN_IF_ERROR(options.Poll());
    if (num_complex == 0) break;

    util::RunShards(pool.get(), shards.size(), [&](size_t s) {
      RefinementShard& shard = shards[s];
      shard.arena.clear();
      for (size_t i = shard.begin; i < shard.end; ++i) {
        graph::ObjectId o = complex_objects[i];
        std::vector<uint64_t>& scratch = shard.scratch;
        scratch.clear();
        for (const graph::HalfEdge& e : g.OutEdges(o)) {
          scratch.push_back(EncodeRefineLink(
              Direction::kOutgoing, e.label,
              g.IsAtomic(e.other) ? kAtomicType : block[e.other]));
        }
        for (const graph::HalfEdge& e : g.InEdges(o)) {
          scratch.push_back(
              EncodeRefineLink(Direction::kIncoming, e.label, block[e.other]));
        }
        // Canonical form: the local picture is a *set* of typed links, so
        // sort and dedupe — the moral equivalent of TypeSignature's
        // normalization, on a reused flat buffer.
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());

        uint64_t h = Mix64(static_cast<uint64_t>(
            static_cast<uint32_t>(block[o])));
        for (uint64_t v : scratch) h = Mix64(h ^ v);
        hash[i] = options.debug_force_hash_collisions ? 0 : h;
        span_off[i] = shard.arena.size();
        span_len[i] = static_cast<uint32_t>(scratch.size());
        shard.arena.insert(shard.arena.end(), scratch.begin(), scratch.end());
      }
    });

    // Sequential reduce: deterministic block numbering + exact collision
    // verification. Two objects share a block iff their previous blocks
    // match AND their canonical encodings are identical — the hash only
    // routes to a bucket, it is never trusted for equality.
    table.clear();
    size_t next_count = 0;
    auto same_key = [&](uint32_t a, uint32_t b) {
      if (block[complex_objects[a]] != block[complex_objects[b]]) return false;
      if (span_len[a] != span_len[b]) return false;
      const uint64_t* pa = shards[shard_of[a]].arena.data() + span_off[a];
      const uint64_t* pb = shards[shard_of[b]].arena.data() + span_off[b];
      return std::equal(pa, pa + span_len[a], pb);
    };
    for (size_t i = 0; i < num_complex; ++i) {
      std::vector<BlockEntry>& bucket = table[hash[i]];
      TypeId found = kInvalidType;
      for (const BlockEntry& entry : bucket) {
        if (same_key(entry.rep, static_cast<uint32_t>(i))) {
          found = entry.id;
          break;
        }
      }
      if (found == kInvalidType) {
        found = static_cast<TypeId>(next_count++);
        bucket.push_back(BlockEntry{static_cast<uint32_t>(i), found});
      }
      next_block[complex_objects[i]] = found;
    }

    std::swap(block, next_block);
    if (next_count == num_blocks) break;
    num_blocks = next_count;
  }
  return internal::AssembleRefinementResult(g, block, num_blocks, "type");
}

util::StatusOr<Extents> PerfectTypingExtents(const PerfectTypingResult& r,
                                             graph::GraphView g) {
  return ComputeGfp(r.program, g);
}

}  // namespace schemex::typing
