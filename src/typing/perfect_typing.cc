#include "typing/perfect_typing.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/string_util.h"

namespace schemex::typing {

namespace {

/// Builds the local picture of complex object `o` where complex neighbors
/// are mapped through `class_of` (candidate ids in the GFP method, block
/// ids in refinement) and atomic neighbors become kAtomicType targets.
TypeSignature LocalPicture(graph::GraphView g, graph::ObjectId o,
                           const std::vector<TypeId>& class_of) {
  std::vector<TypedLink> links;
  for (const graph::HalfEdge& e : g.OutEdges(o)) {
    if (g.IsAtomic(e.other)) {
      links.push_back(TypedLink::OutAtomic(e.label));
    } else {
      links.push_back(TypedLink::Out(e.label, class_of[e.other]));
    }
  }
  for (const graph::HalfEdge& e : g.InEdges(o)) {
    links.push_back(TypedLink::In(e.label, class_of[e.other]));
  }
  return TypeSignature::FromLinks(std::move(links));
}

PerfectTypingResult AssembleResult(graph::GraphView g,
                                   const std::vector<TypeId>& class_of,
                                   size_t num_classes,
                                   const char* name_prefix) {
  PerfectTypingResult result;
  result.home.assign(g.NumObjects(), kInvalidType);
  result.weight.assign(num_classes, 0);

  // One representative object per class defines the class's rule; its
  // local picture is expressed directly over class ids.
  std::vector<graph::ObjectId> representative(num_classes,
                                              graph::kInvalidObject);
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (!g.IsComplex(o)) continue;
    TypeId c = class_of[o];
    result.home[o] = c;
    ++result.weight[static_cast<size_t>(c)];
    if (representative[static_cast<size_t>(c)] == graph::kInvalidObject) {
      representative[static_cast<size_t>(c)] = o;
    }
  }
  for (size_t c = 0; c < num_classes; ++c) {
    TypeSignature sig = LocalPicture(g, representative[c], class_of);
    result.program.AddType(util::StringPrintf("%s%zu", name_prefix, c + 1),
                           std::move(sig));
  }
  return result;
}

}  // namespace

size_t PerfectTypingResult::NumComplexObjects() const {
  size_t n = 0;
  for (TypeId t : home) {
    if (t != kInvalidType) ++n;
  }
  return n;
}

util::StatusOr<PerfectTypingResult> PerfectTypingViaGfp(
    graph::GraphView g) {
  const size_t n = g.NumObjects();

  // Candidate ids: dense over complex objects; candidates double as type
  // targets in Q_D's rules, so map every object to its candidate id.
  std::vector<TypeId> candidate(n, kInvalidType);
  std::vector<graph::ObjectId> complex_objects;
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (g.IsComplex(o)) {
      candidate[o] = static_cast<TypeId>(complex_objects.size());
      complex_objects.push_back(o);
    }
  }

  // Step 1: Q_D — one rule per complex object: its local picture.
  TypingProgram qd;
  for (graph::ObjectId o : complex_objects) {
    qd.AddType(util::StringPrintf("cand%u", o), LocalPicture(g, o, candidate));
  }

  // Step 2: greatest fixpoint of Q_D.
  SCHEMEX_ASSIGN_OR_RETURN(Extents m, ComputeGfp(qd, g));

  // Step 3: group candidate types by extent equality. Hash the extents to
  // buckets, then confirm equality exactly within buckets.
  std::unordered_map<uint64_t, std::vector<TypeId>> buckets;
  auto extent_hash = [&](TypeId t) {
    uint64_t h = 0xcbf29ce484222325ULL;
    m.per_type[static_cast<size_t>(t)].ForEach([&](size_t o) {
      h = (h ^ (o + 0x9e3779b97f4a7c15ULL)) * 0x100000001b3ULL;
    });
    return h;
  };
  std::vector<TypeId> class_of_candidate(complex_objects.size(),
                                         kInvalidType);
  size_t num_classes = 0;
  for (size_t t = 0; t < complex_objects.size(); ++t) {
    TypeId tid = static_cast<TypeId>(t);
    uint64_t h = extent_hash(tid);
    TypeId found = kInvalidType;
    for (TypeId other : buckets[h]) {
      if (m.per_type[static_cast<size_t>(other)] ==
          m.per_type[static_cast<size_t>(tid)]) {
        found = class_of_candidate[static_cast<size_t>(other)];
        break;
      }
    }
    if (found == kInvalidType) {
      found = static_cast<TypeId>(num_classes++);
      buckets[h].push_back(tid);
    }
    class_of_candidate[t] = found;
  }

  // Rewrite: class of each object = class of its candidate.
  std::vector<TypeId> class_of(n, kInvalidType);
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (g.IsComplex(o)) {
      class_of[o] = class_of_candidate[static_cast<size_t>(candidate[o])];
    }
  }
  return AssembleResult(g, class_of, num_classes, "type");
}

util::StatusOr<PerfectTypingResult> PerfectTypingViaRefinement(
    graph::GraphView g) {
  const size_t n = g.NumObjects();
  std::vector<TypeId> block(n, kInvalidType);
  std::vector<graph::ObjectId> complex_objects;
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (g.IsComplex(o)) {
      block[o] = 0;
      complex_objects.push_back(o);
    }
  }
  size_t num_blocks = complex_objects.empty() ? 0 : 1;

  // Iterate: split blocks by (previous block, local picture over previous
  // blocks). Partitions only get finer, so the block count is a monotone
  // progress measure; stop when a round does not increase it.
  for (;;) {
    using Key = std::pair<TypeId, TypeSignature>;
    std::map<Key, TypeId> next_id;
    std::vector<TypeId> next_block(n, kInvalidType);
    for (graph::ObjectId o : complex_objects) {
      Key key{block[o], LocalPicture(g, o, block)};  // split within old block
      auto it = next_id.try_emplace(std::move(key),
                                    static_cast<TypeId>(next_id.size()))
                    .first;
      next_block[o] = it->second;
    }
    size_t next_count = next_id.size();
    block = std::move(next_block);
    if (next_count == num_blocks) break;
    num_blocks = next_count;
  }
  return AssembleResult(g, block, num_blocks, "type");
}

util::StatusOr<Extents> PerfectTypingExtents(const PerfectTypingResult& r,
                                             graph::GraphView g) {
  return ComputeGfp(r.program, g);
}

}  // namespace schemex::typing
