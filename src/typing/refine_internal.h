#ifndef SCHEMEX_TYPING_REFINE_INTERNAL_H_
#define SCHEMEX_TYPING_REFINE_INTERNAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph_view.h"
#include "typing/perfect_typing.h"
#include "typing/typed_link.h"

/// Internals shared by the Stage-1 refinement implementations
/// (perfect_typing.cc) and the incremental re-refiner
/// (incremental_refine.cc). Both sides MUST use these exact primitives:
/// the incremental path's bit-identity guarantee rests on encoding
/// pictures, hashing and assembling results the same way the cold path
/// does.
namespace schemex::typing::internal {

/// Injective encoding of one local-picture link over block ids:
///   [63:33] label (31 bits)   [32] direction   [31:0] target block + 1
/// target is kAtomicType (-1, encoding to 0) or a block id; block ids are
/// TypeIds < 2^31, so target + 1 always fits 32 bits. Injectivity needs
/// label < 2^31, guarded at the entry points.
inline uint64_t EncodeRefineLink(Direction dir, graph::LabelId label,
                                 TypeId target) {
  return (static_cast<uint64_t>(label) << 33) |
         (static_cast<uint64_t>(dir == Direction::kOutgoing ? 1 : 0) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(target + 1));
}

/// splitmix64 finalizer — the refinement signature hashes fold canonical
/// links through this mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Builds a PerfectTypingResult from a finished partition: home = class,
/// weight = class size, one rule per class from the first member's local
/// picture over class ids, names "<prefix>1".."<prefix>N". `class_of`
/// must hold dense class ids [0, num_classes) for complex objects (and
/// anything for atomic ones). Every Stage-1 path funnels through this,
/// so equal partitions yield bit-identical results.
PerfectTypingResult AssembleRefinementResult(graph::GraphView g,
                                             const std::vector<TypeId>& class_of,
                                             size_t num_classes,
                                             const char* name_prefix);

}  // namespace schemex::typing::internal

#endif  // SCHEMEX_TYPING_REFINE_INTERNAL_H_
