#include "typing/typing_program.h"

#include <set>

#include "util/string_util.h"

namespace schemex::typing {

TypeId TypingProgram::AddType(std::string name, TypeSignature signature) {
  types_.push_back(TypeDef{std::move(name), std::move(signature)});
  return static_cast<TypeId>(types_.size()) - 1;
}

TypeId TypingProgram::FindType(const std::string& name) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<TypeId>(i);
  }
  return kInvalidType;
}

size_t TypingProgram::TotalTypedLinks() const {
  size_t n = 0;
  for (const TypeDef& t : types_) n += t.signature.size();
  return n;
}

size_t TypingProgram::NumDistinctTypedLinks() const {
  std::set<TypedLink> distinct;
  for (const TypeDef& t : types_) {
    for (const TypedLink& l : t.signature.links()) distinct.insert(l);
  }
  return distinct.size();
}

util::Status TypingProgram::Validate() const {
  for (size_t i = 0; i < types_.size(); ++i) {
    for (const TypedLink& l : types_[i].signature.links()) {
      if (l.target != kAtomicType &&
          (l.target < 0 || l.target >= static_cast<TypeId>(types_.size()))) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "type %zu: typed-link target %d out of range", i, l.target));
      }
      if (l.dir == Direction::kIncoming && l.target == kAtomicType) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "type %zu: incoming link from atomic objects is impossible", i));
      }
    }
  }
  return util::Status::OK();
}

datalog::Program TypingProgram::ToDatalog() const {
  datalog::Program p;
  for (const TypeDef& t : types_) p.AddPred(t.name);
  for (size_t i = 0; i < types_.size(); ++i) {
    datalog::Rule rule;
    rule.head_pred = static_cast<datalog::PredId>(i);
    rule.num_vars = 1;
    for (const TypedLink& l : types_[i].signature.links()) {
      datalog::Var y = rule.num_vars++;
      if (l.dir == Direction::kIncoming) {
        rule.body.push_back(datalog::Atom::Link(y, datalog::kHeadVar, l.label));
        rule.body.push_back(
            datalog::Atom::Idb(static_cast<datalog::PredId>(l.target), y));
      } else if (l.target == kAtomicType) {
        rule.body.push_back(datalog::Atom::Link(datalog::kHeadVar, y, l.label));
        rule.body.push_back(datalog::Atom::Atomic(y));
      } else {
        rule.body.push_back(datalog::Atom::Link(datalog::kHeadVar, y, l.label));
        rule.body.push_back(
            datalog::Atom::Idb(static_cast<datalog::PredId>(l.target), y));
      }
    }
    p.rules.push_back(std::move(rule));
  }
  return p;
}

util::StatusOr<TypingProgram> TypingProgram::FromDatalog(
    const datalog::Program& program) {
  SCHEMEX_RETURN_IF_ERROR(program.Validate());
  TypingProgram out;
  std::vector<bool> seen_head(program.num_preds(), false);
  for (const std::string& name : program.pred_names) {
    out.AddType(name, TypeSignature());
  }
  for (const datalog::Rule& rule : program.rules) {
    if (seen_head[static_cast<size_t>(rule.head_pred)]) {
      return util::Status::InvalidArgument(
          "typing programs allow one rule per type");
    }
    seen_head[static_cast<size_t>(rule.head_pred)] = true;

    // Each non-head variable must be "used" by exactly one link atom
    // anchored at the head var plus at most one classifying atom
    // (idb or atomic). Reconstruct typed links variable by variable.
    struct VarInfo {
      const datalog::Atom* link = nullptr;
      const datalog::Atom* classify = nullptr;  // idb or atomic
    };
    std::vector<VarInfo> info(static_cast<size_t>(rule.num_vars));
    for (const datalog::Atom& a : rule.body) {
      switch (a.kind) {
        case datalog::Atom::Kind::kLink: {
          bool head_from = a.arg0 == datalog::kHeadVar;
          bool head_to = a.arg1 == datalog::kHeadVar;
          if (head_from == head_to) {
            return util::Status::InvalidArgument(
                "typed links connect the head variable to one other "
                "variable");
          }
          datalog::Var other = head_from ? a.arg1 : a.arg0;
          VarInfo& vi = info[static_cast<size_t>(other)];
          if (vi.link != nullptr) {
            return util::Status::InvalidArgument(
                "variable used by more than one link atom");
          }
          vi.link = &a;
          break;
        }
        case datalog::Atom::Kind::kAtomic:
        case datalog::Atom::Kind::kIdb: {
          if (a.arg0 == datalog::kHeadVar) {
            return util::Status::InvalidArgument(
                "head variable cannot be classified inside the body");
          }
          VarInfo& vi = info[static_cast<size_t>(a.arg0)];
          if (vi.classify != nullptr) {
            return util::Status::InvalidArgument(
                "variable classified more than once");
          }
          vi.classify = &a;
          break;
        }
      }
    }
    std::vector<TypedLink> links;
    for (datalog::Var v = 1; v < rule.num_vars; ++v) {
      const VarInfo& vi = info[static_cast<size_t>(v)];
      if (vi.link == nullptr || vi.classify == nullptr) {
        return util::Status::InvalidArgument(
            "every body variable needs one link and one classifying atom");
      }
      const datalog::Atom& link = *vi.link;
      const datalog::Atom& cls = *vi.classify;
      bool outgoing = link.arg0 == datalog::kHeadVar;
      if (cls.kind == datalog::Atom::Kind::kAtomic) {
        if (!outgoing) {
          return util::Status::InvalidArgument(
              "incoming links from atomic objects are impossible");
        }
        links.push_back(TypedLink::OutAtomic(link.label));
      } else {
        TypeId target = static_cast<TypeId>(cls.pred);
        links.push_back(outgoing ? TypedLink::Out(link.label, target)
                                 : TypedLink::In(link.label, target));
      }
    }
    out.type(static_cast<TypeId>(rule.head_pred)).signature =
        TypeSignature::FromLinks(std::move(links));
  }
  return out;
}

std::string TypingProgram::ToString(const graph::LabelInterner& labels) const {
  std::string out;
  for (size_t i = 0; i < types_.size(); ++i) {
    out += util::StringPrintf("%s : %zu = %s\n", types_[i].name.c_str(), i + 1,
                              types_[i].signature.ToString(labels).c_str());
  }
  return out;
}

}  // namespace schemex::typing
