#ifndef SCHEMEX_TYPING_ROLES_H_
#define SCHEMEX_TYPING_ROLES_H_

#include <cstddef>
#include <vector>

#include "typing/typing_program.h"

namespace schemex::typing {

/// Result of the multiple-roles pass (§4.2, Example 4.3): complex types
/// whose rule bodies are exactly the union of simpler types' bodies are
/// eliminated, and their home objects inherit all covering types as homes.
struct RoleDecomposition {
  /// The reduced program (surviving types only, targets remapped).
  TypingProgram program;

  /// Per old type: its id in `program`, or kInvalidType if eliminated.
  std::vector<TypeId> type_map;

  /// Per old type: if eliminated, the (new-id) types covering it; empty
  /// otherwise.
  std::vector<std::vector<TypeId>> covers;

  size_t num_eliminated = 0;

  /// Maps a per-object home vector (old ids; kInvalidType for atomic) to
  /// per-object home *sets* in new ids: surviving homes map through,
  /// eliminated homes expand to their cover (the paper's multi-role
  /// objects).
  std::vector<std::vector<TypeId>> MapHomes(
      const std::vector<TypeId>& home) const;
};

/// Identifies every type expressible as a conjunction of >= 2 *proper
/// subset* types (greedy set cover per type, processed largest-first so a
/// composite never serves in a cover that outlives it) and eliminates it.
/// Typed links in surviving rules that targeted an eliminated type are
/// remapped to its largest surviving cover member.
///
/// `min_cover_size` (default 2) guards against over-decomposition: the
/// paper warns that overdoing role extraction "atomizes" the schema; a
/// caller can require larger covers or disable the pass entirely.
RoleDecomposition DecomposeRoles(const TypingProgram& program,
                                 size_t min_cover_size = 2);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_ROLES_H_
