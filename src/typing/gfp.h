#ifndef SCHEMEX_TYPING_GFP_H_
#define SCHEMEX_TYPING_GFP_H_

#include <cstddef>
#include <vector>

#include "graph/graph_view.h"
#include "typing/exec_options.h"
#include "typing/typing_program.h"
#include "util/bitset.h"
#include "util/statusor.h"

namespace schemex::typing {

/// Extents of a typing program's types over a database: extents[t] has one
/// bit per object.
struct Extents {
  std::vector<util::DenseBitset> per_type;

  bool Contains(TypeId t, graph::ObjectId o) const {
    return per_type[static_cast<size_t>(t)].Test(o);
  }
  size_t NumTypes() const { return per_type.size(); }

  friend bool operator==(const Extents&, const Extents&) = default;
};

struct GfpStats {
  size_t initial_candidates = 0;  ///< (object, type) pairs after prefilter
  size_t rechecks = 0;            ///< worklist membership re-evaluations
  size_t removed = 0;             ///< pairs removed before stabilizing
};

/// Computes the greatest-fixpoint extents of `program` on `g` with a
/// worklist algorithm:
///
///  1. Prefilter: object o is a candidate for type t only if, for every
///     typed link of t, o has an edge with the right label and direction
///     (to an atomic object for ->l^0). The prefiltered set contains the
///     GFP, so descending iteration from it reaches the same fixpoint as
///     from "everything" — without the O(|objects| * |types|) start.
///  2. Worklist: when o leaves t's extent, only the (neighbor, type) pairs
///     whose justification could have used (o, t) are re-checked.
///
/// Semantically identical to datalog::Evaluate(kGreatest) on
/// program.ToDatalog() (asserted by tests), but typically orders of
/// magnitude faster on perfect-typing candidate programs.
///
/// `options` shards the prefilter (over word-aligned object ranges) and
/// the initial full-recheck sweep (over type ranges) across workers; the
/// worklist stays sequential. The greatest fixpoint is unique, so the
/// extents are identical for every thread count. options.check_cancel is
/// polled between phases and every kGfpCancelPollInterval worklist pops.
util::StatusOr<Extents> ComputeGfp(const TypingProgram& program,
                                   graph::GraphView g,
                                   GfpStats* stats = nullptr,
                                   const ExecOptions& options = {});

/// How often (in worklist pops) ComputeGfp polls check_cancel; the first
/// pop always polls, so cancellation fires even on short worklists.
inline constexpr size_t kGfpCancelPollInterval = 1024;

/// True iff object `o` satisfies every typed link of `sig` under extents
/// `m` (atomic targets checked against g's atomic objects).
bool SatisfiesSignature(const TypeSignature& sig, graph::GraphView g,
                        const Extents& m, graph::ObjectId o);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_GFP_H_
