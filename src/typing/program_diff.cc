#include "typing/program_diff.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"

namespace schemex::typing {

ProgramDiff DiffPrograms(const TypingProgram& before,
                         const TypingProgram& after,
                         size_t max_match_distance) {
  const size_t nb = before.NumTypes();
  const size_t na = after.NumTypes();
  std::vector<bool> used_b(nb, false), used_a(na, false);
  ProgramDiff diff;

  // Greedy global closest-pair matching. O(n^3) worst case; programs
  // after Stage 2 are small by design.
  for (;;) {
    size_t best_d = std::numeric_limits<size_t>::max();
    size_t bi = nb, ai = na;
    for (size_t b = 0; b < nb; ++b) {
      if (used_b[b]) continue;
      for (size_t a = 0; a < na; ++a) {
        if (used_a[a]) continue;
        size_t d = TypeSignature::SymmetricDifferenceSize(
            before.type(static_cast<TypeId>(b)).signature,
            after.type(static_cast<TypeId>(a)).signature);
        if (d < best_d) {
          best_d = d;
          bi = b;
          ai = a;
        }
      }
    }
    if (bi == nb || best_d > max_match_distance) break;
    used_b[bi] = true;
    used_a[ai] = true;
    diff.matched.push_back(TypeMatch{static_cast<TypeId>(bi),
                                     static_cast<TypeId>(ai), best_d});
    diff.total_drift += best_d;
  }
  // DETERMINISM: each `before` id is matched at most once (used_b guard),
  // so the key is unique and the order is total.
  std::sort(diff.matched.begin(), diff.matched.end(),
            [](const TypeMatch& x, const TypeMatch& y) {
              return x.before < y.before;
            });
  for (size_t b = 0; b < nb; ++b) {
    if (!used_b[b]) diff.removed.push_back(static_cast<TypeId>(b));
  }
  for (size_t a = 0; a < na; ++a) {
    if (!used_a[a]) diff.added.push_back(static_cast<TypeId>(a));
  }
  return diff;
}

std::string ProgramDiff::ToString(const TypingProgram& before,
                                  const TypingProgram& after,
                                  const graph::LabelInterner& labels) const {
  std::string out;
  for (const TypeMatch& m : matched) {
    const TypeDef& b = before.type(m.before);
    const TypeDef& a = after.type(m.after);
    if (m.distance == 0) {
      out += util::StringPrintf("= %s\n", b.name.c_str());
      continue;
    }
    out += util::StringPrintf("~ %s -> %s (%zu links changed)\n",
                              b.name.c_str(), a.name.c_str(), m.distance);
    for (const TypedLink& l : b.signature.links()) {
      if (!a.signature.Contains(l)) {
        out += "    - " + TypedLinkToString(l, labels) + "\n";
      }
    }
    for (const TypedLink& l : a.signature.links()) {
      if (!b.signature.Contains(l)) {
        out += "    + " + TypedLinkToString(l, labels) + "\n";
      }
    }
  }
  for (TypeId t : removed) {
    out += util::StringPrintf("- %s\n", before.type(t).name.c_str());
  }
  for (TypeId t : added) {
    out += util::StringPrintf("+ %s\n", after.type(t).name.c_str());
  }
  if (out.empty()) out = "(no differences)\n";
  return out;
}

}  // namespace schemex::typing
