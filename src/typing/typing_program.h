#ifndef SCHEMEX_TYPING_TYPING_PROGRAM_H_
#define SCHEMEX_TYPING_TYPING_PROGRAM_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "graph/label.h"
#include "typing/type_signature.h"
#include "util/statusor.h"

namespace schemex::typing {

/// One type of a typing program: a name plus its rule body (signature).
struct TypeDef {
  std::string name;
  TypeSignature signature;

  friend bool operator==(const TypeDef&, const TypeDef&) = default;
};

/// The paper's restricted typing language: a monadic datalog program with
/// exactly one rule per IDB whose body is a set of typed links (§2
/// "Syntax"). TypeIds are dense indices into `types()`.
class TypingProgram {
 public:
  TypingProgram() = default;

  /// Adds a type and returns its id. Names are display-only; duplicates
  /// are allowed but confusing.
  TypeId AddType(std::string name, TypeSignature signature);

  size_t NumTypes() const { return types_.size(); }
  const TypeDef& type(TypeId t) const { return types_[static_cast<size_t>(t)]; }
  TypeDef& type(TypeId t) { return types_[static_cast<size_t>(t)]; }
  const std::vector<TypeDef>& types() const { return types_; }

  /// First type with this name, or kInvalidType.
  TypeId FindType(const std::string& name) const;

  /// Total number of typed links over all rule bodies — the paper's "size
  /// of the typing" measure.
  size_t TotalTypedLinks() const;

  /// Number of *distinct* typed links across the program: the paper's L,
  /// the dimensionality of the clustering hypercube (§5.2).
  size_t NumDistinctTypedLinks() const;

  /// Structural checks: targets in range or kAtomicType; incoming links
  /// never target kAtomicType.
  util::Status Validate() const;

  /// Lowers to an equivalent generic datalog program (one rule per type;
  /// typed links become link/atomic/IDB conjuncts). Labels stay shared
  /// with the DataGraph's interner.
  datalog::Program ToDatalog() const;

  /// Lifts a datalog program in the restricted form back into a
  /// TypingProgram; fails with InvalidArgument if any rule is outside the
  /// paper's typed-link fragment (multiple rules per head, shared body
  /// variables, non-head-anchored atoms...).
  static util::StatusOr<TypingProgram> FromDatalog(
      const datalog::Program& program);

  /// Paper-style listing:
  ///   person : 1 = <-member^2, ->name^0
  /// with 1-based ids, matching Figure 1's presentation.
  std::string ToString(const graph::LabelInterner& labels) const;

  friend bool operator==(const TypingProgram&, const TypingProgram&) = default;

 private:
  std::vector<TypeDef> types_;
};

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_TYPING_PROGRAM_H_
