#include "typing/bit_signature.h"

#include <bit>

namespace schemex::typing {

BitSignatureIndex::BitSignatureIndex(const TypingProgram& program) {
  for (const TypeDef& t : program.types()) {
    for (const TypedLink& l : t.signature.links()) GetOrAddBit(l);
  }
}

uint32_t BitSignatureIndex::GetOrAddBit(const TypedLink& l) {
  auto [it, inserted] =
      bit_of_.try_emplace(l, static_cast<uint32_t>(bit_of_.size()));
  return it->second;
}

BitSignature BitSignatureIndex::Encode(const TypeSignature& sig) {
  BitSignature out;
  for (const TypedLink& l : sig.links()) {
    uint32_t bit = GetOrAddBit(l);
    size_t word = bit / 64;
    if (word >= out.words.size()) out.words.resize(word + 1, 0);
    out.words[word] |= uint64_t{1} << (bit % 64);
  }
  return out;
}

BitSignature BitSignatureIndex::EncodeFrozen(const TypeSignature& sig) const {
  BitSignature out;
  for (const TypedLink& l : sig.links()) {
    auto it = bit_of_.find(l);
    if (it == bit_of_.end()) {
      ++out.extra;
      continue;
    }
    size_t word = it->second / 64;
    if (word >= out.words.size()) out.words.resize(word + 1, 0);
    out.words[word] |= uint64_t{1} << (it->second % 64);
  }
  return out;
}

size_t BitSignatureIndex::Distance(const BitSignature& a,
                                   const BitSignature& b) {
  const std::vector<uint64_t>& shorter =
      a.words.size() <= b.words.size() ? a.words : b.words;
  const std::vector<uint64_t>& longer =
      a.words.size() <= b.words.size() ? b.words : a.words;
  size_t d = static_cast<size_t>(a.extra) + static_cast<size_t>(b.extra);
  size_t w = 0;
  for (; w < shorter.size(); ++w) {
    d += static_cast<size_t>(std::popcount(shorter[w] ^ longer[w]));
  }
  for (; w < longer.size(); ++w) {
    d += static_cast<size_t>(std::popcount(longer[w]));
  }
  return d;
}

}  // namespace schemex::typing
