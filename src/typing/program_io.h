#ifndef SCHEMEX_TYPING_PROGRAM_IO_H_
#define SCHEMEX_TYPING_PROGRAM_IO_H_

#include <string>
#include <string_view>

#include "graph/label.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::typing {

/// Serializes a typing program as monadic datalog text (the same syntax
/// datalog::ParseProgram accepts), so extracted schemas can be stored,
/// versioned, and re-applied to future data:
///
///   person(X) :- link(X, V1, "is-manager-of"), firm(V1), ...
///
/// Round-trips through ReadTypingProgram up to variable naming.
std::string WriteTypingProgram(const TypingProgram& program,
                               const graph::LabelInterner& labels);

/// Parses datalog text back into a TypingProgram. Fails with
/// InvalidArgument if any rule falls outside the paper's typed-link
/// fragment. Labels are interned into `labels` (share the target
/// DataGraph's interner so label ids line up).
util::StatusOr<TypingProgram> ReadTypingProgram(std::string_view text,
                                                graph::LabelInterner* labels);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_PROGRAM_IO_H_
