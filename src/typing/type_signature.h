#ifndef SCHEMEX_TYPING_TYPE_SIGNATURE_H_
#define SCHEMEX_TYPING_TYPE_SIGNATURE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "typing/typed_link.h"

namespace schemex::typing {

/// The body of one type rule: a *set* of typed links, stored sorted and
/// deduplicated. This is the point on the paper's binary hypercube whose
/// dimensions are the distinct typed links of a program (§5.1).
class TypeSignature {
 public:
  TypeSignature() = default;

  /// Builds from an arbitrary list; sorts and removes duplicates.
  static TypeSignature FromLinks(std::vector<TypedLink> links);

  bool empty() const { return links_.empty(); }
  size_t size() const { return links_.size(); }
  std::span<const TypedLink> links() const {
    return {links_.data(), links_.size()};
  }

  bool Contains(const TypedLink& l) const;

  /// Inserts `l` (no-op if present).
  void Insert(const TypedLink& l);

  /// Removes `l` (no-op if absent).
  void Erase(const TypedLink& l);

  /// True iff every link of *this is in `other`.
  bool IsSubsetOf(const TypeSignature& other) const;

  /// Set union / intersection.
  static TypeSignature Union(const TypeSignature& a, const TypeSignature& b);
  static TypeSignature Intersection(const TypeSignature& a,
                                    const TypeSignature& b);

  /// |a Δ b| — the paper's simple Manhattan distance d(t1, t2) (§5.2).
  /// This sorted-vector merge is the *reference* distance; the all-pairs
  /// hot loops of Stages 2–3 use the bit-parallel kernel in
  /// bit_signature.h (XOR + popcount over a typed-link universe), which
  /// is property-tested to match this function exactly.
  static size_t SymmetricDifferenceSize(const TypeSignature& a,
                                        const TypeSignature& b);

  /// Rewrites every link whose target is `from` to target `to`, re-sorting
  /// and deduplicating. Used when clustering coalesces type `from` into
  /// `to` (the hypercube "diagonal projection" of Example 5.1).
  void RemapTarget(TypeId from, TypeId to);

  /// Applies an arbitrary target mapping: target t (>= 0) becomes map[t];
  /// kAtomicType is unchanged. Out-of-range targets are a programming
  /// error.
  void RemapTargets(std::span<const TypeId> map);

  /// "<-a^1, ->b^0" — paper-style; type targets rendered as 1-based ids.
  std::string ToString(const graph::LabelInterner& labels) const;

  /// Order-insensitive content hash.
  uint64_t Hash() const;

  friend bool operator==(const TypeSignature&, const TypeSignature&) = default;
  friend auto operator<=>(const TypeSignature&, const TypeSignature&) = default;

 private:
  void Normalize();

  std::vector<TypedLink> links_;  // sorted, unique
};

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_TYPE_SIGNATURE_H_
