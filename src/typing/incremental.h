#ifndef SCHEMEX_TYPING_INCREMENTAL_H_
#define SCHEMEX_TYPING_INCREMENTAL_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/data_graph.h"
#include "graph/graph_view.h"
#include "typing/assignment.h"
#include "typing/bit_signature.h"
#include "typing/recast.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::typing {

/// Witness check under an assignment (not GFP extents): the §6 "assign
/// the new objects to all types that it satisfies completely" test,
/// where neighbors count through their *assigned* types. Shared by
/// IncrementalTyper and the service's apply_delta online typing (which
/// probes over a DeltaOverlay view instead of an owned DataGraph).
bool SatisfiesUnderAssignment(const TypeSignature& sig, graph::GraphView g,
                              const TypeAssignment& tau, graph::ObjectId o);

/// Online typing of objects arriving after extraction (§6): "First we
/// assign the new objects to all types that it satisfies completely. If
/// the object cannot be assigned any type precisely, then we assign it
/// to the closest type, in terms of the simple distance function d. Of
/// course, if we have many new objects we may wish to reconsider the
/// current typing program."
///
/// IncrementalTyper owns a growing copy of the database plus the frozen
/// typing program, types each arrival by the rule above, and tracks how
/// well arrivals fit so the caller can decide when re-extraction is due
/// (the paper leaves "how many new objects is too many" open; we expose
/// the misfit statistics and a simple threshold helper).
class IncrementalTyper {
 public:
  /// A new complex object: atomic fields (label -> value) plus references
  /// to existing objects (label -> target id).
  struct NewObject {
    std::string name;
    std::vector<std::pair<std::string, std::string>> fields;
    std::vector<std::pair<std::string, graph::ObjectId>> refs;
  };

  struct TypedObject {
    graph::ObjectId id = graph::kInvalidObject;
    /// Types satisfied completely (empty if none).
    std::vector<TypeId> exact_types;
    /// Nearest type when exact_types is empty.
    TypeId fallback_type = kInvalidType;
    size_t fallback_distance = 0;
  };

  /// Takes ownership of a snapshot of the database and the Stage-3
  /// assignment produced by extraction.
  IncrementalTyper(TypingProgram program, graph::DataGraph base,
                   TypeAssignment assignment);

  /// Adds the object and its edges to the database, types it, updates the
  /// assignment, and returns what happened. Reference targets must exist.
  util::StatusOr<TypedObject> AddAndType(const NewObject& object);

  size_t num_added() const { return num_added_; }
  size_t num_exact() const { return num_exact_; }
  size_t num_fallback() const { return num_added_ - num_exact_; }

  /// Mean nearest-type distance over fallback arrivals (0 if none).
  double MeanFallbackDistance() const;

  /// True when more than `misfit_fraction` of (at least `min_arrivals`)
  /// arrivals needed the distance fallback — the signal to re-run
  /// extraction on the accumulated data.
  bool RetypeRecommended(double misfit_fraction = 0.25,
                         size_t min_arrivals = 10) const;

  /// The same threshold rule over externally tracked counters, for
  /// callers (the service's apply_delta path) that type arrivals without
  /// owning an IncrementalTyper: true when more than `misfit_fraction`
  /// of at least `min_arrivals` arrivals needed the distance fallback.
  static bool RetypeRecommended(size_t num_added, size_t num_fallback,
                                double misfit_fraction = 0.25,
                                size_t min_arrivals = 10);

  const graph::DataGraph& graph() const { return graph_; }
  const TypeAssignment& assignment() const { return assignment_; }
  const TypingProgram& program() const { return program_; }

 private:
  TypingProgram program_;
  graph::DataGraph graph_;
  TypeAssignment assignment_;
  /// Bit kernel over the frozen program, built once: arrivals probe the
  /// nearest type repeatedly against the same signatures, so the sorted
  /// vectors are packed up front (links outside the program universe —
  /// e.g. fresh labels on arrivals — ride in EncodeFrozen extras).
  BitSignatureIndex index_;
  // OWNER: index_ (bit positions decode only against the index that
  // assigned them; both are rebuilt together on Reset).
  std::vector<BitSignature> type_encs_;
  size_t num_added_ = 0;
  size_t num_exact_ = 0;
  size_t total_fallback_distance_ = 0;
};

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_INCREMENTAL_H_
