#include "typing/type_signature.h"

#include <algorithm>

namespace schemex::typing {

void TypeSignature::Normalize() {
  std::sort(links_.begin(), links_.end());
  links_.erase(std::unique(links_.begin(), links_.end()), links_.end());
}

TypeSignature TypeSignature::FromLinks(std::vector<TypedLink> links) {
  TypeSignature s;
  s.links_ = std::move(links);
  s.Normalize();
  return s;
}

bool TypeSignature::Contains(const TypedLink& l) const {
  return std::binary_search(links_.begin(), links_.end(), l);
}

void TypeSignature::Insert(const TypedLink& l) {
  auto it = std::lower_bound(links_.begin(), links_.end(), l);
  if (it != links_.end() && *it == l) return;
  links_.insert(it, l);
}

void TypeSignature::Erase(const TypedLink& l) {
  auto it = std::lower_bound(links_.begin(), links_.end(), l);
  if (it != links_.end() && *it == l) links_.erase(it);
}

bool TypeSignature::IsSubsetOf(const TypeSignature& other) const {
  return std::includes(other.links_.begin(), other.links_.end(),
                       links_.begin(), links_.end());
}

TypeSignature TypeSignature::Union(const TypeSignature& a,
                                   const TypeSignature& b) {
  TypeSignature out;
  std::set_union(a.links_.begin(), a.links_.end(), b.links_.begin(),
                 b.links_.end(), std::back_inserter(out.links_));
  return out;
}

TypeSignature TypeSignature::Intersection(const TypeSignature& a,
                                          const TypeSignature& b) {
  TypeSignature out;
  std::set_intersection(a.links_.begin(), a.links_.end(), b.links_.begin(),
                        b.links_.end(), std::back_inserter(out.links_));
  return out;
}

size_t TypeSignature::SymmetricDifferenceSize(const TypeSignature& a,
                                              const TypeSignature& b) {
  size_t i = 0, j = 0, diff = 0;
  while (i < a.links_.size() && j < b.links_.size()) {
    if (a.links_[i] == b.links_[j]) {
      ++i;
      ++j;
    } else if (a.links_[i] < b.links_[j]) {
      ++diff;
      ++i;
    } else {
      ++diff;
      ++j;
    }
  }
  return diff + (a.links_.size() - i) + (b.links_.size() - j);
}

void TypeSignature::RemapTarget(TypeId from, TypeId to) {
  bool changed = false;
  for (TypedLink& l : links_) {
    if (l.target == from) {
      l.target = to;
      changed = true;
    }
  }
  if (changed) Normalize();
}

void TypeSignature::RemapTargets(std::span<const TypeId> map) {
  bool changed = false;
  for (TypedLink& l : links_) {
    if (l.target >= 0) {
      TypeId next = map[static_cast<size_t>(l.target)];
      if (next != l.target) {
        l.target = next;
        changed = true;
      }
    }
  }
  if (changed) Normalize();
}

std::string TypeSignature::ToString(const graph::LabelInterner& labels) const {
  std::string out;
  for (size_t i = 0; i < links_.size(); ++i) {
    if (i > 0) out += ", ";
    out += TypedLinkToString(links_[i], labels);
  }
  return out;
}

uint64_t TypeSignature::Hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const TypedLink& l : links_) {
    h = h * 0x100000001b3ULL ^ HashTypedLink(l);
  }
  return h;
}

}  // namespace schemex::typing
