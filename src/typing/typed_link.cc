#include "typing/typed_link.h"

#include "util/string_util.h"

namespace schemex::typing {

std::string TypedLinkToString(const TypedLink& link,
                              const graph::LabelInterner& labels) {
  const char* arrow = link.dir == Direction::kIncoming ? "<-" : "->";
  std::string target = link.target == kAtomicType
                           ? "0"
                           : util::StringPrintf("%d", link.target + 1);
  return util::StringPrintf("%s%s^%s", arrow,
                            labels.Name(link.label).c_str(), target.c_str());
}

uint64_t HashTypedLink(const TypedLink& link) {
  uint64_t x = (static_cast<uint64_t>(link.dir) << 62) ^
               (static_cast<uint64_t>(link.label) << 32) ^
               static_cast<uint64_t>(static_cast<uint32_t>(link.target));
  // splitmix64 finalizer
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace schemex::typing
