#include "typing/program_io.h"

#include "datalog/parser.h"
#include "datalog/printer.h"

namespace schemex::typing {

std::string WriteTypingProgram(const TypingProgram& program,
                               const graph::LabelInterner& labels) {
  return datalog::PrintProgram(program.ToDatalog(), labels);
}

util::StatusOr<TypingProgram> ReadTypingProgram(std::string_view text,
                                                graph::LabelInterner* labels) {
  SCHEMEX_ASSIGN_OR_RETURN(datalog::Program p,
                           datalog::ParseProgram(text, labels));
  return TypingProgram::FromDatalog(p);
}

}  // namespace schemex::typing
