#ifndef SCHEMEX_TYPING_EXPLAIN_H_
#define SCHEMEX_TYPING_EXPLAIN_H_

#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "typing/gfp.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::typing {

/// Why is object o in type t? The greatest-fixpoint semantics justifies
/// each membership by a witness per typed link ("the type of an object is
/// justified by the types of objects connected to it", §2); Explain makes
/// those witnesses inspectable — for debugging extracted schemas and for
/// surfacing provenance in interfaces.
struct LinkWitness {
  TypedLink link;
  /// The neighbor that satisfies the link (atomic object for ->l^0).
  graph::ObjectId witness;
};

struct MembershipExplanation {
  graph::ObjectId object;
  TypeId type;
  std::vector<LinkWitness> witnesses;  ///< one per typed link, in body order

  /// "o4 : type2 because <-a^1 via o1, ->b^0 via o5".
  std::string ToString(graph::GraphView g,
                       const TypingProgram& program) const;
};

/// Explains o's membership in t under extents m (typically ComputeGfp's
/// output). Fails with FailedPrecondition if o does not satisfy t under
/// m — there is nothing to explain.
util::StatusOr<MembershipExplanation> ExplainMembership(
    const TypingProgram& program, graph::GraphView g,
    const Extents& m, graph::ObjectId o, TypeId t);

}  // namespace schemex::typing

#endif  // SCHEMEX_TYPING_EXPLAIN_H_
