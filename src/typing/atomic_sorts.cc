#include "typing/atomic_sorts.h"

#include <cctype>
#include <set>

#include "util/string_util.h"

namespace schemex::typing {

namespace {

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool LooksLikeInt(std::string_view v) {
  if (!v.empty() && (v[0] == '-' || v[0] == '+')) v.remove_prefix(1);
  return AllDigits(v);
}

bool LooksLikeReal(std::string_view v) {
  double d = 0;
  if (!util::ParseDouble(v, &d)) return false;
  return v.find_first_of(".eE") != std::string_view::npos;
}

bool LooksLikeDate(std::string_view v) {
  // YYYY-MM-DD
  return v.size() == 10 && AllDigits(v.substr(0, 4)) && v[4] == '-' &&
         AllDigits(v.substr(5, 2)) && v[7] == '-' && AllDigits(v.substr(8, 2));
}

bool LooksLikeUrl(std::string_view v) {
  return util::StartsWith(v, "http://") || util::StartsWith(v, "https://");
}

bool LooksLikeEmail(std::string_view v) {
  size_t at = v.find('@');
  return at != std::string_view::npos && at > 0 && at + 1 < v.size() &&
         v.find('@', at + 1) == std::string_view::npos &&
         v.find(' ') == std::string_view::npos;
}

/// Copies `g`, rewriting each complex->atomic edge label through `relabel`
/// (which may return the original name to keep it).
graph::DataGraph RelabelAtomicEdges(
    graph::GraphView g,
    const std::function<std::string(graph::LabelId, graph::ObjectId atom)>&
        relabel) {
  graph::DataGraph out;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsAtomic(o)) {
      out.AddAtomic(g.Value(o), g.Name(o));
    } else {
      out.AddComplex(g.Name(o));
    }
  }
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    for (const graph::HalfEdge& e : g.OutEdges(o)) {
      if (g.IsAtomic(e.other)) {
        // Refinement can merge two parallel edges (same label, same
        // target is impossible pre-refinement, so no collisions arise;
        // ignore AlreadyExists defensively anyway).
        out.MergeEdge(o, e.other, relabel(e.label, e.other));
      } else {
        out.MergeEdge(o, e.other, g.labels().Name(e.label));
      }
    }
  }
  return out;
}

}  // namespace

std::string_view AtomicSortName(AtomicSort sort) {
  switch (sort) {
    case AtomicSort::kInt:
      return "int";
    case AtomicSort::kReal:
      return "real";
    case AtomicSort::kBool:
      return "bool";
    case AtomicSort::kDate:
      return "date";
    case AtomicSort::kUrl:
      return "url";
    case AtomicSort::kEmail:
      return "email";
    case AtomicSort::kString:
      return "string";
  }
  return "string";
}

AtomicSort ClassifyValue(std::string_view value) {
  std::string_view v = util::Trim(value);
  if (v == "true" || v == "false") return AtomicSort::kBool;
  if (LooksLikeInt(v)) return AtomicSort::kInt;
  if (LooksLikeReal(v)) return AtomicSort::kReal;
  if (LooksLikeDate(v)) return AtomicSort::kDate;
  if (LooksLikeUrl(v)) return AtomicSort::kUrl;
  if (LooksLikeEmail(v)) return AtomicSort::kEmail;
  return AtomicSort::kString;
}

std::string DefaultSortClassifier(std::string_view value) {
  return std::string(AtomicSortName(ClassifyValue(value)));
}

graph::DataGraph RefineAtomicSorts(graph::GraphView g,
                                   const SortClassifier& classifier) {
  return RelabelAtomicEdges(g, [&](graph::LabelId l, graph::ObjectId atom) {
    return g.labels().Name(l) + "@" + classifier(g.Value(atom));
  });
}

util::StatusOr<graph::DataGraph> RefineByValueEnum(graph::GraphView g,
                                                   std::string_view label_name,
                                                   size_t max_distinct) {
  graph::LabelId target = g.labels().Find(label_name);
  if (target == graph::kInvalidLabel) {
    return util::Status::NotFound(
        util::StringPrintf("label '%.*s' not present",
                           static_cast<int>(label_name.size()),
                           label_name.data()));
  }
  std::set<std::string> values;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    for (const graph::HalfEdge& e : g.OutEdges(o)) {
      if (e.label == target && g.IsAtomic(e.other)) {
        values.insert(std::string(g.Value(e.other)));
      }
    }
  }
  if (values.size() > max_distinct) {
    return util::Status::FailedPrecondition(util::StringPrintf(
        "label has %zu distinct values (max %zu); refining would shred "
        "the schema",
        values.size(), max_distinct));
  }
  return RelabelAtomicEdges(g, [&](graph::LabelId l, graph::ObjectId atom) {
    if (l != target) return g.labels().Name(l);
    return g.labels().Name(l) + "=" + std::string(g.Value(atom));
  });
}

}  // namespace schemex::typing
