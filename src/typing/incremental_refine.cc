#include "typing/incremental_refine.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "typing/refine_internal.h"
#include "typing/type_signature.h"
#include "util/parallel_for.h"
#include "util/string_util.h"

namespace schemex::typing {

namespace {

using internal::EncodeRefineLink;
using internal::Mix64;

/// Content hash of a canonical (sorted, deduped) encoding. Unlike the
/// cold path's per-round hash this does NOT fold in the previous block:
/// the incremental table is keyed by signature alone, since joining an
/// existing block is exactly a signature match.
uint64_t HashEnc(const uint64_t* data, size_t len) {
  uint64_t h = Mix64(static_cast<uint64_t>(len));
  for (size_t i = 0; i < len; ++i) h = Mix64(h ^ data[i]);
  return h;
}

/// Per-worker state for one shard of the round's dirty objects.
struct EncShard {
  size_t begin = 0;
  size_t end = 0;
  std::vector<uint64_t> arena;    ///< canonical encodings, back to back
  std::vector<uint64_t> scratch;  ///< one object's links, sorted + deduped
};

}  // namespace

util::StatusOr<PerfectTypingResult> IncrementalRefine(
    graph::GraphView g, const PerfectTypingResult& previous,
    std::span<const graph::ObjectId> touched,
    const IncrementalRefineOptions& options, IncrementalRefineStats* stats) {
  IncrementalRefineStats local_stats;
  IncrementalRefineStats& st = stats ? *stats : local_stats;
  st = IncrementalRefineStats{};
  auto fallback =
      [&](std::string reason) -> util::StatusOr<PerfectTypingResult> {
    st.fell_back = true;
    st.fallback_reason = std::move(reason);
    return PerfectTypingViaHashRefinement(g, options.exec);
  };

  const size_t n = g.NumObjects();
  const size_t prev_n = previous.home.size();
  if (prev_n > n) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "previous partition covers %zu objects but the graph has %zu — "
        "objects may be added, never removed",
        prev_n, n));
  }
  for (graph::ObjectId o : touched) {
    if (o >= n) {
      return util::Status::InvalidArgument(
          util::StringPrintf("touched object %u out of range (n=%zu)", o, n));
    }
  }
  if (g.labels().size() >= (1ULL << 31)) {
    return fallback("label space too wide for the 64-bit link encoding");
  }
  const size_t num_types = previous.program.NumTypes();
  if (num_types == 0) {
    return fallback("previous partition is empty");
  }

  const size_t num_complex = g.NumComplexObjects();

  // Adopt the previous partition. Old objects keep their block; objects
  // appended after prev_n start in an unregistered nursery block that no
  // signature lookup can resolve to, so round 1 is guaranteed to move
  // them into a real block (joined or fresh).
  std::vector<TypeId> block(n, kInvalidType);
  const TypeId nursery = static_cast<TypeId>(num_types);
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (o < prev_n) {
      TypeId home = previous.home[o];
      bool complex = g.IsComplex(o);
      if (complex != (home != kInvalidType) ||
          (complex && static_cast<size_t>(home) >= num_types)) {
        // The overlay never changes an existing object's kind; a drifted
        // or out-of-range home means `previous` does not describe this
        // graph's history. The cold path needs no history.
        return fallback(util::StringPrintf(
            "previous home of object %u inconsistent with the graph", o));
      }
      block[o] = home;
    } else if (g.IsComplex(o)) {
      block[o] = nursery;
    }
  }

  // Block signature store: the previous program's rules, re-encoded with
  // the cold path's link packing. EncodeRefineLink orders by (label,
  // dir, target) while TypedLink sorts by (dir, label, target), so the
  // encoded form must be re-sorted to match what dirty objects compute.
  // Index num_types is the nursery: no signature, never joinable.
  std::vector<std::vector<uint64_t>> block_enc(num_types + 1);
  std::vector<uint8_t> block_has_enc(num_types + 1, 0);
  for (size_t t = 0; t < num_types; ++t) {
    const TypeSignature& sig =
        previous.program.type(static_cast<TypeId>(t)).signature;
    std::vector<uint64_t>& enc = block_enc[t];
    enc.reserve(sig.links().size());
    for (const TypedLink& l : sig.links()) {
      bool valid_target =
          (l.target == kAtomicType && l.dir == Direction::kOutgoing) ||
          (l.target >= 0 && static_cast<size_t>(l.target) < num_types);
      if (!valid_target) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "previous program rule %zu has an out-of-range target", t));
      }
      enc.push_back(EncodeRefineLink(l.dir, l.label, l.target));
    }
    std::sort(enc.begin(), enc.end());
    enc.erase(std::unique(enc.begin(), enc.end()), enc.end());
    block_has_enc[t] = 1;
  }

  // Signature -> block id table. The hash only routes to a bucket;
  // equality is always verified against the stored encoding. Should two
  // previous types carry the same signature (impossible for a coarsest
  // partition, but tolerated), lookups resolve to the first — the
  // quotient pass repairs any resulting over-fine partition.
  std::unordered_map<uint64_t, std::vector<TypeId>> enc_index;
  enc_index.reserve(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    uint64_t h = options.exec.debug_force_hash_collisions
                     ? 0
                     : HashEnc(block_enc[t].data(), block_enc[t].size());
    enc_index[h].push_back(static_cast<TypeId>(t));
  }

  // Dirty seed: the caller's touched set plus every appended complex
  // object, sorted and deduped so the reduce visits objects in id order.
  std::vector<graph::ObjectId> dirty;
  for (graph::ObjectId o : touched) {
    if (g.IsComplex(o)) dirty.push_back(o);
  }
  for (graph::ObjectId o = static_cast<graph::ObjectId>(prev_n); o < n; ++o) {
    if (g.IsComplex(o)) dirty.push_back(o);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  st.seed_dirty = dirty.size();

  util::PoolRef pool(options.exec.pool, options.exec.num_threads);
  const double dirty_limit =
      options.max_dirty_fraction * static_cast<double>(num_complex);

  std::vector<EncShard> shards;
  std::vector<uint64_t> hash;
  std::vector<size_t> span_off;
  std::vector<uint32_t> span_len;
  std::vector<uint32_t> shard_of;
  std::vector<graph::ObjectId> moved;
  std::vector<graph::ObjectId> next_dirty;

  // Propagation: each round re-keys the dirty objects' canonical picture
  // encodings against the current blocks (sharded, read-only), then a
  // sequential reduce in ascending id order joins or founds blocks —
  // deterministic at any thread count. An object whose picture still
  // matches its block's signature stays put and wakes nobody.
  while (!dirty.empty()) {
    SCHEMEX_RETURN_IF_ERROR(options.exec.Poll());
    if (static_cast<double>(dirty.size()) > dirty_limit) {
      return fallback(util::StringPrintf(
          "dirty set (%zu of %zu complex objects) exceeded "
          "max_dirty_fraction=%.3f",
          dirty.size(), num_complex, options.max_dirty_fraction));
    }
    if (st.rounds >= options.max_rounds) {
      return fallback(util::StringPrintf(
          "no fixpoint after max_rounds=%zu", options.max_rounds));
    }
    ++st.rounds;
    st.peak_dirty = std::max(st.peak_dirty, dirty.size());

    const size_t d = dirty.size();
    auto ranges = util::ShardRanges(d, pool.num_threads());
    shards.resize(ranges.size());
    for (size_t s = 0; s < ranges.size(); ++s) {
      shards[s].begin = ranges[s].first;
      shards[s].end = ranges[s].second;
    }
    hash.resize(d);
    span_off.resize(d);
    span_len.resize(d);
    shard_of.resize(d);
    for (size_t s = 0; s < shards.size(); ++s) {
      for (size_t i = shards[s].begin; i < shards[s].end; ++i) {
        shard_of[i] = static_cast<uint32_t>(s);
      }
    }

    util::RunShards(pool.get(), shards.size(), [&](size_t s) {
      EncShard& shard = shards[s];
      shard.arena.clear();
      for (size_t i = shard.begin; i < shard.end; ++i) {
        graph::ObjectId o = dirty[i];
        std::vector<uint64_t>& scratch = shard.scratch;
        scratch.clear();
        for (const graph::HalfEdge& e : g.OutEdges(o)) {
          scratch.push_back(EncodeRefineLink(
              Direction::kOutgoing, e.label,
              g.IsAtomic(e.other) ? kAtomicType : block[e.other]));
        }
        for (const graph::HalfEdge& e : g.InEdges(o)) {
          scratch.push_back(
              EncodeRefineLink(Direction::kIncoming, e.label, block[e.other]));
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        hash[i] = options.exec.debug_force_hash_collisions
                      ? 0
                      : HashEnc(scratch.data(), scratch.size());
        span_off[i] = shard.arena.size();
        span_len[i] = static_cast<uint32_t>(scratch.size());
        shard.arena.insert(shard.arena.end(), scratch.begin(), scratch.end());
      }
    });

    moved.clear();
    for (size_t i = 0; i < d; ++i) {
      graph::ObjectId o = dirty[i];
      TypeId cur = block[o];
      const uint64_t* enc = shards[shard_of[i]].arena.data() + span_off[i];
      const size_t len = span_len[i];
      if (block_has_enc[static_cast<size_t>(cur)] &&
          block_enc[static_cast<size_t>(cur)].size() == len &&
          std::equal(enc, enc + len,
                     block_enc[static_cast<size_t>(cur)].begin())) {
        continue;
      }
      uint64_t h = options.exec.debug_force_hash_collisions
                       ? 0
                       : HashEnc(enc, len);
      std::vector<TypeId>& bucket = enc_index[h];
      TypeId found = kInvalidType;
      for (TypeId cand : bucket) {
        const std::vector<uint64_t>& cand_enc =
            block_enc[static_cast<size_t>(cand)];
        if (cand_enc.size() == len &&
            std::equal(enc, enc + len, cand_enc.begin())) {
          found = cand;
          break;
        }
      }
      if (found == kInvalidType) {
        if (block_enc.size() >= (1ULL << 31)) {
          return fallback("block id space exhausted");
        }
        found = static_cast<TypeId>(block_enc.size());
        block_enc.emplace_back(enc, enc + len);
        block_has_enc.push_back(1);
        bucket.push_back(found);
      }
      if (found != cur) {
        block[o] = found;
        moved.push_back(o);
        ++st.moved_objects;
      }
    }
    if (moved.empty()) break;

    // A move changes the pictures of the mover's complex neighbours (in
    // both directions — and of itself on a self-loop, where it appears
    // among its own neighbours), so they are next round's dirty set.
    next_dirty.clear();
    for (graph::ObjectId o : moved) {
      for (const graph::HalfEdge& e : g.OutEdges(o)) {
        if (g.IsComplex(e.other)) next_dirty.push_back(e.other);
      }
      for (const graph::HalfEdge& e : g.InEdges(o)) {
        next_dirty.push_back(e.other);  // in-edge sources are complex
      }
    }
    std::sort(next_dirty.begin(), next_dirty.end());
    next_dirty.erase(std::unique(next_dirty.begin(), next_dirty.end()),
                     next_dirty.end());
    std::swap(dirty, next_dirty);
  }

  // The propagation fixpoint is *a* stable partition (every object's
  // picture equals its block's stored signature) but deletions can leave
  // it finer than the coarsest one. Exact partition refinement over the
  // surviving blocks — each live block is one node whose signature is
  // its stored encoding with targets read through the evolving block
  // classes — recovers the coarsest stable partition: the refinement
  // fixpoint lifted through block membership is stable (hence finer than
  // the coarsest), and no round ever separates blocks that the coarsest
  // partition keeps together.
  const size_t num_ids = block_enc.size();
  std::vector<uint32_t> members(num_ids, 0);
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (block[o] != kInvalidType) ++members[static_cast<size_t>(block[o])];
  }
  std::vector<TypeId> live;
  std::vector<TypeId> live_index(num_ids, kInvalidType);
  for (size_t id = 0; id < num_ids; ++id) {
    if (members[id] > 0) {
      live_index[id] = static_cast<TypeId>(live.size());
      live.push_back(static_cast<TypeId>(id));
    }
  }
  st.live_blocks = live.size();

  // Decode each live block's signature once: (direction+label bits,
  // live-index target or -1 for atomic). At a propagation fixpoint every
  // referenced block has members — a signature link naming block B means
  // some member's neighbour sits in B — so a dead target can only mean
  // the inputs violated the contract; bail to the cold path.
  struct DecodedLink {
    uint64_t dir_label_bits;  // the encoding's high 32 bits
    TypeId target_live;       // live index, or kAtomicType
  };
  std::vector<std::vector<DecodedLink>> decoded(live.size());
  for (size_t li = 0; li < live.size(); ++li) {
    const std::vector<uint64_t>& enc =
        block_enc[static_cast<size_t>(live[li])];
    decoded[li].reserve(enc.size());
    for (uint64_t v : enc) {
      TypeId target =
          static_cast<TypeId>(static_cast<uint32_t>(v & 0xffffffffULL)) - 1;
      TypeId target_live = kAtomicType;
      if (target != kAtomicType) {
        if (static_cast<size_t>(target) >= num_ids ||
            live_index[static_cast<size_t>(target)] == kInvalidType) {
          return fallback("stable partition references an empty block");
        }
        target_live = live_index[static_cast<size_t>(target)];
      }
      decoded[li].push_back(DecodedLink{v & ~0xffffffffULL, target_live});
    }
  }

  std::vector<TypeId> qclass(live.size(), 0);
  size_t qcount = live.empty() ? 0 : 1;
  if (!live.empty()) {
    for (;;) {
      SCHEMEX_RETURN_IF_ERROR(options.exec.Poll());
      using Key = std::pair<TypeId, std::vector<uint64_t>>;
      std::map<Key, TypeId> next_id;
      std::vector<TypeId> next_q(live.size());
      std::vector<uint64_t> key_enc;
      for (size_t li = 0; li < live.size(); ++li) {
        key_enc.clear();
        for (const DecodedLink& l : decoded[li]) {
          TypeId t = l.target_live == kAtomicType
                         ? kAtomicType
                         : qclass[static_cast<size_t>(l.target_live)];
          key_enc.push_back(l.dir_label_bits |
                            static_cast<uint64_t>(static_cast<uint32_t>(t + 1)));
        }
        std::sort(key_enc.begin(), key_enc.end());
        key_enc.erase(std::unique(key_enc.begin(), key_enc.end()),
                      key_enc.end());
        Key key{qclass[li], key_enc};
        auto it = next_id.try_emplace(std::move(key),
                                      static_cast<TypeId>(next_id.size()))
                      .first;
        next_q[li] = it->second;
      }
      size_t next_count = next_id.size();
      qclass = std::move(next_q);
      if (next_count == qcount) break;
      qcount = next_count;
    }
  }

  // Lift through membership and renumber by first occurrence in object
  // order — the cold reduce's numbering rule — then assemble through the
  // cold path's own helper. Equal partitions in, bit-identical programs
  // out.
  std::vector<TypeId> renumber(qcount, kInvalidType);
  std::vector<TypeId> class_of(n, kInvalidType);
  TypeId next_class = 0;
  for (graph::ObjectId o = 0; o < n; ++o) {
    if (block[o] == kInvalidType) continue;
    TypeId c = qclass[static_cast<size_t>(
        live_index[static_cast<size_t>(block[o])])];
    if (renumber[static_cast<size_t>(c)] == kInvalidType) {
      renumber[static_cast<size_t>(c)] = next_class++;
    }
    class_of[o] = renumber[static_cast<size_t>(c)];
  }
  return internal::AssembleRefinementResult(
      g, class_of, static_cast<size_t>(next_class), "type");
}

}  // namespace schemex::typing
