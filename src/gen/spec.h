#ifndef SCHEMEX_GEN_SPEC_H_
#define SCHEMEX_GEN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "util/statusor.h"

namespace schemex::gen {

/// Marker: a probabilistic link whose target is an atomic object.
inline constexpr int kAtomicTarget = -1;

/// One outgoing link that objects of a type carry with some probability
/// (the paper's §7.1 synthetic-data recipe: "type definition with
/// probability attached to their typed links").
struct ProbLink {
  std::string label;
  int target = kAtomicTarget;  ///< index into DatasetSpec::types, or atomic
  double probability = 1.0;
};

/// One intended type of a synthetic dataset.
struct TypeSpec {
  std::string name;
  size_t count = 0;  ///< number of objects to instantiate
  std::vector<ProbLink> links;
};

/// A full synthetic-dataset specification. Incoming typed links are not
/// specified: they emerge from other types' outgoing links.
struct DatasetSpec {
  std::string name;

  std::vector<TypeSpec> types;

  /// Atomic objects are drawn from a per-label pool of this size (fresh
  /// values "<label>_<i>"); 0 means every atomic link gets a fresh atomic
  /// object. Pools keep object counts near the paper's Table 1 scale.
  size_t atomic_pool_per_label = 0;

  /// True iff every ProbLink targets kAtomicTarget.
  bool IsBipartite() const;

  /// True iff two distinct types share an identical (label, target) link —
  /// the paper's "Overlap?" column.
  bool HasOverlap() const;
};

/// Instantiates `spec` with randomness from `seed`: for each object of
/// each type and each ProbLink, a Bernoulli draw decides whether the link
/// exists; complex targets are uniform over the target type's objects
/// (re-drawn on duplicate-edge collisions, then dropped). Object names are
/// "<type>_<i>".
util::StatusOr<graph::DataGraph> Generate(const DatasetSpec& spec,
                                          uint64_t seed);

}  // namespace schemex::gen

#endif  // SCHEMEX_GEN_SPEC_H_
