#ifndef SCHEMEX_GEN_DBG_H_
#define SCHEMEX_GEN_DBG_H_

#include <cstdint>

#include "gen/spec.h"
#include "graph/data_graph.h"
#include "util/statusor.h"

namespace schemex::gen {

/// A DatasetSpec mirroring the paper's DBG dataset (information about the
/// members of the Stanford Database Group) with the six intended roles of
/// the paper's Figure 1:
///
///   project      : members (db-people and students), name, home page;
///                  referenced back by its members' "project" links
///   publication  : author -> db-person, name, conference, postscript
///   db-person    : project, publication, birthday, degree, email, title,
///                  home page, name + optional extras
///   student      : project, advisor -> db-person, email, title, home
///                  page, name, nickname
///   birthday     : month, day, year (owned by db-person)
///   degree       : major, school, name, year (owned by db-person)
///
/// Optional links (probability < 1) make the data irregular the way real
/// home pages are, so the *perfect* typing has dozens of types while
/// clustering recovers approximately the six intended roles — the
/// behaviour Figures 1 and 6 demonstrate (53 perfect vs 6 optimal in the
/// paper).
DatasetSpec DbgSpec();

/// Generates the DBG-like database (Generate(DbgSpec(), seed)).
util::StatusOr<graph::DataGraph> MakeDbgDataset(uint64_t seed = 42);

}  // namespace schemex::gen

#endif  // SCHEMEX_GEN_DBG_H_
