#ifndef SCHEMEX_GEN_PERTURB_H_
#define SCHEMEX_GEN_PERTURB_H_

#include <cstdint>

#include "graph/data_graph.h"
#include "util/status.h"

namespace schemex::gen {

/// The paper's §7.1 perturbation: "delete randomly a few links in the
/// graph and then add some randomly labeled links".
struct PerturbOptions {
  size_t delete_links = 0;
  size_t add_links = 0;
  uint64_t seed = 1;

  /// Added links draw labels uniformly from the existing label set plus
  /// this many fresh "noise<i>" labels.
  size_t fresh_labels = 2;

  /// Probability that an added link's target is an atomic object (noise in
  /// real web data is mostly stray attributes; links to atomic objects do
  /// not cascade through the typing the way complex-complex links do).
  double atomic_target_fraction = 0.75;
};

/// Summary of what Perturb actually changed (additions can fall short when
/// random endpoints keep colliding with existing edges).
struct PerturbStats {
  size_t deleted = 0;
  size_t added = 0;
};

/// Mutates `g` in place. Deletions pick uniform random existing edges;
/// additions pick a uniform random complex source, uniform random target,
/// and uniform random label, skipping duplicates and atomic sources.
util::Status Perturb(graph::DataGraph* g, const PerturbOptions& options,
                     PerturbStats* stats = nullptr);

}  // namespace schemex::gen

#endif  // SCHEMEX_GEN_PERTURB_H_
