#ifndef SCHEMEX_GEN_RANDOM_GRAPH_H_
#define SCHEMEX_GEN_RANDOM_GRAPH_H_

#include <cstdint>

#include "graph/data_graph.h"

namespace schemex::gen {

/// Parameters for an unstructured (Erdos–Renyi-flavoured) random labeled
/// digraph — used by property tests and micro-benchmarks where no
/// intended schema should exist.
struct RandomGraphOptions {
  size_t num_complex = 100;
  size_t num_atomic = 100;
  size_t num_edges = 300;
  size_t num_labels = 5;
  /// Probability that an edge's target is drawn from the atomic objects.
  double atomic_target_fraction = 0.5;
  uint64_t seed = 7;
};

/// Generates a random graph. Duplicate draws are skipped, so the edge
/// count can fall slightly short of num_edges on dense settings.
graph::DataGraph RandomGraph(const RandomGraphOptions& options);

}  // namespace schemex::gen

#endif  // SCHEMEX_GEN_RANDOM_GRAPH_H_
