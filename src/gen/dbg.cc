#include "gen/dbg.h"

namespace schemex::gen {

DatasetSpec DbgSpec() {
  // Type indices within the spec.
  constexpr int kProject = 0;
  constexpr int kPublication = 1;
  constexpr int kDbPerson = 2;
  constexpr int kStudent = 3;
  constexpr int kBirthday = 4;
  constexpr int kDegree = 5;

  DatasetSpec spec;
  spec.name = "dbg";
  spec.atomic_pool_per_label = 0;  // web pages: every field its own value

  TypeSpec project;
  project.name = "project";
  project.count = 15;
  project.links = {
      {"name", kAtomicTarget, 1.0},
      {"home_page", kAtomicTarget, 0.85},
      {"project_member", kDbPerson, 0.95},
      {"project_member", kStudent, 0.9},
  };

  TypeSpec publication;
  publication.name = "publication";
  publication.count = 25;
  publication.links = {
      {"author", kDbPerson, 1.0},
      {"name", kAtomicTarget, 1.0},
      {"conference", kAtomicTarget, 0.95},
      {"postscript", kAtomicTarget, 0.75},
  };

  TypeSpec db_person;
  db_person.name = "db_person";
  db_person.count = 15;
  db_person.links = {
      {"project", kProject, 0.95},
      {"publication", kPublication, 0.85},
      {"birthday", kBirthday, 0.7},
      {"degree", kDegree, 0.75},
      {"years_at_stanford", kAtomicTarget, 0.9},
      {"email", kAtomicTarget, 1.0},
      {"home_page", kAtomicTarget, 0.95},
      {"title", kAtomicTarget, 0.95},
      {"name", kAtomicTarget, 1.0},
      {"original_home", kAtomicTarget, 0.15},
      {"personal_interest", kAtomicTarget, 0.15},
      {"research_interest", kAtomicTarget, 0.9},
  };

  TypeSpec student;
  student.name = "student";
  student.count = 18;
  student.links = {
      {"project", kProject, 0.95},
      {"advisor", kDbPerson, 0.95},
      {"email", kAtomicTarget, 1.0},
      {"title", kAtomicTarget, 0.85},
      {"home_page", kAtomicTarget, 0.95},
      {"name", kAtomicTarget, 1.0},
      {"nickname", kAtomicTarget, 0.25},
  };

  TypeSpec birthday;
  birthday.name = "birthday";
  birthday.count = 12;
  birthday.links = {
      {"month", kAtomicTarget, 1.0},
      {"day", kAtomicTarget, 1.0},
      {"year", kAtomicTarget, 0.9},
  };

  TypeSpec degree;
  degree.name = "degree";
  degree.count = 14;
  degree.links = {
      {"major", kAtomicTarget, 1.0},
      {"school", kAtomicTarget, 1.0},
      {"name", kAtomicTarget, 0.95},
      {"year", kAtomicTarget, 0.8},
  };

  spec.types = {project, publication, db_person, student, birthday, degree};
  return spec;
}

util::StatusOr<graph::DataGraph> MakeDbgDataset(uint64_t seed) {
  return Generate(DbgSpec(), seed);
}

}  // namespace schemex::gen
