#include "gen/random_graph.h"

#include "util/random.h"
#include "util/string_util.h"

namespace schemex::gen {

graph::DataGraph RandomGraph(const RandomGraphOptions& options) {
  util::Rng rng(options.seed);
  graph::DataGraph g;
  std::vector<graph::ObjectId> complex_objects, atomic_objects;
  complex_objects.reserve(options.num_complex);
  atomic_objects.reserve(options.num_atomic);
  for (size_t i = 0; i < options.num_complex; ++i) {
    complex_objects.push_back(
        g.AddComplex(util::StringPrintf("c%zu", i)));
  }
  for (size_t i = 0; i < options.num_atomic; ++i) {
    atomic_objects.push_back(
        g.AddAtomic(util::StringPrintf("v%zu", i)));
  }
  std::vector<graph::LabelId> labels;
  for (size_t l = 0; l < options.num_labels; ++l) {
    labels.push_back(g.InternLabel(util::StringPrintf("l%zu", l)));
  }
  if (complex_objects.empty() || labels.empty()) return g;

  size_t budget = options.num_edges * 8;
  size_t added = 0;
  while (added < options.num_edges && budget-- > 0) {
    graph::ObjectId from = complex_objects[static_cast<size_t>(
        rng.Uniform(complex_objects.size()))];
    bool to_atomic = !atomic_objects.empty() &&
                     rng.Bernoulli(options.atomic_target_fraction);
    graph::ObjectId to =
        to_atomic ? atomic_objects[static_cast<size_t>(
                        rng.Uniform(atomic_objects.size()))]
                  : complex_objects[static_cast<size_t>(
                        rng.Uniform(complex_objects.size()))];
    graph::LabelId label =
        labels[static_cast<size_t>(rng.Uniform(labels.size()))];
    if (from == to) continue;
    if (g.AddEdge(from, to, label).ok()) ++added;
  }
  return g;
}

}  // namespace schemex::gen
