#include "gen/perturb.h"

#include <vector>

#include "util/random.h"
#include "util/string_util.h"

namespace schemex::gen {

util::Status Perturb(graph::DataGraph* g, const PerturbOptions& options,
                     PerturbStats* stats) {
  util::Rng rng(options.seed);
  PerturbStats local;

  // --- Deletions -------------------------------------------------------
  struct Edge {
    graph::ObjectId from, to;
    graph::LabelId label;
  };
  std::vector<Edge> edges;
  edges.reserve(g->NumEdges());
  for (graph::ObjectId o = 0; o < g->NumObjects(); ++o) {
    for (const graph::HalfEdge& e : g->OutEdges(o)) {
      edges.push_back(Edge{o, e.other, e.label});
    }
  }
  std::vector<size_t> victims =
      rng.SampleIndices(edges.size(), options.delete_links);
  for (size_t idx : victims) {
    const Edge& e = edges[idx];
    SCHEMEX_RETURN_IF_ERROR(g->RemoveEdge(e.from, e.to, e.label));
    ++local.deleted;
  }

  // --- Additions -------------------------------------------------------
  std::vector<graph::LabelId> labels;
  for (size_t l = 0; l < g->labels().size(); ++l) {
    labels.push_back(static_cast<graph::LabelId>(l));
  }
  for (size_t i = 0; i < options.fresh_labels; ++i) {
    labels.push_back(
        g->InternLabel(util::StringPrintf("noise%zu", i)));
  }
  std::vector<graph::ObjectId> complex_objects, atomic_objects;
  for (graph::ObjectId o = 0; o < g->NumObjects(); ++o) {
    if (g->IsComplex(o)) {
      complex_objects.push_back(o);
    } else {
      atomic_objects.push_back(o);
    }
  }
  if (complex_objects.empty() || labels.empty()) {
    if (stats != nullptr) *stats = local;
    return options.add_links == 0
               ? util::Status::OK()
               : util::Status::FailedPrecondition(
                     "cannot add links to a graph without complex objects");
  }
  size_t budget = options.add_links * 16;  // collision allowance
  while (local.added < options.add_links && budget-- > 0) {
    graph::ObjectId from = complex_objects[static_cast<size_t>(
        rng.Uniform(complex_objects.size()))];
    bool to_atomic = !atomic_objects.empty() &&
                     rng.Bernoulli(options.atomic_target_fraction);
    graph::ObjectId to =
        to_atomic ? atomic_objects[static_cast<size_t>(
                        rng.Uniform(atomic_objects.size()))]
                  : static_cast<graph::ObjectId>(rng.Uniform(g->NumObjects()));
    graph::LabelId label =
        labels[static_cast<size_t>(rng.Uniform(labels.size()))];
    if (from == to) continue;
    if (g->AddEdge(from, to, label).ok()) ++local.added;
  }
  if (stats != nullptr) *stats = local;
  return util::Status::OK();
}

}  // namespace schemex::gen
