#include "gen/table1.h"

#include "util/string_util.h"

namespace schemex::gen {

namespace {

/// Bipartite, non-overlapping: 10 intended record types with disjoint
/// attribute sets; two optional attributes per type produce a handful of
/// perfect-type variants per intended type (paper DB1: 30 perfect types
/// from 10 intended).
DatasetSpec BipartiteDisjointSpec() {
  DatasetSpec spec;
  spec.name = "bipartite-disjoint";
  spec.atomic_pool_per_label = 12;
  for (int t = 0; t < 10; ++t) {
    TypeSpec ts;
    ts.name = util::StringPrintf("rec%d", t);
    ts.count = 100;
    ts.links = {
        {util::StringPrintf("a%d", t), kAtomicTarget, 1.0},
        {util::StringPrintf("b%d", t), kAtomicTarget, 1.0},
        {util::StringPrintf("c%d", t), kAtomicTarget, 0.97},
        {util::StringPrintf("d%d", t), kAtomicTarget, 0.65},
    };
    spec.types.push_back(std::move(ts));
  }
  return spec;
}

/// Bipartite, overlapping: 6 intended types sharing attributes ("name",
/// "id") the way relational tables share column names (paper DB3).
DatasetSpec BipartiteOverlapSpec() {
  DatasetSpec spec;
  spec.name = "bipartite-overlap";
  spec.atomic_pool_per_label = 25;
  const char* extra[6] = {"salary", "dept",   "price",
                          "qty",    "street", "city"};
  for (int t = 0; t < 6; ++t) {
    TypeSpec ts;
    ts.name = util::StringPrintf("tbl%d", t);
    ts.count = 100;
    ts.links = {
        {"name", kAtomicTarget, 1.0},
        {"id", kAtomicTarget, 1.0},
        {extra[t], kAtomicTarget, 1.0},
        {util::StringPrintf("opt%d", t), kAtomicTarget, 0.85},
    };
    spec.types.push_back(std::move(ts));
  }
  return spec;
}

/// General graph, non-overlapping: 5 intended types with inter-object
/// links (manager/report chains); distinct labels per type (paper DB5).
DatasetSpec GraphDisjointSpec() {
  DatasetSpec spec;
  spec.name = "graph-disjoint";
  spec.atomic_pool_per_label = 15;
  const size_t kCount = 50;
  for (int t = 0; t < 5; ++t) {
    TypeSpec ts;
    ts.name = util::StringPrintf("node%d", t);
    ts.count = kCount;
    ts.links = {
        {util::StringPrintf("tag%d", t), kAtomicTarget, 1.0},
        {util::StringPrintf("ref%d", t), (t + 1) % 5, 0.9},
        {util::StringPrintf("alt%d", t), (t + 2) % 5, 0.5},
        {util::StringPrintf("val%d", t), kAtomicTarget, 0.5},
    };
    spec.types.push_back(std::move(ts));
  }
  return spec;
}

/// General graph, overlapping: 5 intended types sharing both attribute
/// and reference labels (paper DB7).
DatasetSpec GraphOverlapSpec() {
  DatasetSpec spec;
  spec.name = "graph-overlap";
  spec.atomic_pool_per_label = 15;
  const size_t kCount = 50;
  for (int t = 0; t < 5; ++t) {
    TypeSpec ts;
    ts.name = util::StringPrintf("gnode%d", t);
    ts.count = kCount;
    ts.links = {
        {"name", kAtomicTarget, 1.0},
        {"next", (t + 1) % 5, 0.9},
        {util::StringPrintf("own%d", t), kAtomicTarget, 0.7},
        {"meta", kAtomicTarget, 0.5},
    };
    spec.types.push_back(std::move(ts));
  }
  return spec;
}

Table1Entry MakeEntry(const char* name, DatasetSpec spec,
                      size_t intended_types, bool perturbed,
                      size_t delete_links, size_t add_links, uint64_t seed) {
  Table1Entry e;
  e.db_name = name;
  e.spec = std::move(spec);
  e.intended_types = intended_types;
  e.perturbed = perturbed;
  e.perturb.delete_links = delete_links;
  e.perturb.add_links = add_links;
  e.perturb.seed = seed + 1;
  e.generation_seed = seed;
  return e;
}

}  // namespace

std::vector<Table1Entry> Table1Datasets() {
  std::vector<Table1Entry> rows;
  rows.push_back(
      MakeEntry("DB1", BipartiteDisjointSpec(), 10, false, 0, 0, 101));
  rows.push_back(
      MakeEntry("DB2", BipartiteDisjointSpec(), 10, true, 12, 40, 101));
  rows.push_back(
      MakeEntry("DB3", BipartiteOverlapSpec(), 6, false, 0, 0, 303));
  rows.push_back(
      MakeEntry("DB4", BipartiteOverlapSpec(), 6, true, 8, 28, 303));
  rows.push_back(MakeEntry("DB5", GraphDisjointSpec(), 5, false, 0, 0, 505));
  rows.push_back(MakeEntry("DB6", GraphDisjointSpec(), 5, true, 6, 22, 505));
  rows.push_back(MakeEntry("DB7", GraphOverlapSpec(), 5, false, 0, 0, 707));
  rows.push_back(MakeEntry("DB8", GraphOverlapSpec(), 5, true, 6, 22, 707));
  return rows;
}

util::StatusOr<graph::DataGraph> MakeTable1Database(const Table1Entry& entry) {
  SCHEMEX_ASSIGN_OR_RETURN(graph::DataGraph g,
                           Generate(entry.spec, entry.generation_seed));
  if (entry.perturbed) {
    SCHEMEX_RETURN_IF_ERROR(Perturb(&g, entry.perturb));
  }
  return g;
}

}  // namespace schemex::gen
