#ifndef SCHEMEX_GEN_TABLE1_H_
#define SCHEMEX_GEN_TABLE1_H_

#include <string>
#include <vector>

#include "gen/perturb.h"
#include "gen/spec.h"
#include "graph/data_graph.h"
#include "util/statusor.h"

namespace schemex::gen {

/// One of the eight synthetic databases of the paper's Table 1. The paper
/// publishes the generator recipe (§7.1) and the resulting table but not
/// the exact specs; these specs are tuned to match every published
/// attribute (bipartite?, overlap?, intended type count, and the rough
/// object/link scale) so the table's qualitative shape reproduces.
struct Table1Entry {
  std::string db_name;       ///< "DB1" .. "DB8"
  DatasetSpec spec;
  size_t intended_types;     ///< the paper's "Intended Types" column
  bool perturbed;            ///< even-numbered DBs
  PerturbOptions perturb;
  uint64_t generation_seed;
};

/// All eight rows, in table order.
std::vector<Table1Entry> Table1Datasets();

/// Generates (and optionally perturbs) the database for one entry.
util::StatusOr<graph::DataGraph> MakeTable1Database(const Table1Entry& entry);

}  // namespace schemex::gen

#endif  // SCHEMEX_GEN_TABLE1_H_
