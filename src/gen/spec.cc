#include "gen/spec.h"

#include <map>

#include "util/random.h"
#include "util/string_util.h"

namespace schemex::gen {

bool DatasetSpec::IsBipartite() const {
  for (const TypeSpec& t : types) {
    for (const ProbLink& l : t.links) {
      if (l.target != kAtomicTarget) return false;
    }
  }
  return true;
}

bool DatasetSpec::HasOverlap() const {
  std::map<std::pair<std::string, int>, size_t> seen;  // link -> first type
  for (size_t ti = 0; ti < types.size(); ++ti) {
    for (const ProbLink& l : types[ti].links) {
      auto key = std::make_pair(l.label, l.target);
      auto it = seen.find(key);
      if (it != seen.end() && it->second != ti) return true;
      seen.emplace(key, ti);
    }
  }
  return false;
}

util::StatusOr<graph::DataGraph> Generate(const DatasetSpec& spec,
                                          uint64_t seed) {
  for (size_t ti = 0; ti < spec.types.size(); ++ti) {
    for (const ProbLink& l : spec.types[ti].links) {
      if (l.target != kAtomicTarget &&
          (l.target < 0 || l.target >= static_cast<int>(spec.types.size()))) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "type %zu link '%s': target %d out of range", ti, l.label.c_str(),
            l.target));
      }
      if (l.probability < 0.0 || l.probability > 1.0) {
        return util::Status::InvalidArgument("probability outside [0,1]");
      }
    }
    if (spec.types[ti].count == 0) {
      return util::Status::InvalidArgument(
          util::StringPrintf("type %zu has zero objects", ti));
    }
  }

  util::Rng rng(seed);
  graph::DataGraph g;

  // Complex objects, grouped per type.
  std::vector<std::vector<graph::ObjectId>> members(spec.types.size());
  for (size_t ti = 0; ti < spec.types.size(); ++ti) {
    members[ti].reserve(spec.types[ti].count);
    for (size_t i = 0; i < spec.types[ti].count; ++i) {
      members[ti].push_back(g.AddComplex(util::StringPrintf(
          "%s_%zu", spec.types[ti].name.c_str(), i)));
    }
  }

  // Per-label atomic pools (lazy).
  std::map<std::string, std::vector<graph::ObjectId>> pools;
  auto atomic_target = [&](const std::string& label) {
    if (spec.atomic_pool_per_label == 0) {
      return g.AddAtomic(util::StringPrintf("%s_val_%zu", label.c_str(),
                                            g.NumObjects()));
    }
    std::vector<graph::ObjectId>& pool = pools[label];
    if (pool.size() < spec.atomic_pool_per_label) {
      pool.push_back(g.AddAtomic(util::StringPrintf(
          "%s_val_%zu", label.c_str(), pool.size())));
      return pool.back();
    }
    return pool[static_cast<size_t>(rng.Uniform(pool.size()))];
  };

  for (size_t ti = 0; ti < spec.types.size(); ++ti) {
    for (graph::ObjectId o : members[ti]) {
      for (const ProbLink& l : spec.types[ti].links) {
        if (!rng.Bernoulli(l.probability)) continue;
        if (l.target == kAtomicTarget) {
          // Retry a few times on duplicate (same pooled atom drawn twice).
          for (int attempt = 0; attempt < 4; ++attempt) {
            if (g.AddEdge(o, atomic_target(l.label), l.label).ok()) break;
          }
        } else {
          const auto& targets = members[static_cast<size_t>(l.target)];
          for (int attempt = 0; attempt < 4; ++attempt) {
            graph::ObjectId t =
                targets[static_cast<size_t>(rng.Uniform(targets.size()))];
            if (t == o && targets.size() > 1) continue;  // avoid self loops
            if (g.AddEdge(o, t, l.label).ok()) break;
          }
        }
      }
    }
  }
  return g;
}

}  // namespace schemex::gen
