#ifndef SCHEMEX_GRAPH_FROZEN_GRAPH_H_
#define SCHEMEX_GRAPH_FROZEN_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/data_graph.h"
#include "graph/label.h"
#include "util/bitset.h"
#include "util/status.h"

namespace schemex::graph {

/// An immutable, cache-friendly snapshot of a DataGraph.
///
/// Layout: both adjacency directions are CSR (one offset array plus one
/// flat HalfEdge array each), so an algorithm that scans objects in id
/// order walks a single contiguous edge array instead of chasing one
/// heap allocation per object. Values and display names live in a single
/// character arena addressed by a shared offset table, so a frozen graph
/// performs no per-object string allocations and Value()/Name() return
/// views into the arena.
///
/// FrozenGraph is deliberately non-copyable: snapshots are shared via
/// shared_ptr<const FrozenGraph> (see Freeze()), and every instance
/// carries a process-unique id() so sharing is observable — two
/// workspace generations holding the same graph report the same id.
///
/// The read API mirrors DataGraph's, with string_view in place of
/// const string&; GraphView (graph/graph_view.h) abstracts over both.
class FrozenGraph {
 public:
  FrozenGraph() = default;

  /// Builds the snapshot. O(objects + edges + value bytes).
  explicit FrozenGraph(const DataGraph& g);

  // Immutable snapshots are shared, not copied.
  FrozenGraph(const FrozenGraph&) = delete;
  FrozenGraph& operator=(const FrozenGraph&) = delete;
  FrozenGraph(FrozenGraph&&) = default;
  FrozenGraph& operator=(FrozenGraph&&) = default;

  size_t NumObjects() const { return num_objects_; }
  size_t NumComplexObjects() const { return num_complex_; }
  size_t NumAtomicObjects() const { return num_objects_ - num_complex_; }
  size_t NumEdges() const { return num_edges_; }

  bool IsAtomic(ObjectId o) const { return atomic_.Test(o); }
  bool IsComplex(ObjectId o) const { return !atomic_.Test(o); }

  /// Value of an atomic object (empty for complex objects); a view into
  /// the arena, valid as long as the FrozenGraph lives.
  std::string_view Value(ObjectId o) const {
    return ArenaSlice(2 * static_cast<size_t>(o));
  }

  /// Display name given at creation (may be empty); arena-backed view.
  std::string_view Name(ObjectId o) const {
    return ArenaSlice(2 * static_cast<size_t>(o) + 1);
  }

  /// Outgoing half-edges of `o`, sorted by (label, other). A slice of the
  /// flat CSR edge array.
  std::span<const HalfEdge> OutEdges(ObjectId o) const {
    return {out_edges_.data() + out_off_[o], out_off_[o + 1] - out_off_[o]};
  }

  /// Incoming half-edges of `o`, sorted by (label, other).
  std::span<const HalfEdge> InEdges(ObjectId o) const {
    return {in_edges_.data() + in_off_[o], in_off_[o + 1] - in_off_[o]};
  }

  const LabelInterner& labels() const { return labels_; }

  /// True iff the exact edge exists (binary search in the CSR row).
  bool HasEdge(ObjectId from, ObjectId to, LabelId label) const;

  /// True iff `o` has some outgoing `label` edge to an atomic object.
  bool HasEdgeToAtomic(ObjectId o, LabelId label) const;

  /// True iff every edge goes from a complex object to an atomic object.
  bool IsBipartite() const;

  /// Checks the representation invariants: offset monotonicity, adjacency
  /// symmetry between the two CSR halves, sortedness, atomic-sink rule.
  util::Status Validate() const;

  /// Heap bytes held by this snapshot (CSR arrays + arena + label table).
  size_t MemoryUsage() const;

  /// Process-unique identity token, assigned at construction and never
  /// reused. Exposed by the service so tests (and operators) can verify
  /// that workspace generations share one graph instead of copying it.
  uint64_t id() const { return id_; }

 private:
  std::string_view ArenaSlice(size_t slot) const {
    return std::string_view(arena_.data() + text_off_[slot],
                            text_off_[slot + 1] - text_off_[slot]);
  }

  LabelInterner labels_;
  size_t num_objects_ = 0;
  size_t num_complex_ = 0;
  size_t num_edges_ = 0;
  util::DenseBitset atomic_;

  // CSR adjacency: out_off_/in_off_ have NumObjects()+1 entries; the
  // edges of object o occupy [off[o], off[o+1]) of the flat array.
  std::vector<uint64_t> out_off_;
  std::vector<uint64_t> in_off_;
  std::vector<HalfEdge> out_edges_;
  std::vector<HalfEdge> in_edges_;

  // String arena: slot 2*o is o's value, slot 2*o+1 its name;
  // text_off_ has 2*NumObjects()+1 entries.
  std::vector<uint64_t> text_off_;
  std::string arena_;

  uint64_t id_ = 0;
};

/// Freezes `g` into a shareable immutable snapshot.
std::shared_ptr<const FrozenGraph> Freeze(const DataGraph& g);

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_FROZEN_GRAPH_H_
