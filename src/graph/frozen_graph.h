#ifndef SCHEMEX_GRAPH_FROZEN_GRAPH_H_
#define SCHEMEX_GRAPH_FROZEN_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/data_graph.h"
#include "graph/label.h"
#include "util/status.h"
#include "util/statusor.h"

namespace schemex::graph {

/// An immutable, cache-friendly snapshot of a DataGraph.
///
/// Layout: both adjacency directions are CSR (one offset array plus one
/// flat HalfEdge array each), so an algorithm that scans objects in id
/// order walks a single contiguous edge array instead of chasing one
/// heap allocation per object. Values and display names live in a single
/// character arena addressed by a shared offset table, so a frozen graph
/// performs no per-object string allocations and Value()/Name() return
/// views into the arena.
///
/// Every array is accessed through a read-only view that points into one
/// of two kinds of backing storage, held alive by `backing_`:
///  * heap arrays built by the DataGraph constructor (Freeze()), or
///  * an mmap-ed snapshot file (snapshot::Map()), where the on-disk
///    layout *is* the CSR and nothing is copied at load time.
/// The read API is identical either way; algorithms cannot tell (and do
/// not care) whether the kernel pages the arrays in on demand.
///
/// FrozenGraph is deliberately non-copyable: snapshots are shared via
/// shared_ptr<const FrozenGraph> (see Freeze()), and every instance
/// carries a process-unique id() so sharing is observable — two
/// workspace generations holding the same graph report the same id.
///
/// The read API mirrors DataGraph's, with string_view in place of
/// const string&; GraphView (graph/graph_view.h) abstracts over both.
class FrozenGraph {
 public:
  FrozenGraph() = default;

  /// Builds the snapshot. O(objects + edges + value bytes).
  explicit FrozenGraph(const DataGraph& g);

  // Immutable snapshots are shared, not copied.
  FrozenGraph(const FrozenGraph&) = delete;
  FrozenGraph& operator=(const FrozenGraph&) = delete;
  FrozenGraph(FrozenGraph&&) = default;
  FrozenGraph& operator=(FrozenGraph&&) = default;

  size_t NumObjects() const { return num_objects_; }
  size_t NumComplexObjects() const { return num_complex_; }
  size_t NumAtomicObjects() const { return num_objects_ - num_complex_; }
  size_t NumEdges() const { return num_edges_; }

  bool IsAtomic(ObjectId o) const {
    return (atomic_words_[o >> 6] >> (o & 63)) & 1ULL;
  }
  bool IsComplex(ObjectId o) const { return !IsAtomic(o); }

  /// Value of an atomic object (empty for complex objects); a view into
  /// the arena, valid as long as the FrozenGraph lives.
  std::string_view Value(ObjectId o) const {
    return ArenaSlice(2 * static_cast<size_t>(o));
  }

  /// Display name given at creation (may be empty); arena-backed view.
  std::string_view Name(ObjectId o) const {
    return ArenaSlice(2 * static_cast<size_t>(o) + 1);
  }

  /// Outgoing half-edges of `o`, sorted by (label, other). A slice of the
  /// flat CSR edge array.
  std::span<const HalfEdge> OutEdges(ObjectId o) const {
    return out_edges_.subspan(out_off_[o], out_off_[o + 1] - out_off_[o]);
  }

  /// Incoming half-edges of `o`, sorted by (label, other).
  std::span<const HalfEdge> InEdges(ObjectId o) const {
    return in_edges_.subspan(in_off_[o], in_off_[o + 1] - in_off_[o]);
  }

  const LabelInterner& labels() const { return labels_; }

  /// True iff the exact edge exists (binary search in the CSR row).
  bool HasEdge(ObjectId from, ObjectId to, LabelId label) const;

  /// True iff `o` has some outgoing `label` edge to an atomic object.
  bool HasEdgeToAtomic(ObjectId o, LabelId label) const;

  /// True iff every edge goes from a complex object to an atomic object.
  bool IsBipartite() const;

  /// Checks the representation invariants: offset monotonicity, adjacency
  /// symmetry between the two CSR halves, sortedness, atomic-sink rule.
  util::Status Validate() const;

  /// Heap bytes held by this snapshot (CSR arrays + arena + label table).
  /// File-backed bytes of a mapped graph are reported by MappedBytes(),
  /// not here: the kernel pages them in on demand and may evict them.
  size_t MemoryUsage() const;

  /// Bytes of this graph backed by a mapped snapshot file (0 for graphs
  /// frozen from a DataGraph).
  size_t MappedBytes() const { return mapped_bytes_; }

  /// Process-unique identity token, assigned at construction and never
  /// reused. Exposed by the service so tests (and operators) can verify
  /// that workspace generations share one graph instead of copying it.
  uint64_t id() const { return id_; }

  /// Read-only views of the raw CSR arrays — the seam the snapshot layer
  /// (src/snapshot/) serializes verbatim. Spans are valid as long as the
  /// FrozenGraph lives.
  ///
  /// Invariants (established by the constructor, demanded by
  /// FromExternal): offsets are monotone with out_off.size() ==
  /// num_objects+1, out_off.back() == out_edges.size(), text_off.size()
  /// == 2*num_objects+1, text_off.back() == arena.size(),
  /// atomic_words.size() == ceil(num_objects/64) with zero tail bits.
  struct Parts {
    std::span<const uint64_t> out_off;        // OWNER: source graph backing_
    std::span<const uint64_t> in_off;         // OWNER: source graph backing_
    std::span<const uint64_t> text_off;       // OWNER: source graph backing_
    std::span<const uint64_t> atomic_words;   // OWNER: source graph backing_
    std::span<const HalfEdge> out_edges;      // OWNER: source graph backing_
    std::span<const HalfEdge> in_edges;       // OWNER: source graph backing_
    std::string_view arena;                   // OWNER: source graph backing_
  };
  Parts parts() const;

  /// Externally assembled CSR arrays (the snapshot loader's input). The
  /// views must stay valid for as long as `backing` is alive; the
  /// constructed graph holds `backing` and therefore the mapping (or the
  /// decoded arenas) through its shared_ptr control block.
  struct External {
    size_t num_objects = 0;
    size_t num_complex = 0;
    size_t num_edges = 0;
    Parts views;
    LabelInterner labels;
    std::shared_ptr<const void> backing;
    size_t owned_bytes = 0;   ///< heap bytes inside `backing` (decoded sections)
    size_t mapped_bytes = 0;  ///< file-backed bytes referenced by the views
  };

  /// Assembles a FrozenGraph around external arrays after structural
  /// validation: view sizes against the counts, offset monotonicity, and
  /// terminator/array-length agreement — O(objects), no per-edge work.
  /// Per-edge endpoint/label bounds are NOT checked here (callers wanting
  /// that run Validate() or the snapshot loader's edge-bounds pass).
  /// Returns InvalidArgument describing the first violated invariant.
  static util::StatusOr<FrozenGraph> FromExternal(External parts);

 private:
  std::string_view ArenaSlice(size_t slot) const {
    return arena_.substr(text_off_[slot], text_off_[slot + 1] - text_off_[slot]);
  }

  /// Heap arrays backing a graph frozen from a DataGraph.
  struct OwnedArrays;

  LabelInterner labels_;
  size_t num_objects_ = 0;
  size_t num_complex_ = 0;
  size_t num_edges_ = 0;

  // Read-only views into `backing_` (owned heap arrays or a mapped
  // snapshot). atomic_words_ is a dense bitset, one bit per object,
  // 64 objects per word, tail bits zero.
  std::span<const uint64_t> out_off_;       // OWNER: backing_
  std::span<const uint64_t> in_off_;        // OWNER: backing_
  std::span<const uint64_t> text_off_;      // OWNER: backing_
  std::span<const uint64_t> atomic_words_;  // OWNER: backing_
  std::span<const HalfEdge> out_edges_;     // OWNER: backing_
  std::span<const HalfEdge> in_edges_;      // OWNER: backing_
  std::string_view arena_;                  // OWNER: backing_

  std::shared_ptr<const void> backing_;
  size_t owned_bytes_ = 0;
  size_t mapped_bytes_ = 0;

  uint64_t id_ = 0;
};

/// Freezes `g` into a shareable immutable snapshot.
std::shared_ptr<const FrozenGraph> Freeze(const DataGraph& g);

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_FROZEN_GRAPH_H_
