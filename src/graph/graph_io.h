#ifndef SCHEMEX_GRAPH_GRAPH_IO_H_
#define SCHEMEX_GRAPH_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "graph/data_graph.h"
#include "graph/graph_view.h"
#include "util/statusor.h"

namespace schemex::graph {

/// Line-oriented text serialization of a graph. Format:
///
///   # comment / blank lines ignored
///   atomic <name> "<value>"       # value uses C-style \" \\ \n escapes
///   complex <name>
///   edge <from> <label> <to>
///
/// Names are whitespace-free tokens. Objects must be declared before edges
/// reference them (WriteGraph emits them in that order). Unnamed objects
/// are written with synthesized names "_o<id>".
std::string WriteGraph(GraphView g);

/// Parses the text format produced by WriteGraph. Returns ParseError with a
/// line number on malformed input.
util::StatusOr<DataGraph> ReadGraph(std::string_view text);

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_GRAPH_IO_H_
