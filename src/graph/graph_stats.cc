#include "graph/graph_stats.h"

#include <algorithm>

#include "util/string_util.h"

namespace schemex::graph {

GraphStats ComputeStats(GraphView g) {
  GraphStats s;
  s.num_objects = g.NumObjects();
  s.num_complex = g.NumComplexObjects();
  s.num_atomic = g.NumAtomicObjects();
  s.num_edges = g.NumEdges();
  s.num_labels = g.labels().size();
  s.bipartite = g.IsBipartite();
  s.label_histogram.assign(s.num_labels, 0);
  for (ObjectId o = 0; o < g.NumObjects(); ++o) {
    auto out = g.OutEdges(o);
    auto in = g.InEdges(o);
    s.max_out_degree = std::max(s.max_out_degree, out.size());
    s.max_in_degree = std::max(s.max_in_degree, in.size());
    if (g.IsComplex(o) && in.empty()) ++s.num_roots;
    for (const HalfEdge& e : out) ++s.label_histogram[e.label];
  }
  s.avg_out_degree =
      s.num_complex == 0
          ? 0.0
          : static_cast<double>(s.num_edges) / static_cast<double>(s.num_complex);
  return s;
}

std::string GraphStats::ToString(GraphView g) const {
  std::string out = util::StringPrintf(
      "objects=%zu (complex=%zu, atomic=%zu) edges=%zu labels=%zu "
      "bipartite=%s roots=%zu max_out=%zu max_in=%zu avg_out=%.2f\n",
      num_objects, num_complex, num_atomic, num_edges, num_labels,
      bipartite ? "yes" : "no", num_roots, max_out_degree, max_in_degree,
      avg_out_degree);
  for (size_t l = 0; l < label_histogram.size(); ++l) {
    out += util::StringPrintf("  label %-24s %6zu edges\n",
                              g.labels().Name(static_cast<LabelId>(l)).c_str(),
                              label_histogram[l]);
  }
  return out;
}

}  // namespace schemex::graph
