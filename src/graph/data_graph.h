#ifndef SCHEMEX_GRAPH_DATA_GRAPH_H_
#define SCHEMEX_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/label.h"
#include "util/status.h"

namespace schemex::graph {

/// Dense integer id of an object (node). Complex and atomic objects share
/// the id space of a DataGraph.
using ObjectId = uint32_t;

inline constexpr ObjectId kInvalidObject = static_cast<ObjectId>(-1);

/// One labeled, directed half-edge as seen from some object: the label plus
/// the object at the other end.
struct HalfEdge {
  LabelId label;
  ObjectId other;

  friend bool operator==(const HalfEdge&, const HalfEdge&) = default;
  friend auto operator<=>(const HalfEdge&, const HalfEdge&) = default;
};

/// The paper's model of semistructured data: a labeled directed graph given
/// by relations link(From, To, Label) and atomic(Obj, Value).
///
/// Invariants enforced by the mutating API (paper §2):
///  * atomic objects have no outgoing edges (link/atomic first projections
///    are disjoint);
///  * each atomic object has exactly one value (stored at creation);
///  * between any ordered pair of objects there is at most one edge with a
///    given label (duplicate AddEdge calls return AlreadyExists).
///
/// Both outgoing and incoming adjacency are indexed, since the typing
/// language describes objects by incoming as well as outgoing typed links.
class DataGraph {
 public:
  DataGraph() = default;

  // Copyable and movable; a DataGraph is a value.
  DataGraph(const DataGraph&) = default;
  DataGraph& operator=(const DataGraph&) = default;
  DataGraph(DataGraph&&) = default;
  DataGraph& operator=(DataGraph&&) = default;

  /// Adds a complex (interior) object and returns its id. `name` is a
  /// debugging/display name; it need not be unique and may be empty.
  ObjectId AddComplex(std::string_view name = "");

  /// Adds an atomic object carrying `value` and returns its id.
  ObjectId AddAtomic(std::string_view value, std::string_view name = "");

  /// Adds edge link(from, to, label). Fails with:
  ///  * InvalidArgument if either id is out of range,
  ///  * FailedPrecondition if `from` is atomic,
  ///  * AlreadyExists if the identical (from, to, label) edge exists.
  util::Status AddEdge(ObjectId from, ObjectId to, LabelId label);

  /// Convenience overload interning `label` by name.
  util::Status AddEdge(ObjectId from, ObjectId to, std::string_view label);

  /// Set-semantics insert for importers: a duplicate (from, to, label)
  /// edge collapses silently (AlreadyExists is the *expected* outcome on
  /// re-walked structures), while the real failure modes — ids out of
  /// range, atomic source — assert in debug builds. Use AddEdge when the
  /// caller can propagate a Status; use MergeEdge when duplicates are
  /// by-design benign.
  void MergeEdge(ObjectId from, ObjectId to, LabelId label);
  void MergeEdge(ObjectId from, ObjectId to, std::string_view label);

  /// Removes edge (from, to, label) if present; returns NotFound otherwise.
  util::Status RemoveEdge(ObjectId from, ObjectId to, LabelId label);

  /// True iff the exact edge exists.
  bool HasEdge(ObjectId from, ObjectId to, LabelId label) const;

  /// True iff `o` has some outgoing `label` edge to an atomic object.
  bool HasEdgeToAtomic(ObjectId o, LabelId label) const;

  size_t NumObjects() const { return kind_.size(); }
  size_t NumComplexObjects() const { return num_complex_; }
  size_t NumAtomicObjects() const { return kind_.size() - num_complex_; }
  size_t NumEdges() const { return num_edges_; }

  bool IsAtomic(ObjectId o) const { return kind_[o] == Kind::kAtomic; }
  bool IsComplex(ObjectId o) const { return kind_[o] == Kind::kComplex; }

  /// Value of an atomic object (empty for complex objects).
  const std::string& Value(ObjectId o) const { return value_[o]; }

  /// Display name given at creation (may be empty).
  const std::string& Name(ObjectId o) const { return name_[o]; }

  /// Outgoing half-edges of `o`, sorted by (label, other).
  std::span<const HalfEdge> OutEdges(ObjectId o) const {
    return {out_[o].data(), out_[o].size()};
  }

  /// Incoming half-edges of `o`, sorted by (label, other).
  std::span<const HalfEdge> InEdges(ObjectId o) const {
    return {in_[o].data(), in_[o].size()};
  }

  /// The label interner shared by all edges of this graph.
  const LabelInterner& labels() const { return labels_; }
  LabelInterner& labels() { return labels_; }

  /// Intern helper: id for `name`, creating it if needed.
  LabelId InternLabel(std::string_view name) { return labels_.Intern(name); }

  /// Checks all representation invariants (used by tests and after bulk
  /// perturbation): adjacency symmetry, sortedness, atomic-sink rule.
  util::Status Validate() const;

  /// True iff every edge goes from a complex object to an atomic object
  /// (the paper's "bipartite" special case, §5.2).
  bool IsBipartite() const;

  /// Approximate heap bytes held by this graph (adjacency vectors,
  /// per-object strings, label table). Comparable to
  /// FrozenGraph::MemoryUsage().
  size_t MemoryUsage() const;

 private:
  enum class Kind : uint8_t { kComplex, kAtomic };

  util::Status CheckIds(ObjectId from, ObjectId to) const;

  LabelInterner labels_;
  std::vector<Kind> kind_;
  std::vector<std::string> value_;  // parallel to kind_; "" for complex
  std::vector<std::string> name_;   // parallel to kind_
  std::vector<std::vector<HalfEdge>> out_;
  std::vector<std::vector<HalfEdge>> in_;
  size_t num_complex_ = 0;
  size_t num_edges_ = 0;
};

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_DATA_GRAPH_H_
