#include "graph/data_graph.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace schemex::graph {

namespace {

bool InsertSorted(std::vector<HalfEdge>& v, HalfEdge e) {
  auto it = std::lower_bound(v.begin(), v.end(), e);
  if (it != v.end() && *it == e) return false;
  v.insert(it, e);
  return true;
}

bool EraseSorted(std::vector<HalfEdge>& v, HalfEdge e) {
  auto it = std::lower_bound(v.begin(), v.end(), e);
  if (it == v.end() || *it != e) return false;
  v.erase(it);
  return true;
}

bool ContainsSorted(const std::vector<HalfEdge>& v, HalfEdge e) {
  return std::binary_search(v.begin(), v.end(), e);
}

}  // namespace

ObjectId DataGraph::AddComplex(std::string_view name) {
  ObjectId id = static_cast<ObjectId>(kind_.size());
  kind_.push_back(Kind::kComplex);
  value_.emplace_back();
  name_.emplace_back(name);
  out_.emplace_back();
  in_.emplace_back();
  ++num_complex_;
  return id;
}

ObjectId DataGraph::AddAtomic(std::string_view value, std::string_view name) {
  ObjectId id = static_cast<ObjectId>(kind_.size());
  kind_.push_back(Kind::kAtomic);
  value_.emplace_back(value);
  name_.emplace_back(name);
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

util::Status DataGraph::CheckIds(ObjectId from, ObjectId to) const {
  if (from >= kind_.size() || to >= kind_.size()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "object id out of range (from=%u, to=%u, n=%zu)", from, to,
        kind_.size()));
  }
  return util::Status::OK();
}

util::Status DataGraph::AddEdge(ObjectId from, ObjectId to, LabelId label) {
  SCHEMEX_RETURN_IF_ERROR(CheckIds(from, to));
  if (label >= labels_.size()) {
    return util::Status::InvalidArgument("unknown label id");
  }
  if (IsAtomic(from)) {
    return util::Status::FailedPrecondition(
        "atomic objects cannot have outgoing edges");
  }
  if (!InsertSorted(out_[from], HalfEdge{label, to})) {
    return util::Status::AlreadyExists(util::StringPrintf(
        "edge (%u -%s-> %u) already present", from,
        labels_.Name(label).c_str(), to));
  }
  InsertSorted(in_[to], HalfEdge{label, from});
  ++num_edges_;
  return util::Status::OK();
}

util::Status DataGraph::AddEdge(ObjectId from, ObjectId to,
                                std::string_view label) {
  return AddEdge(from, to, labels_.Intern(label));
}

void DataGraph::MergeEdge(ObjectId from, ObjectId to, LabelId label) {
  util::Status st = AddEdge(from, to, label);
  assert(st.ok() || st.code() == util::StatusCode::kAlreadyExists);
  static_cast<void>(st);  // consumed by the assert; duplicates are benign
}

void DataGraph::MergeEdge(ObjectId from, ObjectId to, std::string_view label) {
  MergeEdge(from, to, labels_.Intern(label));
}

util::Status DataGraph::RemoveEdge(ObjectId from, ObjectId to, LabelId label) {
  SCHEMEX_RETURN_IF_ERROR(CheckIds(from, to));
  if (!EraseSorted(out_[from], HalfEdge{label, to})) {
    return util::Status::NotFound("edge not present");
  }
  EraseSorted(in_[to], HalfEdge{label, from});
  --num_edges_;
  return util::Status::OK();
}

bool DataGraph::HasEdge(ObjectId from, ObjectId to, LabelId label) const {
  if (from >= kind_.size() || to >= kind_.size()) return false;
  return ContainsSorted(out_[from], HalfEdge{label, to});
}

bool DataGraph::HasEdgeToAtomic(ObjectId o, LabelId label) const {
  const auto& edges = out_[o];
  auto it = std::lower_bound(edges.begin(), edges.end(),
                             HalfEdge{label, static_cast<ObjectId>(0)});
  for (; it != edges.end() && it->label == label; ++it) {
    if (IsAtomic(it->other)) return true;
  }
  return false;
}

util::Status DataGraph::Validate() const {
  size_t out_count = 0;
  for (ObjectId o = 0; o < kind_.size(); ++o) {
    if (IsAtomic(o) && !out_[o].empty()) {
      return util::Status::Internal(
          util::StringPrintf("atomic object %u has outgoing edges", o));
    }
    if (!std::is_sorted(out_[o].begin(), out_[o].end()) ||
        !std::is_sorted(in_[o].begin(), in_[o].end())) {
      return util::Status::Internal(
          util::StringPrintf("adjacency of object %u not sorted", o));
    }
    out_count += out_[o].size();
    for (const HalfEdge& e : out_[o]) {
      if (e.other >= kind_.size() || e.label >= labels_.size()) {
        return util::Status::Internal("dangling edge endpoint or label");
      }
      if (!ContainsSorted(in_[e.other], HalfEdge{e.label, o})) {
        return util::Status::Internal(util::StringPrintf(
            "edge (%u,%u) missing from incoming index", o, e.other));
      }
    }
    for (const HalfEdge& e : in_[o]) {
      if (e.other >= kind_.size() ||
          !ContainsSorted(out_[e.other], HalfEdge{e.label, o})) {
        return util::Status::Internal(util::StringPrintf(
            "incoming edge of %u has no outgoing counterpart", o));
      }
    }
  }
  if (out_count != num_edges_) {
    return util::Status::Internal("edge count out of sync");
  }
  return util::Status::OK();
}

size_t DataGraph::MemoryUsage() const {
  auto string_bytes = [](const std::string& s) {
    // Small strings live inline in the object; only spilled buffers count
    // extra heap.
    return sizeof(std::string) + (s.capacity() > sizeof(std::string)
                                      ? s.capacity()
                                      : 0);
  };
  size_t bytes = kind_.capacity() * sizeof(Kind) +
                 out_.capacity() * sizeof(std::vector<HalfEdge>) +
                 in_.capacity() * sizeof(std::vector<HalfEdge>);
  for (const std::string& v : value_) bytes += string_bytes(v);
  for (const std::string& n : name_) bytes += string_bytes(n);
  for (const auto& row : out_) bytes += row.capacity() * sizeof(HalfEdge);
  for (const auto& row : in_) bytes += row.capacity() * sizeof(HalfEdge);
  for (size_t l = 0; l < labels_.size(); ++l) {
    bytes += string_bytes(labels_.Name(static_cast<LabelId>(l)));
  }
  return bytes;
}

bool DataGraph::IsBipartite() const {
  for (ObjectId o = 0; o < kind_.size(); ++o) {
    for (const HalfEdge& e : out_[o]) {
      if (!IsAtomic(e.other)) return false;
    }
  }
  return true;
}

}  // namespace schemex::graph
