#ifndef SCHEMEX_GRAPH_LABEL_H_
#define SCHEMEX_GRAPH_LABEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace schemex::graph {

/// Dense integer id of an edge label. Labels are interned per-DataGraph so
/// that all algorithms compare labels as integers.
using LabelId = uint32_t;

/// Sentinel for "no such label".
inline constexpr LabelId kInvalidLabel = static_cast<LabelId>(-1);

/// Bidirectional string <-> dense-id map for edge labels.
///
/// Ids are assigned contiguously from 0 in first-intern order, so a
/// LabelInterner with n labels has exactly the ids [0, n).
class LabelInterner {
 public:
  /// Returns the id of `name`, interning it if new.
  LabelId Intern(std::string_view name);

  /// Returns the id of `name` or kInvalidLabel if it was never interned.
  LabelId Find(std::string_view name) const;

  /// Returns the string for `id`. Requires id < size().
  const std::string& Name(LabelId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, LabelId> index_;
  std::vector<std::string> names_;
};

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_LABEL_H_
