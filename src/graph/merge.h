#ifndef SCHEMEX_GRAPH_MERGE_H_
#define SCHEMEX_GRAPH_MERGE_H_

#include <vector>

#include "graph/data_graph.h"

namespace schemex::graph {

/// Disjoint union of two databases — the §1 integration scenario's first
/// step ("integrates data originating from several distinct sources").
/// Labels with equal names unify; objects stay distinct. `b_offset`
/// (optional) receives the mapping from b's object ids to ids in the
/// result (a's ids are unchanged).
DataGraph MergeGraphs(const DataGraph& a, const DataGraph& b,
                      std::vector<ObjectId>* b_offset = nullptr);

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_MERGE_H_
