#ifndef SCHEMEX_GRAPH_SUBGRAPH_H_
#define SCHEMEX_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph_view.h"

namespace schemex::graph {

struct SubgraphOptions {
  /// Also pull in atomic objects referenced by kept complex objects (and
  /// the edges to them), even if not listed in `keep`.
  bool include_atomic_neighbors = true;
};

/// Induced subgraph over `keep` (object ids of `g`): keeps every listed
/// object and every edge whose endpoints are both kept (plus atomic
/// neighbors when enabled). The subgraph shares `g`'s label table — the
/// same LabelIds are valid in both, so typing programs transfer.
///
/// `old_to_new` (optional) receives a g-sized map to subgraph ids
/// (kInvalidObject for dropped objects).
DataGraph InducedSubgraph(GraphView g,
                          const std::vector<ObjectId>& keep,
                          const SubgraphOptions& options = {},
                          std::vector<ObjectId>* old_to_new = nullptr);

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_SUBGRAPH_H_
