#include "graph/subgraph.h"

namespace schemex::graph {

DataGraph InducedSubgraph(GraphView g,
                          const std::vector<ObjectId>& keep,
                          const SubgraphOptions& options,
                          std::vector<ObjectId>* old_to_new) {
  DataGraph sub;
  for (size_t l = 0; l < g.labels().size(); ++l) {
    sub.InternLabel(g.labels().Name(static_cast<LabelId>(l)));
  }
  std::vector<ObjectId> remap(g.NumObjects(), kInvalidObject);
  for (ObjectId o : keep) {
    if (o >= g.NumObjects() || remap[o] != kInvalidObject) continue;
    remap[o] = g.IsAtomic(o) ? sub.AddAtomic(g.Value(o), g.Name(o))
                             : sub.AddComplex(g.Name(o));
  }
  for (ObjectId o : keep) {
    if (o >= g.NumObjects() || g.IsAtomic(o)) continue;
    for (const HalfEdge& e : g.OutEdges(o)) {
      if (remap[e.other] == kInvalidObject) {
        if (!(options.include_atomic_neighbors && g.IsAtomic(e.other))) {
          continue;
        }
        remap[e.other] = sub.AddAtomic(g.Value(e.other), g.Name(e.other));
      }
      // Duplicate `keep` entries were skipped above, so this cannot fail,
      // but stay defensive on principle.
      sub.MergeEdge(remap[o], remap[e.other], e.label);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(remap);
  return sub;
}

}  // namespace schemex::graph
