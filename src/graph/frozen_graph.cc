#include "graph/frozen_graph.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/string_util.h"

namespace schemex::graph {

namespace {

uint64_t NextGraphId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

struct FrozenGraph::OwnedArrays {
  std::vector<uint64_t> out_off;
  std::vector<uint64_t> in_off;
  std::vector<uint64_t> text_off;
  std::vector<uint64_t> atomic_words;
  std::vector<HalfEdge> out_edges;
  std::vector<HalfEdge> in_edges;
  std::string arena;

  size_t HeapBytes() const {
    return (out_off.capacity() + in_off.capacity() + text_off.capacity() +
            atomic_words.capacity()) *
               sizeof(uint64_t) +
           (out_edges.capacity() + in_edges.capacity()) * sizeof(HalfEdge) +
           arena.capacity();
  }
};

FrozenGraph::FrozenGraph(const DataGraph& g) : id_(NextGraphId()) {
  const size_t n = g.NumObjects();
  num_objects_ = n;
  num_complex_ = g.NumComplexObjects();
  num_edges_ = g.NumEdges();

  // Interner copy: ids stay aligned with the source graph's edges, so a
  // typing program parsed against the DataGraph applies to the snapshot
  // unchanged.
  for (size_t l = 0; l < g.labels().size(); ++l) {
    labels_.Intern(g.labels().Name(static_cast<LabelId>(l)));
  }

  auto owned = std::make_shared<OwnedArrays>();
  owned->out_off.resize(n + 1);
  owned->in_off.resize(n + 1);
  owned->out_edges.reserve(num_edges_);
  owned->in_edges.reserve(num_edges_);
  owned->text_off.resize(2 * n + 1);
  owned->atomic_words.assign((n + 63) / 64, 0);

  size_t arena_bytes = 0;
  for (ObjectId o = 0; o < n; ++o) {
    arena_bytes += g.Value(o).size() + g.Name(o).size();
  }
  owned->arena.reserve(arena_bytes);

  for (ObjectId o = 0; o < n; ++o) {
    if (g.IsAtomic(o)) owned->atomic_words[o >> 6] |= 1ULL << (o & 63);
    owned->out_off[o] = owned->out_edges.size();
    owned->in_off[o] = owned->in_edges.size();
    auto out = g.OutEdges(o);
    auto in = g.InEdges(o);
    owned->out_edges.insert(owned->out_edges.end(), out.begin(), out.end());
    owned->in_edges.insert(owned->in_edges.end(), in.begin(), in.end());
    owned->text_off[2 * static_cast<size_t>(o)] = owned->arena.size();
    owned->arena += g.Value(o);
    owned->text_off[2 * static_cast<size_t>(o) + 1] = owned->arena.size();
    owned->arena += g.Name(o);
  }
  owned->out_off[n] = owned->out_edges.size();
  owned->in_off[n] = owned->in_edges.size();
  owned->text_off[2 * n] = owned->arena.size();

  out_off_ = owned->out_off;
  in_off_ = owned->in_off;
  text_off_ = owned->text_off;
  atomic_words_ = owned->atomic_words;
  out_edges_ = owned->out_edges;
  in_edges_ = owned->in_edges;
  arena_ = owned->arena;
  owned_bytes_ = owned->HeapBytes();
  backing_ = std::move(owned);
}

FrozenGraph::Parts FrozenGraph::parts() const {
  Parts p;
  p.out_off = out_off_;
  p.in_off = in_off_;
  p.text_off = text_off_;
  p.atomic_words = atomic_words_;
  p.out_edges = out_edges_;
  p.in_edges = in_edges_;
  p.arena = arena_;
  return p;
}

util::StatusOr<FrozenGraph> FrozenGraph::FromExternal(External parts) {
  const size_t n = parts.num_objects;
  const Parts& v = parts.views;
  auto invalid = [](std::string why) {
    return util::Status::InvalidArgument("frozen graph parts: " +
                                         std::move(why));
  };
  if (parts.num_complex > n) {
    return invalid("complex-object count exceeds object count");
  }
  if (v.out_off.size() != n + 1 || v.in_off.size() != n + 1) {
    return invalid(util::StringPrintf(
        "CSR offset arrays sized %zu/%zu, want %zu", v.out_off.size(),
        v.in_off.size(), n + 1));
  }
  if (v.text_off.size() != 2 * n + 1) {
    return invalid(util::StringPrintf("text offset array sized %zu, want %zu",
                                      v.text_off.size(), 2 * n + 1));
  }
  if (v.atomic_words.size() != (n + 63) / 64) {
    return invalid(util::StringPrintf("atomic bitset sized %zu words, want %zu",
                                      v.atomic_words.size(), (n + 63) / 64));
  }
  if (v.out_edges.size() != parts.num_edges ||
      v.in_edges.size() != parts.num_edges) {
    return invalid(util::StringPrintf(
        "edge arrays sized %zu/%zu, want %zu edges", v.out_edges.size(),
        v.in_edges.size(), parts.num_edges));
  }
  if (v.out_off[n] != parts.num_edges || v.in_off[n] != parts.num_edges) {
    return invalid("CSR offset terminator does not equal the edge count");
  }
  if (v.text_off[2 * n] != v.arena.size()) {
    return invalid("text offset terminator does not equal the arena size");
  }
  for (size_t i = 0; i < n; ++i) {
    if (v.out_off[i] > v.out_off[i + 1] || v.in_off[i] > v.in_off[i + 1]) {
      return invalid(util::StringPrintf("CSR offsets not monotone at %zu", i));
    }
  }
  for (size_t i = 0; i < 2 * n; ++i) {
    if (v.text_off[i] > v.text_off[i + 1]) {
      return invalid(util::StringPrintf("arena offsets not monotone at %zu", i));
    }
  }
  if (n % 64 != 0 && !v.atomic_words.empty() &&
      (v.atomic_words.back() & ~((1ULL << (n % 64)) - 1)) != 0) {
    return invalid("atomic bitset has set bits past the object count");
  }
  size_t atomic_count = 0;
  for (uint64_t w : v.atomic_words) {
    atomic_count += static_cast<size_t>(__builtin_popcountll(w));
  }
  if (atomic_count != n - parts.num_complex) {
    return invalid(util::StringPrintf(
        "atomic bitset population %zu disagrees with header counts %zu",
        atomic_count, n - parts.num_complex));
  }

  FrozenGraph g;
  g.id_ = NextGraphId();
  g.labels_ = std::move(parts.labels);
  g.num_objects_ = n;
  g.num_complex_ = parts.num_complex;
  g.num_edges_ = parts.num_edges;
  g.out_off_ = v.out_off;
  g.in_off_ = v.in_off;
  g.text_off_ = v.text_off;
  g.atomic_words_ = v.atomic_words;
  g.out_edges_ = v.out_edges;
  g.in_edges_ = v.in_edges;
  g.arena_ = v.arena;
  g.backing_ = std::move(parts.backing);
  g.owned_bytes_ = parts.owned_bytes;
  g.mapped_bytes_ = parts.mapped_bytes;
  return g;
}

bool FrozenGraph::HasEdge(ObjectId from, ObjectId to, LabelId label) const {
  if (from >= num_objects_ || to >= num_objects_) return false;
  auto row = OutEdges(from);
  return std::binary_search(row.begin(), row.end(), HalfEdge{label, to});
}

bool FrozenGraph::HasEdgeToAtomic(ObjectId o, LabelId label) const {
  auto row = OutEdges(o);
  auto it = std::lower_bound(row.begin(), row.end(),
                             HalfEdge{label, static_cast<ObjectId>(0)});
  for (; it != row.end() && it->label == label; ++it) {
    if (IsAtomic(it->other)) return true;
  }
  return false;
}

bool FrozenGraph::IsBipartite() const {
  for (const HalfEdge& e : out_edges_) {
    if (!IsAtomic(e.other)) return false;
  }
  return true;
}

util::Status FrozenGraph::Validate() const {
  const size_t n = num_objects_;
  if (out_off_.size() != n + 1 || in_off_.size() != n + 1 ||
      text_off_.size() != 2 * n + 1) {
    return util::Status::Internal("offset array size mismatch");
  }
  if (atomic_words_.size() != (n + 63) / 64) {
    return util::Status::Internal("atomic bitset size mismatch");
  }
  if (out_off_[n] != out_edges_.size() || in_off_[n] != in_edges_.size() ||
      text_off_[2 * n] != arena_.size()) {
    return util::Status::Internal("offset terminator out of sync");
  }
  if (out_edges_.size() != num_edges_) {
    return util::Status::Internal("edge count out of sync");
  }
  for (size_t i = 0; i < out_off_.size() - 1; ++i) {
    if (out_off_[i] > out_off_[i + 1] || in_off_[i] > in_off_[i + 1]) {
      return util::Status::Internal("CSR offsets not monotone");
    }
  }
  for (size_t i = 0; i < text_off_.size() - 1; ++i) {
    if (text_off_[i] > text_off_[i + 1]) {
      return util::Status::Internal("arena offsets not monotone");
    }
  }
  auto contains = [](std::span<const HalfEdge> row, HalfEdge e) {
    return std::binary_search(row.begin(), row.end(), e);
  };
  for (ObjectId o = 0; o < n; ++o) {
    auto out = OutEdges(o);
    auto in = InEdges(o);
    if (IsAtomic(o) && !out.empty()) {
      return util::Status::Internal(
          util::StringPrintf("atomic object %u has outgoing edges", o));
    }
    if (!std::is_sorted(out.begin(), out.end()) ||
        !std::is_sorted(in.begin(), in.end())) {
      return util::Status::Internal(
          util::StringPrintf("adjacency of object %u not sorted", o));
    }
    for (const HalfEdge& e : out) {
      if (e.other >= n || e.label >= labels_.size()) {
        return util::Status::Internal("dangling edge endpoint or label");
      }
      if (!contains(InEdges(e.other), HalfEdge{e.label, o})) {
        return util::Status::Internal(util::StringPrintf(
            "edge (%u,%u) missing from incoming index", o, e.other));
      }
    }
    for (const HalfEdge& e : in) {
      if (e.other >= n || !contains(OutEdges(e.other), HalfEdge{e.label, o})) {
        return util::Status::Internal(util::StringPrintf(
            "incoming edge of %u has no outgoing counterpart", o));
      }
    }
  }
  return util::Status::OK();
}

size_t FrozenGraph::MemoryUsage() const {
  size_t labels_bytes = 0;
  for (size_t l = 0; l < labels_.size(); ++l) {
    labels_bytes += labels_.Name(static_cast<LabelId>(l)).capacity() +
                    sizeof(std::string);
  }
  return owned_bytes_ + labels_bytes;
}

std::shared_ptr<const FrozenGraph> Freeze(const DataGraph& g) {
  return std::make_shared<const FrozenGraph>(g);
}

}  // namespace schemex::graph
