#include "graph/frozen_graph.h"

#include <algorithm>
#include <atomic>

#include "util/string_util.h"

namespace schemex::graph {

namespace {

uint64_t NextGraphId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

FrozenGraph::FrozenGraph(const DataGraph& g) : id_(NextGraphId()) {
  const size_t n = g.NumObjects();
  num_objects_ = n;
  num_complex_ = g.NumComplexObjects();
  num_edges_ = g.NumEdges();
  atomic_.Resize(n);

  // Interner copy: ids stay aligned with the source graph's edges, so a
  // typing program parsed against the DataGraph applies to the snapshot
  // unchanged.
  for (size_t l = 0; l < g.labels().size(); ++l) {
    labels_.Intern(g.labels().Name(static_cast<LabelId>(l)));
  }

  out_off_.resize(n + 1);
  in_off_.resize(n + 1);
  out_edges_.reserve(num_edges_);
  in_edges_.reserve(num_edges_);
  text_off_.resize(2 * n + 1);

  size_t arena_bytes = 0;
  for (ObjectId o = 0; o < n; ++o) {
    arena_bytes += g.Value(o).size() + g.Name(o).size();
  }
  arena_.reserve(arena_bytes);

  for (ObjectId o = 0; o < n; ++o) {
    if (g.IsAtomic(o)) atomic_.Set(o);
    out_off_[o] = out_edges_.size();
    in_off_[o] = in_edges_.size();
    auto out = g.OutEdges(o);
    auto in = g.InEdges(o);
    out_edges_.insert(out_edges_.end(), out.begin(), out.end());
    in_edges_.insert(in_edges_.end(), in.begin(), in.end());
    text_off_[2 * static_cast<size_t>(o)] = arena_.size();
    arena_ += g.Value(o);
    text_off_[2 * static_cast<size_t>(o) + 1] = arena_.size();
    arena_ += g.Name(o);
  }
  out_off_[n] = out_edges_.size();
  in_off_[n] = in_edges_.size();
  text_off_[2 * n] = arena_.size();
}

bool FrozenGraph::HasEdge(ObjectId from, ObjectId to, LabelId label) const {
  if (from >= num_objects_ || to >= num_objects_) return false;
  auto row = OutEdges(from);
  return std::binary_search(row.begin(), row.end(), HalfEdge{label, to});
}

bool FrozenGraph::HasEdgeToAtomic(ObjectId o, LabelId label) const {
  auto row = OutEdges(o);
  auto it = std::lower_bound(row.begin(), row.end(),
                             HalfEdge{label, static_cast<ObjectId>(0)});
  for (; it != row.end() && it->label == label; ++it) {
    if (IsAtomic(it->other)) return true;
  }
  return false;
}

bool FrozenGraph::IsBipartite() const {
  for (const HalfEdge& e : out_edges_) {
    if (!IsAtomic(e.other)) return false;
  }
  return true;
}

util::Status FrozenGraph::Validate() const {
  const size_t n = num_objects_;
  if (out_off_.size() != n + 1 || in_off_.size() != n + 1 ||
      text_off_.size() != 2 * n + 1) {
    return util::Status::Internal("offset array size mismatch");
  }
  if (out_off_[n] != out_edges_.size() || in_off_[n] != in_edges_.size() ||
      text_off_[2 * n] != arena_.size()) {
    return util::Status::Internal("offset terminator out of sync");
  }
  if (out_edges_.size() != num_edges_) {
    return util::Status::Internal("edge count out of sync");
  }
  for (size_t i = 0; i < out_off_.size() - 1; ++i) {
    if (out_off_[i] > out_off_[i + 1] || in_off_[i] > in_off_[i + 1]) {
      return util::Status::Internal("CSR offsets not monotone");
    }
  }
  for (size_t i = 0; i < text_off_.size() - 1; ++i) {
    if (text_off_[i] > text_off_[i + 1]) {
      return util::Status::Internal("arena offsets not monotone");
    }
  }
  auto contains = [](std::span<const HalfEdge> row, HalfEdge e) {
    return std::binary_search(row.begin(), row.end(), e);
  };
  for (ObjectId o = 0; o < n; ++o) {
    auto out = OutEdges(o);
    auto in = InEdges(o);
    if (IsAtomic(o) && !out.empty()) {
      return util::Status::Internal(
          util::StringPrintf("atomic object %u has outgoing edges", o));
    }
    if (!std::is_sorted(out.begin(), out.end()) ||
        !std::is_sorted(in.begin(), in.end())) {
      return util::Status::Internal(
          util::StringPrintf("adjacency of object %u not sorted", o));
    }
    for (const HalfEdge& e : out) {
      if (e.other >= n || e.label >= labels_.size()) {
        return util::Status::Internal("dangling edge endpoint or label");
      }
      if (!contains(InEdges(e.other), HalfEdge{e.label, o})) {
        return util::Status::Internal(util::StringPrintf(
            "edge (%u,%u) missing from incoming index", o, e.other));
      }
    }
    for (const HalfEdge& e : in) {
      if (e.other >= n || !contains(OutEdges(e.other), HalfEdge{e.label, o})) {
        return util::Status::Internal(util::StringPrintf(
            "incoming edge of %u has no outgoing counterpart", o));
      }
    }
  }
  return util::Status::OK();
}

size_t FrozenGraph::MemoryUsage() const {
  size_t labels_bytes = 0;
  for (size_t l = 0; l < labels_.size(); ++l) {
    labels_bytes += labels_.Name(static_cast<LabelId>(l)).capacity() +
                    sizeof(std::string);
  }
  return out_off_.capacity() * sizeof(uint64_t) +
         in_off_.capacity() * sizeof(uint64_t) +
         out_edges_.capacity() * sizeof(HalfEdge) +
         in_edges_.capacity() * sizeof(HalfEdge) +
         text_off_.capacity() * sizeof(uint64_t) + arena_.capacity() +
         (atomic_.size() + 63) / 64 * sizeof(uint64_t) + labels_bytes;
}

std::shared_ptr<const FrozenGraph> Freeze(const DataGraph& g) {
  return std::make_shared<const FrozenGraph>(g);
}

}  // namespace schemex::graph
