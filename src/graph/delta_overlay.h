#ifndef SCHEMEX_GRAPH_DELTA_OVERLAY_H_
#define SCHEMEX_GRAPH_DELTA_OVERLAY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/data_graph.h"
#include "graph/frozen_graph.h"
#include "graph/label.h"
#include "util/status.h"

namespace schemex::graph {

/// A mutation layer over an immutable FrozenGraph snapshot.
///
/// The overlay keeps the base CSR untouched and records a delta on top:
/// new objects (complex or atomic) appended after the base id space, a
/// private copy of the label interner (base labels keep their ids; fresh
/// labels extend the table), and — for every object whose adjacency the
/// delta touches — a fully materialized merged row. Reads go through the
/// same surface as DataGraph/FrozenGraph, so GraphView (and with it the
/// whole typing/cluster/extract pipeline) works over an overlay without
/// knowing it exists: untouched objects answer straight from the base
/// CSR slices, touched objects from their materialized rows.
///
/// Mutation semantics mirror DataGraph exactly (same Status codes, same
/// invariants: atomic objects are sinks, one edge per (from, to, label),
/// rows sorted by (label, other)), so a DataGraph mutated by the same op
/// sequence is the reference model for the overlay — delta_overlay_test
/// pins the equivalence.
///
/// An overlay is a value: copying shares the base snapshot and copies
/// only O(delta) state, which is how the service keeps per-generation
/// workspace snapshots cheap. Compact() folds the delta into a fresh
/// FrozenGraph whose serialized snapshot is byte-identical to freezing
/// an equivalently mutated DataGraph (labels, objects and edges are
/// replayed in id order, and CSR layout is deterministic given that
/// order).
class DeltaOverlay {
 public:
  /// Starts an empty delta over `base` (must be non-null).
  explicit DeltaOverlay(std::shared_ptr<const FrozenGraph> base);

  // Copyable and movable; copies share the base and clone the delta.
  DeltaOverlay(const DeltaOverlay&) = default;
  DeltaOverlay& operator=(const DeltaOverlay&) = default;
  DeltaOverlay(DeltaOverlay&&) = default;
  DeltaOverlay& operator=(DeltaOverlay&&) = default;

  // -- Mutators (DataGraph-compatible semantics) ------------------------

  /// Adds a complex object after the base id space and returns its id.
  ObjectId AddComplex(std::string_view name = "");

  /// Adds an atomic object carrying `value` and returns its id.
  ObjectId AddAtomic(std::string_view value, std::string_view name = "");

  /// Adds edge link(from, to, label). Fails with InvalidArgument (id out
  /// of range), FailedPrecondition (`from` atomic) or AlreadyExists,
  /// exactly like DataGraph::AddEdge.
  util::Status AddEdge(ObjectId from, ObjectId to, LabelId label);

  /// Convenience overload interning `label` by name.
  util::Status AddEdge(ObjectId from, ObjectId to, std::string_view label);

  /// Removes edge (from, to, label) — base-resident or delta-added — if
  /// present; returns NotFound otherwise (InvalidArgument when an id is
  /// out of range).
  util::Status RemoveEdge(ObjectId from, ObjectId to, LabelId label);

  /// Intern helper: id for `name`, creating it in the private table.
  LabelId InternLabel(std::string_view name) { return labels_.Intern(name); }

  // -- Read surface (GraphView-compatible) ------------------------------

  size_t NumObjects() const { return base_objects_ + added_kind_.size(); }
  size_t NumComplexObjects() const { return num_complex_; }
  size_t NumAtomicObjects() const { return NumObjects() - num_complex_; }
  size_t NumEdges() const { return num_edges_; }

  bool IsAtomic(ObjectId o) const {
    return o < base_objects_ ? base_->IsAtomic(o)
                             : added_kind_[o - base_objects_] != 0;
  }
  bool IsComplex(ObjectId o) const { return !IsAtomic(o); }

  /// Value of an atomic object (empty for complex objects). Views into
  /// the base arena or the overlay's stable string store.
  std::string_view Value(ObjectId o) const {
    return o < base_objects_ ? base_->Value(o)
                             : std::string_view(added_value_[o - base_objects_]);
  }

  /// Display name given at creation (may be empty).
  std::string_view Name(ObjectId o) const {
    return o < base_objects_ ? base_->Name(o)
                             : std::string_view(added_name_[o - base_objects_]);
  }

  /// Outgoing half-edges of `o`, sorted by (label, other): the base CSR
  /// slice when the delta never touched `o`, the materialized merged row
  /// otherwise.
  std::span<const HalfEdge> OutEdges(ObjectId o) const {
    auto it = out_.index.find(o);
    if (it != out_.index.end()) {
      const std::vector<HalfEdge>& row = out_.rows[it->second];
      return {row.data(), row.size()};
    }
    // Added objects without a materialized row have no edges yet; the
    // base CSR only answers for ids it owns.
    if (o >= base_objects_) return {};
    return base_->OutEdges(o);
  }

  /// Incoming half-edges of `o`, sorted by (label, other).
  std::span<const HalfEdge> InEdges(ObjectId o) const {
    auto it = in_.index.find(o);
    if (it != in_.index.end()) {
      const std::vector<HalfEdge>& row = in_.rows[it->second];
      return {row.data(), row.size()};
    }
    if (o >= base_objects_) return {};
    return base_->InEdges(o);
  }

  const LabelInterner& labels() const { return labels_; }

  /// True iff the exact edge exists (binary search in the row).
  bool HasEdge(ObjectId from, ObjectId to, LabelId label) const;

  /// True iff `o` has some outgoing `label` edge to an atomic object.
  bool HasEdgeToAtomic(ObjectId o, LabelId label) const;

  /// True iff every edge goes from a complex object to an atomic object.
  bool IsBipartite() const;

  // -- Delta introspection ----------------------------------------------

  /// The immutable snapshot this overlay mutates.
  const std::shared_ptr<const FrozenGraph>& base() const { return base_; }

  size_t NumBaseObjects() const { return base_objects_; }
  size_t NumAddedObjects() const { return added_kind_.size(); }

  /// Cumulative successful link inserts / deletes (op counts, not net:
  /// adding and then removing an edge counts once on each side).
  size_t NumAddedLinks() const { return links_added_; }
  size_t NumDeletedLinks() const { return links_deleted_; }

  /// Monotone counter bumped by every successful mutation; generation 0
  /// is the pristine base. Lets callers tell overlay values apart.
  uint64_t generation() const { return generation_; }

  /// Sorted, deduplicated ids of every complex object whose local
  /// picture any mutation may have changed: endpoints of inserted and
  /// deleted links plus all added complex objects. This is the dirty-set
  /// seed for incremental Stage 1; it is conservative — an edge added
  /// and later removed still reports its endpoints.
  std::vector<ObjectId> TouchedComplexObjects() const;

  /// |TouchedComplexObjects()| / NumComplexObjects() (0 when the graph
  /// has no complex objects). The service's compaction / fallback
  /// heuristics key off this.
  double TouchedComplexFraction() const;

  /// Folds base + delta into a fresh immutable snapshot. Object ids,
  /// label ids and adjacency are preserved verbatim, so a snapshot of
  /// the compacted graph is byte-identical to one frozen from an
  /// equivalently mutated DataGraph.
  std::shared_ptr<const FrozenGraph> Compact() const;

  /// Checks overlay invariants: materialized rows sorted and unique,
  /// out/in symmetry across base and delta rows, atomic-sink rule for
  /// added objects and touched rows, edge-count bookkeeping.
  util::Status Validate() const;

  /// Approximate heap bytes held by the delta (rows, strings, label
  /// copy); the shared base is reported by base()->MemoryUsage().
  size_t MemoryUsage() const;

 private:
  /// Materialized adjacency rows for touched objects, keyed by id. The
  /// map is only ever *looked up*, never iterated — every walk that
  /// produces ordered output goes through object ids.
  struct RowStore {
    std::unordered_map<ObjectId, uint32_t> index;
    std::vector<std::vector<HalfEdge>> rows;
  };

  util::Status CheckIds(ObjectId from, ObjectId to) const;

  /// The materialized row for `o`, copying the base slice on first touch.
  std::vector<HalfEdge>& Row(RowStore& store, ObjectId o, bool out_dir);

  /// Records `o` (if complex) as touched by a mutation.
  void Touch(ObjectId o);

  std::shared_ptr<const FrozenGraph> base_;
  size_t base_objects_ = 0;   // base_->NumObjects(), cached
  LabelInterner labels_;      // private copy; base ids preserved

  // Added objects, parallel arrays indexed by (id - base_objects_).
  // deque gives the stored strings stable addresses, so the string_views
  // handed out by Value()/Name() survive later mutations.
  std::vector<uint8_t> added_kind_;  // 0 = complex, 1 = atomic
  std::deque<std::string> added_value_;
  std::deque<std::string> added_name_;

  RowStore out_;
  RowStore in_;

  std::vector<ObjectId> touched_log_;  // complex endpoints, append order
  size_t num_complex_ = 0;
  size_t num_edges_ = 0;
  size_t links_added_ = 0;
  size_t links_deleted_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_DELTA_OVERLAY_H_
