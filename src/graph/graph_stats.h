#ifndef SCHEMEX_GRAPH_GRAPH_STATS_H_
#define SCHEMEX_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph_view.h"

namespace schemex::graph {

/// Summary statistics of a graph (either representation), used by
/// examples, benches, and the data generators' self-checks.
struct GraphStats {
  size_t num_objects = 0;
  size_t num_complex = 0;
  size_t num_atomic = 0;
  size_t num_edges = 0;
  size_t num_labels = 0;
  bool bipartite = false;

  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  double avg_out_degree = 0.0;  // over complex objects

  /// Edge count per label, indexed by LabelId.
  std::vector<size_t> label_histogram;

  /// Number of complex objects with no incoming edges ("roots").
  size_t num_roots = 0;

  /// Multi-line human-readable rendering.
  std::string ToString(GraphView g) const;
};

/// Computes statistics in one pass over `g`.
GraphStats ComputeStats(GraphView g);

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_GRAPH_STATS_H_
