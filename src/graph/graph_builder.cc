#include "graph/graph_builder.h"

#include "util/string_util.h"

namespace schemex::graph {

ObjectId GraphBuilder::GetOrCreateComplex(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return it->second;
  ObjectId id = graph_.AddComplex(name);
  by_name_.emplace(std::string(name), id);
  return id;
}

util::Status GraphBuilder::Complex(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (graph_.IsAtomic(it->second)) {
      auto st = util::Status::AlreadyExists(
          util::StringPrintf("'%.*s' already declared atomic",
                             static_cast<int>(name.size()), name.data()));
      if (first_error_.ok()) first_error_ = st;
      return st;
    }
    return util::Status::OK();
  }
  GetOrCreateComplex(name);
  return util::Status::OK();
}

util::Status GraphBuilder::Atomic(std::string_view name,
                                  std::string_view value) {
  if (by_name_.count(std::string(name)) > 0) {
    auto st = util::Status::AlreadyExists(
        util::StringPrintf("object '%.*s' already declared",
                           static_cast<int>(name.size()), name.data()));
    if (first_error_.ok()) first_error_ = st;
    return st;
  }
  ObjectId id = graph_.AddAtomic(value, name);
  by_name_.emplace(std::string(name), id);
  return util::Status::OK();
}

util::Status GraphBuilder::Edge(std::string_view from, std::string_view label,
                                std::string_view to) {
  ObjectId f = GetOrCreateComplex(from);
  // `to` may legitimately be atomic; only create if missing.
  ObjectId t;
  auto it = by_name_.find(std::string(to));
  t = it != by_name_.end() ? it->second : GetOrCreateComplex(to);
  util::Status st = graph_.AddEdge(f, t, label);
  if (!st.ok() && first_error_.ok()) first_error_ = st;
  return st;
}

ObjectId GraphBuilder::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidObject : it->second;
}

DataGraph GraphBuilder::Build(util::Status* status) && {
  if (status != nullptr) *status = first_error_;
  return std::move(graph_);
}

}  // namespace schemex::graph
