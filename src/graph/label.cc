#include "graph/label.h"

namespace schemex::graph {

LabelId LabelInterner::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

LabelId LabelInterner::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidLabel : it->second;
}

}  // namespace schemex::graph
