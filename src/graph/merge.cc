#include "graph/merge.h"

namespace schemex::graph {

DataGraph MergeGraphs(const DataGraph& a, const DataGraph& b,
                      std::vector<ObjectId>* b_offset) {
  DataGraph out = a;
  std::vector<ObjectId> remap(b.NumObjects());
  for (ObjectId o = 0; o < b.NumObjects(); ++o) {
    remap[o] = b.IsAtomic(o) ? out.AddAtomic(b.Value(o), b.Name(o))
                             : out.AddComplex(b.Name(o));
  }
  for (ObjectId o = 0; o < b.NumObjects(); ++o) {
    for (const HalfEdge& e : b.OutEdges(o)) {
      (void)out.AddEdge(remap[o], remap[e.other],
                        b.labels().Name(e.label));
    }
  }
  if (b_offset != nullptr) *b_offset = std::move(remap);
  return out;
}

}  // namespace schemex::graph
