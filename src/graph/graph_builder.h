#ifndef SCHEMEX_GRAPH_GRAPH_BUILDER_H_
#define SCHEMEX_GRAPH_GRAPH_BUILDER_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "graph/data_graph.h"
#include "util/status.h"

namespace schemex::graph {

/// Name-keyed convenience layer over DataGraph for hand-written graphs
/// (tests, examples, the text loader). Objects are referred to by unique
/// string names; edges may be declared before their endpoints, endpoints
/// default to complex objects.
///
/// Typical use:
///   GraphBuilder b;
///   b.Edge("gates", "microsoft", "is-manager-of");
///   b.Atomic("gates_name", "Gates");
///   b.Edge("gates", "gates_name", "name");
///   DataGraph g = std::move(b).Build(&status);
class GraphBuilder {
 public:
  /// Declares (or re-references) a complex object named `name`.
  /// Fails if `name` was already declared atomic.
  util::Status Complex(std::string_view name);

  /// Declares an atomic object named `name` with value `value`.
  /// Fails if `name` already exists (complex or atomic).
  util::Status Atomic(std::string_view name, std::string_view value);

  /// Declares edge from -label-> to. Unknown endpoint names are implicitly
  /// created as complex objects. Fails on duplicate edges or if `from` is
  /// atomic.
  util::Status Edge(std::string_view from, std::string_view label,
                    std::string_view to);

  /// Returns the id of `name`, or kInvalidObject if unknown.
  ObjectId Find(std::string_view name) const;

  /// True iff `name` is declared.
  bool Has(std::string_view name) const {
    return Find(name) != kInvalidObject;
  }

  /// Read access to the graph under construction.
  const DataGraph& graph() const { return graph_; }

  /// Consumes the builder and returns the finished graph. On builder misuse
  /// the first error encountered is returned via `status` and the graph is
  /// still returned as-built so far.
  DataGraph Build(util::Status* status) &&;

 private:
  ObjectId GetOrCreateComplex(std::string_view name);

  DataGraph graph_;
  std::unordered_map<std::string, ObjectId> by_name_;
  util::Status first_error_;
};

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_GRAPH_BUILDER_H_
