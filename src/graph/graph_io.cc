#include "graph/graph_io.h"

#include <algorithm>
#include <vector>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace schemex::graph {

namespace {

std::string EscapeValue(std::string_view v) {
  std::string out = "\"";
  for (char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

// Parses a quoted value starting at s[pos] == '"'. On success sets *out and
// returns the index one past the closing quote; returns npos on error.
size_t ParseQuoted(std::string_view s, size_t pos, std::string* out) {
  if (pos >= s.size() || s[pos] != '"') return std::string_view::npos;
  out->clear();
  for (size_t i = pos + 1; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\\') {
      if (i + 1 >= s.size()) return std::string_view::npos;
      char n = s[++i];
      if (n == 'n') {
        out->push_back('\n');
      } else if (n == '"' || n == '\\') {
        out->push_back(n);
      } else {
        return std::string_view::npos;
      }
    } else if (c == '"') {
      return i + 1;
    } else {
      out->push_back(c);
    }
  }
  return std::string_view::npos;
}

std::string DisplayName(GraphView g, ObjectId o) {
  std::string_view n = g.Name(o);
  if (!n.empty()) return std::string(n);
  return util::StringPrintf("_o%u", o);
}

}  // namespace

std::string WriteGraph(GraphView g) {
  std::string out;
  out += util::StringPrintf("# schemex graph: %zu objects, %zu edges\n",
                            g.NumObjects(), g.NumEdges());
  for (ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsAtomic(o)) {
      out += "atomic " + DisplayName(g, o) + " " + EscapeValue(g.Value(o)) +
             "\n";
    } else {
      out += "complex " + DisplayName(g, o) + "\n";
    }
  }
  for (ObjectId o = 0; o < g.NumObjects(); ++o) {
    // Canonical order: by label *name* (label ids depend on interning
    // order, which a round-trip does not preserve), then by target id.
    // DETERMINISM: (name, target) is a total order over out-edges, so the
    // serialized form is identical regardless of builder insertion order.
    std::vector<HalfEdge> edges(g.OutEdges(o).begin(), g.OutEdges(o).end());
    std::stable_sort(edges.begin(), edges.end(),
                     [&](const HalfEdge& a, const HalfEdge& b) {
                       std::string_view an = g.labels().Name(a.label);
                       std::string_view bn = g.labels().Name(b.label);
                       if (an != bn) return an < bn;
                       return a.other < b.other;
                     });
    for (const HalfEdge& e : edges) {
      out += "edge " + DisplayName(g, o) + " " + g.labels().Name(e.label) +
             " " + DisplayName(g, e.other) + "\n";
    }
  }
  return out;
}

util::StatusOr<DataGraph> ReadGraph(std::string_view text) {
  GraphBuilder builder;
  auto lines = util::Split(text, '\n');
  for (size_t ln = 0; ln < lines.size(); ++ln) {
    std::string_view line = util::Trim(lines[ln]);
    if (line.empty() || line[0] == '#') continue;
    auto fail = [&](const char* why) {
      return util::Status::ParseError(
          util::StringPrintf("line %zu: %s", ln + 1, why));
    };
    if (util::StartsWith(line, "atomic ")) {
      std::string_view rest = util::Trim(line.substr(7));
      size_t sp = rest.find_first_of(" \t");
      if (sp == std::string_view::npos) return fail("atomic needs a value");
      std::string name(util::Trim(rest.substr(0, sp)));
      std::string_view vpart = util::Trim(rest.substr(sp));
      std::string value;
      size_t end = ParseQuoted(vpart, 0, &value);
      if (end == std::string_view::npos ||
          !util::Trim(vpart.substr(end)).empty()) {
        return fail("malformed quoted value");
      }
      util::Status st = builder.Atomic(name, value);
      if (!st.ok()) return fail(st.message().c_str());
    } else if (util::StartsWith(line, "complex ")) {
      auto toks = util::SplitWhitespace(line);
      if (toks.size() != 2) return fail("complex takes exactly one name");
      util::Status st = builder.Complex(toks[1]);
      if (!st.ok()) return fail(st.message().c_str());
    } else if (util::StartsWith(line, "edge ")) {
      auto toks = util::SplitWhitespace(line);
      if (toks.size() != 4) return fail("edge takes <from> <label> <to>");
      util::Status st = builder.Edge(toks[1], toks[2], toks[3]);
      if (!st.ok()) return fail(st.message().c_str());
    } else {
      return fail("unknown directive");
    }
  }
  util::Status st;
  DataGraph g = std::move(builder).Build(&st);
  if (!st.ok()) return st;
  return g;
}

}  // namespace schemex::graph
