#ifndef SCHEMEX_GRAPH_GRAPH_VIEW_H_
#define SCHEMEX_GRAPH_GRAPH_VIEW_H_

#include <span>
#include <string_view>

#include "graph/data_graph.h"
#include "graph/delta_overlay.h"
#include "graph/frozen_graph.h"
#include "graph/label.h"

namespace schemex::graph {

/// Non-owning read handle over any graph representation.
///
/// Every read-path algorithm (typing, extraction, clustering, query,
/// baselines) takes a GraphView, so one implementation serves the
/// mutable DataGraph (builders, tests, incremental ingest), the
/// immutable FrozenGraph (workspace snapshots, hot paths) and the
/// DeltaOverlay (a mutation layer over a frozen snapshot). Construction
/// is implicit from each type, so `f(g)` keeps working at existing call
/// sites.
///
/// Dispatch is one or two predictable branches per accessor; when the
/// view wraps a FrozenGraph, OutEdges/InEdges return slices of the flat
/// CSR edge array, so hot loops iterate contiguous memory; an overlay
/// answers from the base CSR for untouched objects. The view borrows
/// the underlying graph: it must not outlive it.
class GraphView {
 public:
  GraphView(const DataGraph& g) : data_(&g) {}        // NOLINT(runtime/explicit)
  GraphView(const FrozenGraph& g) : frozen_(&g) {}    // NOLINT(runtime/explicit)
  GraphView(const DeltaOverlay& g) : overlay_(&g) {}  // NOLINT(runtime/explicit)

  size_t NumObjects() const {
    return frozen_    ? frozen_->NumObjects()
           : overlay_ ? overlay_->NumObjects()
                      : data_->NumObjects();
  }
  size_t NumComplexObjects() const {
    return frozen_    ? frozen_->NumComplexObjects()
           : overlay_ ? overlay_->NumComplexObjects()
                      : data_->NumComplexObjects();
  }
  size_t NumAtomicObjects() const {
    return frozen_    ? frozen_->NumAtomicObjects()
           : overlay_ ? overlay_->NumAtomicObjects()
                      : data_->NumAtomicObjects();
  }
  size_t NumEdges() const {
    return frozen_    ? frozen_->NumEdges()
           : overlay_ ? overlay_->NumEdges()
                      : data_->NumEdges();
  }

  bool IsAtomic(ObjectId o) const {
    return frozen_    ? frozen_->IsAtomic(o)
           : overlay_ ? overlay_->IsAtomic(o)
                      : data_->IsAtomic(o);
  }
  bool IsComplex(ObjectId o) const {
    return frozen_    ? frozen_->IsComplex(o)
           : overlay_ ? overlay_->IsComplex(o)
                      : data_->IsComplex(o);
  }

  std::string_view Value(ObjectId o) const {
    return frozen_    ? frozen_->Value(o)
           : overlay_ ? overlay_->Value(o)
                      : std::string_view(data_->Value(o));
  }
  std::string_view Name(ObjectId o) const {
    return frozen_    ? frozen_->Name(o)
           : overlay_ ? overlay_->Name(o)
                      : std::string_view(data_->Name(o));
  }

  std::span<const HalfEdge> OutEdges(ObjectId o) const {
    return frozen_    ? frozen_->OutEdges(o)
           : overlay_ ? overlay_->OutEdges(o)
                      : data_->OutEdges(o);
  }
  std::span<const HalfEdge> InEdges(ObjectId o) const {
    return frozen_    ? frozen_->InEdges(o)
           : overlay_ ? overlay_->InEdges(o)
                      : data_->InEdges(o);
  }

  const LabelInterner& labels() const {
    return frozen_    ? frozen_->labels()
           : overlay_ ? overlay_->labels()
                      : data_->labels();
  }

  bool HasEdge(ObjectId from, ObjectId to, LabelId label) const {
    return frozen_    ? frozen_->HasEdge(from, to, label)
           : overlay_ ? overlay_->HasEdge(from, to, label)
                      : data_->HasEdge(from, to, label);
  }
  bool HasEdgeToAtomic(ObjectId o, LabelId label) const {
    return frozen_    ? frozen_->HasEdgeToAtomic(o, label)
           : overlay_ ? overlay_->HasEdgeToAtomic(o, label)
                      : data_->HasEdgeToAtomic(o, label);
  }

  bool IsBipartite() const {
    return frozen_    ? frozen_->IsBipartite()
           : overlay_ ? overlay_->IsBipartite()
                      : data_->IsBipartite();
  }

 private:
  const DataGraph* data_ = nullptr;
  const FrozenGraph* frozen_ = nullptr;
  const DeltaOverlay* overlay_ = nullptr;
};

}  // namespace schemex::graph

#endif  // SCHEMEX_GRAPH_GRAPH_VIEW_H_
