#include "graph/delta_overlay.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace schemex::graph {

namespace {

bool InsertSorted(std::vector<HalfEdge>& v, HalfEdge e) {
  auto it = std::lower_bound(v.begin(), v.end(), e);
  if (it != v.end() && *it == e) return false;
  v.insert(it, e);
  return true;
}

bool EraseSorted(std::vector<HalfEdge>& v, HalfEdge e) {
  auto it = std::lower_bound(v.begin(), v.end(), e);
  if (it == v.end() || *it != e) return false;
  v.erase(it);
  return true;
}

bool ContainsSorted(std::span<const HalfEdge> v, HalfEdge e) {
  return std::binary_search(v.begin(), v.end(), e);
}

}  // namespace

DeltaOverlay::DeltaOverlay(std::shared_ptr<const FrozenGraph> base)
    : base_(std::move(base)) {
  assert(base_ != nullptr);
  base_objects_ = base_->NumObjects();
  labels_ = base_->labels();
  num_complex_ = base_->NumComplexObjects();
  num_edges_ = base_->NumEdges();
}

util::Status DeltaOverlay::CheckIds(ObjectId from, ObjectId to) const {
  if (from >= NumObjects() || to >= NumObjects()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "object id out of range (from=%u, to=%u, n=%zu)", from, to,
        NumObjects()));
  }
  return util::Status::OK();
}

std::vector<HalfEdge>& DeltaOverlay::Row(RowStore& store, ObjectId o,
                                         bool out_dir) {
  auto [it, inserted] = store.index.try_emplace(
      o, static_cast<uint32_t>(store.rows.size()));
  if (inserted) {
    std::span<const HalfEdge> seed;
    if (o < base_objects_) {
      seed = out_dir ? base_->OutEdges(o) : base_->InEdges(o);
    }
    store.rows.emplace_back(seed.begin(), seed.end());
  }
  return store.rows[it->second];
}

void DeltaOverlay::Touch(ObjectId o) {
  if (IsComplex(o)) touched_log_.push_back(o);
}

ObjectId DeltaOverlay::AddComplex(std::string_view name) {
  ObjectId id = static_cast<ObjectId>(NumObjects());
  added_kind_.push_back(0);
  added_value_.emplace_back();
  added_name_.emplace_back(name);
  ++num_complex_;
  ++generation_;
  touched_log_.push_back(id);
  return id;
}

ObjectId DeltaOverlay::AddAtomic(std::string_view value,
                                 std::string_view name) {
  ObjectId id = static_cast<ObjectId>(NumObjects());
  added_kind_.push_back(1);
  added_value_.emplace_back(value);
  added_name_.emplace_back(name);
  ++generation_;
  return id;
}

util::Status DeltaOverlay::AddEdge(ObjectId from, ObjectId to, LabelId label) {
  SCHEMEX_RETURN_IF_ERROR(CheckIds(from, to));
  if (label >= labels_.size()) {
    return util::Status::InvalidArgument("unknown label id");
  }
  if (IsAtomic(from)) {
    return util::Status::FailedPrecondition(
        "atomic objects cannot have outgoing edges");
  }
  if (!InsertSorted(Row(out_, from, /*out_dir=*/true), HalfEdge{label, to})) {
    return util::Status::AlreadyExists(util::StringPrintf(
        "edge (%u -%s-> %u) already present", from,
        labels_.Name(label).c_str(), to));
  }
  InsertSorted(Row(in_, to, /*out_dir=*/false), HalfEdge{label, from});
  ++num_edges_;
  ++links_added_;
  ++generation_;
  Touch(from);
  Touch(to);
  return util::Status::OK();
}

util::Status DeltaOverlay::AddEdge(ObjectId from, ObjectId to,
                                   std::string_view label) {
  return AddEdge(from, to, labels_.Intern(label));
}

util::Status DeltaOverlay::RemoveEdge(ObjectId from, ObjectId to,
                                      LabelId label) {
  SCHEMEX_RETURN_IF_ERROR(CheckIds(from, to));
  // Materializing the row before knowing the edge exists is benign: a
  // materialized copy of the base slice reads identically.
  if (!EraseSorted(Row(out_, from, /*out_dir=*/true), HalfEdge{label, to})) {
    return util::Status::NotFound("edge not present");
  }
  EraseSorted(Row(in_, to, /*out_dir=*/false), HalfEdge{label, from});
  --num_edges_;
  ++links_deleted_;
  ++generation_;
  Touch(from);
  Touch(to);
  return util::Status::OK();
}

bool DeltaOverlay::HasEdge(ObjectId from, ObjectId to, LabelId label) const {
  if (from >= NumObjects() || to >= NumObjects()) return false;
  return ContainsSorted(OutEdges(from), HalfEdge{label, to});
}

bool DeltaOverlay::HasEdgeToAtomic(ObjectId o, LabelId label) const {
  std::span<const HalfEdge> edges = OutEdges(o);
  auto it = std::lower_bound(edges.begin(), edges.end(),
                             HalfEdge{label, static_cast<ObjectId>(0)});
  for (; it != edges.end() && it->label == label; ++it) {
    if (IsAtomic(it->other)) return true;
  }
  return false;
}

bool DeltaOverlay::IsBipartite() const {
  for (ObjectId o = 0; o < NumObjects(); ++o) {
    for (const HalfEdge& e : OutEdges(o)) {
      if (!IsAtomic(e.other)) return false;
    }
  }
  return true;
}

std::vector<ObjectId> DeltaOverlay::TouchedComplexObjects() const {
  std::vector<ObjectId> out = touched_log_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double DeltaOverlay::TouchedComplexFraction() const {
  if (num_complex_ == 0) return 0.0;
  return static_cast<double>(TouchedComplexObjects().size()) /
         static_cast<double>(num_complex_);
}

std::shared_ptr<const FrozenGraph> DeltaOverlay::Compact() const {
  DataGraph g;
  // Replay labels, objects and edges in id order: the rebuilt DataGraph
  // is then structurally identical to one that was mutated directly, and
  // Freeze() of it serializes to the same snapshot bytes.
  for (LabelId l = 0; l < labels_.size(); ++l) {
    g.InternLabel(labels_.Name(l));
  }
  for (ObjectId o = 0; o < NumObjects(); ++o) {
    if (IsAtomic(o)) {
      g.AddAtomic(Value(o), Name(o));
    } else {
      g.AddComplex(Name(o));
    }
  }
  for (ObjectId o = 0; o < NumObjects(); ++o) {
    for (const HalfEdge& e : OutEdges(o)) {
      g.MergeEdge(o, e.other, e.label);
    }
  }
  return Freeze(g);
}

util::Status DeltaOverlay::Validate() const {
  if (base_ == nullptr) return util::Status::Internal("overlay has no base");
  if (labels_.size() < base_->labels().size()) {
    return util::Status::Internal("label table shrank below the base");
  }
  size_t out_count = 0;
  size_t complex_count = 0;
  for (ObjectId o = 0; o < NumObjects(); ++o) {
    if (IsComplex(o)) ++complex_count;
    std::span<const HalfEdge> out = OutEdges(o);
    std::span<const HalfEdge> in = InEdges(o);
    if (IsAtomic(o) && !out.empty()) {
      return util::Status::Internal(
          util::StringPrintf("atomic object %u has outgoing edges", o));
    }
    if (!std::is_sorted(out.begin(), out.end()) ||
        !std::is_sorted(in.begin(), in.end())) {
      return util::Status::Internal(
          util::StringPrintf("adjacency of object %u not sorted", o));
    }
    out_count += out.size();
    for (const HalfEdge& e : out) {
      if (e.other >= NumObjects() || e.label >= labels_.size()) {
        return util::Status::Internal("dangling edge endpoint or label");
      }
      if (!ContainsSorted(InEdges(e.other), HalfEdge{e.label, o})) {
        return util::Status::Internal(util::StringPrintf(
            "edge (%u,%u) missing from incoming index", o, e.other));
      }
    }
    for (const HalfEdge& e : in) {
      if (e.other >= NumObjects() ||
          !ContainsSorted(OutEdges(e.other), HalfEdge{e.label, o})) {
        return util::Status::Internal(util::StringPrintf(
            "incoming edge of %u has no outgoing counterpart", o));
      }
    }
  }
  if (out_count != num_edges_) {
    return util::Status::Internal("edge count out of sync");
  }
  if (complex_count != num_complex_) {
    return util::Status::Internal("complex count out of sync");
  }
  return util::Status::OK();
}

size_t DeltaOverlay::MemoryUsage() const {
  auto string_bytes = [](const std::string& s) {
    return sizeof(std::string) +
           (s.capacity() > sizeof(std::string) ? s.capacity() : 0);
  };
  size_t bytes = added_kind_.capacity() * sizeof(uint8_t) +
                 touched_log_.capacity() * sizeof(ObjectId);
  for (const std::string& v : added_value_) bytes += string_bytes(v);
  for (const std::string& n : added_name_) bytes += string_bytes(n);
  for (const RowStore* store : {&out_, &in_}) {
    bytes += store->index.size() *
             (sizeof(ObjectId) + sizeof(uint32_t) + 2 * sizeof(void*));
    bytes += store->rows.capacity() * sizeof(std::vector<HalfEdge>);
    for (const auto& row : store->rows) {
      bytes += row.capacity() * sizeof(HalfEdge);
    }
  }
  for (size_t l = 0; l < labels_.size(); ++l) {
    bytes += string_bytes(labels_.Name(static_cast<LabelId>(l)));
  }
  return bytes;
}

}  // namespace schemex::graph
