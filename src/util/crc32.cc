#include "util/crc32.h"

#include <array>

namespace schemex::util {

namespace {

/// 8-entry-per-byte slicing table: table[0] is the classic byte-at-a-time
/// CRC table; table[k][b] extends a CRC whose next k bytes are zero. The
/// slice-by-8 loop below processes 8 input bytes per iteration, which
/// keeps checksum verification well above text-parse speed on the
/// snapshot load path.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0u);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace schemex::util
