#ifndef SCHEMEX_UTIL_TABLE_PRINTER_H_
#define SCHEMEX_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace schemex::util {

/// Accumulates rows of string cells and renders them as an aligned ASCII
/// table (and optionally CSV). Used by the bench harnesses to print the
/// paper's tables.
class TablePrinter {
 public:
  /// Sets the column headers; must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row);

  /// Renders an aligned, pipe-separated table to `os`.
  void Print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (commas and quotes escaped) to `os`.
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_TABLE_PRINTER_H_
