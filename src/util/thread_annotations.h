#ifndef SCHEMEX_UTIL_THREAD_ANNOTATIONS_H_
#define SCHEMEX_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

// Clang `-Wthread-safety` annotation macros plus capability-annotated
// wrappers around the std locking primitives.
//
// The macros expand to Clang thread-safety attributes when the compiler
// supports them and to nothing otherwise, so GCC builds see plain
// std::mutex semantics while Clang statically checks the locking
// discipline (see docs/static-analysis.md). Everything that locks in
// src/ goes through `util::Mutex` / `util::SharedMutex` /
// `util::MutexLock` — naked std primitives outside util/ are rejected
// by `tools/lint.py` (rule: naked-mutex), because the analysis can only
// see capabilities it has names for.
//
// Conventions:
//  - data members:       `T x SCHEMEX_GUARDED_BY(mu_);`
//  - private helpers:    `void F() SCHEMEX_REQUIRES(mu_);`
//  - public entry points:`void G() SCHEMEX_EXCLUDES(mu_);`
//  - lock ordering:      `SCHEMEX_ACQUIRED_AFTER(other_mu_)` on members.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SCHEMEX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SCHEMEX_THREAD_ANNOTATION
#define SCHEMEX_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SCHEMEX_CAPABILITY(x) SCHEMEX_THREAD_ANNOTATION(capability(x))
#define SCHEMEX_SCOPED_CAPABILITY SCHEMEX_THREAD_ANNOTATION(scoped_lockable)
#define SCHEMEX_GUARDED_BY(x) SCHEMEX_THREAD_ANNOTATION(guarded_by(x))
#define SCHEMEX_PT_GUARDED_BY(x) SCHEMEX_THREAD_ANNOTATION(pt_guarded_by(x))
#define SCHEMEX_ACQUIRED_BEFORE(...) \
  SCHEMEX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SCHEMEX_ACQUIRED_AFTER(...) \
  SCHEMEX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SCHEMEX_REQUIRES(...) \
  SCHEMEX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SCHEMEX_REQUIRES_SHARED(...) \
  SCHEMEX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SCHEMEX_ACQUIRE(...) \
  SCHEMEX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SCHEMEX_ACQUIRE_SHARED(...) \
  SCHEMEX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SCHEMEX_RELEASE(...) \
  SCHEMEX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SCHEMEX_RELEASE_SHARED(...) \
  SCHEMEX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SCHEMEX_RELEASE_GENERIC(...) \
  SCHEMEX_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define SCHEMEX_TRY_ACQUIRE(...) \
  SCHEMEX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SCHEMEX_EXCLUDES(...) \
  SCHEMEX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SCHEMEX_ASSERT_CAPABILITY(x) \
  SCHEMEX_THREAD_ANNOTATION(assert_capability(x))
#define SCHEMEX_RETURN_CAPABILITY(x) \
  SCHEMEX_THREAD_ANNOTATION(lock_returned(x))

namespace schemex::util {

/// std::mutex with a named capability. Lock()/Unlock() carry the
/// acquire/release attributes, so Clang verifies that every
/// SCHEMEX_GUARDED_BY(mu_) access happens with mu_ held.
class SCHEMEX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SCHEMEX_ACQUIRE() { mu_.lock(); }
  void Unlock() SCHEMEX_RELEASE() { mu_.unlock(); }
  bool TryLock() SCHEMEX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spellings so CondVar (condition_variable_any) can
  /// release/reacquire this mutex while waiting.
  void lock() SCHEMEX_ACQUIRE() { mu_.lock(); }
  void unlock() SCHEMEX_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex with a named capability: exclusive writers,
/// shared readers.
class SCHEMEX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SCHEMEX_ACQUIRE() { mu_.lock(); }
  void Unlock() SCHEMEX_RELEASE() { mu_.unlock(); }
  void LockShared() SCHEMEX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SCHEMEX_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a util::Mutex (std::lock_guard shape).
class SCHEMEX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SCHEMEX_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SCHEMEX_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock on a util::SharedMutex.
class SCHEMEX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SCHEMEX_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SCHEMEX_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a util::SharedMutex.
class SCHEMEX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SCHEMEX_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() SCHEMEX_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with util::Mutex. Wait() names the mutex it
/// releases, so callers must already hold it — the analysis checks that.
/// (condition_variable_any re-locks through Mutex's lowercase
/// lock()/unlock(); those instantiations live in system headers, where
/// the analysis is silent by design, not by suppression.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SCHEMEX_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) SCHEMEX_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
               Pred pred) SCHEMEX_REQUIRES(mu) {
    return cv_.wait_for(mu, dur, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_THREAD_ANNOTATIONS_H_
