#ifndef SCHEMEX_UTIL_RANDOM_H_
#define SCHEMEX_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace schemex::util {

/// Deterministic, seedable pseudo-random generator (xoshiro256** with a
/// splitmix64-seeded state). All experiment code in this repository draws
/// randomness through this class so that every benchmark and test is
/// reproducible from its seed.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream.
  explicit Rng(uint64_t seed = 0x5eed5eedULL);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling (unbiased).
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a sample (without replacement) of `k` distinct indices from
  /// [0, n). If k >= n, returns all of [0, n) shuffled.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_RANDOM_H_
