#ifndef SCHEMEX_UTIL_STATUS_H_
#define SCHEMEX_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace schemex::util {

/// Canonical error space, modeled after the subset of codes a
/// schema-extraction library actually needs. The library does not throw
/// exceptions across its public API; fallible operations return Status or
/// StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kParseError = 8,
  kDeadlineExceeded = 9,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Value type describing the outcome of an operation: either OK or an error
/// code plus message. Cheap to copy in the OK case (empty message).
///
/// [[nodiscard]]: a dropped Status is a swallowed failure, so every
/// call site must consume it (check, return, or assert on it). The
/// build treats discards as errors; there is no sanctioned (void)-cast
/// escape hatch in src/ (tools/lint.py bans that spelling too).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A message with
  /// code kOk is normalized to the canonical OK status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (code_ == StatusCode::kOk) message_.clear();
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define SCHEMEX_RETURN_IF_ERROR(expr)                          \
  do {                                                         \
    ::schemex::util::Status _schemex_status = (expr);          \
    if (!_schemex_status.ok()) return _schemex_status;         \
  } while (0)

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_STATUS_H_
