#ifndef SCHEMEX_UTIL_PARALLEL_FOR_H_
#define SCHEMEX_UTIL_PARALLEL_FOR_H_

#include <algorithm>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace schemex::util {

/// Resolves "run on this pool or bring your own": borrows `external` when
/// given, otherwise owns a transient pool of `num_threads` workers (none
/// when num_threads <= 1 — callers then run inline on their own thread).
///
/// The transient pool lives exactly as long as the PoolRef, so algorithms
/// that want one pool across many sharded phases construct a PoolRef once
/// per invocation, not per phase.
class PoolRef {
 public:
  PoolRef(ThreadPool* external, size_t num_threads) {
    if (external != nullptr) {
      pool_ = external;
    } else if (num_threads > 1) {
      owned_ = std::make_unique<ThreadPool>(num_threads);
      pool_ = owned_.get();
    }
  }

  /// The pool to shard on, or nullptr meaning "run inline".
  ThreadPool* get() const { return pool_; }

  /// Worker count a sharded phase should plan for (1 = inline).
  size_t num_threads() const { return pool_ ? pool_->num_threads() : 1; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
};

/// Splits [0, n) into at most num_threads contiguous ranges whose
/// boundaries are multiples of `align` (except the last), for sharded
/// phases where workers write disjoint slices of shared arrays. With
/// align = 64 the ranges touch disjoint words of a DenseBitset.
inline std::vector<std::pair<size_t, size_t>> ShardRanges(size_t n,
                                                          size_t num_threads,
                                                          size_t align = 1) {
  std::vector<std::pair<size_t, size_t>> shards;
  if (n == 0) return shards;
  size_t threads = std::max<size_t>(1, num_threads);
  size_t chunk = (n + threads - 1) / threads;
  chunk = ((chunk + align - 1) / align) * align;
  for (size_t begin = 0; begin < n; begin += chunk) {
    shards.emplace_back(begin, std::min(n, begin + chunk));
  }
  return shards;
}

/// Runs fn(shard_index) for every shard on `pool`, blocking until all
/// complete; pool == nullptr runs the shards inline in order. Exceptions
/// from workers propagate to the caller (via future::get).
template <typename Fn>
void RunShards(ThreadPool* pool, size_t num_shards, Fn&& fn) {
  if (pool == nullptr || num_shards <= 1) {
    for (size_t s = 0; s < num_shards; ++s) fn(s);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    pending.push_back(pool->Submit([&fn, s] { fn(s); }));
  }
  for (auto& f : pending) f.get();
}

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_PARALLEL_FOR_H_
