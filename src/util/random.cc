#include "util/random.h"

#include <cassert>

namespace schemex::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // Guard against an all-zero state (xoshiro's one invalid state).
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: reject values in the final partial bucket.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  Shuffle(all);
  if (k < n) all.resize(k);
  return all;
}

}  // namespace schemex::util
