#ifndef SCHEMEX_UTIL_CRC32_H_
#define SCHEMEX_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace schemex::util {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the same
/// checksum zlib/PNG/gzip use, so snapshot files can be cross-checked
/// with standard tools. `seed` lets callers chain incremental updates:
///   crc = Crc32(a, na);
///   crc = Crc32(b, nb, crc);
/// equals Crc32 over the concatenation of a and b.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_CRC32_H_
