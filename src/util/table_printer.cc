#include "util/table_printer.h"

#include <algorithm>
#include <cassert>

namespace schemex::util {

namespace {

std::string CsvEscape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(!header_.empty());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << CsvEscape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace schemex::util
