#ifndef SCHEMEX_UTIL_STRING_UTIL_H_
#define SCHEMEX_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace schemex::util {

/// Splits `s` on `sep`, keeping empty pieces. Split("a,,b", ',') yields
/// {"a", "", "b"}; Split("", ',') yields {""}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a non-negative decimal integer; returns false on any non-digit or
/// empty input (no overflow checking beyond 64 bits).
bool ParseUint64(std::string_view s, uint64_t* out);

/// Parses a double via strtod semantics; returns false if the whole string
/// is not consumed.
bool ParseDouble(std::string_view s, double* out);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_STRING_UTIL_H_
