#ifndef SCHEMEX_UTIL_TIMER_H_
#define SCHEMEX_UTIL_TIMER_H_

#include <chrono>

namespace schemex::util {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_TIMER_H_
