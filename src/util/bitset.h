#ifndef SCHEMEX_UTIL_BITSET_H_
#define SCHEMEX_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace schemex::util {

/// Fixed-size dense bitset used for predicate extents (one bit per object).
/// Grows only via Resize; out-of-range access is undefined (asserted via
/// vector bounds in debug builds only through operator[]).
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t n, bool value = false) { Resize(n, value); }

  void Resize(size_t n, bool value = false) {
    n_ = n;
    words_.assign((n + 63) / 64, value ? ~0ULL : 0ULL);
    TrimTail();
  }

  size_t size() const { return n_; }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void Set(size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
    TrimTail();
  }
  void ClearAll() {
    for (auto& w : words_) w = 0ULL;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// True iff no bit is set.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// In-place intersection; sizes must match.
  void AndWith(const DenseBitset& o) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  }

  /// In-place union; sizes must match.
  void OrWith(const DenseBitset& o) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  }

  friend bool operator==(const DenseBitset& a, const DenseBitset& b) {
    return a.n_ == b.n_ && a.words_ == b.words_;
  }

  /// Content hash over the word array (the tail is kept trimmed, so equal
  /// bitsets hash equal). Used to bucket extents before exact comparison.
  uint64_t Hash() const {
    uint64_t h = 0xcbf29ce484222325ULL ^ n_;
    for (uint64_t w : words_) {
      h = (h ^ w) * 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return h;
  }

  /// Calls `fn(index)` for every set bit in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(b));
        w &= w - 1;
      }
    }
  }

 private:
  void TrimTail() {
    if (n_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ULL << (n_ % 64)) - 1;
    }
  }

  size_t n_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_BITSET_H_
