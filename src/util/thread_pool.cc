#include "util/thread_pool.h"

#include <stdexcept>

namespace schemex::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::Submit after Shutdown");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // join_mu_ serializes concurrent Shutdown callers so both return only
  // after every worker has exited (thread::join on an already-joined
  // thread would be UB without the joinable() check + serialization).
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace schemex::util
