#include "util/thread_pool.h"

#include <stdexcept>

namespace schemex::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::Submit after Shutdown");
    }
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  // join_mu_ serializes concurrent Shutdown callers so both return only
  // after every worker has exited (thread::join on an already-joined
  // thread would be UB without the joinable() check + serialization).
  MutexLock join_lock(join_mu_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future
  }
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace schemex::util
