#ifndef SCHEMEX_UTIL_THREAD_POOL_H_
#define SCHEMEX_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace schemex::util {

/// A fixed-size worker pool with a FIFO task queue. Tasks are submitted as
/// callables and their results (or thrown exceptions) travel back through
/// std::future. All workers are joined on destruction or Shutdown() — the
/// pool never detaches a thread.
///
/// Shutdown semantics: Shutdown() stops admission immediately, lets the
/// workers drain every task already queued, then joins them. Submitting to
/// a stopped pool throws std::runtime_error (the pool is infrastructure,
/// not part of the Status-based library API; misuse here is a programming
/// error surfaced eagerly).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. If `fn` throws,
  /// the exception is captured and rethrown by future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

  /// Stops admission, drains the queue, joins all workers. Idempotent and
  /// safe to call concurrently with Submit (the loser of the race throws).
  void Shutdown() SCHEMEX_EXCLUDES(mu_, join_mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Tasks queued but not yet picked up by a worker (snapshot).
  size_t QueueDepth() const SCHEMEX_EXCLUDES(mu_);

 private:
  void Enqueue(std::function<void()> task) SCHEMEX_EXCLUDES(mu_);
  void WorkerLoop() SCHEMEX_EXCLUDES(mu_);

  mutable Mutex mu_;
  /// Serializes joiners; never nested inside mu_.
  Mutex join_mu_ SCHEMEX_ACQUIRED_AFTER(mu_);
  CondVar cv_;
  std::deque<std::function<void()>> queue_ SCHEMEX_GUARDED_BY(mu_);
  // Sized once in the constructor before any concurrency; joined (not
  // resized) under join_mu_ at shutdown, so num_threads() is lock-free.
  std::vector<std::thread> threads_;
  bool stopping_ SCHEMEX_GUARDED_BY(mu_) = false;
};

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_THREAD_POOL_H_
