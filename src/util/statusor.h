#ifndef SCHEMEX_UTIL_STATUSOR_H_
#define SCHEMEX_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace schemex::util {

/// Union of a Status and a value of type T: either holds a T (status OK) or
/// a non-OK Status explaining why no value is available.
///
/// Accessing the value of a non-OK StatusOr is a programming error and
/// asserts in debug builds.
///
/// [[nodiscard]] for the same reason as Status: discarding one loses
/// both the value and the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK: an OK status
  /// with no value is meaningless and is converted to an Internal error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a StatusOr<T> expression); on error returns the status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define SCHEMEX_SOR_CONCAT_INNER(a, b) a##b
#define SCHEMEX_SOR_CONCAT(a, b) SCHEMEX_SOR_CONCAT_INNER(a, b)
#define SCHEMEX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()
#define SCHEMEX_ASSIGN_OR_RETURN(lhs, expr)                               \
  SCHEMEX_ASSIGN_OR_RETURN_IMPL(SCHEMEX_SOR_CONCAT(_schemex_sor_, __LINE__), \
                                lhs, expr)

}  // namespace schemex::util

#endif  // SCHEMEX_UTIL_STATUSOR_H_
