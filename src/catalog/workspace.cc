#include "catalog/workspace.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/graph_io.h"
#include "snapshot/snapshot.h"
#include "typing/program_io.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace schemex::catalog {

namespace {

namespace fs = std::filesystem;

/// Serializes SaveWorkspace process-wide. Two concurrent saves into the
/// same directory would interleave their three renames and could leave a
/// graph from one generation next to a schema from another on disk —
/// Validate() would reject it at load, but the save itself should never
/// manufacture that state. Saves are rare and I/O-bound, so one coarse
/// lock is plenty.
util::Mutex& SaveMutex() {
  static util::Mutex mu;
  return mu;
}

// Writes to "<path>.tmp" and renames into place, so a concurrent reader
// opens either the complete old file or the complete new file — never a
// partially written one.
util::Status WriteFileAtomic(const fs::path& path, const std::string& content) {
  fs::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return util::Status::Internal("cannot open " + tmp.string() +
                                    " for writing");
    }
    out << content;
    out.flush();
    if (!out) return util::Status::Internal("write failed: " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return util::Status::Internal("rename to " + path.string() +
                                  " failed: " + ec.message());
  }
  return util::Status::OK();
}

util::StatusOr<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Prefixes the file name onto a parser error ("graph.sxg: line 7: bad
// edge"), so a multi-file load failure pinpoints which file to fix.
util::Status InFile(const char* file, const util::Status& s) {
  if (s.ok()) return s;
  return util::Status(s.code(), std::string(file) + ": " + s.message());
}

std::string AssignmentToTsv(const typing::TypeAssignment& tau) {
  std::string out;
  for (graph::ObjectId o = 0; o < tau.NumObjects(); ++o) {
    const auto& types = tau.TypesOf(o);
    if (types.empty()) continue;
    out += util::StringPrintf("%u\t", o);
    for (size_t i = 0; i < types.size(); ++i) {
      if (i > 0) out += ',';
      out += util::StringPrintf("%d", types[i]);
    }
    out += '\n';
  }
  return out;
}

util::StatusOr<typing::TypeAssignment> AssignmentFromTsv(
    const std::string& text, size_t num_objects) {
  typing::TypeAssignment tau(num_objects);
  size_t line_no = 0;
  for (const std::string& line : util::Split(text, '\n')) {
    ++line_no;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fail = [&](const char* why) {
      return util::Status::ParseError(
          util::StringPrintf("assignment.tsv line %zu: %s", line_no, why));
    };
    size_t tab = trimmed.find('\t');
    if (tab == std::string_view::npos) return fail("missing tab");
    uint64_t obj = 0;
    if (!util::ParseUint64(trimmed.substr(0, tab), &obj) ||
        obj >= num_objects) {
      return fail("bad object id");
    }
    for (const std::string& tok :
         util::Split(trimmed.substr(tab + 1), ',')) {
      uint64_t type = 0;
      if (!util::ParseUint64(util::Trim(tok), &type)) {
        return fail("bad type id");
      }
      tau.Assign(static_cast<graph::ObjectId>(obj),
                 static_cast<typing::TypeId>(type));
    }
  }
  return tau;
}

}  // namespace

util::Status Workspace::Validate() const {
  if (graph == nullptr) {
    return util::Status::FailedPrecondition("workspace has no graph");
  }
  if (overlay != nullptr && overlay->base().get() != graph.get()) {
    return util::Status::FailedPrecondition(
        "overlay is layered over a different graph");
  }
  graph::GraphView view = View();
  if (assignment.NumObjects() != 0 &&
      assignment.NumObjects() != view.NumObjects()) {
    return util::Status::FailedPrecondition(
        "assignment sized for a different graph");
  }
  SCHEMEX_RETURN_IF_ERROR(program.Validate());
  for (const typing::TypeDef& t : program.types()) {
    for (const typing::TypedLink& l : t.signature.links()) {
      if (l.label >= view.labels().size()) {
        return util::Status::FailedPrecondition(
            "program references a label outside the graph's table");
      }
    }
  }
  for (graph::ObjectId o = 0; o < assignment.NumObjects(); ++o) {
    for (typing::TypeId t : assignment.TypesOf(o)) {
      if (t < 0 || static_cast<size_t>(t) >= program.NumTypes()) {
        return util::Status::FailedPrecondition(
            "assignment references a type outside the program");
      }
    }
  }
  return util::Status::OK();
}

util::Status SaveWorkspace(const Workspace& ws, const std::string& dir) {
  SCHEMEX_RETURN_IF_ERROR(ws.Validate());
  if (ws.overlay != nullptr) {
    // Fold the overlay into a self-contained snapshot before writing;
    // the on-disk format has no notion of a delta layer. The compacted
    // copy shares everything else with the caller's workspace.
    Workspace compacted = ws;
    compacted.graph = ws.overlay->Compact();
    compacted.overlay = nullptr;
    return SaveWorkspace(compacted, dir);
  }
  util::MutexLock lock(SaveMutex());
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::Internal("cannot create directory " + dir + ": " +
                                  ec.message());
  }
  SCHEMEX_RETURN_IF_ERROR(WriteFileAtomic(fs::path(dir) / "graph.sxg",
                                          graph::WriteGraph(*ws.graph)));
  SCHEMEX_RETURN_IF_ERROR(WriteFileAtomic(
      fs::path(dir) / "schema.dl",
      typing::WriteTypingProgram(ws.program, ws.graph->labels())));
  SCHEMEX_RETURN_IF_ERROR(WriteFileAtomic(fs::path(dir) / "assignment.tsv",
                                          AssignmentToTsv(ws.assignment)));
  // The binary snapshot goes last so the text files it shadows are
  // already in place; snapshot::Write has its own tmp+rename step.
  SCHEMEX_RETURN_IF_ERROR(
      snapshot::Write(*ws.graph, (fs::path(dir) / "snapshot.bin").string()));
  return util::Status::OK();
}

namespace {

// The snapshot load path: map snapshot.bin zero-copy, then parse the
// schema against the snapshot's own label table. The table was frozen
// at save time with every schema label already interned, so growth here
// means schema.dl was edited to use labels the snapshot lacks — the
// caller falls back to the text path, which can intern them.
util::StatusOr<Workspace> LoadWorkspaceFromSnapshot(const fs::path& dir) {
  Workspace ws;
  SCHEMEX_ASSIGN_OR_RETURN(ws.graph,
                           snapshot::Map((dir / "snapshot.bin").string()));
  auto schema_text = ReadFile(dir / "schema.dl");
  if (schema_text.ok()) {
    graph::LabelInterner labels = ws.graph->labels();
    auto program = typing::ReadTypingProgram(*schema_text, &labels);
    if (!program.ok()) return InFile("schema.dl", program.status());
    if (labels.size() != ws.graph->labels().size()) {
      return util::Status::FailedPrecondition(
          "schema.dl references labels absent from snapshot.bin (snapshot "
          "is stale)");
    }
    ws.program = std::move(*program);
  }
  auto tsv = ReadFile(dir / "assignment.tsv");
  if (tsv.ok()) {
    auto tau = AssignmentFromTsv(*tsv, ws.graph->NumObjects());
    if (!tau.ok()) return tau.status();
    ws.assignment = std::move(*tau);
  } else {
    ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  }
  SCHEMEX_RETURN_IF_ERROR(ws.Validate());
  return ws;
}

}  // namespace

util::StatusOr<Workspace> LoadWorkspace(const std::string& dir,
                                        LoadInfo* info) {
  LoadInfo local;
  if (info == nullptr) info = &local;
  *info = LoadInfo{};

  if (fs::exists(fs::path(dir) / "snapshot.bin")) {
    auto ws = LoadWorkspaceFromSnapshot(dir);
    if (ws.ok()) {
      info->from_snapshot = true;
      return ws;
    }
    // Corrupt or stale snapshot: record why and fall through to the
    // text files, which remain the durable source of truth.
    info->snapshot_status = ws.status();
  } else {
    info->snapshot_status =
        util::Status::NotFound("no snapshot.bin in " + dir);
  }

  Workspace ws;
  SCHEMEX_ASSIGN_OR_RETURN(std::string graph_text,
                           ReadFile(fs::path(dir) / "graph.sxg"));
  // The mutable graph lives only for the duration of the load: the
  // schema is parsed against its label table (interning any labels the
  // graph itself never uses), and the result is frozen exactly once.
  auto loaded = graph::ReadGraph(graph_text);
  if (!loaded.ok()) return InFile("graph.sxg", loaded.status());

  auto schema_text = ReadFile(fs::path(dir) / "schema.dl");
  if (schema_text.ok()) {
    auto program = typing::ReadTypingProgram(*schema_text, &loaded->labels());
    if (!program.ok()) return InFile("schema.dl", program.status());
    ws.program = std::move(*program);
  }
  auto tsv = ReadFile(fs::path(dir) / "assignment.tsv");
  if (tsv.ok()) {
    SCHEMEX_ASSIGN_OR_RETURN(
        ws.assignment, AssignmentFromTsv(*tsv, loaded->NumObjects()));
  } else {
    ws.assignment = typing::TypeAssignment(loaded->NumObjects());
  }
  ws.graph = graph::Freeze(*loaded);
  SCHEMEX_RETURN_IF_ERROR(ws.Validate());
  return ws;
}

}  // namespace schemex::catalog
