#include "catalog/workspace.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/graph_io.h"
#include "typing/program_io.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace schemex::catalog {

namespace {

namespace fs = std::filesystem;

/// Serializes SaveWorkspace process-wide. Two concurrent saves into the
/// same directory would interleave their three renames and could leave a
/// graph from one generation next to a schema from another on disk —
/// Validate() would reject it at load, but the save itself should never
/// manufacture that state. Saves are rare and I/O-bound, so one coarse
/// lock is plenty.
util::Mutex& SaveMutex() {
  static util::Mutex mu;
  return mu;
}

// Writes to "<path>.tmp" and renames into place, so a concurrent reader
// opens either the complete old file or the complete new file — never a
// partially written one.
util::Status WriteFileAtomic(const fs::path& path, const std::string& content) {
  fs::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return util::Status::Internal("cannot open " + tmp.string() +
                                    " for writing");
    }
    out << content;
    out.flush();
    if (!out) return util::Status::Internal("write failed: " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return util::Status::Internal("rename to " + path.string() +
                                  " failed: " + ec.message());
  }
  return util::Status::OK();
}

util::StatusOr<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string AssignmentToTsv(const typing::TypeAssignment& tau) {
  std::string out;
  for (graph::ObjectId o = 0; o < tau.NumObjects(); ++o) {
    const auto& types = tau.TypesOf(o);
    if (types.empty()) continue;
    out += util::StringPrintf("%u\t", o);
    for (size_t i = 0; i < types.size(); ++i) {
      if (i > 0) out += ',';
      out += util::StringPrintf("%d", types[i]);
    }
    out += '\n';
  }
  return out;
}

util::StatusOr<typing::TypeAssignment> AssignmentFromTsv(
    const std::string& text, size_t num_objects) {
  typing::TypeAssignment tau(num_objects);
  size_t line_no = 0;
  for (const std::string& line : util::Split(text, '\n')) {
    ++line_no;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fail = [&](const char* why) {
      return util::Status::ParseError(
          util::StringPrintf("assignment.tsv line %zu: %s", line_no, why));
    };
    size_t tab = trimmed.find('\t');
    if (tab == std::string_view::npos) return fail("missing tab");
    uint64_t obj = 0;
    if (!util::ParseUint64(trimmed.substr(0, tab), &obj) ||
        obj >= num_objects) {
      return fail("bad object id");
    }
    for (const std::string& tok :
         util::Split(trimmed.substr(tab + 1), ',')) {
      uint64_t type = 0;
      if (!util::ParseUint64(util::Trim(tok), &type)) {
        return fail("bad type id");
      }
      tau.Assign(static_cast<graph::ObjectId>(obj),
                 static_cast<typing::TypeId>(type));
    }
  }
  return tau;
}

}  // namespace

util::Status Workspace::Validate() const {
  if (graph == nullptr) {
    return util::Status::FailedPrecondition("workspace has no graph");
  }
  if (assignment.NumObjects() != 0 &&
      assignment.NumObjects() != graph->NumObjects()) {
    return util::Status::FailedPrecondition(
        "assignment sized for a different graph");
  }
  SCHEMEX_RETURN_IF_ERROR(program.Validate());
  for (const typing::TypeDef& t : program.types()) {
    for (const typing::TypedLink& l : t.signature.links()) {
      if (l.label >= graph->labels().size()) {
        return util::Status::FailedPrecondition(
            "program references a label outside the graph's table");
      }
    }
  }
  for (graph::ObjectId o = 0; o < assignment.NumObjects(); ++o) {
    for (typing::TypeId t : assignment.TypesOf(o)) {
      if (t < 0 || static_cast<size_t>(t) >= program.NumTypes()) {
        return util::Status::FailedPrecondition(
            "assignment references a type outside the program");
      }
    }
  }
  return util::Status::OK();
}

util::Status SaveWorkspace(const Workspace& ws, const std::string& dir) {
  SCHEMEX_RETURN_IF_ERROR(ws.Validate());
  util::MutexLock lock(SaveMutex());
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::Internal("cannot create directory " + dir + ": " +
                                  ec.message());
  }
  SCHEMEX_RETURN_IF_ERROR(WriteFileAtomic(fs::path(dir) / "graph.sxg",
                                          graph::WriteGraph(*ws.graph)));
  SCHEMEX_RETURN_IF_ERROR(WriteFileAtomic(
      fs::path(dir) / "schema.dl",
      typing::WriteTypingProgram(ws.program, ws.graph->labels())));
  SCHEMEX_RETURN_IF_ERROR(WriteFileAtomic(fs::path(dir) / "assignment.tsv",
                                          AssignmentToTsv(ws.assignment)));
  return util::Status::OK();
}

util::StatusOr<Workspace> LoadWorkspace(const std::string& dir) {
  Workspace ws;
  SCHEMEX_ASSIGN_OR_RETURN(std::string graph_text,
                           ReadFile(fs::path(dir) / "graph.sxg"));
  // The mutable graph lives only for the duration of the load: the
  // schema is parsed against its label table (interning any labels the
  // graph itself never uses), and the result is frozen exactly once.
  SCHEMEX_ASSIGN_OR_RETURN(graph::DataGraph loaded,
                           graph::ReadGraph(graph_text));

  auto schema_text = ReadFile(fs::path(dir) / "schema.dl");
  if (schema_text.ok()) {
    SCHEMEX_ASSIGN_OR_RETURN(
        ws.program,
        typing::ReadTypingProgram(*schema_text, &loaded.labels()));
  }
  auto tsv = ReadFile(fs::path(dir) / "assignment.tsv");
  if (tsv.ok()) {
    SCHEMEX_ASSIGN_OR_RETURN(
        ws.assignment, AssignmentFromTsv(*tsv, loaded.NumObjects()));
  } else {
    ws.assignment = typing::TypeAssignment(loaded.NumObjects());
  }
  ws.graph = graph::Freeze(loaded);
  SCHEMEX_RETURN_IF_ERROR(ws.Validate());
  return ws;
}

}  // namespace schemex::catalog
