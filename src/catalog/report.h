#ifndef SCHEMEX_CATALOG_REPORT_H_
#define SCHEMEX_CATALOG_REPORT_H_

#include <string>

#include "catalog/workspace.h"

namespace schemex::catalog {

struct ReportOptions {
  /// Include the Graphviz rendering of the schema graph.
  bool include_dot = false;
  /// Cap the per-type example-object lists.
  size_t max_examples_per_type = 5;
};

/// Renders a human-readable markdown report for a workspace: database
/// statistics, the schema in paper notation, per-type population and
/// example objects, the defect breakdown, and (optionally) a DOT block —
/// the "summary of the actual contents" role the paper assigns to a good
/// typing (§1).
std::string RenderReport(const Workspace& ws,
                         const ReportOptions& options = {});

}  // namespace schemex::catalog

#endif  // SCHEMEX_CATALOG_REPORT_H_
