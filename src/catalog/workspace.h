#ifndef SCHEMEX_CATALOG_WORKSPACE_H_
#define SCHEMEX_CATALOG_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/data_graph.h"
#include "graph/delta_overlay.h"
#include "graph/frozen_graph.h"
#include "graph/graph_view.h"
#include "typing/assignment.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

// Forward-declared so the catalog does not link against the extraction
// pipeline: the workspace only stores the cache opaquely (shared_ptr of
// an incomplete type is well-formed); the service layer, which already
// depends on extract, is the only producer/consumer.
namespace schemex::extract {
struct ExtractionCache;
}  // namespace schemex::extract

namespace schemex::catalog {

/// One apply_delta batch, recorded so a later re_extract knows which
/// objects' neighbourhoods the accumulated deltas touched. Cleared when
/// an extraction installs a fresh cache (the partition then reflects the
/// mutated graph, so the log is spent).
struct MutationRecord {
  uint64_t generation = 0;
  /// Complex objects whose local picture the batch changed (edge
  /// endpoints and new complex objects), sorted and deduplicated.
  std::vector<graph::ObjectId> touched_complex;
  size_t objects_added = 0;
  size_t links_added = 0;
  size_t links_deleted = 0;
};

/// A persisted extraction workspace: the database, the extracted schema,
/// and the object-to-types assignment. Everything a downstream consumer
/// (query layer, incremental typer, report generator) needs to resume.
///
/// The database is an immutable FrozenGraph held by shared_ptr: freezing
/// happens once at load/import time, and every later generation of the
/// workspace (re-extract, type-commit) shares the same snapshot instead
/// of copying the graph, so swapping a workspace generation costs
/// O(schema), not O(graph).
struct Workspace {
  std::shared_ptr<const graph::FrozenGraph> graph;
  typing::TypingProgram program;     ///< may be empty (no schema yet)
  typing::TypeAssignment assignment; ///< may be empty

  /// Uncompacted mutations over `graph`, or null when the workspace is
  /// exactly its frozen snapshot. When set, overlay->base() == graph and
  /// every read (queries, typing, extraction) goes through View().
  std::shared_ptr<const graph::DeltaOverlay> overlay;

  /// Monotone mutation counter: 0 for a freshly loaded/imported
  /// workspace, +1 per applied delta batch. Survives compaction (the
  /// graph changes identity; the history does not).
  uint64_t generation = 0;

  /// apply_delta batches since the last extraction, oldest first.
  std::vector<MutationRecord> mutation_log;

  /// Stage-1/Stage-2 state left behind by the last extraction, seed of
  /// incremental re-extraction. Null until an extract succeeds. Opaque
  /// here; produced and consumed by the service layer.
  std::shared_ptr<const extract::ExtractionCache> extraction_cache;

  /// Online-typing tallies since the last extraction: complex objects
  /// that arrived via apply_delta, and how many of them fit an existing
  /// type exactly. Feeds IncrementalTyper::RetypeRecommended.
  size_t delta_arrivals = 0;
  size_t delta_exact = 0;

  /// Freezes `g` and installs it as this workspace's database.
  void SetGraph(const graph::DataGraph& g) { graph = graph::Freeze(g); }

  /// The graph as readers must see it: the overlay when one is set,
  /// otherwise the frozen snapshot.
  graph::GraphView View() const {
    return overlay ? graph::GraphView(*overlay) : graph::GraphView(*graph);
  }

  /// Checks mutual consistency: graph present, overlay (if any) layered
  /// over this graph, assignment sized to the view, type ids within the
  /// program, program labels within the view's table.
  util::Status Validate() const;
};

/// Directory layout written by SaveWorkspace:
///   <dir>/graph.sxg        graph text format (graph/graph_io.h)
///   <dir>/schema.dl        datalog text (typing/program_io.h)
///   <dir>/assignment.tsv   "<object-id>\t<type-id>[,<type-id>...]" rows
///   <dir>/snapshot.bin     binary graph snapshot (docs/snapshot.md)
/// The directory is created if missing; existing files are overwritten.
///
/// Each file is written to "<file>.tmp" and renamed into place, so a
/// concurrent LoadWorkspace never reads a partially written file. A
/// reader interleaving between the renames can still pair files from
/// different generations; LoadWorkspace's Validate() turns that into a
/// clean error (retryable) rather than silent corruption.
///
/// A workspace carrying an overlay is compacted first (overlay folded
/// into a fresh FrozenGraph) so the files on disk always describe one
/// self-contained graph; the caller's workspace is not modified.
util::Status SaveWorkspace(const Workspace& ws, const std::string& dir);

/// How LoadWorkspace obtained the graph, for callers that surface it
/// (the service's load_workspace response, the snapshot CLI).
struct LoadInfo {
  /// True when the graph came from mapping <dir>/snapshot.bin.
  bool from_snapshot = false;
  /// Why the snapshot path was not taken: NotFound when there is no
  /// snapshot.bin, the Map/parse error when one exists but was rejected
  /// (corruption, stale label table). OK iff from_snapshot.
  util::Status snapshot_status = util::Status::OK();
};

/// Loads a workspace saved by SaveWorkspace. Missing schema/assignment
/// files load as empty (a graph-only workspace is valid); a missing
/// graph is an error.
///
/// Prefers <dir>/snapshot.bin: the graph is mapped zero-copy (no
/// per-edge parsing) and the schema is parsed against the snapshot's
/// own label table. If the snapshot is absent, corrupt, or older than a
/// schema that now references labels it lacks, the text path
/// (graph.sxg, frozen once after the schema is parsed) is used instead
/// and the reason is reported via `info`. Parse errors from either path
/// name the offending file and line.
util::StatusOr<Workspace> LoadWorkspace(const std::string& dir,
                                        LoadInfo* info = nullptr);

}  // namespace schemex::catalog

#endif  // SCHEMEX_CATALOG_WORKSPACE_H_
