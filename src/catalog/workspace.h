#ifndef SCHEMEX_CATALOG_WORKSPACE_H_
#define SCHEMEX_CATALOG_WORKSPACE_H_

#include <memory>
#include <string>
#include <utility>

#include "graph/data_graph.h"
#include "graph/frozen_graph.h"
#include "typing/assignment.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::catalog {

/// A persisted extraction workspace: the database, the extracted schema,
/// and the object-to-types assignment. Everything a downstream consumer
/// (query layer, incremental typer, report generator) needs to resume.
///
/// The database is an immutable FrozenGraph held by shared_ptr: freezing
/// happens once at load/import time, and every later generation of the
/// workspace (re-extract, type-commit) shares the same snapshot instead
/// of copying the graph, so swapping a workspace generation costs
/// O(schema), not O(graph).
struct Workspace {
  std::shared_ptr<const graph::FrozenGraph> graph;
  typing::TypingProgram program;     ///< may be empty (no schema yet)
  typing::TypeAssignment assignment; ///< may be empty

  /// Freezes `g` and installs it as this workspace's database.
  void SetGraph(const graph::DataGraph& g) { graph = graph::Freeze(g); }

  /// Checks mutual consistency: graph present, assignment sized to the
  /// graph, type ids within the program, program labels within the
  /// graph's table.
  util::Status Validate() const;
};

/// Directory layout written by SaveWorkspace:
///   <dir>/graph.sxg        graph text format (graph/graph_io.h)
///   <dir>/schema.dl        datalog text (typing/program_io.h)
///   <dir>/assignment.tsv   "<object-id>\t<type-id>[,<type-id>...]" rows
///   <dir>/snapshot.bin     binary graph snapshot (docs/snapshot.md)
/// The directory is created if missing; existing files are overwritten.
///
/// Each file is written to "<file>.tmp" and renamed into place, so a
/// concurrent LoadWorkspace never reads a partially written file. A
/// reader interleaving between the renames can still pair files from
/// different generations; LoadWorkspace's Validate() turns that into a
/// clean error (retryable) rather than silent corruption.
util::Status SaveWorkspace(const Workspace& ws, const std::string& dir);

/// How LoadWorkspace obtained the graph, for callers that surface it
/// (the service's load_workspace response, the snapshot CLI).
struct LoadInfo {
  /// True when the graph came from mapping <dir>/snapshot.bin.
  bool from_snapshot = false;
  /// Why the snapshot path was not taken: NotFound when there is no
  /// snapshot.bin, the Map/parse error when one exists but was rejected
  /// (corruption, stale label table). OK iff from_snapshot.
  util::Status snapshot_status = util::Status::OK();
};

/// Loads a workspace saved by SaveWorkspace. Missing schema/assignment
/// files load as empty (a graph-only workspace is valid); a missing
/// graph is an error.
///
/// Prefers <dir>/snapshot.bin: the graph is mapped zero-copy (no
/// per-edge parsing) and the schema is parsed against the snapshot's
/// own label table. If the snapshot is absent, corrupt, or older than a
/// schema that now references labels it lacks, the text path
/// (graph.sxg, frozen once after the schema is parsed) is used instead
/// and the reason is reported via `info`. Parse errors from either path
/// name the offending file and line.
util::StatusOr<Workspace> LoadWorkspace(const std::string& dir,
                                        LoadInfo* info = nullptr);

}  // namespace schemex::catalog

#endif  // SCHEMEX_CATALOG_WORKSPACE_H_
