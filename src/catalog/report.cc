#include "catalog/report.h"

#include <string_view>
#include <vector>

#include "graph/graph_stats.h"
#include "typing/defect.h"
#include "typing/dot_export.h"
#include "util/string_util.h"

namespace schemex::catalog {

std::string RenderReport(const Workspace& ws, const ReportOptions& options) {
  std::string out = "# Schema extraction report\n\n";

  // --- Database. ---------------------------------------------------------
  graph::GraphStats stats = graph::ComputeStats(*ws.graph);
  out += "## Database\n\n";
  out += util::StringPrintf(
      "- objects: %zu (%zu complex, %zu atomic)\n- links: %zu over %zu "
      "labels\n- bipartite: %s; roots: %zu; avg out-degree %.2f\n\n",
      stats.num_objects, stats.num_complex, stats.num_atomic,
      stats.num_edges, stats.num_labels, stats.bipartite ? "yes" : "no",
      stats.num_roots, stats.avg_out_degree);

  if (ws.program.NumTypes() == 0) {
    out += "## Schema\n\n(no schema extracted yet)\n";
    return out;
  }

  // --- Schema. ------------------------------------------------------------
  out += "## Schema\n\n```\n" + ws.program.ToString(ws.graph->labels()) +
         "```\n\n";

  // --- Types: population + examples. --------------------------------------
  out += "## Types\n\n";
  std::vector<size_t> population(ws.program.NumTypes(), 0);
  for (graph::ObjectId o = 0; o < ws.assignment.NumObjects(); ++o) {
    for (typing::TypeId t : ws.assignment.TypesOf(o)) {
      ++population[static_cast<size_t>(t)];
    }
  }
  for (size_t t = 0; t < ws.program.NumTypes(); ++t) {
    out += util::StringPrintf(
        "- **%s**: %zu objects",
        ws.program.type(static_cast<typing::TypeId>(t)).name.c_str(),
        population[t]);
    size_t shown = 0;
    for (graph::ObjectId o = 0;
         o < ws.assignment.NumObjects() && shown < options.max_examples_per_type;
         ++o) {
      if (!ws.assignment.Has(o, static_cast<typing::TypeId>(t))) continue;
      std::string_view name = ws.graph->Name(o);
      out += shown == 0 ? " — e.g. " : ", ";
      out += name.empty() ? util::StringPrintf("_o%u", o) : std::string(name);
      ++shown;
    }
    out += "\n";
  }
  size_t untyped = 0;
  for (graph::ObjectId o = 0; o < ws.assignment.NumObjects(); ++o) {
    if (ws.graph->IsComplex(o) && ws.assignment.TypesOf(o).empty()) ++untyped;
  }
  out += util::StringPrintf("- *(untyped complex objects: %zu)*\n\n", untyped);

  // --- Defect. -------------------------------------------------------------
  typing::DefectReport defect =
      typing::ComputeDefect(ws.program, *ws.graph, ws.assignment);
  out += "## Fit\n\n";
  out += util::StringPrintf(
      "- defect: **%zu** over %zu links (excess %zu, deficit %zu)\n\n",
      defect.defect(), ws.graph->NumEdges(), defect.excess, defect.deficit);

  if (options.include_dot) {
    typing::DotOptions dopt;
    dopt.weights.assign(population.begin(), population.end());
    out += "## Schema graph (Graphviz)\n\n```dot\n" +
           typing::ProgramToDot(ws.program, ws.graph->labels(), dopt) +
           "```\n";
  }
  return out;
}

}  // namespace schemex::catalog
