#ifndef SCHEMEX_DATALOG_EVALUATOR_H_
#define SCHEMEX_DATALOG_EVALUATOR_H_

#include <cstddef>
#include <vector>

#include "datalog/ast.h"
#include "graph/graph_view.h"
#include "util/bitset.h"
#include "util/statusor.h"

namespace schemex::datalog {

/// An assignment of object sets to IDB predicates: extents[p] has one bit
/// per object of the database.
struct Interpretation {
  std::vector<util::DenseBitset> extents;

  /// True iff object `o` is in predicate `p`'s extent.
  bool Contains(PredId p, graph::ObjectId o) const {
    return extents[p].Test(o);
  }

  friend bool operator==(const Interpretation&, const Interpretation&) =
      default;
};

/// Which fixpoint of the immediate-consequence operator to compute.
/// The paper's typing semantics is the greatest fixpoint (§2): start from
/// "every object in every class" and descend; the least fixpoint starts
/// empty and ascends (for non-recursive programs the two coincide).
enum class FixpointKind { kGreatest, kLeast };

/// LFP evaluation strategy. kNaive recomputes every extent from scratch
/// each round; kSemiNaive is the classic delta-driven ("differential",
/// the paper's §4 pointer to [18]) evaluation: after the first round only
/// rules with a body IDB atom matching a newly-derived object are
/// re-fired, and only for the head objects reachable from it. Greatest-
/// fixpoint evaluation always uses the descending naive iteration (the
/// typing layer has its own worklist GFP).
enum class Strategy { kNaive, kSemiNaive };

struct EvalOptions {
  FixpointKind fixpoint = FixpointKind::kGreatest;
  Strategy strategy = Strategy::kNaive;
  /// Abort after this many rounds (0 = no limit; ignored by kSemiNaive).
  /// On abort, Evaluate returns the current (not-yet-fixed)
  /// interpretation.
  size_t max_iterations = 0;
  /// For kGreatest: seed only complex objects into the initial top
  /// interpretation. The paper classifies complex objects; atomic objects
  /// belong to the implicit type0. Defaults to true.
  bool seed_complex_only = true;
};

struct EvalStats {
  size_t iterations = 0;     ///< number of full immediate-consequence rounds
  size_t rule_checks = 0;    ///< body-satisfaction probes performed
  size_t delta_firings = 0;  ///< semi-naive: (rule, delta-object) joins run
};

/// Checks whether `rule`'s body is satisfiable with the head variable bound
/// to `o`, under interpretation `m` (for IDB atoms) and database `g` (for
/// EDB atoms). Pure existence test via backtracking join.
bool RuleSatisfied(const Rule& rule, graph::GraphView g,
                   const Interpretation& m, graph::ObjectId o);

/// Computes the requested fixpoint of `program` on `g` by (ascending or
/// descending) Kleene iteration of the immediate-consequence operator.
/// Returns InvalidArgument if the program fails Validate().
util::StatusOr<Interpretation> Evaluate(const Program& program,
                                        graph::GraphView g,
                                        const EvalOptions& options = {},
                                        EvalStats* stats = nullptr);

}  // namespace schemex::datalog

#endif  // SCHEMEX_DATALOG_EVALUATOR_H_
