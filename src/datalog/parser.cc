#include "datalog/parser.h"

#include <cctype>
#include <map>
#include <vector>

#include "util/string_util.h"

namespace schemex::datalog {

namespace {

/// Token kinds of the rule language.
enum class Tok {
  kIdent,   // person, link, x_y
  kVar,     // X, Y1, _Foo, _
  kString,  // "is-manager-of"
  kLParen,
  kRParen,
  kComma,
  kTurnstile,  // :-
  kDot,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  size_t line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  util::StatusOr<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '(') {
        out.push_back({Tok::kLParen, "(", line_});
        ++pos_;
        continue;
      }
      if (c == ')') {
        out.push_back({Tok::kRParen, ")", line_});
        ++pos_;
        continue;
      }
      if (c == ',') {
        out.push_back({Tok::kComma, ",", line_});
        ++pos_;
        continue;
      }
      if (c == '.') {
        out.push_back({Tok::kDot, ".", line_});
        ++pos_;
        continue;
      }
      if (c == ':') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
          out.push_back({Tok::kTurnstile, ":-", line_});
          pos_ += 2;
          continue;
        }
        return Error("stray ':'");
      }
      if (c == '"') {
        size_t start = ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\n') return Error("newline in string");
          ++pos_;
        }
        if (pos_ >= text_.size()) return Error("unterminated string");
        out.push_back(
            {Tok::kString, std::string(text_.substr(start, pos_ - start)),
             line_});
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '-')) {
          ++pos_;
        }
        std::string word(text_.substr(start, pos_ - start));
        bool is_var = std::isupper(static_cast<unsigned char>(word[0])) ||
                      word[0] == '_';
        out.push_back({is_var ? Tok::kVar : Tok::kIdent, std::move(word),
                       line_});
        continue;
      }
      return Error("unexpected character");
    }
    out.push_back({Tok::kEnd, "", line_});
    return out;
  }

 private:
  util::Status Error(const char* why) const {
    return util::Status::ParseError(
        util::StringPrintf("line %zu: %s", line_, why));
  }

  // OWNER: the ParseProgram() argument; the lexer is stack-local to one
  // parse and tokens borrow from the same buffer.
  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

class RuleParser {
 public:
  RuleParser(std::vector<Token> toks, graph::LabelInterner* labels)
      : toks_(std::move(toks)), labels_(labels) {}

  util::StatusOr<Program> Run() {
    while (Peek().kind != Tok::kEnd) {
      SCHEMEX_RETURN_IF_ERROR(ParseRule());
    }
    SCHEMEX_RETURN_IF_ERROR(program_.Validate());
    return std::move(program_);
  }

 private:
  const Token& Peek() const { return toks_[i_]; }
  Token Next() { return toks_[i_++]; }

  util::Status Error(const char* why) {
    return util::Status::ParseError(
        util::StringPrintf("line %zu: %s (near '%s')", Peek().line, why,
                           Peek().text.c_str()));
  }

  util::Status Expect(Tok kind, const char* what) {
    if (Peek().kind != kind) return Error(what);
    Next();
    return util::Status::OK();
  }

  PredId GetPred(const std::string& name) {
    PredId p = program_.FindPred(name);
    if (p >= 0) return p;
    return program_.AddPred(name);
  }

  Var GetVar(Rule* rule, std::map<std::string, Var>* vars,
             const std::string& name) {
    if (name == "_") return kAnonVar;
    auto it = vars->find(name);
    if (it != vars->end()) return it->second;
    Var v = rule->num_vars++;
    vars->emplace(name, v);
    return v;
  }

  util::Status ParseRule() {
    if (Peek().kind != Tok::kIdent) return Error("expected head predicate");
    std::string head = Next().text;
    if (head == "link" || head == "atomic") {
      return Error("'link'/'atomic' are reserved EDB names");
    }
    Rule rule;
    rule.head_pred = GetPred(head);
    rule.num_vars = 0;
    std::map<std::string, Var> vars;

    SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kLParen, "expected '(' after head"));
    if (Peek().kind != Tok::kVar || Peek().text == "_") {
      return Error("head argument must be a named variable");
    }
    Var head_var = GetVar(&rule, &vars, Next().text);
    (void)head_var;  // always 0 by construction
    SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kRParen, "expected ')'"));
    SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kTurnstile, "expected ':-'"));

    for (;;) {
      SCHEMEX_RETURN_IF_ERROR(ParseAtom(&rule, &vars));
      if (Peek().kind == Tok::kComma) {
        Next();
        continue;
      }
      break;
    }
    SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kDot, "expected '.' ending rule"));
    program_.rules.push_back(std::move(rule));
    return util::Status::OK();
  }

  util::Status ParseAtom(Rule* rule, std::map<std::string, Var>* vars) {
    if (Peek().kind != Tok::kIdent) return Error("expected atom");
    std::string name = Next().text;
    SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kLParen, "expected '('"));
    if (name == "link") {
      if (Peek().kind != Tok::kVar) return Error("link arg 1 must be a var");
      Var from = GetVar(rule, vars, Next().text);
      SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kComma, "expected ','"));
      if (Peek().kind != Tok::kVar) return Error("link arg 2 must be a var");
      Var to = GetVar(rule, vars, Next().text);
      SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kComma, "expected ','"));
      if (Peek().kind != Tok::kString && Peek().kind != Tok::kIdent) {
        return Error("link label must be a string or identifier");
      }
      graph::LabelId label = labels_->Intern(Next().text);
      SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kRParen, "expected ')'"));
      if (from == kAnonVar || to == kAnonVar) {
        return Error("link endpoints cannot be anonymous");
      }
      rule->body.push_back(Atom::Link(from, to, label));
      return util::Status::OK();
    }
    if (name == "atomic") {
      if (Peek().kind != Tok::kVar) return Error("atomic arg must be a var");
      Var obj = GetVar(rule, vars, Next().text);
      if (obj == kAnonVar) return Error("atomic object cannot be anonymous");
      Var value = kAnonVar;
      if (Peek().kind == Tok::kComma) {
        Next();
        if (Peek().kind != Tok::kVar) {
          return Error("atomic value must be a var");
        }
        value = GetVar(rule, vars, Next().text);
      }
      SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kRParen, "expected ')'"));
      rule->body.push_back(Atom::Atomic(obj, value));
      return util::Status::OK();
    }
    // IDB atom.
    if (Peek().kind != Tok::kVar) return Error("idb arg must be a var");
    Var v = GetVar(rule, vars, Next().text);
    if (v == kAnonVar) return Error("idb argument cannot be anonymous");
    SCHEMEX_RETURN_IF_ERROR(Expect(Tok::kRParen, "expected ')'"));
    rule->body.push_back(Atom::Idb(GetPred(name), v));
    return util::Status::OK();
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
  graph::LabelInterner* labels_;
  Program program_;
};

}  // namespace

util::StatusOr<Program> ParseProgram(std::string_view text,
                                     graph::LabelInterner* labels) {
  Lexer lexer(text);
  SCHEMEX_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Run());
  RuleParser parser(std::move(toks), labels);
  return parser.Run();
}

}  // namespace schemex::datalog
