#ifndef SCHEMEX_DATALOG_PARSER_H_
#define SCHEMEX_DATALOG_PARSER_H_

#include <string>
#include <string_view>

#include "datalog/ast.h"
#include "graph/label.h"
#include "util/statusor.h"

namespace schemex::datalog {

/// Parses a textual monadic datalog program. Grammar (one rule per line,
/// '%' or '#' start comments):
///
///   person(X) :- link(X, Y, "is-manager-of"), firm(Y),
///                link(X, Z, name), atomic(Z).
///
/// * Variables are identifiers starting with an uppercase letter or '_'
///   ('_' alone is the anonymous variable, allowed only as the value
///   argument of atomic/2).
/// * Labels are quoted strings or bare lowercase identifiers; they are
///   interned into `labels` (shared with the DataGraph the program will
///   run on).
/// * Predicates are bare lowercase identifiers; `link` and `atomic` are
///   reserved for the EDBs.
/// * A rule may span lines; the terminating '.' ends it.
///
/// Every IDB mentioned anywhere becomes a predicate of the program;
/// predicates without rules have empty GFP/LFP extents.
util::StatusOr<Program> ParseProgram(std::string_view text,
                                     graph::LabelInterner* labels);

}  // namespace schemex::datalog

#endif  // SCHEMEX_DATALOG_PARSER_H_
