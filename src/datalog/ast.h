#ifndef SCHEMEX_DATALOG_AST_H_
#define SCHEMEX_DATALOG_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/label.h"
#include "util/status.h"

namespace schemex::datalog {

/// Variables within one rule are dense indices 0..num_vars-1.
/// By convention the head variable of every rule is variable 0.
using Var = int;

inline constexpr Var kHeadVar = 0;

/// Anonymous variable marker for the value position of atomic(Y, _).
inline constexpr Var kAnonVar = -1;

/// Index of an IDB predicate within its Program.
using PredId = int;

/// One body atom of a monadic datalog rule over the two EDBs of the paper
/// (link/3 with a constant label, atomic/2) plus monadic IDB atoms.
struct Atom {
  enum class Kind : uint8_t {
    kLink,    ///< link(from_var, to_var, label)
    kAtomic,  ///< atomic(obj_var, value_var) — value_var may be kAnonVar
    kIdb,     ///< pred(obj_var)
  };

  Kind kind;
  Var arg0 = kAnonVar;  ///< kLink: from; kAtomic: obj; kIdb: the variable
  Var arg1 = kAnonVar;  ///< kLink: to; kAtomic: value; kIdb: unused
  graph::LabelId label = graph::kInvalidLabel;  ///< kLink only
  PredId pred = -1;                             ///< kIdb only

  static Atom Link(Var from, Var to, graph::LabelId l) {
    return Atom{Kind::kLink, from, to, l, -1};
  }
  static Atom Atomic(Var obj, Var value = kAnonVar) {
    return Atom{Kind::kAtomic, obj, value, graph::kInvalidLabel, -1};
  }
  static Atom Idb(PredId p, Var v) {
    return Atom{Kind::kIdb, v, kAnonVar, graph::kInvalidLabel, p};
  }

  friend bool operator==(const Atom&, const Atom&) = default;
};

/// One rule: head_pred(X0) :- body. `num_vars` counts the distinct
/// variables (0 is the head variable; anonymous variables are not counted).
struct Rule {
  PredId head_pred = -1;
  int num_vars = 1;
  std::vector<Atom> body;

  friend bool operator==(const Rule&, const Rule&) = default;
};

/// A monadic datalog program over EDBs {link, atomic}. Unlike the paper's
/// restricted typing programs, a Program may have multiple rules per
/// predicate and arbitrary conjunctive bodies; the typing layer
/// (schemex::typing) restricts itself to the paper's single-rule,
/// typed-link form but reuses this engine.
struct Program {
  std::vector<std::string> pred_names;
  std::vector<Rule> rules;

  /// Adds a predicate and returns its id. Names should be unique; lookup
  /// helpers return the first match.
  PredId AddPred(std::string name) {
    pred_names.push_back(std::move(name));
    return static_cast<PredId>(pred_names.size()) - 1;
  }

  /// Returns the predicate id for `name`, or -1.
  PredId FindPred(const std::string& name) const {
    for (size_t i = 0; i < pred_names.size(); ++i) {
      if (pred_names[i] == name) return static_cast<PredId>(i);
    }
    return -1;
  }

  size_t num_preds() const { return pred_names.size(); }

  /// Structural well-formedness: predicate/variable indices in range, head
  /// variable used, anonymous vars only in atomic value position.
  util::Status Validate() const;

  /// True iff no IDB body atom refers (directly or transitively) to a
  /// predicate that can reach the rule's own head predicate — i.e. the
  /// dependency graph is acyclic. For non-recursive programs LFP == GFP.
  bool IsRecursive() const;
};

}  // namespace schemex::datalog

#endif  // SCHEMEX_DATALOG_AST_H_
