#include "datalog/ast.h"

#include <queue>

#include "util/string_util.h"

namespace schemex::datalog {

util::Status Program::Validate() const {
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    auto fail = [&](const char* why) {
      return util::Status::InvalidArgument(
          util::StringPrintf("rule %zu: %s", r, why));
    };
    if (rule.head_pred < 0 ||
        rule.head_pred >= static_cast<PredId>(pred_names.size())) {
      return fail("head predicate out of range");
    }
    if (rule.num_vars < 1) return fail("rules must have a head variable");
    for (const Atom& a : rule.body) {
      auto var_ok = [&](Var v, bool allow_anon) {
        if (v == kAnonVar) return allow_anon;
        return v >= 0 && v < rule.num_vars;
      };
      switch (a.kind) {
        case Atom::Kind::kLink:
          if (!var_ok(a.arg0, false) || !var_ok(a.arg1, false)) {
            return fail("link atom variable out of range");
          }
          if (a.label == graph::kInvalidLabel) {
            return fail("link atom requires a constant label");
          }
          break;
        case Atom::Kind::kAtomic:
          if (!var_ok(a.arg0, false) || !var_ok(a.arg1, true)) {
            return fail("atomic atom variable out of range");
          }
          break;
        case Atom::Kind::kIdb:
          if (!var_ok(a.arg0, false)) {
            return fail("idb atom variable out of range");
          }
          if (a.pred < 0 || a.pred >= static_cast<PredId>(pred_names.size())) {
            return fail("idb atom predicate out of range");
          }
          break;
      }
    }
  }
  return util::Status::OK();
}

bool Program::IsRecursive() const {
  // Build predicate dependency adjacency and look for a cycle via Kahn's
  // algorithm (cycle <=> not all nodes removed).
  size_t n = pred_names.size();
  std::vector<std::vector<PredId>> dep(n);  // body pred -> head pred edges
  std::vector<int> indeg(n, 0);
  for (const Rule& r : rules) {
    for (const Atom& a : r.body) {
      if (a.kind == Atom::Kind::kIdb) {
        dep[a.pred].push_back(r.head_pred);
        ++indeg[r.head_pred];
      }
    }
  }
  std::queue<PredId> q;
  for (size_t p = 0; p < n; ++p) {
    if (indeg[p] == 0) q.push(static_cast<PredId>(p));
  }
  size_t removed = 0;
  while (!q.empty()) {
    PredId p = q.front();
    q.pop();
    ++removed;
    for (PredId h : dep[p]) {
      if (--indeg[h] == 0) q.push(h);
    }
  }
  return removed != n;
}

}  // namespace schemex::datalog
