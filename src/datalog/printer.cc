#include "datalog/printer.h"

#include "util/string_util.h"

namespace schemex::datalog {

namespace {

std::string VarName(Var v) {
  if (v == kAnonVar) return "_";
  if (v == kHeadVar) return "X";
  return util::StringPrintf("V%d", v);
}

}  // namespace

std::string PrintRule(const Rule& rule, const Program& program,
                      const graph::LabelInterner& labels) {
  std::string out = program.pred_names[rule.head_pred] + "(X) :- ";
  if (rule.body.empty()) out += "true";  // not parseable; empty bodies are
                                         // a degenerate internal case
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Atom& a = rule.body[i];
    if (i > 0) out += ", ";
    switch (a.kind) {
      case Atom::Kind::kLink:
        out += util::StringPrintf("link(%s, %s, \"%s\")",
                                  VarName(a.arg0).c_str(),
                                  VarName(a.arg1).c_str(),
                                  labels.Name(a.label).c_str());
        break;
      case Atom::Kind::kAtomic:
        if (a.arg1 == kAnonVar) {
          out += util::StringPrintf("atomic(%s)", VarName(a.arg0).c_str());
        } else {
          out += util::StringPrintf("atomic(%s, %s)", VarName(a.arg0).c_str(),
                                    VarName(a.arg1).c_str());
        }
        break;
      case Atom::Kind::kIdb:
        out += util::StringPrintf("%s(%s)",
                                  program.pred_names[a.pred].c_str(),
                                  VarName(a.arg0).c_str());
        break;
    }
  }
  out += ".";
  return out;
}

std::string PrintProgram(const Program& program,
                         const graph::LabelInterner& labels) {
  std::string out;
  for (const Rule& r : program.rules) {
    out += PrintRule(r, program, labels);
    out += '\n';
  }
  return out;
}

}  // namespace schemex::datalog
