#ifndef SCHEMEX_DATALOG_PRINTER_H_
#define SCHEMEX_DATALOG_PRINTER_H_

#include <string>

#include "datalog/ast.h"
#include "graph/label.h"

namespace schemex::datalog {

/// Renders one rule in the parseable textual syntax, e.g.
///   person(X) :- link(X, V1, "is-manager-of"), firm(V1).
/// Variables print as X (head) and V1, V2, ... (body).
std::string PrintRule(const Rule& rule, const Program& program,
                      const graph::LabelInterner& labels);

/// Renders the whole program, one rule per line. The output round-trips
/// through ParseProgram.
std::string PrintProgram(const Program& program,
                         const graph::LabelInterner& labels);

}  // namespace schemex::datalog

#endif  // SCHEMEX_DATALOG_PRINTER_H_
