#include "datalog/evaluator.h"

#include <algorithm>
#include <string>

namespace schemex::datalog {

namespace {

constexpr graph::ObjectId kUnbound = graph::kInvalidObject;

/// Backtracking existence search over the rule body. Object variables bind
/// to ObjectIds; value variables (second argument of atomic atoms) bind to
/// atomic values and live in a separate namespace keyed by the same
/// variable index.
class BodySolver {
 public:
  BodySolver(const Rule& rule, graph::GraphView g,
             const Interpretation& m)
      : rule_(rule),
        g_(g),
        m_(m),
        obj_binding_(static_cast<size_t>(rule.num_vars), kUnbound),
        val_binding_(static_cast<size_t>(rule.num_vars)),
        val_bound_(static_cast<size_t>(rule.num_vars), false),
        done_(rule.body.size(), false) {}

  bool Solve(graph::ObjectId head) {
    obj_binding_[kHeadVar] = head;
    return SolveRemaining(rule_.body.size());
  }

  /// Semi-naive delta join: enumerates every solution in which `pinned`
  /// is bound to `x`, recording the head-variable bindings into `heads`.
  /// If some solution leaves the head variable unbound (the body does not
  /// mention it), sets `*all_heads` — every object is then a valid head.
  void CollectHeads(Var pinned, graph::ObjectId x, util::DenseBitset* heads,
                    bool* all_heads) {
    collect_heads_ = heads;
    all_heads_ = all_heads;
    obj_binding_[pinned] = x;
    (void)SolveRemaining(rule_.body.size());
    collect_heads_ = nullptr;
    all_heads_ = nullptr;
  }

 private:
  bool ObjBound(Var v) const { return obj_binding_[v] != kUnbound; }

  /// Called with a complete body match. Returns true to stop the search.
  bool OnSolution() {
    if (collect_heads_ == nullptr) return true;  // existence mode
    if (ObjBound(kHeadVar)) {
      collect_heads_->Set(obj_binding_[kHeadVar]);
      return false;  // keep enumerating other head bindings
    }
    *all_heads_ = true;
    return true;  // no head constraint: nothing more to learn
  }

  /// Picks the not-yet-processed atom with the most bound variables so the
  /// join stays index-driven whenever the rule is connected. Returns the
  /// atom index or -1 when all are done.
  int PickAtom() const {
    int best = -1;
    int best_score = -1;
    for (size_t i = 0; i < rule_.body.size(); ++i) {
      if (done_[i]) continue;
      const Atom& a = rule_.body[i];
      int score = 0;
      switch (a.kind) {
        case Atom::Kind::kLink:
          score = (ObjBound(a.arg0) ? 2 : 0) + (ObjBound(a.arg1) ? 2 : 0);
          break;
        case Atom::Kind::kAtomic:
          score = ObjBound(a.arg0) ? 3 : 0;
          break;
        case Atom::Kind::kIdb:
          // Checking a bound IDB atom is O(1); enumerating an extent is the
          // worst option, so give unbound IDB atoms the lowest score.
          score = ObjBound(a.arg0) ? 4 : -1;
          break;
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  bool SolveRemaining(size_t remaining) {
    if (remaining == 0) return OnSolution();
    int ai = PickAtom();
    const Atom& a = rule_.body[static_cast<size_t>(ai)];
    done_[static_cast<size_t>(ai)] = true;
    bool found = SolveAtom(a, remaining - 1);
    done_[static_cast<size_t>(ai)] = false;
    return found;
  }

  bool SolveAtom(const Atom& a, size_t remaining) {
    switch (a.kind) {
      case Atom::Kind::kLink:
        return SolveLink(a, remaining);
      case Atom::Kind::kAtomic:
        return SolveAtomic(a, remaining);
      case Atom::Kind::kIdb:
        return SolveIdb(a, remaining);
    }
    return false;
  }

  bool TryBindObj(Var v, graph::ObjectId o, size_t remaining) {
    if (ObjBound(v)) {
      return obj_binding_[v] == o && SolveRemaining(remaining);
    }
    obj_binding_[v] = o;
    bool found = SolveRemaining(remaining);
    obj_binding_[v] = kUnbound;
    return found;
  }

  bool SolveLink(const Atom& a, size_t remaining) {
    const bool fb = ObjBound(a.arg0);
    const bool tb = ObjBound(a.arg1);
    if (fb && tb) {
      return g_.HasEdge(obj_binding_[a.arg0], obj_binding_[a.arg1], a.label) &&
             SolveRemaining(remaining);
    }
    if (fb) {
      for (const graph::HalfEdge& e : g_.OutEdges(obj_binding_[a.arg0])) {
        if (e.label != a.label) continue;
        if (TryBindObj(a.arg1, e.other, remaining)) return true;
      }
      return false;
    }
    if (tb) {
      for (const graph::HalfEdge& e : g_.InEdges(obj_binding_[a.arg1])) {
        if (e.label != a.label) continue;
        if (TryBindObj(a.arg0, e.other, remaining)) return true;
      }
      return false;
    }
    // Disconnected body component: scan all edges with this label.
    for (graph::ObjectId o = 0; o < g_.NumObjects(); ++o) {
      if (g_.IsAtomic(o)) continue;
      for (const graph::HalfEdge& e : g_.OutEdges(o)) {
        if (e.label != a.label) continue;
        obj_binding_[a.arg0] = o;
        bool found = TryBindObj(a.arg1, e.other, remaining);
        obj_binding_[a.arg0] = kUnbound;
        if (found) return true;
      }
    }
    return false;
  }

  bool CheckOrBindValue(Var value_var, graph::ObjectId atom_obj,
                        size_t remaining) {
    if (value_var == kAnonVar) return SolveRemaining(remaining);
    std::string_view v = g_.Value(atom_obj);
    if (val_bound_[value_var]) {
      return val_binding_[value_var] == v && SolveRemaining(remaining);
    }
    val_bound_[value_var] = true;
    val_binding_[value_var] = std::string(v);
    bool found = SolveRemaining(remaining);
    val_bound_[value_var] = false;
    return found;
  }

  bool SolveAtomic(const Atom& a, size_t remaining) {
    if (ObjBound(a.arg0)) {
      graph::ObjectId o = obj_binding_[a.arg0];
      return g_.IsAtomic(o) && CheckOrBindValue(a.arg1, o, remaining);
    }
    for (graph::ObjectId o = 0; o < g_.NumObjects(); ++o) {
      if (!g_.IsAtomic(o)) continue;
      obj_binding_[a.arg0] = o;
      bool found = CheckOrBindValue(a.arg1, o, remaining);
      obj_binding_[a.arg0] = kUnbound;
      if (found) return true;
    }
    return false;
  }

  bool SolveIdb(const Atom& a, size_t remaining) {
    if (ObjBound(a.arg0)) {
      return m_.Contains(a.pred, obj_binding_[a.arg0]) &&
             SolveRemaining(remaining);
    }
    bool found = false;
    // DenseBitset::ForEach has no early exit; the fast path above covers
    // all connected rules, so this full scan only hits disconnected bodies.
    m_.extents[a.pred].ForEach([&](size_t o) {
      if (found) return;
      if (TryBindObj(a.arg0, static_cast<graph::ObjectId>(o), remaining)) {
        found = true;
      }
    });
    return found;
  }

  const Rule& rule_;
  // OWNER: the graph passed to Evaluate(); a RuleEvaluator is stack-local
  // to one Evaluate() call and never outlives it.
  graph::GraphView g_;
  const Interpretation& m_;
  std::vector<graph::ObjectId> obj_binding_;
  std::vector<std::string> val_binding_;
  std::vector<char> val_bound_;
  std::vector<char> done_;
  util::DenseBitset* collect_heads_ = nullptr;
  bool* all_heads_ = nullptr;
};

/// Delta-driven least-fixpoint evaluation: round 1 fires only the rules
/// with IDB-free bodies (nothing else can fire on the empty
/// interpretation); afterwards a rule re-fires only for head objects
/// reachable from a newly derived (delta) object through one of its IDB
/// body atoms. Immediate (chaotic) insertion is used — sound for
/// monotone programs and converges at least as fast as strict rounds.
Interpretation SemiNaiveLfp(const Program& program,
                            graph::GraphView g, EvalStats* stats) {
  const size_t n = g.NumObjects();
  const size_t num_preds = program.num_preds();
  Interpretation m;
  m.extents.assign(num_preds, util::DenseBitset(n));

  size_t rule_checks = 0;
  size_t delta_firings = 0;
  std::vector<util::DenseBitset> delta(num_preds, util::DenseBitset(n));

  auto derive = [&](PredId p, graph::ObjectId o,
                    std::vector<util::DenseBitset>* into) {
    if (!g.IsComplex(o) || m.extents[p].Test(o)) return;
    m.extents[p].Set(o);
    (*into)[p].Set(o);
  };

  // Round 1: IDB-free rules, full scan.
  for (const Rule& r : program.rules) {
    bool has_idb = false;
    for (const Atom& a : r.body) has_idb |= a.kind == Atom::Kind::kIdb;
    if (has_idb) continue;
    for (graph::ObjectId o = 0; o < n; ++o) {
      if (!g.IsComplex(o)) continue;
      ++rule_checks;
      if (RuleSatisfied(r, g, m, o)) derive(r.head_pred, o, &delta);
    }
  }

  size_t iterations = 1;
  for (;;) {
    bool any_delta = false;
    for (const auto& d : delta) any_delta |= !d.None();
    if (!any_delta) break;
    ++iterations;
    std::vector<util::DenseBitset> next_delta(num_preds,
                                              util::DenseBitset(n));
    for (const Rule& r : program.rules) {
      for (const Atom& a : r.body) {
        if (a.kind != Atom::Kind::kIdb) continue;
        delta[a.pred].ForEach([&](size_t x) {
          ++delta_firings;
          BodySolver solver(r, g, m);
          util::DenseBitset heads(n);
          bool all_heads = false;
          solver.CollectHeads(a.arg0, static_cast<graph::ObjectId>(x),
                              &heads, &all_heads);
          if (all_heads) {
            for (graph::ObjectId o = 0; o < n; ++o) {
              derive(r.head_pred, o, &next_delta);
            }
          } else {
            heads.ForEach([&](size_t o) {
              derive(r.head_pred, static_cast<graph::ObjectId>(o),
                     &next_delta);
            });
          }
        });
      }
    }
    delta = std::move(next_delta);
  }
  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->rule_checks = rule_checks;
    stats->delta_firings = delta_firings;
  }
  return m;
}

}  // namespace

bool RuleSatisfied(const Rule& rule, graph::GraphView g,
                   const Interpretation& m, graph::ObjectId o) {
  BodySolver solver(rule, g, m);
  return solver.Solve(o);
}

util::StatusOr<Interpretation> Evaluate(const Program& program,
                                        graph::GraphView g,
                                        const EvalOptions& options,
                                        EvalStats* stats) {
  SCHEMEX_RETURN_IF_ERROR(program.Validate());
  if (options.strategy == Strategy::kSemiNaive &&
      options.fixpoint == FixpointKind::kLeast) {
    return SemiNaiveLfp(program, g, stats);
  }
  const size_t n = g.NumObjects();
  const size_t num_preds = program.num_preds();

  Interpretation m;
  m.extents.assign(num_preds, util::DenseBitset(n));
  if (options.fixpoint == FixpointKind::kGreatest) {
    for (auto& ext : m.extents) {
      if (options.seed_complex_only) {
        for (graph::ObjectId o = 0; o < n; ++o) {
          if (g.IsComplex(o)) ext.Set(o);
        }
      } else {
        ext.SetAll();
      }
    }
  }

  // Group rules by head predicate once.
  std::vector<std::vector<const Rule*>> by_head(num_preds);
  for (const Rule& r : program.rules) by_head[r.head_pred].push_back(&r);

  size_t iterations = 0;
  size_t rule_checks = 0;
  for (;;) {
    if (options.max_iterations != 0 && iterations >= options.max_iterations) {
      break;
    }
    ++iterations;
    Interpretation next;
    next.extents.assign(num_preds, util::DenseBitset(n));
    for (size_t p = 0; p < num_preds; ++p) {
      for (const Rule* r : by_head[p]) {
        if (options.fixpoint == FixpointKind::kGreatest) {
          // Only objects currently in the extent can remain (descending
          // iteration), so probe just those.
          m.extents[p].ForEach([&](size_t o) {
            if (next.extents[p].Test(o)) return;
            ++rule_checks;
            if (RuleSatisfied(*r, g, m, static_cast<graph::ObjectId>(o))) {
              next.extents[p].Set(o);
            }
          });
        } else {
          for (graph::ObjectId o = 0; o < n; ++o) {
            if (next.extents[p].Test(o) || !g.IsComplex(o)) continue;
            ++rule_checks;
            if (RuleSatisfied(*r, g, m, o)) next.extents[p].Set(o);
          }
        }
      }
    }
    if (next == m) break;
    m = std::move(next);
  }

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->rule_checks = rule_checks;
  }
  return m;
}

}  // namespace schemex::datalog
