#ifndef SCHEMEX_JSON_JSON_H_
#define SCHEMEX_JSON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace schemex::json {

/// A parsed JSON value. Objects preserve key order via a sorted map
/// (duplicate keys: last wins). Numbers are kept as doubles plus their
/// original text so integer-looking values round-trip.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d, std::string text = "");
  static Value String(std::string s);
  static Value Array(std::vector<Value> items);
  static Value Object(std::map<std::string, Value> fields);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_scalar() const {
    return kind_ != Kind::kArray && kind_ != Kind::kObject;
  }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::map<std::string, Value>& AsObject() const { return object_; }

  /// Scalar rendering used when importing into atomic objects: "null",
  /// "true"/"false", the number's original text, or the raw string.
  std::string ScalarToString() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  // string value, or number's source text
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Recursive-descent JSON parser (RFC 8259 subset: no \u surrogate-pair
/// validation beyond basic \uXXXX decoding to UTF-8). Returns ParseError
/// with an offset on malformed input.
util::StatusOr<Value> Parse(std::string_view text);

/// Serializes `v` back to compact (single-line) JSON text. Numbers emit
/// their preserved source text, so Parse/Serialize round-trips integers
/// exactly. Strings are escaped per RFC 8259 (control characters as
/// \uXXXX); object keys come out in the map's sorted order.
std::string Serialize(const Value& v);

/// Serialize with `indent`-space indentation and newlines, for humans.
std::string SerializePretty(const Value& v, int indent = 2);

}  // namespace schemex::json

#endif  // SCHEMEX_JSON_JSON_H_
