#include "json/import.h"

namespace schemex::json {

namespace {

class Importer {
 public:
  explicit Importer(const ImportOptions& options) : options_(options) {}

  graph::DataGraph Take() && { return std::move(g_); }

  graph::ObjectId ImportNode(const Value& v) {
    switch (v.kind()) {
      case Value::Kind::kObject: {
        graph::ObjectId id = g_.AddComplex();
        for (const auto& [key, field] : v.AsObject()) {
          Attach(id, key, field);
        }
        return id;
      }
      case Value::Kind::kArray: {
        // Array not under a field: wrap in a complex node with item edges.
        graph::ObjectId id = g_.AddComplex();
        for (const Value& elem : v.AsArray()) {
          Attach(id, std::string(options_.root_label), elem);
        }
        return id;
      }
      default:
        return g_.AddAtomic(v.ScalarToString());
    }
  }

 private:
  void Attach(graph::ObjectId parent, const std::string& label,
              const Value& v) {
    if (v.kind() == Value::Kind::kArray) {
      for (const Value& elem : v.AsArray()) {
        if (elem.kind() == Value::Kind::kArray) {
          // Array-of-arrays: intermediate node keeps nesting observable.
          graph::ObjectId wrapper = g_.AddComplex();
          g_.MergeEdge(parent, wrapper, label);
          for (const Value& inner : elem.AsArray()) {
            Attach(wrapper, "item", inner);
          }
        } else {
          g_.MergeEdge(parent, ImportNode(elem), label);
        }
      }
    } else {
      g_.MergeEdge(parent, ImportNode(v), label);
    }
  }

  ImportOptions options_;
  graph::DataGraph g_;
};

}  // namespace

graph::DataGraph ImportValue(const Value& value,
                             const ImportOptions& options) {
  Importer importer(options);
  importer.ImportNode(value);
  return std::move(importer).Take();
}

util::StatusOr<graph::DataGraph> ImportJson(std::string_view text,
                                            const ImportOptions& options) {
  SCHEMEX_ASSIGN_OR_RETURN(Value v, Parse(text));
  return ImportValue(v, options);
}

}  // namespace schemex::json
