#ifndef SCHEMEX_JSON_IMPORT_H_
#define SCHEMEX_JSON_IMPORT_H_

#include <string_view>

#include "graph/data_graph.h"
#include "json/json.h"
#include "util/statusor.h"

namespace schemex::json {

/// Maps a JSON document into the paper's data model (the natural OEM-style
/// encoding):
///  * a JSON object becomes a complex node; each field "k": v becomes an
///    edge labeled k to v's node;
///  * a JSON array contributes one edge per element, all carrying the
///    field's label (semistructured sets; every element gets its own
///    node, so duplicates remain distinct objects);
///  * scalars (null/bool/number/string) become atomic objects;
///  * arrays nested directly inside arrays get an "item" edge via an
///    intermediate complex node.
///
/// A top-level array imports as one complex "root" with an edge labeled
/// `root_label` per element, so a JSON-lines-style collection of records
/// becomes the classic "many similar objects" workload of the paper's
/// introduction.
struct ImportOptions {
  // OWNER: caller (the default binds a string literal); must outlive the
  // Import* call, which interns the label before returning.
  std::string_view root_label = "item";
};

/// Imports an already-parsed value.
graph::DataGraph ImportValue(const Value& value,
                             const ImportOptions& options = {});

/// Parses and imports in one step.
util::StatusOr<graph::DataGraph> ImportJson(std::string_view text,
                                            const ImportOptions& options = {});

}  // namespace schemex::json

#endif  // SCHEMEX_JSON_IMPORT_H_
