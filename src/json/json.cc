#include "json/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace schemex::json {

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d, std::string text) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  v.string_ = text.empty() ? util::StringPrintf("%g", d) : std::move(text);
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::Object(std::map<std::string, Value> fields) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(fields);
  return v;
}

std::string Value::ScalarToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber:
    case Kind::kString:
      return string_;
    default:
      return "";
  }
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::StatusOr<Value> Run() {
    SkipWs();
    SCHEMEX_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content");
    return v;
  }

 private:
  util::Status Error(const char* why) const {
    return util::Status::ParseError(
        util::StringPrintf("json offset %zu: %s", pos_, why));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  util::StatusOr<Value> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      SCHEMEX_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value::String(std::move(s));
    }
    if (ConsumeWord("null")) return Value::Null();
    if (ConsumeWord("true")) return Value::Bool(true);
    if (ConsumeWord("false")) return Value::Bool(false);
    return ParseNumber();
  }

  util::StatusOr<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      return Error("malformed number");
    }
    return Value::Number(d, std::move(token));
  }

  util::StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            out += e;
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u");
              }
            }
            // Minimal UTF-8 encoding (no surrogate pairing).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  util::StatusOr<Value> ParseArray() {
    Consume('[');
    std::vector<Value> items;
    SkipWs();
    if (Consume(']')) return Value::Array(std::move(items));
    for (;;) {
      SkipWs();
      SCHEMEX_ASSIGN_OR_RETURN(Value v, ParseValue());
      items.push_back(std::move(v));
      SkipWs();
      if (Consume(']')) return Value::Array(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  util::StatusOr<Value> ParseObject() {
    Consume('{');
    std::map<std::string, Value> fields;
    SkipWs();
    if (Consume('}')) return Value::Object(std::move(fields));
    for (;;) {
      SkipWs();
      SCHEMEX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      SCHEMEX_ASSIGN_OR_RETURN(Value v, ParseValue());
      fields[std::move(key)] = std::move(v);
      SkipWs();
      if (Consume('}')) return Value::Object(std::move(fields));
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  // OWNER: the Parse() argument; the parser is stack-local to one call
  // and copies out every string it returns.
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

util::StatusOr<Value> Parse(std::string_view text) {
  Parser p(text);
  return p.Run();
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          *out += util::StringPrintf("\\u%04x", c);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void SerializeTo(const Value& v, int indent, int depth, std::string* out) {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Value::Kind::kNull:
      *out += "null";
      return;
    case Value::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case Value::Kind::kNumber:
      // ScalarToString is the preserved source text (or %g rendering).
      *out += v.ScalarToString();
      return;
    case Value::Kind::kString:
      AppendEscaped(v.AsString(), out);
      return;
    case Value::Kind::kArray: {
      const auto& items = v.AsArray();
      if (items.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        SerializeTo(items[i], indent, depth + 1, out);
      }
      newline(depth);
      out->push_back(']');
      return;
    }
    case Value::Kind::kObject: {
      const auto& fields = v.AsObject();
      if (fields.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, val] : fields) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        AppendEscaped(key, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        SerializeTo(val, indent, depth + 1, out);
      }
      newline(depth);
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

std::string Serialize(const Value& v) {
  std::string out;
  SerializeTo(v, /*indent=*/0, /*depth=*/0, &out);
  return out;
}

std::string SerializePretty(const Value& v, int indent) {
  std::string out;
  SerializeTo(v, indent, /*depth=*/0, &out);
  return out;
}

}  // namespace schemex::json
