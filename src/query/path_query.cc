#include "query/path_query.h"

#include <algorithm>
#include <deque>

#include "util/bitset.h"
#include "util/string_util.h"

namespace schemex::query {

namespace {

/// Splits the query on '.' outside of [...] filters and quotes.
util::StatusOr<std::vector<std::string>> SplitSteps(std::string_view text) {
  std::vector<std::string> steps;
  std::string cur;
  bool in_brackets = false, in_quotes = false;
  for (char c : text) {
    if (in_quotes) {
      cur += c;
      if (c == '"') in_quotes = false;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        cur += c;
        break;
      case '[':
        if (in_brackets) return util::Status::ParseError("nested '['");
        in_brackets = true;
        cur += c;
        break;
      case ']':
        if (!in_brackets) return util::Status::ParseError("stray ']'");
        in_brackets = false;
        cur += c;
        break;
      case '.':
        if (in_brackets) {
          cur += c;
        } else {
          steps.push_back(std::move(cur));
          cur.clear();
        }
        break;
      default:
        cur += c;
    }
  }
  if (in_quotes) return util::Status::ParseError("unterminated quote");
  if (in_brackets) return util::Status::ParseError("unterminated '['");
  steps.push_back(std::move(cur));
  return steps;
}

/// Parses the optional trailing [attr="value"] of one step; returns the
/// step text without it.
util::StatusOr<std::string_view> SplitFilter(
    std::string_view step_text, std::optional<ValueFilter>* filter) {
  size_t open = step_text.find('[');
  if (open == std::string_view::npos) return step_text;
  if (step_text.back() != ']') {
    return util::Status::ParseError("malformed filter");
  }
  std::string_view body = step_text.substr(open + 1,
                                           step_text.size() - open - 2);
  size_t eq = body.find('=');
  if (eq == std::string_view::npos) {
    return util::Status::ParseError("filter needs attr=\"value\"");
  }
  std::string_view attr = util::Trim(body.substr(0, eq));
  std::string_view value = util::Trim(body.substr(eq + 1));
  if (attr.empty() || value.size() < 2 || value.front() != '"' ||
      value.back() != '"') {
    return util::Status::ParseError("filter value must be quoted");
  }
  *filter = ValueFilter{std::string(attr),
                        std::string(value.substr(1, value.size() - 2))};
  return step_text.substr(0, open);
}

}  // namespace

util::StatusOr<PathQuery> ParsePathQuery(std::string_view text) {
  PathQuery q;
  if (util::Trim(text).empty()) {
    return util::Status::ParseError("empty query");
  }
  SCHEMEX_ASSIGN_OR_RETURN(std::vector<std::string> raw_steps,
                           SplitSteps(text));
  for (const std::string& tok : raw_steps) {
    std::string_view t = util::Trim(tok);
    if (t.empty()) return util::Status::ParseError("empty step");
    PathStep step;
    SCHEMEX_ASSIGN_OR_RETURN(std::string_view head,
                             SplitFilter(t, &step.filter));
    head = util::Trim(head);
    if (head.empty()) {
      if (!step.filter.has_value()) {
        return util::Status::ParseError("empty step");
      }
      step.kind = PathStep::Kind::kFilterOnly;
    } else if (head == "*") {
      step.kind = PathStep::Kind::kAnyOne;
    } else if (head == "%") {
      step.kind = PathStep::Kind::kAnyStar;
    } else {
      step.kind = PathStep::Kind::kLabel;
      step.label = std::string(head);
    }
    q.steps.push_back(std::move(step));
  }
  return q;
}

namespace {

/// Frontier expansion for one step; kAnyStar computes a reachability
/// closure.
util::DenseBitset Advance(graph::GraphView g,
                          const util::DenseBitset& frontier,
                          const PathStep& step, QueryStats* stats) {
  util::DenseBitset next(g.NumObjects());
  auto expand_one = [&](size_t o, graph::LabelId want, bool any) {
    ++stats->objects_visited;
    for (const graph::HalfEdge& e :
         g.OutEdges(static_cast<graph::ObjectId>(o))) {
      ++stats->edges_scanned;
      if (any || e.label == want) next.Set(e.other);
    }
  };
  switch (step.kind) {
    case PathStep::Kind::kFilterOnly:
      return frontier;  // the filter is applied by the caller
    case PathStep::Kind::kLabel: {
      graph::LabelId l = g.labels().Find(step.label);
      if (l == graph::kInvalidLabel) return next;  // label absent: empty
      frontier.ForEach([&](size_t o) { expand_one(o, l, false); });
      return next;
    }
    case PathStep::Kind::kAnyOne:
      frontier.ForEach(
          [&](size_t o) { expand_one(o, graph::kInvalidLabel, true); });
      return next;
    case PathStep::Kind::kAnyStar: {
      // BFS closure including the frontier itself.
      util::DenseBitset seen = frontier;
      std::deque<graph::ObjectId> work;
      frontier.ForEach(
          [&](size_t o) { work.push_back(static_cast<graph::ObjectId>(o)); });
      while (!work.empty()) {
        graph::ObjectId o = work.front();
        work.pop_front();
        ++stats->objects_visited;
        for (const graph::HalfEdge& e : g.OutEdges(o)) {
          ++stats->edges_scanned;
          if (!seen.Test(e.other)) {
            seen.Set(e.other);
            work.push_back(e.other);
          }
        }
      }
      return seen;
    }
  }
  return next;
}

}  // namespace

std::vector<graph::ObjectId> EvaluatePathQuery(
    graph::GraphView g, const PathQuery& q,
    const std::vector<graph::ObjectId>& starts, QueryStats* stats) {
  QueryStats local;
  util::DenseBitset frontier(g.NumObjects());
  if (starts.empty()) {
    for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
      if (g.IsComplex(o)) frontier.Set(o);
    }
  } else {
    for (graph::ObjectId o : starts) frontier.Set(o);
  }
  for (const PathStep& step : q.steps) {
    frontier = Advance(g, frontier, step, &local);
    if (step.filter.has_value()) {
      graph::LabelId attr = g.labels().Find(step.filter->attr);
      util::DenseBitset kept(g.NumObjects());
      if (attr != graph::kInvalidLabel) {
        frontier.ForEach([&](size_t o) {
          ++local.objects_visited;
          if (g.IsAtomic(static_cast<graph::ObjectId>(o))) return;
          for (const graph::HalfEdge& e :
               g.OutEdges(static_cast<graph::ObjectId>(o))) {
            ++local.edges_scanned;
            if (e.label == attr && g.IsAtomic(e.other) &&
                g.Value(e.other) == step.filter->value) {
              kept.Set(o);
              return;
            }
          }
        });
      }
      frontier = std::move(kept);
    }
    if (frontier.None()) break;
  }
  std::vector<graph::ObjectId> out;
  frontier.ForEach(
      [&](size_t o) { out.push_back(static_cast<graph::ObjectId>(o)); });
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace schemex::query
