#ifndef SCHEMEX_QUERY_PATH_QUERY_H_
#define SCHEMEX_QUERY_PATH_QUERY_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph_view.h"
#include "util/statusor.h"

namespace schemex::query {

/// A tiny path-expression language over the paper's data model — the
/// kind of query the paper's introduction wants a schema for ("query
/// formulation is facilitated by ... using existing structure"):
///
///   author.name                follow `author` then `name`
///   *.name                     any one label, then `name`
///   author.%                   `author` then zero-or-more labels
///   [name="Gates"].email       filter the start set by an atomic value,
///                              then follow `email`
///   member[dept="cs"].phone    traverse, keep targets whose `dept` is cs
///
/// Steps are separated by '.'; a step is a label, '*' (exactly one edge,
/// any label), '%' (zero or more edges), or a bare filter. Any step may
/// carry a `[attr="value"]` filter: after traversal, only objects with
/// an `attr` edge to an atomic holding exactly `value` survive. A query
/// evaluates from a set of start objects (default: every complex object)
/// to the set of objects reachable along a matching path.
struct ValueFilter {
  std::string attr;
  std::string value;

  friend bool operator==(const ValueFilter&, const ValueFilter&) = default;
};

struct PathStep {
  enum class Kind { kLabel, kAnyOne, kAnyStar, kFilterOnly };
  Kind kind = Kind::kLabel;
  std::string label;  // kLabel only
  std::optional<ValueFilter> filter;

  friend bool operator==(const PathStep&, const PathStep&) = default;
};

struct PathQuery {
  std::vector<PathStep> steps;
};

/// Parses the dotted syntax. Fails on empty steps or empty input.
util::StatusOr<PathQuery> ParsePathQuery(std::string_view text);

/// Evaluation counters, for the bench comparing evaluators.
struct QueryStats {
  size_t edges_scanned = 0;
  size_t objects_visited = 0;
};

/// Evaluates `q` starting from `starts` (all complex objects when empty),
/// returning the sorted set of reachable end objects.
std::vector<graph::ObjectId> EvaluatePathQuery(
    graph::GraphView g, const PathQuery& q,
    const std::vector<graph::ObjectId>& starts = {},
    QueryStats* stats = nullptr);

}  // namespace schemex::query

#endif  // SCHEMEX_QUERY_PATH_QUERY_H_
