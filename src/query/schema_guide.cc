#include "query/schema_guide.h"

#include <algorithm>

namespace schemex::query {

namespace {

using typing::TypeId;

/// Set of schema nodes: one bool per type plus one for the ATOM node.
struct NodeSet {
  std::vector<bool> types;
  bool atom = false;

  explicit NodeSet(size_t n, bool value = false)
      : types(n, value), atom(value) {}

  bool operator==(const NodeSet&) const = default;
};

}  // namespace

SchemaGuide::SchemaGuide(const typing::TypingProgram& program,
                         const typing::TypeAssignment& assignment)
    : program_(program), assignment_(assignment) {
  for (size_t t = 0; t < program_.NumTypes(); ++t) {
    TypeId tid = static_cast<TypeId>(t);
    for (const typing::TypedLink& l : program_.type(tid).signature.links()) {
      if (l.dir == typing::Direction::kOutgoing) {
        edges_.push_back(SchemaEdge{tid, l.label, l.target});
      } else {
        edges_.push_back(SchemaEdge{l.target, l.label, tid});
      }
    }
  }
}

std::vector<TypeId> SchemaGuide::StartTypes(graph::GraphView g,
                                            const PathQuery& q) const {
  const size_t n = program_.NumTypes();
  // Backward DP: can[i] = nodes from which steps[i..] match.
  NodeSet can(n, true);  // past the end: anything matches
  for (size_t i = q.steps.size(); i-- > 0;) {
    const PathStep& step = q.steps[i];
    if (step.kind == PathStep::Kind::kFilterOnly) {
      continue;  // value filters are invisible to the schema: no change
    }
    if (step.kind == PathStep::Kind::kAnyStar) {
      // Closure: everything already in `can`, plus anything with a path
      // of arbitrary edges into it.
      NodeSet next = can;
      bool changed = true;
      while (changed) {
        changed = false;
        for (const SchemaEdge& e : edges_) {
          bool to_ok = e.to == typing::kAtomicType
                           ? next.atom
                           : next.types[static_cast<size_t>(e.to)];
          if (to_ok && !next.types[static_cast<size_t>(e.from)]) {
            next.types[static_cast<size_t>(e.from)] = true;
            changed = true;
          }
        }
      }
      can = std::move(next);
      continue;
    }
    graph::LabelId want = graph::kInvalidLabel;
    if (step.kind == PathStep::Kind::kLabel) {
      want = g.labels().Find(step.label);
      if (want == graph::kInvalidLabel) {
        return {};  // label absent from the data: nothing can match
      }
    }
    NodeSet next(n, false);  // ATOM has no outgoing edges: next.atom false
    for (const SchemaEdge& e : edges_) {
      if (step.kind == PathStep::Kind::kLabel && e.label != want) continue;
      bool to_ok = e.to == typing::kAtomicType
                       ? can.atom
                       : can.types[static_cast<size_t>(e.to)];
      if (to_ok) next.types[static_cast<size_t>(e.from)] = true;
    }
    can = std::move(next);
  }
  std::vector<TypeId> out;
  for (size_t t = 0; t < n; ++t) {
    if (can.types[t]) out.push_back(static_cast<TypeId>(t));
  }
  return out;
}

std::vector<graph::ObjectId> SchemaGuide::StartCandidates(
    graph::GraphView g, const PathQuery& q) const {
  std::vector<TypeId> start_types = StartTypes(g, q);
  std::vector<bool> wanted(program_.NumTypes(), false);
  for (TypeId t : start_types) wanted[static_cast<size_t>(t)] = true;
  std::vector<graph::ObjectId> out;
  for (graph::ObjectId o = 0; o < assignment_.NumObjects(); ++o) {
    for (TypeId t : assignment_.TypesOf(o)) {
      if (wanted[static_cast<size_t>(t)]) {
        out.push_back(o);
        break;
      }
    }
  }
  return out;
}

std::vector<graph::ObjectId> SchemaGuide::Evaluate(graph::GraphView g,
                                                   const PathQuery& q,
                                                   QueryStats* stats) const {
  std::vector<graph::ObjectId> starts = StartCandidates(g, q);
  if (starts.empty()) {
    if (stats != nullptr) *stats = QueryStats{};
    return {};
  }
  return EvaluatePathQuery(g, q, starts, stats);
}

}  // namespace schemex::query
