#ifndef SCHEMEX_QUERY_SCHEMA_GUIDE_H_
#define SCHEMEX_QUERY_SCHEMA_GUIDE_H_

#include <vector>

#include "graph/graph_view.h"
#include "query/path_query.h"
#include "typing/assignment.h"
#include "typing/typing_program.h"

namespace schemex::query {

/// Schema-guided query pruning — the paper's §1 motivation made
/// concrete: "performance is greatly improved by taking advantage of the
/// existing structure".
///
/// The guide lifts a typing program to a *schema graph* (types as nodes,
/// one edge type1 -l-> type2 per typed link ->l^2 of type1 or <-l^1 of
/// type2, plus -l-> ATOM edges) and statically computes which types can
/// possibly begin a given path query. Evaluation then starts from only
/// the objects assigned to those types instead of every object.
///
/// Soundness: pruning is exact when the assignment has zero EXCESS (every
/// edge of the data is described by some rule — true by construction for
/// the minimal perfect typing). Under an approximate typing, objects may
/// reach results through excess edges the schema does not know about, so
/// pruned evaluation can under-report; the bench measures that recall.
class SchemaGuide {
 public:
  /// Builds the guide from a typing program plus the Stage-3 assignment.
  SchemaGuide(const typing::TypingProgram& program,
              const typing::TypeAssignment& assignment);

  /// Types from which the whole query can be matched in the schema graph.
  std::vector<typing::TypeId> StartTypes(graph::GraphView g,
                                         const PathQuery& q) const;

  /// Objects assigned to some start type (the pruned start set).
  std::vector<graph::ObjectId> StartCandidates(graph::GraphView g,
                                               const PathQuery& q) const;

  /// EvaluatePathQuery from the pruned start set.
  std::vector<graph::ObjectId> Evaluate(graph::GraphView g,
                                        const PathQuery& q,
                                        QueryStats* stats = nullptr) const;

 private:
  struct SchemaEdge {
    typing::TypeId from;
    graph::LabelId label;
    typing::TypeId to;  // kAtomicType for -l-> ATOM
  };

  const typing::TypingProgram& program_;
  const typing::TypeAssignment& assignment_;
  std::vector<SchemaEdge> edges_;
};

}  // namespace schemex::query

#endif  // SCHEMEX_QUERY_SCHEMA_GUIDE_H_
