#include "cluster/exact.h"

#include <algorithm>
#include <limits>

#include "cluster/distance.h"
#include "typing/defect.h"
#include "typing/recast.h"
#include "util/string_util.h"

namespace schemex::cluster {

namespace {

using typing::TypeId;
using typing::TypeSignature;
using typing::TypingProgram;

/// Builds the candidate program for one partition: group definitions are
/// weighted medoids, targets remapped to group ids. `d` is the
/// precomputed all-pairs simple-distance matrix (bit kernel) — the
/// enumeration evaluates every partition against the same Stage-1
/// signatures, so the matrix is computed once per call, not per
/// partition.
TypingProgram BuildProgram(const TypingProgram& stage1,
                           const std::vector<uint32_t>& weights,
                           const std::vector<TypeId>& group_of,
                           size_t num_groups,
                           const std::vector<std::vector<size_t>>& d) {
  const size_t n = stage1.NumTypes();
  std::vector<std::vector<size_t>> members(num_groups);
  for (size_t i = 0; i < n; ++i) {
    members[static_cast<size_t>(group_of[i])].push_back(i);
  }
  TypingProgram program;
  for (size_t gidx = 0; gidx < num_groups; ++gidx) {
    uint64_t best_cost = std::numeric_limits<uint64_t>::max();
    size_t medoid = members[gidx].front();
    for (size_t m : members[gidx]) {
      uint64_t cost = 0;
      for (size_t j : members[gidx]) {
        cost += static_cast<uint64_t>(weights[j]) * d[j][m];
      }
      if (cost < best_cost) {
        best_cost = cost;
        medoid = m;
      }
    }
    TypeSignature sig = stage1.type(static_cast<TypeId>(medoid)).signature;
    sig.RemapTargets(group_of);
    program.AddType(stage1.type(static_cast<TypeId>(medoid)).name,
                    std::move(sig));
  }
  return program;
}

}  // namespace

util::StatusOr<ExactResult> ExactOptimalTyping(
    graph::GraphView g, const typing::PerfectTypingResult& stage1,
    const ExactOptions& options) {
  const size_t n = stage1.program.NumTypes();
  if (n == 0) return util::Status::InvalidArgument("no types to cluster");
  if (n > options.max_types) {
    return util::Status::FailedPrecondition(util::StringPrintf(
        "%zu stage-1 types exceeds the exhaustive-search guard (%zu)", n,
        options.max_types));
  }
  if (options.k == 0) return util::Status::InvalidArgument("k must be >= 1");

  ExactResult best;
  best.defect = std::numeric_limits<size_t>::max();

  // All-pairs signature distances on the bit kernel, once up front.
  std::vector<std::vector<size_t>> d(n, std::vector<size_t>(n, 0));
  {
    typing::BitSignatureIndex index(stage1.program);
    std::vector<typing::BitSignature> enc(n);
    for (size_t i = 0; i < n; ++i) {
      enc[i] = index.Encode(stage1.program.type(static_cast<TypeId>(i))
                                .signature);
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        d[i][j] = d[j][i] =
            typing::BitSignatureIndex::Distance(enc[i], enc[j]);
      }
    }
  }

  // Enumerate restricted growth strings: rgs[0] = 0, rgs[i] <= max+1,
  // group count <= k.
  std::vector<TypeId> rgs(n, 0);
  util::Status eval_error;
  auto evaluate = [&](size_t num_groups) {
    TypingProgram program =
        BuildProgram(stage1.program, stage1.weight, rgs, num_groups, d);
    std::vector<std::vector<TypeId>> homes(g.NumObjects());
    for (size_t o = 0; o < stage1.home.size(); ++o) {
      if (stage1.home[o] != typing::kInvalidType) {
        homes[o] = {rgs[static_cast<size_t>(stage1.home[o])]};
      }
    }
    auto recast = typing::Recast(program, g, homes);
    if (!recast.ok()) {
      if (eval_error.ok()) eval_error = recast.status();
      return;
    }
    typing::DefectReport report =
        typing::ComputeDefect(program, g, recast->assignment);
    ++best.partitions_tried;
    if (report.defect() < best.defect) {
      best.defect = report.defect();
      best.program = std::move(program);
      best.map = rgs;
    }
  };

  // Depth-first enumeration.
  std::vector<TypeId> max_prefix(n, 0);  // max group id used in rgs[0..i]
  size_t i = 1;
  if (n == 1) {
    evaluate(1);
  } else {
    rgs[0] = 0;
    max_prefix[0] = 0;
    std::vector<TypeId> choice(n, -1);
    while (true) {
      if (i == n) {
        evaluate(static_cast<size_t>(max_prefix[n - 1]) + 1);
        --i;
        continue;
      }
      TypeId limit = std::min<TypeId>(
          max_prefix[i - 1] + 1, static_cast<TypeId>(options.k) - 1);
      if (choice[i] < limit) {
        ++choice[i];
        rgs[i] = choice[i];
        max_prefix[i] = std::max(max_prefix[i - 1], rgs[i]);
        ++i;
        if (i < n) choice[i] = -1;
      } else {
        if (i == 1) break;
        choice[i] = -1;
        --i;
      }
    }
  }
  if (!eval_error.ok()) return eval_error;
  return best;
}

}  // namespace schemex::cluster
