#ifndef SCHEMEX_CLUSTER_EXACT_H_
#define SCHEMEX_CLUSTER_EXACT_H_

#include <cstddef>
#include <vector>

#include "graph/graph_view.h"
#include "typing/perfect_typing.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::cluster {

/// Exhaustive optimal k-typing for tiny inputs. The paper proves the
/// general problem NP-hard (even for bipartite graphs, §5.2), so this is
/// a test/ablation oracle, not a production path: it enumerates every
/// partition of the Stage-1 types into at most k groups (restricted
/// growth strings), defines each group by its weighted medoid signature,
/// recasts, and returns the partition minimizing the measured defect.
///
/// The search space matches what the greedy and k-center heuristics can
/// reach (group definitions are member signatures), so the gap to this
/// optimum measures their approximation quality — the paper cites an
/// O(log n) guarantee for greedy under assumptions [11].
struct ExactOptions {
  size_t k = 2;
  /// Refuse inputs with more Stage-1 types than this (Bell-number guard).
  size_t max_types = 10;
};

struct ExactResult {
  typing::TypingProgram program;
  std::vector<typing::TypeId> map;  ///< stage-1 type -> final type
  size_t defect = 0;                ///< achieved optimum
  size_t partitions_tried = 0;
};

util::StatusOr<ExactResult> ExactOptimalTyping(
    graph::GraphView g, const typing::PerfectTypingResult& stage1,
    const ExactOptions& options);

}  // namespace schemex::cluster

#endif  // SCHEMEX_CLUSTER_EXACT_H_
