#ifndef SCHEMEX_CLUSTER_DISTANCE_H_
#define SCHEMEX_CLUSTER_DISTANCE_H_

#include <cstddef>
#include <string_view>

#include "typing/bit_signature.h"
#include "typing/type_signature.h"

namespace schemex::cluster {

/// The bit-parallel distance kernel (XOR + popcount over the program's
/// typed-link universe) used by the Stage-2/Stage-3 hot loops. Defined in
/// typing/ so Stage 3 can share it; re-exported here because clustering is
/// its primary consumer. SimpleDistance below stays the sorted-vector
/// reference the kernel is property-tested against.
using BitSignature = typing::BitSignature;
using BitSignatureIndex = typing::BitSignatureIndex;

/// The weighted distance functions of §5.2. All take the simple Manhattan
/// distance d (symmetric difference of rule bodies), the weights w1 (the
/// destination type: objects stay) and w2 (the source type: its objects
/// move into the destination), and L (the number of distinct typed links
/// in the Stage-1 program). The functions are deliberately asymmetric:
/// psi(w1, w2, d) prices "moving w2 objects into type 1".
enum class PsiKind {
  kSimpleD,  ///< d alone, ignoring weights
  kPsi1,     ///< L^d / (w1 * w2)
  kPsi2,     ///< d * w2 — the "weighted Manhattan distance" used in the
             ///< paper's experiments (§7.1)
  kPsi3,     ///< (w1 * w2)^(1/d)
  kPsi4,     ///< L^d * w2
  kPsi5,     ///< (w2 / w1)^(1/d)
};

/// Stable names for reports ("psi2", ...).
std::string_view PsiKindName(PsiKind kind);

/// Evaluates the chosen function. Conventions for edge cases:
///  * d == 0: merging identical types is free — returns 0 for every kind
///    (the exponent-based kinds are undefined at d = 0 otherwise);
///  * weights are clamped below at 1 so the ratio/product forms stay
///    finite when a virtual (e.g. empty) type starts at weight 0;
///  * results may overflow to +inf for the exponential kinds (L^d); +inf
///    compares correctly in "pick the minimum" loops.
double WeightedDistance(PsiKind kind, double w1, double w2, size_t d,
                        size_t L);

/// d(t1, t2): symmetric difference of the two rule bodies (Example 5.2).
inline size_t SimpleDistance(const typing::TypeSignature& a,
                             const typing::TypeSignature& b) {
  return typing::TypeSignature::SymmetricDifferenceSize(a, b);
}

}  // namespace schemex::cluster

#endif  // SCHEMEX_CLUSTER_DISTANCE_H_
