#include "cluster/distance.h"

#include <algorithm>
#include <cmath>

namespace schemex::cluster {

std::string_view PsiKindName(PsiKind kind) {
  switch (kind) {
    case PsiKind::kSimpleD:
      return "d";
    case PsiKind::kPsi1:
      return "psi1";
    case PsiKind::kPsi2:
      return "psi2";
    case PsiKind::kPsi3:
      return "psi3";
    case PsiKind::kPsi4:
      return "psi4";
    case PsiKind::kPsi5:
      return "psi5";
  }
  return "?";
}

double WeightedDistance(PsiKind kind, double w1, double w2, size_t d,
                        size_t L) {
  if (d == 0) return 0.0;
  w1 = std::max(w1, 1.0);
  w2 = std::max(w2, 1.0);
  const double dd = static_cast<double>(d);
  const double ll = std::max<double>(static_cast<double>(L), 2.0);
  switch (kind) {
    case PsiKind::kSimpleD:
      return dd;
    case PsiKind::kPsi1:
      return std::pow(ll, dd) / (w1 * w2);
    case PsiKind::kPsi2:
      return dd * w2;
    case PsiKind::kPsi3:
      return std::pow(w1 * w2, 1.0 / dd);
    case PsiKind::kPsi4:
      return std::pow(ll, dd) * w2;
    case PsiKind::kPsi5:
      return std::pow(w2 / w1, 1.0 / dd);
  }
  return dd;
}

}  // namespace schemex::cluster
