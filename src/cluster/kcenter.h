#ifndef SCHEMEX_CLUSTER_KCENTER_H_
#define SCHEMEX_CLUSTER_KCENTER_H_

#include <cstdint>
#include <vector>

#include "typing/exec_options.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::cluster {

/// The paper's §5.2 "Variation to k-clustering": "first consider the
/// types after Stage 1 WITHOUT their weights ... find the best k clusters
/// of the types and only use the weights within a cluster to determine
/// its type definition corresponding to its center."
///
/// Implementation: classic farthest-point traversal on the simple
/// distance d (a 2-approximation for k-center), unweighted; then, inside
/// each cluster, the *weighted medoid* — the member signature minimizing
/// the weighted sum of distances to its siblings — becomes the cluster's
/// type definition.
///
/// The paper's caveat applies and is observable in the ablation bench:
/// "this approach may run into problems if there are many outliers and
/// the hypercube is densely populated" (farthest-point chases outliers).
struct KCenterResult {
  typing::TypingProgram program;         ///< k types, targets remapped
  std::vector<typing::TypeId> map;       ///< stage-1 type -> final type
  std::vector<uint64_t> weights;         ///< per final type
  std::vector<typing::TypeId> medoids;   ///< stage-1 id of each definition
  /// max over types of d(type, its center) — the k-center objective.
  size_t radius = 0;
};

/// Clusters the Stage-1 types to (at most) `k` clusters. Fails on size
/// mismatch or k == 0. If k >= NumTypes the result is the identity.
///
/// The pairwise distance matrix runs on the bit-parallel kernel, sharded
/// across `exec` workers; traversal, assignment, and medoid selection are
/// sequential, so the result is bit-identical for every thread count.
/// exec.check_cancel is polled between phases.
util::StatusOr<KCenterResult> KCenterCluster(
    const typing::TypingProgram& stage1, const std::vector<uint32_t>& weights,
    size_t k, const typing::ExecOptions& exec = {});

}  // namespace schemex::cluster

#endif  // SCHEMEX_CLUSTER_KCENTER_H_
