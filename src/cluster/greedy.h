#ifndef SCHEMEX_CLUSTER_GREEDY_H_
#define SCHEMEX_CLUSTER_GREEDY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/distance.h"
#include "typing/exec_options.h"
#include "typing/typing_program.h"
#include "util/statusor.h"

namespace schemex::cluster {

/// Marker for "moved to the empty type" in cluster maps: the paper's
/// implicit extra type that lets the algorithm *not* classify some objects
/// (Example 5.3).
inline constexpr typing::TypeId kEmptyType = typing::kInvalidType;

struct ClusteringOptions {
  PsiKind psi = PsiKind::kPsi2;

  /// Stop when this many (non-empty) types remain. 1 <= target <= n.
  size_t target_num_types = 1;

  /// Allow "move type to the empty set" steps (priced as a merge into a
  /// virtual empty type at distance |signature|).
  bool enable_empty_type = true;

  /// Record a snapshot (program + stage1-type map) after every merge so a
  /// sensitivity sweep can evaluate each intermediate k without re-running
  /// the clustering.
  bool record_snapshots = false;
};

/// One greedy step: source cluster coalesced into destination (or into the
/// empty type).
struct MergeStep {
  size_t num_types_after;  ///< live non-empty clusters after this step
  typing::TypeId source;   ///< cluster index that disappeared
  typing::TypeId dest;     ///< surviving cluster index, or kEmptyType
  size_t simple_d;         ///< d(source, dest) at merge time
  double cost;             ///< psi value paid
};

/// The typing program at one intermediate k, with the map from Stage-1
/// type ids to its (dense) type ids; kEmptyType marks unclassified types.
struct Snapshot {
  size_t num_types;
  typing::TypingProgram program;
  std::vector<typing::TypeId> stage1_to_snapshot;
  double total_distance;  ///< cumulative greedy cost up to this snapshot
};

struct ClusteringResult {
  std::vector<MergeStep> steps;
  typing::TypingProgram final_program;
  /// Stage-1 type id -> final program type id (kEmptyType if unclassified).
  std::vector<typing::TypeId> final_map;
  /// Per final type: accumulated weight (sum of merged Stage-1 weights).
  std::vector<uint64_t> final_weights;
  double total_distance = 0.0;
  /// Populated when options.record_snapshots; ordered by decreasing k,
  /// includes the starting program (k = n) and the final one.
  std::vector<Snapshot> snapshots;
};

/// Greedy agglomerative clustering of the Stage-1 types (§5): repeatedly
/// perform the cheapest "move all of type s into type t" (or "stop
/// classifying type s") step until `target_num_types` remain. After each
/// coalescing, every rule body referencing s is rewritten to reference t
/// (the hypercube projection of Example 5.1), so zero-distance follow-up
/// merges cascade naturally. Ties on cost break toward the lowest
/// (source, dest) pair, with the empty-type move losing all ties.
///
/// `weights[i]` is the number of objects whose home is Stage-1 type i.
/// Fails if weights.size() != stage1.NumTypes() or target is out of range.
///
/// Distances run on the bit-parallel kernel (BitSignatureIndex); the
/// all-pairs candidate scan and the per-merge distance/best-candidate
/// maintenance shard across `exec` workers with a deterministic
/// sequential reduce, so the merge sequence, snapshots, and final program
/// are bit-identical for every thread count (the default ExecOptions is
/// the sequential reference). exec.check_cancel is polled before every
/// merge step; its status propagates verbatim.
util::StatusOr<ClusteringResult> ClusterTypes(
    const typing::TypingProgram& stage1, const std::vector<uint32_t>& weights,
    const ClusteringOptions& options, const typing::ExecOptions& exec = {});

}  // namespace schemex::cluster

#endif  // SCHEMEX_CLUSTER_GREEDY_H_
