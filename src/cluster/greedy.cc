#include "cluster/greedy.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"

namespace schemex::cluster {

namespace {

using typing::TypeId;
using typing::TypeSignature;
using typing::TypingProgram;

/// Orders merge candidates the way a naive double loop would find them:
/// by cost, then by source id, then destination id with the empty-type
/// move losing all ties (it was checked last in the reference scan). The
/// incremental best-candidate cache below preserves this order exactly,
/// so the optimization cannot change results.
struct Candidate {
  TypeId source = -1;
  TypeId dest = -1;  // kEmptyType for the empty-type move
  size_t simple_d = 0;
  double cost = std::numeric_limits<double>::infinity();

  size_t DestRank() const {
    return dest == kEmptyType ? std::numeric_limits<size_t>::max()
                              : static_cast<size_t>(dest);
  }
  /// True if *this is a strictly better pick than `o` for the same source.
  /// Infinite-cost candidates never win (matching the reference scan,
  /// where `inf < inf` kept the empty sentinel and ended the clustering).
  bool BeatsAsDest(const Candidate& o) const {
    if (cost == std::numeric_limits<double>::infinity()) return false;
    if (cost != o.cost) return cost < o.cost;
    return DestRank() < o.DestRank();
  }
  /// True if *this beats `o` globally (across sources).
  bool BeatsGlobally(const Candidate& o) const {
    if (cost != o.cost) return cost < o.cost;
    if (source != o.source) return source < o.source;
    return DestRank() < o.DestRank();
  }
};

class GreedyClusterer {
 public:
  GreedyClusterer(const TypingProgram& stage1,
                  const std::vector<uint32_t>& weights,
                  const ClusteringOptions& options)
      : options_(options),
        n_(stage1.NumTypes()),
        names_(n_),
        sig_(n_),
        weight_(n_),
        alive_(n_, true),
        cluster_of_(n_),
        big_l_(stage1.NumDistinctTypedLinks()) {
    for (size_t i = 0; i < n_; ++i) {
      names_[i] = stage1.type(static_cast<TypeId>(i)).name;
      sig_[i] = stage1.type(static_cast<TypeId>(i)).signature;
      weight_[i] = weights[i];
      cluster_of_[i] = static_cast<TypeId>(i);
    }
    InitDistances();
    best_.resize(n_);
    for (size_t s = 0; s < n_; ++s) RecomputeBest(s);
  }

  ClusteringResult Run() {
    ClusteringResult result;
    size_t live = n_;
    if (options_.record_snapshots) {
      result.snapshots.push_back(MakeSnapshot(0.0));
    }
    double total = 0.0;
    while (live > options_.target_num_types) {
      Candidate best = PickGlobalBest();
      if (best.source < 0) break;  // nothing mergeable (live <= 1)
      Apply(best);
      --live;
      total += best.cost;
      result.steps.push_back(MergeStep{live, best.source, best.dest,
                                       best.simple_d, best.cost});
      if (options_.record_snapshots) {
        result.snapshots.push_back(MakeSnapshot(total));
      }
    }
    result.total_distance = total;
    Snapshot fin = MakeSnapshot(total);
    result.final_program = std::move(fin.program);
    result.final_map = std::move(fin.stage1_to_snapshot);
    result.final_weights.assign(result.final_program.NumTypes(), 0);
    for (size_t i = 0; i < n_; ++i) {
      TypeId t = result.final_map[i];
      if (t != kEmptyType) {
        // Weight accumulates per *Stage-1* home population, which is what
        // the original weights measured.
        result.final_weights[static_cast<size_t>(t)] += initial_weight_[i];
      }
    }
    return result;
  }

 private:
  size_t D(size_t a, size_t b) const { return d_[a * n_ + b]; }
  void SetD(size_t a, size_t b, size_t v) {
    d_[a * n_ + b] = static_cast<uint32_t>(v);
    d_[b * n_ + a] = static_cast<uint32_t>(v);
  }

  void InitDistances() {
    initial_weight_.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
      initial_weight_[i] = static_cast<uint64_t>(weight_[i]);
    }
    d_.assign(n_ * n_, 0);
    for (size_t i = 0; i < n_; ++i) {
      for (size_t j = i + 1; j < n_; ++j) {
        SetD(i, j, SimpleDistance(sig_[i], sig_[j]));
      }
    }
  }

  double Cost(size_t dest, size_t source, size_t dist) const {
    return WeightedDistance(options_.psi, weight_[dest], weight_[source],
                            dist, big_l_);
  }

  Candidate MakeCandidate(size_t s, size_t t) const {
    return Candidate{static_cast<TypeId>(s), static_cast<TypeId>(t),
                     D(s, t), Cost(t, s, D(s, t))};
  }

  Candidate MakeEmptyCandidate(size_t s) const {
    return Candidate{static_cast<TypeId>(s), kEmptyType, sig_[s].size(),
                     WeightedDistance(options_.psi,
                                      std::max(empty_weight_, 1.0),
                                      weight_[s], sig_[s].size(), big_l_)};
  }

  /// Full rescan of the best move out of source `s`.
  void RecomputeBest(size_t s) {
    Candidate best;
    best.source = static_cast<TypeId>(s);
    for (size_t t = 0; t < n_; ++t) {
      if (t == s || !alive_[t]) continue;
      Candidate c = MakeCandidate(s, t);
      if (c.BeatsAsDest(best)) best = c;
    }
    if (options_.enable_empty_type) {
      Candidate c = MakeEmptyCandidate(s);
      if (c.BeatsAsDest(best)) best = c;
    }
    best_[s] = best;
  }

  Candidate PickGlobalBest() const {
    Candidate best;  // source = -1, cost = inf
    for (size_t s = 0; s < n_; ++s) {
      if (!alive_[s]) continue;
      if (best_[s].dest == -1 && best_[s].cost ==
                                     std::numeric_limits<double>::infinity()) {
        continue;  // no destination available (single cluster, no empty)
      }
      if (best.source < 0 || best_[s].BeatsGlobally(best)) best = best_[s];
    }
    return best;
  }

  /// Re-derives the d row of `c` after its signature changed and folds
  /// the new costs into the cached bests of every other source.
  void RefreshDistancesFor(size_t c) {
    for (size_t j = 0; j < n_; ++j) {
      if (j == c || !alive_[j]) continue;
      SetD(c, j, SimpleDistance(sig_[c], sig_[j]));
    }
    // c's own options all changed (its size may also have changed,
    // affecting its empty move).
    RecomputeBest(c);
    for (size_t j = 0; j < n_; ++j) {
      if (j == c || !alive_[j]) continue;
      if (best_[j].dest == static_cast<TypeId>(c)) {
        RecomputeBest(j);  // cached pick may have become worse
      } else {
        Candidate cand = MakeCandidate(j, c);
        if (cand.BeatsAsDest(best_[j])) best_[j] = cand;
      }
    }
  }

  bool PsiDependsOnDestWeight() const {
    switch (options_.psi) {
      case PsiKind::kPsi1:
      case PsiKind::kPsi3:
      case PsiKind::kPsi5:
        return true;
      case PsiKind::kSimpleD:
      case PsiKind::kPsi2:
      case PsiKind::kPsi4:
        return false;
    }
    return true;
  }

  void Apply(const Candidate& c) {
    size_t s = static_cast<size_t>(c.source);
    alive_[s] = false;
    for (TypeId& cl : cluster_of_) {
      if (cl == c.source) cl = c.dest;
    }
    if (c.dest == kEmptyType) {
      empty_weight_ += weight_[s];
      // Typed links targeting s can no longer be witnessed by classified
      // objects; drop them from every surviving rule body.
      for (size_t i = 0; i < n_; ++i) {
        if (!alive_[i]) continue;
        bool changed = false;
        TypeSignature next = sig_[i];
        for (const typing::TypedLink& l : sig_[i].links()) {
          if (l.target == c.source) {
            next.Erase(l);
            changed = true;
          }
        }
        if (changed) {
          sig_[i] = std::move(next);
          RefreshDistancesFor(i);
        }
      }
      // The empty type got heavier: empty-move costs change for
      // w1-dependent psi kinds; and any cached best pointing at s died.
      for (size_t i = 0; i < n_; ++i) {
        if (!alive_[i]) continue;
        if (best_[i].dest == c.source ||
            (options_.enable_empty_type && PsiDependsOnDestWeight())) {
          RecomputeBest(i);
        }
      }
      return;
    }
    size_t t = static_cast<size_t>(c.dest);
    weight_[t] += weight_[s];
    // Hypercube projection: every reference to s becomes a reference to t.
    for (size_t i = 0; i < n_; ++i) {
      if (!alive_[i]) continue;
      TypeSignature before = sig_[i];
      sig_[i].RemapTarget(c.source, c.dest);
      if (!(sig_[i] == before)) RefreshDistancesFor(i);
    }
    // Invalidate stale picks: anything aimed at the dead source, or at t
    // (whose weight changed — costs may have moved either way), plus fold
    // in the possibly-cheaper move into the heavier t.
    for (size_t i = 0; i < n_; ++i) {
      if (!alive_[i] || i == t) continue;
      if (best_[i].dest == c.source || best_[i].dest == c.dest) {
        RecomputeBest(i);
      } else {
        Candidate cand = MakeCandidate(i, t);
        if (cand.BeatsAsDest(best_[i])) best_[i] = cand;
      }
    }
    RecomputeBest(t);
  }

  Snapshot MakeSnapshot(double total) const {
    Snapshot snap;
    std::vector<TypeId> dense(n_, kEmptyType);
    for (size_t i = 0; i < n_; ++i) {
      if (!alive_[i]) continue;
      dense[i] = static_cast<TypeId>(snap.program.NumTypes());
      TypeSignature sig = sig_[i];
      snap.program.AddType(names_[i], std::move(sig));
    }
    // Snapshot signatures still reference cluster indices; remap to dense.
    for (size_t t = 0; t < snap.program.NumTypes(); ++t) {
      snap.program.type(static_cast<TypeId>(t))
          .signature.RemapTargets(dense);
    }
    snap.stage1_to_snapshot.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
      TypeId cl = cluster_of_[i];
      snap.stage1_to_snapshot[i] =
          cl == kEmptyType ? kEmptyType : dense[static_cast<size_t>(cl)];
    }
    snap.num_types = snap.program.NumTypes();
    snap.total_distance = total;
    return snap;
  }

  const ClusteringOptions options_;
  const size_t n_;
  std::vector<std::string> names_;
  std::vector<TypeSignature> sig_;
  std::vector<double> weight_;
  std::vector<uint64_t> initial_weight_;
  std::vector<bool> alive_;
  std::vector<TypeId> cluster_of_;
  std::vector<uint32_t> d_;        // flat n*n simple-distance matrix
  std::vector<Candidate> best_;    // per live source: its best move
  double empty_weight_ = 0.0;
  const size_t big_l_;
};

}  // namespace

util::StatusOr<ClusteringResult> ClusterTypes(
    const TypingProgram& stage1, const std::vector<uint32_t>& weights,
    const ClusteringOptions& options) {
  if (weights.size() != stage1.NumTypes()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "weights (%zu) must match number of types (%zu)", weights.size(),
        stage1.NumTypes()));
  }
  if (options.target_num_types < 1) {
    return util::Status::InvalidArgument("target_num_types must be >= 1");
  }
  SCHEMEX_RETURN_IF_ERROR(stage1.Validate());
  GreedyClusterer clusterer(stage1, weights, options);
  return clusterer.Run();
}

}  // namespace schemex::cluster
