#include "cluster/greedy.h"

#include <algorithm>
#include <limits>

#include "util/parallel_for.h"
#include "util/string_util.h"

namespace schemex::cluster {

namespace {

using typing::TypeId;
using typing::TypeSignature;
using typing::TypingProgram;

/// Orders merge candidates the way a naive double loop would find them:
/// by cost, then by source id, then destination id with the empty-type
/// move losing all ties (it was checked last in the reference scan). The
/// incremental best-candidate cache below preserves this order exactly,
/// so the optimization cannot change results.
struct Candidate {
  TypeId source = -1;
  TypeId dest = -1;  // kEmptyType for the empty-type move
  size_t simple_d = 0;
  double cost = std::numeric_limits<double>::infinity();

  size_t DestRank() const {
    return dest == kEmptyType ? std::numeric_limits<size_t>::max()
                              : static_cast<size_t>(dest);
  }
  /// True if *this is a strictly better pick than `o` for the same source.
  /// Infinite-cost candidates never win (matching the reference scan,
  /// where `inf < inf` kept the empty sentinel and ended the clustering).
  bool BeatsAsDest(const Candidate& o) const {
    if (cost == std::numeric_limits<double>::infinity()) return false;
    if (cost != o.cost) return cost < o.cost;
    return DestRank() < o.DestRank();
  }
  /// True if *this beats `o` globally (across sources).
  bool BeatsGlobally(const Candidate& o) const {
    if (cost != o.cost) return cost < o.cost;
    if (source != o.source) return source < o.source;
    return DestRank() < o.DestRank();
  }
};

/// The greedy clusterer, organised as *sharded compute, sequential
/// reduce* (the Stage-1 playbook): every merge step runs three phases —
///
///   M (sequential): apply the hypercube projection / link drop to the
///     affected rule bodies and re-encode them on the bit kernel. This is
///     the only phase that grows the BitSignatureIndex universe, so bit
///     assignment order is identical for every thread count.
///   D (sharded): recompute the simple-distance matrix entries whose
///     endpoints changed, each unordered pair owned by its lower row so
///     workers write disjoint cells.
///   B (sharded): restore every live source's cached best move, either by
///     a full rescan (when its own body or its cached destination
///     changed) or by folding in just the changed destinations. Each
///     worker writes only its own best_[j] slots.
///
/// All phase inputs are frozen before the shards launch and every value
/// is a pure function of them, so the result is bit-identical at any
/// thread count; with no pool the shards run inline in order, which *is*
/// the sequential reference.
class GreedyClusterer {
 public:
  GreedyClusterer(const TypingProgram& stage1,
                  const std::vector<uint32_t>& weights,
                  const ClusteringOptions& options, util::ThreadPool* pool,
                  size_t threads)
      : options_(options),
        n_(stage1.NumTypes()),
        pool_(pool),
        threads_(threads),
        names_(n_),
        sig_(n_),
        enc_(n_),
        weight_(n_),
        alive_(n_, true),
        changed_(n_, 0),
        cluster_of_(n_),
        big_l_(stage1.NumDistinctTypedLinks()) {
    for (size_t i = 0; i < n_; ++i) {
      names_[i] = stage1.type(static_cast<TypeId>(i)).name;
      sig_[i] = stage1.type(static_cast<TypeId>(i)).signature;
      weight_[i] = weights[i];
      cluster_of_[i] = static_cast<TypeId>(i);
    }
    InitDistances();
    best_.resize(n_);
    ForEachShard([&](size_t begin, size_t end) {
      for (size_t s = begin; s < end; ++s) RecomputeBest(s);
    });
  }

  util::StatusOr<ClusteringResult> Run(const typing::ExecOptions& exec) {
    ClusteringResult result;
    size_t live = n_;
    if (options_.record_snapshots) {
      result.snapshots.push_back(MakeSnapshot(0.0));
    }
    double total = 0.0;
    while (live > options_.target_num_types) {
      SCHEMEX_RETURN_IF_ERROR(exec.Poll());
      Candidate best = PickGlobalBest();
      if (best.source < 0) break;  // nothing mergeable (live <= 1)
      Apply(best);
      --live;
      total += best.cost;
      result.steps.push_back(MergeStep{live, best.source, best.dest,
                                       best.simple_d, best.cost});
      if (options_.record_snapshots) {
        result.snapshots.push_back(MakeSnapshot(total));
      }
    }
    result.total_distance = total;
    Snapshot fin = MakeSnapshot(total);
    result.final_program = std::move(fin.program);
    result.final_map = std::move(fin.stage1_to_snapshot);
    result.final_weights.assign(result.final_program.NumTypes(), 0);
    for (size_t i = 0; i < n_; ++i) {
      TypeId t = result.final_map[i];
      if (t != kEmptyType) {
        // Weight accumulates per *Stage-1* home population, which is what
        // the original weights measured.
        result.final_weights[static_cast<size_t>(t)] += initial_weight_[i];
      }
    }
    return result;
  }

 private:
  size_t D(size_t a, size_t b) const { return d_[a * n_ + b]; }
  void SetD(size_t a, size_t b, size_t v) {
    d_[a * n_ + b] = static_cast<uint32_t>(v);
    d_[b * n_ + a] = static_cast<uint32_t>(v);
  }

  /// Runs fn over row shards of [0, n) — on the pool when one was given,
  /// inline (in order) otherwise.
  template <typename Fn>
  void ForEachShard(Fn&& fn) {
    auto shards = util::ShardRanges(n_, threads_);
    util::RunShards(pool_, shards.size(), [&](size_t s) {
      fn(shards[s].first, shards[s].second);
    });
  }

  void InitDistances() {
    initial_weight_.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
      initial_weight_[i] = static_cast<uint64_t>(weight_[i]);
    }
    // Sequential encode fixes the bit universe in type order.
    for (size_t i = 0; i < n_; ++i) enc_[i] = index_.Encode(sig_[i]);
    d_.assign(n_ * n_, 0);
    ForEachShard([&](size_t begin, size_t end) {
      for (size_t a = begin; a < end; ++a) {
        for (size_t b = a + 1; b < n_; ++b) {
          SetD(a, b, BitSignatureIndex::Distance(enc_[a], enc_[b]));
        }
      }
    });
  }

  double Cost(size_t dest, size_t source, size_t dist) const {
    return WeightedDistance(options_.psi, weight_[dest], weight_[source],
                            dist, big_l_);
  }

  Candidate MakeCandidate(size_t s, size_t t) const {
    return Candidate{static_cast<TypeId>(s), static_cast<TypeId>(t),
                     D(s, t), Cost(t, s, D(s, t))};
  }

  Candidate MakeEmptyCandidate(size_t s) const {
    return Candidate{static_cast<TypeId>(s), kEmptyType, sig_[s].size(),
                     WeightedDistance(options_.psi,
                                      std::max(empty_weight_, 1.0),
                                      weight_[s], sig_[s].size(), big_l_)};
  }

  /// Full rescan of the best move out of source `s`.
  void RecomputeBest(size_t s) {
    Candidate best;
    best.source = static_cast<TypeId>(s);
    for (size_t t = 0; t < n_; ++t) {
      if (t == s || !alive_[t]) continue;
      Candidate c = MakeCandidate(s, t);
      if (c.BeatsAsDest(best)) best = c;
    }
    if (options_.enable_empty_type) {
      Candidate c = MakeEmptyCandidate(s);
      if (c.BeatsAsDest(best)) best = c;
    }
    best_[s] = best;
  }

  Candidate PickGlobalBest() const {
    Candidate best;  // source = -1, cost = inf
    for (size_t s = 0; s < n_; ++s) {
      if (!alive_[s]) continue;
      if (best_[s].dest == -1 && best_[s].cost ==
                                     std::numeric_limits<double>::infinity()) {
        continue;  // no destination available (single cluster, no empty)
      }
      if (best.source < 0 || best_[s].BeatsGlobally(best)) best = best_[s];
    }
    return best;
  }

  bool PsiDependsOnDestWeight() const {
    switch (options_.psi) {
      case PsiKind::kPsi1:
      case PsiKind::kPsi3:
      case PsiKind::kPsi5:
        return true;
      case PsiKind::kSimpleD:
      case PsiKind::kPsi2:
      case PsiKind::kPsi4:
        return false;
    }
    return true;
  }

  void Apply(const Candidate& c) {
    size_t s = static_cast<size_t>(c.source);
    alive_[s] = false;
    for (TypeId& cl : cluster_of_) {
      if (cl == c.source) cl = c.dest;
    }

    // Phase M: mutate the affected rule bodies and re-encode them.
    // Sequential — it is O(changed · |sig|), and it is the only place new
    // typed links (retargeted to c.dest) enter the bit universe, so bit
    // order stays deterministic.
    const bool empty_dest = c.dest == kEmptyType;
    std::fill(changed_.begin(), changed_.end(), uint8_t{0});
    changed_list_.clear();
    for (size_t i = 0; i < n_; ++i) {
      if (!alive_[i]) continue;
      bool references_s = false;
      for (const typing::TypedLink& l : sig_[i].links()) {
        if (l.target == c.source) {
          references_s = true;
          break;
        }
      }
      if (!references_s) continue;
      if (empty_dest) {
        // Typed links targeting s can no longer be witnessed by
        // classified objects; drop them from the surviving rule body.
        TypeSignature next = sig_[i];
        for (const typing::TypedLink& l : sig_[i].links()) {
          if (l.target == c.source) next.Erase(l);
        }
        sig_[i] = std::move(next);
      } else {
        // Hypercube projection: every reference to s becomes one to t.
        sig_[i].RemapTarget(c.source, c.dest);
      }
      enc_[i] = index_.Encode(sig_[i]);
      changed_[i] = 1;
      changed_list_.push_back(i);
    }
    if (empty_dest) {
      empty_weight_ += weight_[s];
    } else {
      weight_[static_cast<size_t>(c.dest)] += weight_[s];
    }

    // Phase D: refresh the distance rows whose endpoints changed. Each
    // unordered pair is owned by its lower index, so shards write
    // disjoint matrix cells; every value reads only post-M state.
    if (!changed_list_.empty()) {
      ForEachShard([&](size_t begin, size_t end) {
        for (size_t a = begin; a < end; ++a) {
          if (!alive_[a]) continue;
          if (changed_[a]) {
            for (size_t b = a + 1; b < n_; ++b) {
              if (!alive_[b]) continue;
              SetD(a, b, BitSignatureIndex::Distance(enc_[a], enc_[b]));
            }
          } else {
            auto it = std::upper_bound(changed_list_.begin(),
                                       changed_list_.end(), a);
            for (; it != changed_list_.end(); ++it) {
              if (alive_[*it]) {
                SetD(a, *it, BitSignatureIndex::Distance(enc_[a], enc_[*it]));
              }
            }
          }
        }
      });
    }

    // Phase B: restore every cached best to the true minimum over the
    // fresh state. A cached pick is still valid unless the source itself
    // changed, its destination died / changed body / changed weight, or
    // (for w1-dependent psi kinds) the empty type got heavier; candidates
    // that could only have *improved* are folded in. The minimum under
    // (cost, dest-rank) is unique, so rescans and fold-ins agree exactly.
    const bool empty_weight_changed =
        empty_dest && options_.enable_empty_type && PsiDependsOnDestWeight();
    ForEachShard([&](size_t begin, size_t end) {
      for (size_t j = begin; j < end; ++j) {
        if (!alive_[j]) continue;
        const Candidate& cached = best_[j];
        bool recompute =
            changed_[j] || cached.dest == c.source || empty_weight_changed ||
            (!empty_dest && (j == static_cast<size_t>(c.dest) ||
                             cached.dest == c.dest)) ||
            (cached.dest >= 0 && changed_[static_cast<size_t>(cached.dest)]);
        if (recompute) {
          RecomputeBest(j);
          continue;
        }
        for (size_t cd : changed_list_) {
          if (cd == j || !alive_[cd]) continue;
          Candidate cand = MakeCandidate(j, cd);
          if (cand.BeatsAsDest(best_[j])) best_[j] = cand;
        }
        if (!empty_dest && j != static_cast<size_t>(c.dest)) {
          // The destination got heavier: moves into it may have cheapened.
          Candidate cand = MakeCandidate(j, static_cast<size_t>(c.dest));
          if (cand.BeatsAsDest(best_[j])) best_[j] = cand;
        }
      }
    });
  }

  Snapshot MakeSnapshot(double total) const {
    Snapshot snap;
    std::vector<TypeId> dense(n_, kEmptyType);
    for (size_t i = 0; i < n_; ++i) {
      if (!alive_[i]) continue;
      dense[i] = static_cast<TypeId>(snap.program.NumTypes());
      TypeSignature sig = sig_[i];
      snap.program.AddType(names_[i], std::move(sig));
    }
    // Snapshot signatures still reference cluster indices; remap to dense.
    for (size_t t = 0; t < snap.program.NumTypes(); ++t) {
      snap.program.type(static_cast<TypeId>(t))
          .signature.RemapTargets(dense);
    }
    snap.stage1_to_snapshot.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
      TypeId cl = cluster_of_[i];
      snap.stage1_to_snapshot[i] =
          cl == kEmptyType ? kEmptyType : dense[static_cast<size_t>(cl)];
    }
    snap.num_types = snap.program.NumTypes();
    snap.total_distance = total;
    return snap;
  }

  const ClusteringOptions options_;
  const size_t n_;
  util::ThreadPool* pool_;
  const size_t threads_;
  std::vector<std::string> names_;
  std::vector<TypeSignature> sig_;
  BitSignatureIndex index_;
  // sig_[i] on the bit kernel, kept fresh. OWNER: index_ (bit positions
  // are only meaningful against the index that assigned them).
  std::vector<BitSignature> enc_;
  std::vector<double> weight_;
  std::vector<uint64_t> initial_weight_;
  std::vector<bool> alive_;
  std::vector<uint8_t> changed_;      // per-merge scratch (byte: shard-read)
  std::vector<size_t> changed_list_;  // ascending ids of changed_ entries
  std::vector<TypeId> cluster_of_;
  std::vector<uint32_t> d_;        // flat n*n simple-distance matrix
  std::vector<Candidate> best_;    // per live source: its best move
  double empty_weight_ = 0.0;
  const size_t big_l_;
};

}  // namespace

util::StatusOr<ClusteringResult> ClusterTypes(
    const TypingProgram& stage1, const std::vector<uint32_t>& weights,
    const ClusteringOptions& options, const typing::ExecOptions& exec) {
  if (weights.size() != stage1.NumTypes()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "weights (%zu) must match number of types (%zu)", weights.size(),
        stage1.NumTypes()));
  }
  if (options.target_num_types < 1) {
    return util::Status::InvalidArgument("target_num_types must be >= 1");
  }
  SCHEMEX_RETURN_IF_ERROR(stage1.Validate());
  util::PoolRef pool(exec.pool, exec.num_threads);
  GreedyClusterer clusterer(stage1, weights, options, pool.get(),
                            pool.num_threads());
  return clusterer.Run(exec);
}

}  // namespace schemex::cluster
