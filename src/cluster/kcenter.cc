#include "cluster/kcenter.h"

#include <algorithm>
#include <limits>

#include "cluster/distance.h"
#include "util/parallel_for.h"
#include "util/string_util.h"

namespace schemex::cluster {

namespace {

using typing::TypeId;
using typing::TypeSignature;
using typing::TypingProgram;

}  // namespace

util::StatusOr<KCenterResult> KCenterCluster(
    const TypingProgram& stage1, const std::vector<uint32_t>& weights,
    size_t k, const typing::ExecOptions& exec) {
  const size_t n = stage1.NumTypes();
  if (weights.size() != n) {
    return util::Status::InvalidArgument("weights must match type count");
  }
  if (k == 0) return util::Status::InvalidArgument("k must be >= 1");
  SCHEMEX_RETURN_IF_ERROR(stage1.Validate());
  SCHEMEX_RETURN_IF_ERROR(exec.Poll());
  k = std::min(k, n);

  // Pairwise simple distances on the bit kernel, rows sharded; each
  // unordered pair is owned by its lower row, so workers write disjoint
  // cells of the (pre-sized) matrix.
  BitSignatureIndex index(stage1);
  std::vector<BitSignature> enc(n);
  for (size_t i = 0; i < n; ++i) {
    enc[i] = index.Encode(stage1.type(static_cast<TypeId>(i)).signature);
  }
  std::vector<std::vector<size_t>> d(n, std::vector<size_t>(n, 0));
  {
    util::PoolRef pool(exec.pool, exec.num_threads);
    auto shards = util::ShardRanges(n, pool.num_threads());
    util::RunShards(pool.get(), shards.size(), [&](size_t s) {
      for (size_t i = shards[s].first; i < shards[s].second; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          d[i][j] = d[j][i] = BitSignatureIndex::Distance(enc[i], enc[j]);
        }
      }
    });
  }
  SCHEMEX_RETURN_IF_ERROR(exec.Poll());

  // Farthest-point traversal (UNWEIGHTED, per the paper's variation).
  // Deterministic start: the type with the largest signature, ties to the
  // lowest id.
  std::vector<size_t> centers;
  {
    size_t start = 0;
    for (size_t i = 1; i < n; ++i) {
      if (stage1.type(static_cast<TypeId>(i)).signature.size() >
          stage1.type(static_cast<TypeId>(start)).signature.size()) {
        start = i;
      }
    }
    centers.push_back(start);
  }
  std::vector<size_t> dist_to_centers(n, std::numeric_limits<size_t>::max());
  while (centers.size() < k) {
    size_t last = centers.back();
    for (size_t i = 0; i < n; ++i) {
      dist_to_centers[i] = std::min(dist_to_centers[i], d[i][last]);
    }
    size_t next = 0, best = 0;
    for (size_t i = 0; i < n; ++i) {
      if (dist_to_centers[i] > best) {
        best = dist_to_centers[i];
        next = i;
      }
    }
    if (best == 0) break;  // fewer than k distinct points
    centers.push_back(next);
  }

  // Assignment to the nearest center (ties to the earliest center).
  std::vector<size_t> cluster_of(n, 0);
  size_t radius = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t best_c = 0, best_d = d[i][centers[0]];
    for (size_t c = 1; c < centers.size(); ++c) {
      if (d[i][centers[c]] < best_d) {
        best_d = d[i][centers[c]];
        best_c = c;
      }
    }
    cluster_of[i] = best_c;
    radius = std::max(radius, best_d);
  }

  // Weighted medoid per cluster: minimize sum_j w_j * d(j, m).
  KCenterResult result;
  result.map.assign(n, typing::kInvalidType);
  result.medoids.assign(centers.size(), typing::kInvalidType);
  result.weights.assign(centers.size(), 0);
  result.radius = radius;
  for (size_t c = 0; c < centers.size(); ++c) {
    std::vector<size_t> members;
    for (size_t i = 0; i < n; ++i) {
      if (cluster_of[i] == c) members.push_back(i);
    }
    uint64_t best_cost = std::numeric_limits<uint64_t>::max();
    size_t medoid = members.front();
    for (size_t m : members) {
      uint64_t cost = 0;
      for (size_t j : members) cost += static_cast<uint64_t>(weights[j]) * d[j][m];
      if (cost < best_cost) {
        best_cost = cost;
        medoid = m;
      }
    }
    result.medoids[c] = static_cast<TypeId>(medoid);
    for (size_t m : members) {
      result.map[m] = static_cast<TypeId>(c);
      result.weights[c] += weights[m];
    }
  }

  // Final program: medoid signatures with targets remapped to clusters.
  for (size_t c = 0; c < centers.size(); ++c) {
    TypeSignature sig =
        stage1.type(result.medoids[c]).signature;
    sig.RemapTargets(result.map);
    result.program.AddType(stage1.type(result.medoids[c]).name,
                           std::move(sig));
  }
  return result;
}

}  // namespace schemex::cluster
