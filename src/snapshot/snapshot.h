#ifndef SCHEMEX_SNAPSHOT_SNAPSHOT_H_
#define SCHEMEX_SNAPSHOT_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/frozen_graph.h"
#include "snapshot/format.h"
#include "util/status.h"
#include "util/statusor.h"

namespace schemex::snapshot {

/// Options for Write().
struct WriteOptions {
  /// Encode the offset tables and adjacency arrays as delta/zigzag
  /// varints. Roughly halves the file for typical graphs, but compact
  /// sections must be decoded into an owned arena at load time, so a
  /// compact snapshot loads via one linear decode pass instead of
  /// zero-copy. The text/label arenas and the atomic bitset are always
  /// raw.
  bool compact = false;
};

/// Serializes `g` to `path` in the binary snapshot format
/// (docs/snapshot.md). Writes "<path>.tmp" and renames into place, so a
/// concurrent Map() sees either the complete old file or the complete
/// new one. O(graph) once; every later Map() is O(validation).
util::Status Write(const graph::FrozenGraph& g, const std::string& path,
                   const WriteOptions& options = {});

/// Options for Map().
struct MapOptions {
  /// Check the per-section CRC-32s (and the header CRC, which is always
  /// checked). Touches every payload byte once — still far cheaper than
  /// a text parse. Turn off for trusted, larger-than-RAM snapshots where
  /// faulting the whole file in defeats out-of-core paging.
  bool verify_crc = true;
  /// Bounds-check every edge's endpoint and label against the header
  /// counts (one linear pass, no allocation). Protects later algorithm
  /// scans from out-of-bounds ids in files whose corruption survives the
  /// CRC policy above. Turn off only together with a trusted source.
  bool validate_edges = true;
};

/// Maps the snapshot at `path` and assembles a FrozenGraph whose CSR
/// arrays point directly into the mapping (raw sections) or into arenas
/// decoded from it (compact sections). The returned graph keeps the
/// mapping alive through its control block: the file is unmapped when
/// the last shared_ptr copy drops, even if the file was replaced or
/// unlinked meanwhile.
///
/// Structured InvalidArgument on any malformed input — bad magic,
/// version or endianness, truncation, CRC mismatch, out-of-bounds
/// section table or offsets, non-canonical varints — never a crash.
util::StatusOr<std::shared_ptr<const graph::FrozenGraph>> Map(
    const std::string& path, const MapOptions& options = {});

/// One section table row, plus whether its payload CRC verifies.
struct SectionInfo {
  uint32_t id = 0;
  std::string name;      ///< "out_offsets", ... or "unknown"
  std::string encoding;  ///< "raw", "delta_varint", "edge_varint"
  uint64_t offset = 0;
  uint64_t stored_bytes = 0;
  uint64_t raw_bytes = 0;
  uint32_t crc32 = 0;
  bool crc_ok = false;
};

/// Header fields and section table of a snapshot, for `snapshot
/// inspect` and tests. Requires a well-formed header (magic, version,
/// endianness, header CRC, section table in bounds); individual payload
/// CRC failures are reported per-section rather than as an error.
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t file_bytes = 0;
  uint64_t num_objects = 0;
  uint64_t num_complex = 0;
  uint64_t num_edges = 0;
  uint64_t num_labels = 0;
  std::vector<SectionInfo> sections;
};

util::StatusOr<SnapshotInfo> Inspect(const std::string& path);

}  // namespace schemex::snapshot

#endif  // SCHEMEX_SNAPSHOT_SNAPSHOT_H_
