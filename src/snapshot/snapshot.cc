#include "snapshot/snapshot.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <utility>

#include "snapshot/mapped_file.h"
#include "snapshot/varint.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace schemex::snapshot {

namespace {

namespace fs = std::filesystem;

using graph::FrozenGraph;
using graph::HalfEdge;

// ---------------------------------------------------------------------------
// Writer

/// A section queued for layout. `buf` index into the encoder's owned
/// buffers when >= 0, else `data` points into the graph's own arrays
/// (which outlive the write).
struct PendingSection {
  SectionId id;
  SectionEncoding encoding;
  const char* data = nullptr;
  int buf = -1;
  uint64_t stored_bytes = 0;
  uint64_t raw_bytes = 0;
};

std::string EncodeDeltaVarint(std::span<const uint64_t> a) {
  std::string out;
  uint64_t prev = 0;
  for (uint64_t v : a) {
    AppendVarint(&out, v - prev);  // callers pass monotone arrays
    prev = v;
  }
  return out;
}

std::string EncodeEdgeVarint(std::span<const HalfEdge> edges) {
  std::string out;
  int64_t prev_other = 0;
  for (const HalfEdge& e : edges) {
    AppendVarint(&out, e.label);
    AppendVarint(&out,
                 ZigzagEncode(static_cast<int64_t>(e.other) - prev_other));
    prev_other = static_cast<int64_t>(e.other);
  }
  return out;
}

}  // namespace

util::Status Write(const FrozenGraph& g, const std::string& path,
                   const WriteOptions& options) {
  FrozenGraph::Parts parts = g.parts();

  // The interned label table flattens into an arena + offsets pair, the
  // same shape as the text arena.
  std::string label_arena;
  std::vector<uint64_t> label_off(g.labels().size() + 1, 0);
  for (size_t l = 0; l < g.labels().size(); ++l) {
    label_off[l] = label_arena.size();
    label_arena += g.labels().Name(static_cast<graph::LabelId>(l));
  }
  label_off[g.labels().size()] = label_arena.size();

  std::vector<std::string> bufs;
  std::vector<PendingSection> sections;
  auto add_raw = [&](SectionId id, const void* data, uint64_t bytes) {
    PendingSection s;
    s.id = id;
    s.encoding = SectionEncoding::kRaw;
    s.data = static_cast<const char*>(data);
    s.stored_bytes = bytes;
    s.raw_bytes = bytes;
    sections.push_back(s);
  };
  auto add_encoded = [&](SectionId id, SectionEncoding enc, std::string bytes,
                         uint64_t raw_bytes) {
    PendingSection s;
    s.id = id;
    s.encoding = enc;
    s.buf = static_cast<int>(bufs.size());
    s.stored_bytes = bytes.size();
    s.raw_bytes = raw_bytes;
    bufs.push_back(std::move(bytes));
    sections.push_back(s);
  };
  auto add_u64 = [&](SectionId id, std::span<const uint64_t> a) {
    if (options.compact) {
      add_encoded(id, SectionEncoding::kDeltaVarint, EncodeDeltaVarint(a),
                  a.size_bytes());
    } else {
      add_raw(id, a.data(), a.size_bytes());
    }
  };
  auto add_edges = [&](SectionId id, std::span<const HalfEdge> e) {
    if (options.compact) {
      add_encoded(id, SectionEncoding::kEdgeVarint, EncodeEdgeVarint(e),
                  e.size_bytes());
    } else {
      add_raw(id, e.data(), e.size_bytes());
    }
  };

  add_u64(SectionId::kOutOffsets, parts.out_off);
  add_u64(SectionId::kInOffsets, parts.in_off);
  add_edges(SectionId::kOutEdges, parts.out_edges);
  add_edges(SectionId::kInEdges, parts.in_edges);
  add_raw(SectionId::kAtomicBits, parts.atomic_words.data(),
          parts.atomic_words.size_bytes());
  add_u64(SectionId::kTextOffsets, parts.text_off);
  add_raw(SectionId::kTextArena, parts.arena.data(), parts.arena.size());
  add_raw(SectionId::kLabelOffsets, label_off.data(),
          label_off.size() * sizeof(uint64_t));
  add_raw(SectionId::kLabelArena, label_arena.data(), label_arena.size());

  // Layout: header, section table, then 8-aligned payloads in table
  // order (sizeof(SectionEntry) is a multiple of 8, so the first payload
  // lands aligned without padding).
  std::vector<SectionEntry> entries(sections.size());
  uint64_t off = sizeof(Header) + sections.size() * sizeof(SectionEntry);
  for (size_t i = 0; i < sections.size(); ++i) {
    const PendingSection& s = sections[i];
    const char* data = s.buf >= 0 ? bufs[s.buf].data() : s.data;
    off = AlignUp8(off);
    SectionEntry& e = entries[i];
    e.id = static_cast<uint32_t>(s.id);
    e.encoding = static_cast<uint32_t>(s.encoding);
    e.offset = off;
    e.stored_bytes = s.stored_bytes;
    e.raw_bytes = s.raw_bytes;
    e.crc32 = util::Crc32(data, s.stored_bytes);
    e.reserved = 0;
    off += s.stored_bytes;
  }

  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kFormatVersion;
  h.endian = kEndianTag;
  h.file_bytes = off;
  h.num_objects = g.NumObjects();
  h.num_complex = g.NumComplexObjects();
  h.num_edges = g.NumEdges();
  h.num_labels = g.labels().size();
  h.num_sections = static_cast<uint32_t>(sections.size());
  h.header_crc = util::Crc32(&h, offsetof(Header, header_crc));

  fs::path tmp = fs::path(path);
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return util::Status::Internal("cannot open " + tmp.string() +
                                    " for writing");
    }
    uint64_t written = 0;
    auto emit = [&](const void* data, uint64_t bytes) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(bytes));
      written += bytes;
    };
    emit(&h, sizeof(h));
    emit(entries.data(), entries.size() * sizeof(SectionEntry));
    static constexpr char kPad[8] = {};
    for (size_t i = 0; i < sections.size(); ++i) {
      const PendingSection& s = sections[i];
      if (written < entries[i].offset) {
        emit(kPad, entries[i].offset - written);
      }
      emit(s.buf >= 0 ? bufs[s.buf].data() : s.data, s.stored_bytes);
    }
    out.flush();
    if (!out || written != off) {
      return util::Status::Internal("write failed: " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return util::Status::Internal("rename to " + path +
                                  " failed: " + ec.message());
  }
  return util::Status::OK();
}

// ---------------------------------------------------------------------------
// Loader

namespace {

/// Everything a mapped FrozenGraph keeps alive: the mapping itself plus
/// the arenas decoded from any compact sections.
struct Backing {
  MappedFile file;
  std::vector<uint64_t> out_off;
  std::vector<uint64_t> in_off;
  std::vector<uint64_t> text_off;
  std::vector<HalfEdge> out_edges;
  std::vector<HalfEdge> in_edges;

  size_t OwnedBytes() const {
    return (out_off.capacity() + in_off.capacity() + text_off.capacity()) *
               sizeof(uint64_t) +
           (out_edges.capacity() + in_edges.capacity()) * sizeof(HalfEdge);
  }
};

util::Status SnapErr(const std::string& path, std::string why) {
  return util::Status::InvalidArgument("snapshot " + path + ": " +
                                       std::move(why));
}

/// Parses and sanity-checks the header and section table; on success
/// fills `header` and the by-id entry map (unknown ids are skipped,
/// duplicates rejected, every entry bounds-checked against the file).
util::Status ReadLayout(const MappedFile& file, Header* header,
                        std::map<uint32_t, SectionEntry>* by_id) {
  const std::string& path = file.path();
  if (file.size() < sizeof(Header)) {
    return SnapErr(path, util::StringPrintf(
                             "file is %zu bytes, smaller than the %zu-byte "
                             "header",
                             file.size(), sizeof(Header)));
  }
  Header h;
  std::memcpy(&h, file.data(), sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return SnapErr(path, "bad magic (not a schemex snapshot)");
  }
  if (h.endian != kEndianTag) {
    return SnapErr(path, util::StringPrintf(
                             "endianness tag 0x%08x does not match this "
                             "machine (file written on a different "
                             "architecture)",
                             h.endian));
  }
  if (h.version != kFormatVersion) {
    return SnapErr(path,
                   util::StringPrintf("format version %u, this build reads %u",
                                      h.version, kFormatVersion));
  }
  if (util::Crc32(&h, offsetof(Header, header_crc)) != h.header_crc) {
    return SnapErr(path, "header CRC mismatch");
  }
  if (h.file_bytes != file.size()) {
    return SnapErr(path, util::StringPrintf(
                             "header says %llu bytes but the file is %zu "
                             "(truncated or grown)",
                             static_cast<unsigned long long>(h.file_bytes),
                             file.size()));
  }
  if (h.num_sections > kMaxSections) {
    return SnapErr(path, util::StringPrintf("implausible section count %u",
                                            h.num_sections));
  }
  if (h.num_objects > std::numeric_limits<graph::ObjectId>::max() ||
      h.num_labels > std::numeric_limits<graph::LabelId>::max()) {
    return SnapErr(path, "object or label count exceeds the 32-bit id space");
  }
  const uint64_t table_end =
      sizeof(Header) + uint64_t{h.num_sections} * sizeof(SectionEntry);
  if (table_end > file.size()) {
    return SnapErr(path, "section table extends past end of file");
  }
  for (uint32_t i = 0; i < h.num_sections; ++i) {
    SectionEntry e;
    std::memcpy(&e, file.data() + sizeof(Header) + i * sizeof(SectionEntry),
                sizeof(e));
    auto name = SectionName(static_cast<SectionId>(e.id));
    if (e.offset % 8 != 0 || e.offset < table_end ||
        e.offset > file.size() || e.stored_bytes > file.size() - e.offset) {
      return SnapErr(path, util::StringPrintf(
                               "section %u (%.*s) payload [%llu, +%llu) is "
                               "misaligned or out of bounds",
                               e.id, static_cast<int>(name.size()),
                               name.data(),
                               static_cast<unsigned long long>(e.offset),
                               static_cast<unsigned long long>(
                                   e.stored_bytes)));
    }
    if (e.reserved != 0) {
      return SnapErr(path, util::StringPrintf(
                               "section %u reserved field is %u, want 0",
                               e.id, e.reserved));
    }
    if (!by_id->emplace(e.id, e).second) {
      return SnapErr(path,
                     util::StringPrintf("duplicate section id %u", e.id));
    }
  }
  *header = h;
  return util::Status::OK();
}

/// Looks up a required section, checks its encoding is one of
/// `allowed_encodings` (bitmask over SectionEncoding values) and, when
/// `want_raw_bytes` != npos, its decoded size.
util::StatusOr<SectionEntry> RequireSection(
    const std::string& path, const std::map<uint32_t, SectionEntry>& by_id,
    SectionId id, uint32_t allowed_encodings, uint64_t want_raw_bytes) {
  auto name = SectionName(id);
  auto it = by_id.find(static_cast<uint32_t>(id));
  if (it == by_id.end()) {
    return SnapErr(path, util::StringPrintf("missing required section %.*s",
                                            static_cast<int>(name.size()),
                                            name.data()));
  }
  const SectionEntry& e = it->second;
  if (e.encoding > 31 || ((allowed_encodings >> e.encoding) & 1) == 0) {
    return SnapErr(path, util::StringPrintf(
                             "section %.*s has unsupported encoding %u",
                             static_cast<int>(name.size()), name.data(),
                             e.encoding));
  }
  if (e.encoding == static_cast<uint32_t>(SectionEncoding::kRaw) &&
      e.raw_bytes != e.stored_bytes) {
    return SnapErr(path, util::StringPrintf(
                             "raw section %.*s declares raw_bytes != "
                             "stored_bytes",
                             static_cast<int>(name.size()), name.data()));
  }
  if (want_raw_bytes != std::numeric_limits<uint64_t>::max() &&
      e.raw_bytes != want_raw_bytes) {
    return SnapErr(path, util::StringPrintf(
                             "section %.*s decodes to %llu bytes, header "
                             "counts require %llu",
                             static_cast<int>(name.size()), name.data(),
                             static_cast<unsigned long long>(e.raw_bytes),
                             static_cast<unsigned long long>(want_raw_bytes)));
  }
  return e;
}

constexpr uint32_t EncMask(SectionEncoding e) {
  return 1u << static_cast<uint32_t>(e);
}
constexpr uint64_t kAnyRawBytes = std::numeric_limits<uint64_t>::max();

util::Status VerifySectionCrc(const MappedFile& file, const SectionEntry& e) {
  if (util::Crc32(file.data() + e.offset, e.stored_bytes) != e.crc32) {
    auto name = SectionName(static_cast<SectionId>(e.id));
    return SnapErr(file.path(),
                   util::StringPrintf("section %.*s payload CRC mismatch",
                                      static_cast<int>(name.size()),
                                      name.data()));
  }
  return util::Status::OK();
}

/// Materializes a u64 section: zero-copy view for raw, decode into
/// `*decoded` for delta-varint.
util::StatusOr<std::span<const uint64_t>> LoadU64Section(
    const MappedFile& file, const SectionEntry& e,
    std::vector<uint64_t>* decoded) {
  const uint8_t* payload = file.data() + e.offset;
  if (e.encoding == static_cast<uint32_t>(SectionEncoding::kRaw)) {
    return std::span<const uint64_t>(
        reinterpret_cast<const uint64_t*>(payload), e.raw_bytes / 8);
  }
  auto name = SectionName(static_cast<SectionId>(e.id));
  const size_t count = e.raw_bytes / 8;
  decoded->clear();
  decoded->reserve(count);
  VarintReader reader(payload, e.stored_bytes);
  uint64_t value = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    if (!reader.Read(&delta) ||
        value + delta < value /* u64 overflow */) {
      return SnapErr(file.path(),
                     util::StringPrintf("section %.*s: malformed varint "
                                        "stream at element %zu",
                                        static_cast<int>(name.size()),
                                        name.data(), i));
    }
    value += delta;
    decoded->push_back(value);
  }
  if (!reader.AtEnd()) {
    return SnapErr(file.path(),
                   util::StringPrintf("section %.*s: trailing bytes after "
                                      "the last varint",
                                      static_cast<int>(name.size()),
                                      name.data()));
  }
  return std::span<const uint64_t>(*decoded);
}

/// Materializes an edge section: zero-copy view for raw, decode for
/// edge-varint.
util::StatusOr<std::span<const HalfEdge>> LoadEdgeSection(
    const MappedFile& file, const SectionEntry& e,
    std::vector<HalfEdge>* decoded) {
  const uint8_t* payload = file.data() + e.offset;
  if (e.encoding == static_cast<uint32_t>(SectionEncoding::kRaw)) {
    return std::span<const HalfEdge>(
        reinterpret_cast<const HalfEdge*>(payload), e.raw_bytes / 8);
  }
  auto name = SectionName(static_cast<SectionId>(e.id));
  auto malformed = [&](size_t i) {
    return SnapErr(file.path(),
                   util::StringPrintf("section %.*s: malformed varint "
                                      "stream at edge %zu",
                                      static_cast<int>(name.size()),
                                      name.data(), i));
  };
  const size_t count = e.raw_bytes / 8;
  decoded->clear();
  decoded->reserve(count);
  VarintReader reader(payload, e.stored_bytes);
  int64_t prev_other = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t label = 0;
    uint64_t zz = 0;
    if (!reader.Read(&label) || !reader.Read(&zz) ||
        label > std::numeric_limits<graph::LabelId>::max()) {
      return malformed(i);
    }
    int64_t other = prev_other + ZigzagDecode(zz);
    if (other < 0 || other > std::numeric_limits<graph::ObjectId>::max()) {
      return malformed(i);
    }
    prev_other = other;
    decoded->push_back(HalfEdge{static_cast<graph::LabelId>(label),
                                static_cast<graph::ObjectId>(other)});
  }
  if (!reader.AtEnd()) {
    return SnapErr(file.path(),
                   util::StringPrintf("section %.*s: trailing bytes after "
                                      "the last edge",
                                      static_cast<int>(name.size()),
                                      name.data()));
  }
  return std::span<const HalfEdge>(*decoded);
}

}  // namespace

util::StatusOr<std::shared_ptr<const FrozenGraph>> Map(
    const std::string& path, const MapOptions& options) {
  SCHEMEX_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  Header h;
  std::map<uint32_t, SectionEntry> by_id;
  SCHEMEX_RETURN_IF_ERROR(ReadLayout(file, &h, &by_id));

  const uint64_t n = h.num_objects;
  const uint32_t kU64Enc =
      EncMask(SectionEncoding::kRaw) | EncMask(SectionEncoding::kDeltaVarint);
  const uint32_t kEdgeEnc =
      EncMask(SectionEncoding::kRaw) | EncMask(SectionEncoding::kEdgeVarint);
  const uint32_t kRawOnly = EncMask(SectionEncoding::kRaw);

  SCHEMEX_ASSIGN_OR_RETURN(
      SectionEntry out_off_e,
      RequireSection(path, by_id, SectionId::kOutOffsets, kU64Enc,
                     (n + 1) * 8));
  SCHEMEX_ASSIGN_OR_RETURN(
      SectionEntry in_off_e,
      RequireSection(path, by_id, SectionId::kInOffsets, kU64Enc,
                     (n + 1) * 8));
  SCHEMEX_ASSIGN_OR_RETURN(
      SectionEntry out_edges_e,
      RequireSection(path, by_id, SectionId::kOutEdges, kEdgeEnc,
                     h.num_edges * 8));
  SCHEMEX_ASSIGN_OR_RETURN(
      SectionEntry in_edges_e,
      RequireSection(path, by_id, SectionId::kInEdges, kEdgeEnc,
                     h.num_edges * 8));
  SCHEMEX_ASSIGN_OR_RETURN(
      SectionEntry atomic_e,
      RequireSection(path, by_id, SectionId::kAtomicBits, kRawOnly,
                     (n + 63) / 64 * 8));
  SCHEMEX_ASSIGN_OR_RETURN(
      SectionEntry text_off_e,
      RequireSection(path, by_id, SectionId::kTextOffsets, kU64Enc,
                     (2 * n + 1) * 8));
  SCHEMEX_ASSIGN_OR_RETURN(
      SectionEntry text_arena_e,
      RequireSection(path, by_id, SectionId::kTextArena, kRawOnly,
                     kAnyRawBytes));
  SCHEMEX_ASSIGN_OR_RETURN(
      SectionEntry label_off_e,
      RequireSection(path, by_id, SectionId::kLabelOffsets, kRawOnly,
                     (h.num_labels + 1) * 8));
  SCHEMEX_ASSIGN_OR_RETURN(
      SectionEntry label_arena_e,
      RequireSection(path, by_id, SectionId::kLabelArena, kRawOnly,
                     kAnyRawBytes));

  if (options.verify_crc) {
    for (const auto& [id, e] : by_id) {
      SCHEMEX_RETURN_IF_ERROR(VerifySectionCrc(file, e));
    }
  }

  auto backing = std::make_shared<Backing>();
  const uint8_t* base = file.data();

  FrozenGraph::External ext;
  ext.num_objects = n;
  ext.num_complex = h.num_complex;
  ext.num_edges = h.num_edges;
  SCHEMEX_ASSIGN_OR_RETURN(ext.views.out_off,
                           LoadU64Section(file, out_off_e, &backing->out_off));
  SCHEMEX_ASSIGN_OR_RETURN(ext.views.in_off,
                           LoadU64Section(file, in_off_e, &backing->in_off));
  SCHEMEX_ASSIGN_OR_RETURN(
      ext.views.out_edges,
      LoadEdgeSection(file, out_edges_e, &backing->out_edges));
  SCHEMEX_ASSIGN_OR_RETURN(
      ext.views.in_edges,
      LoadEdgeSection(file, in_edges_e, &backing->in_edges));
  SCHEMEX_ASSIGN_OR_RETURN(
      ext.views.text_off,
      LoadU64Section(file, text_off_e, &backing->text_off));
  ext.views.atomic_words = std::span<const uint64_t>(
      reinterpret_cast<const uint64_t*>(base + atomic_e.offset),
      atomic_e.raw_bytes / 8);
  ext.views.arena = std::string_view(
      reinterpret_cast<const char*>(base + text_arena_e.offset),
      text_arena_e.raw_bytes);

  // Rebuild the interner from the label arena — O(label bytes), the one
  // part of the load that is not a view, because algorithms look labels
  // up by name through the hash index.
  std::span<const uint64_t> label_off(
      reinterpret_cast<const uint64_t*>(base + label_off_e.offset),
      label_off_e.raw_bytes / 8);
  std::string_view label_arena(
      reinterpret_cast<const char*>(base + label_arena_e.offset),
      label_arena_e.raw_bytes);
  for (size_t l = 0; l + 1 < label_off.size(); ++l) {
    if (label_off[l] > label_off[l + 1] ||
        label_off[l + 1] > label_arena.size()) {
      return SnapErr(path, "label offsets not monotone or out of bounds");
    }
    ext.labels.Intern(label_arena.substr(label_off[l],
                                         label_off[l + 1] - label_off[l]));
  }
  if (ext.labels.size() != h.num_labels) {
    return SnapErr(path, "duplicate label names in the label arena");
  }

  if (options.validate_edges) {
    for (std::span<const HalfEdge> edges :
         {ext.views.out_edges, ext.views.in_edges}) {
      for (const HalfEdge& e : edges) {
        if (e.other >= n || e.label >= h.num_labels) {
          return SnapErr(path, util::StringPrintf(
                                   "edge (label %u, other %u) out of bounds",
                                   e.label, e.other));
        }
      }
    }
  }

  ext.owned_bytes = backing->OwnedBytes();
  ext.mapped_bytes = file.size();
  backing->file = std::move(file);
  ext.backing = std::move(backing);

  SCHEMEX_ASSIGN_OR_RETURN(FrozenGraph g,
                           FrozenGraph::FromExternal(std::move(ext)));
  return std::make_shared<const FrozenGraph>(std::move(g));
}

util::StatusOr<SnapshotInfo> Inspect(const std::string& path) {
  SCHEMEX_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  Header h;
  std::map<uint32_t, SectionEntry> by_id;
  SCHEMEX_RETURN_IF_ERROR(ReadLayout(file, &h, &by_id));

  SnapshotInfo info;
  info.version = h.version;
  info.file_bytes = h.file_bytes;
  info.num_objects = h.num_objects;
  info.num_complex = h.num_complex;
  info.num_edges = h.num_edges;
  info.num_labels = h.num_labels;
  for (const auto& [id, e] : by_id) {
    SectionInfo s;
    s.id = e.id;
    s.name = std::string(SectionName(static_cast<SectionId>(e.id)));
    s.encoding =
        std::string(EncodingName(static_cast<SectionEncoding>(e.encoding)));
    s.offset = e.offset;
    s.stored_bytes = e.stored_bytes;
    s.raw_bytes = e.raw_bytes;
    s.crc32 = e.crc32;
    s.crc_ok = util::Crc32(file.data() + e.offset, e.stored_bytes) == e.crc32;
    info.sections.push_back(std::move(s));
  }
  return info;
}

}  // namespace schemex::snapshot
