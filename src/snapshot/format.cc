#include "snapshot/format.h"

namespace schemex::snapshot {

std::string_view SectionName(SectionId id) {
  switch (id) {
    case SectionId::kOutOffsets:
      return "out_offsets";
    case SectionId::kInOffsets:
      return "in_offsets";
    case SectionId::kOutEdges:
      return "out_edges";
    case SectionId::kInEdges:
      return "in_edges";
    case SectionId::kAtomicBits:
      return "atomic_bits";
    case SectionId::kTextOffsets:
      return "text_offsets";
    case SectionId::kTextArena:
      return "text_arena";
    case SectionId::kLabelOffsets:
      return "label_offsets";
    case SectionId::kLabelArena:
      return "label_arena";
  }
  return "unknown";
}

std::string_view EncodingName(SectionEncoding e) {
  switch (e) {
    case SectionEncoding::kRaw:
      return "raw";
    case SectionEncoding::kDeltaVarint:
      return "delta_varint";
    case SectionEncoding::kEdgeVarint:
      return "edge_varint";
  }
  return "unknown";
}

}  // namespace schemex::snapshot
