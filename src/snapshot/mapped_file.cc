#include "snapshot/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "util/thread_annotations.h"

namespace schemex::snapshot {

namespace {

/// Process-wide accounting of live mappings. Mappings are created on
/// whatever thread loads a workspace and released on whatever thread
/// drops the last shared_ptr to the mapped graph (often a pool worker
/// swapping a workspace generation), so the registry is a real
/// concurrent surface and carries the repo's capability annotations.
class MappingRegistry {
 public:
  static MappingRegistry& Get() {
    static MappingRegistry registry;
    return registry;
  }

  uint64_t Register(const std::string& path, size_t bytes)
      SCHEMEX_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    uint64_t token = next_token_++;
    live_.emplace(token, MappingInfo{path, bytes});
    return token;
  }

  void Unregister(uint64_t token) SCHEMEX_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    live_.erase(token);
  }

  std::vector<MappingInfo> Snapshot() const SCHEMEX_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    std::vector<MappingInfo> out;
    out.reserve(live_.size());
    for (const auto& [token, info] : live_) out.push_back(info);
    return out;
  }

  size_t TotalBytes() const SCHEMEX_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    size_t total = 0;
    for (const auto& [token, info] : live_) total += info.bytes;
    return total;
  }

 private:
  mutable util::Mutex mu_;
  uint64_t next_token_ SCHEMEX_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, MappingInfo> live_ SCHEMEX_GUARDED_BY(mu_);
};

}  // namespace

MappedFile::~MappedFile() { Release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      path_(std::move(other.path_)),
      registry_token_(other.registry_token_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.registry_token_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    registry_token_ = other.registry_token_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.registry_token_ = 0;
  }
  return *this;
}

void MappedFile::Release() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
  }
  if (registry_token_ != 0) {
    MappingRegistry::Get().Unregister(registry_token_);
    registry_token_ = 0;
  }
}

util::StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::NotFound("cannot open " + path + ": " +
                                  std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return util::Status::Internal("fstat " + path + ": " +
                                  std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return util::Status::InvalidArgument("snapshot file " + path +
                                         " is empty");
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is
  // no longer needed (and an unlinked snapshot stays readable until the
  // last mapping is released).
  ::close(fd);
  if (addr == MAP_FAILED) {
    return util::Status::Internal("mmap " + path + ": " +
                                  std::strerror(errno));
  }
  MappedFile f;
  f.data_ = static_cast<const uint8_t*>(addr);
  f.size_ = size;
  f.path_ = path;
  f.registry_token_ = MappingRegistry::Get().Register(path, size);
  return f;
}

std::vector<MappingInfo> LiveMappings() {
  return MappingRegistry::Get().Snapshot();
}

size_t LiveMappedBytes() { return MappingRegistry::Get().TotalBytes(); }

}  // namespace schemex::snapshot
