#ifndef SCHEMEX_SNAPSHOT_VARINT_H_
#define SCHEMEX_SNAPSHOT_VARINT_H_

#include <cstdint>
#include <string>

namespace schemex::snapshot {

/// LEB128 unsigned varints (7 payload bits per byte, high bit = more),
/// plus the zigzag mapping for signed deltas. Used by the compact
/// snapshot sections; the decoder is strictly bounds-checked because it
/// runs over untrusted file bytes.

inline void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Sequential decoder over a byte range it does not own. Every Read
/// reports failure instead of walking past `end` or accepting an
/// over-long (>10 byte) encoding.
class VarintReader {
 public:
  VarintReader(const uint8_t* data, size_t size)
      : p_(data), end_(data + size) {}

  bool Read(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p_ == end_) return false;
      uint8_t b = *p_++;
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        // Reject non-canonical tails that would shift bits off the top.
        if (shift == 63 && b > 1) return false;
        *out = v;
        return true;
      }
    }
    return false;  // 10+ continuation bytes: not a valid u64
  }

  bool AtEnd() const { return p_ == end_; }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace schemex::snapshot

#endif  // SCHEMEX_SNAPSHOT_VARINT_H_
