#ifndef SCHEMEX_SNAPSHOT_MAPPED_FILE_H_
#define SCHEMEX_SNAPSHOT_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace schemex::snapshot {

/// A read-only, shared (MAP_SHARED, PROT_READ) memory mapping of a file.
/// Move-only RAII: the mapping is released in the destructor. The kernel
/// pages mapped bytes in on demand and may drop clean pages under
/// pressure, which is what makes larger-than-RAM snapshots servable.
///
/// Every live MappedFile is tracked in a process-wide registry (see
/// LiveMappings() below) so the service's `stats` verb and `snapshot
/// inspect` can report how many file-backed bytes are currently wired
/// into workspaces.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens and maps `path` read-only. NotFound if the file cannot be
  /// opened, InvalidArgument for an empty file (a snapshot is never
  /// empty), Internal for mmap failures.
  static util::StatusOr<MappedFile> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void Release();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
  uint64_t registry_token_ = 0;  ///< 0 = not registered
};

/// One live mapping as reported by the registry.
struct MappingInfo {
  std::string path;
  size_t bytes = 0;
};

/// Snapshot of all live mappings in this process, in creation order.
std::vector<MappingInfo> LiveMappings();

/// Total bytes across live mappings (what `stats` reports as
/// mapped_bytes).
size_t LiveMappedBytes();

}  // namespace schemex::snapshot

#endif  // SCHEMEX_SNAPSHOT_MAPPED_FILE_H_
