#ifndef SCHEMEX_SNAPSHOT_FORMAT_H_
#define SCHEMEX_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

#include "graph/data_graph.h"

namespace schemex::snapshot {

/// On-disk layout of a FrozenGraph snapshot (see docs/snapshot.md):
///
///   [Header 64 B][SectionEntry x N][8-aligned section payloads ...]
///
/// Every multi-byte field is little-endian host order; the header's
/// endian tag rejects a file written on the other kind of machine
/// instead of silently mis-reading it. Raw section payloads are aligned
/// to 8 bytes so a mapped file can back the CSR arrays directly — the
/// payload bytes ARE the in-memory arrays, no decode step.

inline constexpr char kMagic[8] = {'S', 'X', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr uint32_t kFormatVersion = 1;
/// Written as a u32; reads back as 0x04030201 on a big-endian machine.
inline constexpr uint32_t kEndianTag = 0x01020304;
/// Backstop against absurd section tables in corrupt headers.
inline constexpr uint32_t kMaxSections = 64;

/// Section identifiers. Unknown ids are skipped at load time (forward
/// compatibility); missing required ids are an error.
enum class SectionId : uint32_t {
  kOutOffsets = 1,    ///< (num_objects+1) x u64, CSR row starts (out)
  kInOffsets = 2,     ///< (num_objects+1) x u64, CSR row starts (in)
  kOutEdges = 3,      ///< num_edges x HalfEdge{u32 label, u32 other}
  kInEdges = 4,       ///< num_edges x HalfEdge
  kAtomicBits = 5,    ///< ceil(num_objects/64) x u64, atomic-object bitset
  kTextOffsets = 6,   ///< (2*num_objects+1) x u64, value/name arena slots
  kTextArena = 7,     ///< concatenated value/name bytes
  kLabelOffsets = 8,  ///< (num_labels+1) x u64, label arena slots
  kLabelArena = 9,    ///< concatenated label names
};

/// Payload encodings. Raw sections are used in place (zero-copy);
/// varint sections are decoded into an owned arena at load time.
enum class SectionEncoding : uint32_t {
  kRaw = 0,
  /// u64 arrays only: varint of the delta to the previous element
  /// (elements must be non-decreasing — true for every offset array).
  kDeltaVarint = 1,
  /// HalfEdge arrays only: per edge, varint(label) then zigzag varint of
  /// (other - previous other), the previous value carrying across rows.
  kEdgeVarint = 2,
};

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t endian;
  uint64_t file_bytes;   ///< total file size, for truncation detection
  uint64_t num_objects;
  uint64_t num_complex;
  uint64_t num_edges;
  uint64_t num_labels;
  uint32_t num_sections;
  uint32_t header_crc;   ///< CRC-32 of the 60 bytes preceding this field
};
static_assert(sizeof(Header) == 64, "header must stay 64 bytes");
static_assert(std::is_trivially_copyable_v<Header>);

struct SectionEntry {
  uint32_t id;            ///< SectionId
  uint32_t encoding;      ///< SectionEncoding
  uint64_t offset;        ///< payload start from file begin; 8-aligned
  uint64_t stored_bytes;  ///< payload length on disk (encoded length)
  uint64_t raw_bytes;     ///< decoded length (== stored_bytes when raw)
  uint32_t crc32;         ///< CRC-32 of the stored payload bytes
  uint32_t reserved;      ///< zero
};
static_assert(sizeof(SectionEntry) == 40, "section entry must stay 40 bytes");
static_assert(std::is_trivially_copyable_v<SectionEntry>);

// The edge sections are the HalfEdge array written verbatim, so the
// struct's layout is part of the file format.
static_assert(sizeof(graph::HalfEdge) == 8);
static_assert(std::is_trivially_copyable_v<graph::HalfEdge>);

inline constexpr uint64_t AlignUp8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

/// Stable display name for a section id ("out_offsets", ...); "unknown"
/// for ids this build does not know.
std::string_view SectionName(SectionId id);

/// "raw", "delta_varint", "edge_varint", or "unknown".
std::string_view EncodingName(SectionEncoding e);

}  // namespace schemex::snapshot

#endif  // SCHEMEX_SNAPSHOT_FORMAT_H_
