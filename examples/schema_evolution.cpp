// Schema evolution: extract schemas from two crawls of the "same"
// source (the second one perturbed — pages changed, fields appeared and
// disappeared), diff them, and demonstrate sampling-based extraction on
// a larger crawl.
//
//   $ ./examples/schema_evolution

#include <iostream>

#include "extract/extractor.h"
#include "extract/sampled.h"
#include "gen/dbg.h"
#include "gen/perturb.h"
#include "gen/spec.h"
#include "typing/program_diff.h"
#include "util/string_util.h"

using namespace schemex;  // NOLINT

int main() {
  // --- Two crawls. -------------------------------------------------------
  auto crawl1 = gen::MakeDbgDataset(5);
  if (!crawl1.ok()) {
    std::cerr << crawl1.status() << "\n";
    return 1;
  }
  graph::DataGraph crawl2 = *crawl1;
  gen::PerturbOptions churn;
  churn.delete_links = 8;
  churn.add_links = 20;
  churn.seed = 99;
  (void)gen::Perturb(&crawl2, churn);

  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto s1 = extract::SchemaExtractor(opt).Run(*crawl1);
  auto s2 = extract::SchemaExtractor(opt).Run(crawl2);
  if (!s1.ok() || !s2.ok()) {
    std::cerr << "extraction failed\n";
    return 1;
  }

  std::cout << util::StringPrintf(
      "crawl 1: %zu objects, schema of %zu types (defect %zu)\n",
      crawl1->NumObjects(), s1->num_final_types, s1->defect.defect());
  std::cout << util::StringPrintf(
      "crawl 2: %zu objects, schema of %zu types (defect %zu)\n\n",
      crawl2.NumObjects(), s2->num_final_types, s2->defect.defect());

  typing::ProgramDiff diff =
      typing::DiffPrograms(s1->final_program, s2->final_program);
  std::cout << "schema diff (crawl1 -> crawl2):\n"
            << diff.ToString(s1->final_program, s2->final_program,
                             crawl2.labels())
            << util::StringPrintf("total drift: %zu typed links\n\n",
                                  diff.total_drift);

  // --- Sampling a big crawl. ----------------------------------------------
  gen::DatasetSpec big_spec = gen::DbgSpec();
  for (auto& t : big_spec.types) t.count *= 40;
  auto big = gen::Generate(big_spec, 123);
  extract::SampleOptions sopt;
  sopt.sample_complex_objects = 800;
  sopt.extract.target_num_types = 6;
  auto sampled = extract::ExtractFromSample(*big, sopt);
  if (!sampled.ok()) {
    std::cerr << sampled.status() << "\n";
    return 1;
  }
  std::cout << util::StringPrintf(
      "big crawl: %zu objects; schema extracted from a %zu-object sample\n"
      "(%zu sample perfect types -> 6), then recast over everything:\n"
      "%zu exact, %zu by nearest type, defect %zu over %zu links\n",
      big->NumObjects(), sampled->sample_complex,
      sampled->sample_perfect_types, sampled->recast.num_exact,
      sampled->recast.num_fallback, sampled->defect.defect(),
      big->NumEdges());
  return 0;
}
