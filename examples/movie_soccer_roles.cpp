// Multiple roles (§4.2, Example 4.3): Cantona is both a soccer star and
// a movie star. Rather than keeping a combined soccer-movie-star type,
// the roles pass expresses it as a conjunction of the two simpler roles
// and assigns him to both.
//
//   $ ./examples/movie_soccer_roles

#include <iostream>

#include "graph/graph_builder.h"
#include "typing/perfect_typing.h"
#include "typing/roles.h"
#include "util/string_util.h"

using namespace schemex;  // NOLINT

int main() {
  graph::GraphBuilder b;
  int atom = 0;
  auto attach = [&](const char* who, const char* label, const char* value) {
    std::string n = util::StringPrintf("v%d", atom++);
    (void)b.Atomic(n, value);
    (void)b.Edge(who, label, n);
  };
  attach("scholes", "name", "Scholes");
  attach("scholes", "country", "England");
  attach("scholes", "team", "Man Utd");
  attach("cantona", "name", "Cantona");
  attach("cantona", "country", "France");
  attach("cantona", "team", "Man Utd");
  attach("cantona", "movie", "Le Bonheur Est Dans Le Pre");
  attach("binoche", "name", "Binoche");
  attach("binoche", "country", "France");
  attach("binoche", "movie", "Bleu");
  attach("binoche", "movie", "Damage");
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  auto stage1 = typing::PerfectTypingViaGfp(g);
  if (!stage1.ok()) {
    std::cerr << stage1.status() << "\n";
    return 1;
  }
  std::cout << "minimal perfect typing (" << stage1->program.NumTypes()
            << " types):\n"
            << stage1->program.ToString(g.labels()) << "\n";

  typing::RoleDecomposition roles = typing::DecomposeRoles(stage1->program);
  std::cout << "after the multiple-roles pass (" << roles.num_eliminated
            << " composite type eliminated):\n"
            << roles.program.ToString(g.labels()) << "\n";

  auto homes = roles.MapHomes(stage1->home);
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (!g.IsComplex(o)) continue;
    std::cout << "  " << g.Name(o) << " plays role(s):";
    for (typing::TypeId t : homes[o]) {
      std::cout << " " << (t + 1);
    }
    std::cout << "\n";
  }
  std::cout << "\nCantona lives in both classes — no combinatorial\n"
               "soccer-movie-star type required (the paper's §4.2 point).\n";
  return 0;
}
