// Quickstart: build the paper's Figure 2 database (managers and firms),
// write a typing program in datalog text, evaluate it under greatest-
// fixpoint semantics, and then let the extractor discover the same
// schema from the raw data.
//
//   $ ./examples/quickstart

#include <iostream>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "extract/extractor.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"

using namespace schemex;  // NOLINT

int main() {
  // --- 1. Build a small semistructured database. -----------------------
  graph::GraphBuilder builder;
  (void)builder.Atomic("gates_name", "Gates");
  (void)builder.Atomic("jobs_name", "Jobs");
  (void)builder.Atomic("msft_name", "Microsoft");
  (void)builder.Atomic("aapl_name", "Apple");
  (void)builder.Edge("gates", "is-manager-of", "microsoft");
  (void)builder.Edge("jobs", "is-manager-of", "apple");
  (void)builder.Edge("microsoft", "is-managed-by", "gates");
  (void)builder.Edge("apple", "is-managed-by", "jobs");
  (void)builder.Edge("gates", "name", "gates_name");
  (void)builder.Edge("jobs", "name", "jobs_name");
  (void)builder.Edge("microsoft", "name", "msft_name");
  (void)builder.Edge("apple", "name", "aapl_name");
  util::Status st;
  graph::DataGraph g = std::move(builder).Build(&st);
  if (!st.ok()) {
    std::cerr << "builder error: " << st << "\n";
    return 1;
  }
  std::cout << "database:\n" << graph::ComputeStats(g).ToString(g) << "\n";

  // --- 2. Write a typing program by hand and evaluate its GFP. ---------
  auto program = datalog::ParseProgram(R"(
    person(X) :- link(X, Y, "is-manager-of"), firm(Y),
                 link(X, Z, "name"), atomic(Z).
    firm(X)   :- link(X, Y, "is-managed-by"), person(Y),
                 link(X, Z, "name"), atomic(Z).
  )",
                                       &g.labels());
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  auto gfp = datalog::Evaluate(*program, g);
  std::cout << "hand-written typing program:\n"
            << datalog::PrintProgram(*program, g.labels()) << "\nextents:\n";
  for (size_t p = 0; p < program->num_preds(); ++p) {
    std::cout << "  " << program->pred_names[p] << " = {";
    bool first = true;
    gfp->extents[p].ForEach([&](size_t o) {
      std::cout << (first ? "" : ", ") << g.Name(static_cast<graph::ObjectId>(o));
      first = false;
    });
    std::cout << "}\n";
  }

  // --- 3. Or just let the extractor discover the schema. ---------------
  extract::ExtractorOptions opt;  // defaults: perfect typing only
  auto result = extract::SchemaExtractor(opt).Run(g);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "\ndiscovered minimal perfect typing ("
            << result->num_perfect_types << " types, defect "
            << result->defect.defect() << "):\n"
            << result->final_program.ToString(g.labels());
  return 0;
}
