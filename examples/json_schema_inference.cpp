// Schema inference over JSON records — the modern face of the paper's
// motivating workload ("home-pages of members of a group may contain
// some similar information but some of these may be missing"):
// import an irregular collection of JSON documents, extract an
// approximate typing at a few sizes, and type a newly arriving record.
//
//   $ ./examples/json_schema_inference

#include <iostream>

#include "extract/extractor.h"
#include "json/import.h"
#include "typing/recast.h"
#include "util/string_util.h"

using namespace schemex;  // NOLINT

namespace {

constexpr const char* kPeople = R"([
  {"name": "ada",   "email": "ada@x.org",   "phone": "555-1",
   "address": {"street": "1 Analytical Way", "city": "London"}},
  {"name": "grace", "email": "grace@x.org",
   "address": {"street": "2 Compiler Ct", "city": "Arlington"}},
  {"name": "edsger","email": "ew@x.org",    "phone": "555-3",
   "address": {"street": "3 Shortest Path", "city": "Austin"}},
  {"name": "alan",  "email": "alan@x.org",  "photo": "alan.gif",
   "address": {"street": "4 Bombe Blvd", "city": "Bletchley"}},
  {"name": "barbara", "email": "bl@x.org",
   "papers": ["abstraction", "clu"]},
  {"name": "tony",  "email": "car@x.org",   "phone": "555-6",
   "papers": ["quicksort", "csp", "null-billion"]},
  {"name": "donald","email": "dek@x.org",
   "papers": ["taocp-1", "taocp-2", "taocp-3"]},
  {"name": "leslie","email": "ll@x.org",    "phone": "555-8",
   "papers": ["paxos", "latex"], "photo": "leslie.gif"}
])";

}  // namespace

int main() {
  json::ImportOptions iopt;
  iopt.root_label = "person";
  auto g = json::ImportJson(kPeople, iopt);
  if (!g.ok()) {
    std::cerr << g.status() << "\n";
    return 1;
  }
  std::cout << util::StringPrintf(
      "imported %zu objects (%zu complex), %zu edges\n\n", g->NumObjects(),
      g->NumComplexObjects(), g->NumEdges());

  for (size_t k : {0, 4, 3}) {
    extract::ExtractorOptions opt;
    opt.target_num_types = k;  // 0 = perfect typing
    auto r = extract::SchemaExtractor(opt).Run(*g);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    if (k == 0) {
      std::cout << "minimal perfect typing: " << r->num_perfect_types
                << " types, defect 0 — too shredded to be a schema.\n\n";
      continue;
    }
    std::cout << "approximate typing with " << k << " types (defect "
              << r->defect.defect() << "):\n"
              << r->final_program.ToString(g->labels()) << "\n";
  }

  // A new record arrives after extraction: type it against the 4-type
  // schema using the paper's §6 rule (exact fit, else nearest by d).
  extract::ExtractorOptions opt;
  opt.target_num_types = 4;
  auto r = extract::SchemaExtractor(opt).Run(*g);

  graph::DataGraph extended = *g;
  graph::ObjectId newbie = extended.AddComplex("newcomer");
  (void)extended.AddEdge(newbie, extended.AddAtomic("margaret"), "name");
  (void)extended.AddEdge(newbie, extended.AddAtomic("mh@x.org"), "email");
  (void)extended.AddEdge(newbie, extended.AddAtomic("apollo-agc"), "papers");

  size_t dist = 0;
  typing::TypeId t = typing::NearestType(
      r->final_program, extended, r->recast.assignment, newbie, &dist);
  std::cout << util::StringPrintf(
      "new record {name, email, papers} -> type %d ('%s'), distance %zu\n",
      t + 1, r->final_program.type(t).name.c_str(), dist);
  return 0;
}
