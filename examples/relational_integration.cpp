// Integrating relational data with semistructured data — the paper's §1
// motivation ("irregularities arise naturally when one integrates data
// originating from several distinct (structured) sources that provide
// information about a common set of entities but represent these
// entities differently").
//
// Two clean CSV sources (employees, departments with a foreign key) are
// imported, then merged with a scruffy semistructured feed about the
// same people; extraction shows (1) the relational part alone yields one
// type per table (§2's justification), and (2) the integrated graph
// needs the approximate machinery.
//
//   $ ./examples/relational_integration

#include <iostream>

#include "extract/extractor.h"
#include "relational/import.h"
#include "typing/atomic_sorts.h"
#include "util/string_util.h"

using namespace schemex;  // NOLINT

int main() {
  // --- 1. Clean relational sources. -------------------------------------
  relational::ImportOptions ropt;
  ropt.foreign_keys = {{"emp", "dept", "dept", "id"}};
  auto rel = relational::ImportTables(
      {{"emp",
        "name,age,dept\nada,36,d1\ngrace,45,d1\nedsger,41,d2\n"
        "tony,38,d2\nbarbara,39,d1\n"},
       {"dept", "id,title\nd1,Foundations\nd2,Systems\n"}},
      ropt);
  if (!rel.ok()) {
    std::cerr << rel.status() << "\n";
    return 1;
  }
  extract::ExtractorOptions perfect_only;
  auto r1 = extract::SchemaExtractor(perfect_only).Run(*rel);
  std::cout << "relational part alone: " << r1->num_perfect_types
            << " perfect types (one per table), defect "
            << r1->defect.defect() << "\n"
            << r1->final_program.ToString(rel->labels()) << "\n";

  // --- 2. Merge a scruffy semistructured feed about the same people. ----
  graph::DataGraph g = *rel;
  auto person_row = [&](const char* name) {
    for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
      for (const graph::HalfEdge& e : g.OutEdges(o)) {
        if (g.IsAtomic(e.other) && g.Value(e.other) == name) return o;
      }
    }
    return graph::kInvalidObject;
  };
  // Homepage-ish records: optional photo/email, links back to the rows.
  struct Feed {
    const char* who;
    const char* email;
    const char* photo;
  };
  for (const Feed& f : {Feed{"ada", "ada@x.org", "ada.gif"},
                        Feed{"grace", "grace@x.org", nullptr},
                        Feed{"tony", nullptr, "tony.gif"}}) {
    graph::ObjectId page = g.AddComplex(std::string(f.who) + "_page");
    (void)g.AddEdge(page, person_row(f.who), "about");
    (void)g.AddEdge(page, g.AddAtomic(std::string("http://x.org/") + f.who),
                    "url");
    if (f.email != nullptr) {
      (void)g.AddEdge(page, g.AddAtomic(f.email), "email");
    }
    if (f.photo != nullptr) {
      (void)g.AddEdge(page, g.AddAtomic(f.photo), "photo");
    }
  }

  auto r2 = extract::SchemaExtractor(perfect_only).Run(g);
  std::cout << "after integration: " << r2->num_perfect_types
            << " perfect types (irregular pages shred the schema)\n\n";

  extract::ExtractorOptions approx;
  approx.target_num_types = 3;
  auto r3 = extract::SchemaExtractor(approx).Run(g);
  std::cout << "approximate typing with 3 types (defect "
            << r3->defect.defect() << "):\n"
            << r3->final_program.ToString(g.labels()) << "\n";

  // --- 3. Bonus: atomic sorts (Remark 2.1) on the integrated data. ------
  graph::DataGraph refined = typing::RefineAtomicSorts(g);
  auto r4 = extract::SchemaExtractor(approx).Run(refined);
  std::cout << "same, with atomic sorts refined (ages are ints, photos "
               "are strings, urls are urls):\n"
            << r4->final_program.ToString(refined.labels());
  return 0;
}
