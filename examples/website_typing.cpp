// Full three-stage pipeline on the DBG-like web-site dataset, with the
// paper's §7.2/§8 interactive workflow: run the sensitivity sweep, find
// the knee of the defect curve automatically, and recast the data at
// that "natural" type count.
//
//   $ ./examples/website_typing

#include <algorithm>
#include <iostream>

#include "extract/extractor.h"
#include "extract/knee.h"
#include "gen/dbg.h"
#include "util/string_util.h"

using namespace schemex;  // NOLINT

int main() {
  auto g = gen::MakeDbgDataset();
  if (!g.ok()) {
    std::cerr << g.status() << "\n";
    return 1;
  }
  std::cout << util::StringPrintf("DBG-like dataset: %zu objects, %zu links\n",
                                  g->NumObjects(), g->NumEdges());

  // Sweep k from the perfect typing down to 1 (single clustering run).
  extract::ExtractorOptions opt;
  opt.stage1 = extract::ExtractorOptions::Stage1Algorithm::kGfp;
  auto points = extract::SensitivitySweep(*g, opt);
  if (!points.ok()) {
    std::cerr << points.status() << "\n";
    return 1;
  }
  std::cout << util::StringPrintf("perfect typing: %zu types\n\n",
                                  points->front().k);

  // Pick the "natural" typing via the library's knee heuristic (§7.2's
  // optimal range, exposed as FindKnee / NaturalTypeCounts).
  extract::Knee knee = extract::FindKnee(*points);
  std::vector<size_t> natural = extract::NaturalTypeCounts(*points);
  std::cout << util::StringPrintf(
      "knee of the defect curve: k = %zu (defect %zu; best in range %zu)\n",
      knee.k, knee.defect, knee.best_defect_in_range);
  std::cout << "natural type counts:";
  for (size_t k : natural) std::cout << " " << k;
  std::cout << "\n\n";
  size_t chosen_k = knee.k;

  // Extract at the chosen size and show the program plus Stage-3 stats.
  opt.target_num_types = chosen_k;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  if (!r.ok()) {
    std::cerr << r.status() << "\n";
    return 1;
  }
  std::cout << "final typing program:\n"
            << r->final_program.ToString(g->labels());
  std::cout << util::StringPrintf(
      "\nrecast: %zu objects fit a type exactly, %zu typed by nearest "
      "distance, %zu untyped\nfinal %s\n",
      r->recast.num_exact, r->recast.num_fallback, r->recast.num_untyped,
      r->defect.ToString().c_str());
  return 0;
}
