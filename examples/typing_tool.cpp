// Command-line tool: load a graph (schemex text format or JSON) and
// either extract a schema or evaluate a user-supplied monadic datalog
// typing program against it.
//
//   $ ./examples/typing_tool extract <graph-file> [num-types]
//   $ ./examples/typing_tool eval <graph-file> <program-file>
//   $ ./examples/typing_tool stats <graph-file>
//   $ ./examples/typing_tool report <graph-file> [num-types]
//   $ ./examples/typing_tool save <graph-file> <dir> [num-types]
//
// Files ending in .json / .xml are imported as JSON / XML; others are parsed
// as the schemex graph text format (see graph/graph_io.h). Run without
// arguments for a self-contained demo on a built-in dataset.

#include <fstream>
#include <iostream>
#include <sstream>

#include "catalog/report.h"
#include "catalog/workspace.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "json/import.h"
#include "util/string_util.h"
#include "xml/import.h"

using namespace schemex;  // NOLINT

namespace {

util::StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

util::StatusOr<graph::DataGraph> LoadGraph(const std::string& path) {
  SCHEMEX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  if (path.size() > 5 && path.substr(path.size() - 5) == ".json") {
    return json::ImportJson(text);
  }
  if (path.size() > 4 && path.substr(path.size() - 4) == ".xml") {
    return xml::ImportXml(text);
  }
  return graph::ReadGraph(text);
}

int Extract(const graph::DataGraph& g, size_t num_types) {
  extract::ExtractorOptions opt;
  opt.target_num_types = num_types;
  auto r = extract::SchemaExtractor(opt).Run(g);
  if (!r.ok()) {
    std::cerr << r.status() << "\n";
    return 1;
  }
  std::cout << util::StringPrintf(
      "perfect typing: %zu types; final: %zu types; %s\n\n",
      r->num_perfect_types, r->num_final_types,
      r->defect.ToString().c_str());
  std::cout << r->final_program.ToString(g.labels());
  return 0;
}

int Eval(graph::DataGraph& g, const std::string& program_text) {
  auto program = datalog::ParseProgram(program_text, &g.labels());
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  auto m = datalog::Evaluate(*program, g);
  if (!m.ok()) {
    std::cerr << m.status() << "\n";
    return 1;
  }
  for (size_t p = 0; p < program->num_preds(); ++p) {
    std::cout << program->pred_names[p] << " ("
              << m->extents[p].Count() << " objects):";
    size_t shown = 0;
    m->extents[p].ForEach([&](size_t o) {
      if (shown++ < 12) {
        const std::string& n = g.Name(static_cast<graph::ObjectId>(o));
        std::cout << " "
                  << (n.empty() ? util::StringPrintf("_o%zu", o) : n);
      }
    });
    if (shown > 12) std::cout << " ...";
    std::cout << "\n";
  }
  return 0;
}

util::StatusOr<catalog::Workspace> ExtractWorkspace(graph::DataGraph g,
                                                    size_t num_types) {
  extract::ExtractorOptions opt;
  opt.target_num_types = num_types;
  SCHEMEX_ASSIGN_OR_RETURN(extract::ExtractionResult r,
                           extract::SchemaExtractor(opt).Run(g));
  catalog::Workspace ws;
  ws.SetGraph(g);
  ws.program = std::move(r.final_program);
  ws.assignment = std::move(r.recast.assignment);
  return ws;
}

int Report(graph::DataGraph g, size_t num_types) {
  auto ws = ExtractWorkspace(std::move(g), num_types);
  if (!ws.ok()) {
    std::cerr << ws.status() << "\n";
    return 1;
  }
  catalog::ReportOptions ropt;
  ropt.include_dot = true;
  std::cout << catalog::RenderReport(*ws, ropt);
  return 0;
}

int Save(graph::DataGraph g, const std::string& dir, size_t num_types) {
  auto ws = ExtractWorkspace(std::move(g), num_types);
  if (!ws.ok()) {
    std::cerr << ws.status() << "\n";
    return 1;
  }
  util::Status st = catalog::SaveWorkspace(*ws, dir);
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "workspace saved to " << dir << "\n";
  return 0;
}

int Demo() {
  std::cout << "(no arguments: running the built-in demo)\n\n";
  auto g = gen::MakeDbgDataset();
  std::cout << graph::ComputeStats(*g).ToString(*g) << "\n";
  return Extract(*g, 6);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Demo();
  std::string mode = argv[1];
  if (argc < 3) {
    std::cerr << "usage: typing_tool extract|eval|stats <graph> [...]\n";
    return 2;
  }
  auto g = LoadGraph(argv[2]);
  if (!g.ok()) {
    std::cerr << g.status() << "\n";
    return 1;
  }
  if (mode == "stats") {
    std::cout << graph::ComputeStats(*g).ToString(*g);
    return 0;
  }
  if (mode == "extract") {
    size_t k = 0;
    if (argc > 3 && !util::ParseUint64(argv[3], &k)) {
      std::cerr << "bad num-types\n";
      return 2;
    }
    return Extract(*g, k);
  }
  if (mode == "report") {
    size_t k = 0;
    if (argc > 3 && !util::ParseUint64(argv[3], &k)) {
      std::cerr << "bad num-types\n";
      return 2;
    }
    return Report(std::move(*g), k);
  }
  if (mode == "save") {
    if (argc < 4) {
      std::cerr << "usage: typing_tool save <graph> <dir> [num-types]\n";
      return 2;
    }
    size_t k = 0;
    if (argc > 4 && !util::ParseUint64(argv[4], &k)) {
      std::cerr << "bad num-types\n";
      return 2;
    }
    return Save(std::move(*g), argv[3], k);
  }
  if (mode == "eval") {
    if (argc < 4) {
      std::cerr << "usage: typing_tool eval <graph> <program>\n";
      return 2;
    }
    auto text = ReadFile(argv[3]);
    if (!text.ok()) {
      std::cerr << text.status() << "\n";
      return 1;
    }
    return Eval(*g, *text);
  }
  std::cerr << "unknown mode '" << mode << "'\n";
  return 2;
}
