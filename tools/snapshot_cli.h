#ifndef SCHEMEX_TOOLS_SNAPSHOT_CLI_H_
#define SCHEMEX_TOOLS_SNAPSHOT_CLI_H_

namespace schemex::tools {

/// The `snapshot` subcommand shared by schemexd and schemexctl:
///
///   <binary> snapshot save <workspace-dir> [--out PATH] [--compact]
///   <binary> snapshot load <snapshot.bin> [--no-verify-crc]
///                                         [--no-validate-edges] [--deep]
///   <binary> snapshot inspect <snapshot.bin> [--json]
///
/// save     loads the workspace (text or snapshot) and (re)writes its
///          binary snapshot — the offline migration/compaction path.
/// load     maps a snapshot, reporting load latency, heap vs mapped
///          bytes, and graph stats; --deep runs the full O(edges)
///          representation check.
/// inspect  prints the header and section table with per-section CRC
///          verification, for debugging corrupt files offline.
///
/// `argv[0]` must be the literal "snapshot". Returns a process exit
/// code: 0 success, 1 operation failed, 2 usage error.
int SnapshotCliMain(int argc, char** argv);

}  // namespace schemex::tools

#endif  // SCHEMEX_TOOLS_SNAPSHOT_CLI_H_
