#include "snapshot_cli.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "catalog/workspace.h"
#include "snapshot/snapshot.h"
#include "util/statusor.h"

namespace schemex::tools {

namespace {

namespace fs = std::filesystem;

int Usage() {
  std::fprintf(
      stderr,
      "usage: snapshot save <workspace-dir> [--out PATH] [--compact]\n"
      "       snapshot load <snapshot.bin> [--no-verify-crc]\n"
      "                                    [--no-validate-edges] [--deep]\n"
      "       snapshot inspect <snapshot.bin> [--json]\n");
  return 2;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int RunSave(int argc, char** argv) {
  std::string dir;
  std::string out;
  snapshot::WriteOptions opt;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--compact") {
      opt.compact = true;
    } else if (arg == "--out") {
      if (++i >= argc) return Usage();
      out = argv[i];
    } else if (!arg.empty() && arg[0] != '-' && dir.empty()) {
      dir = arg;
    } else {
      return Usage();
    }
  }
  if (dir.empty()) return Usage();
  if (out.empty()) out = (fs::path(dir) / "snapshot.bin").string();

  auto ws = catalog::LoadWorkspace(dir);
  if (!ws.ok()) {
    std::fprintf(stderr, "snapshot save: %s\n",
                 ws.status().ToString().c_str());
    return 1;
  }
  auto t0 = std::chrono::steady_clock::now();
  auto st = snapshot::Write(*ws->graph, out, opt);
  if (!st.ok()) {
    std::fprintf(stderr, "snapshot save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::error_code ec;
  auto bytes = fs::file_size(out, ec);
  std::printf(
      "wrote %s (%llu bytes%s, %zu objects, %zu edges, %.1f ms)\n",
      out.c_str(), static_cast<unsigned long long>(ec ? 0 : bytes),
      opt.compact ? ", compact" : "", ws->graph->NumObjects(),
      ws->graph->NumEdges(), MsSince(t0));
  return 0;
}

int RunLoad(int argc, char** argv) {
  std::string path;
  snapshot::MapOptions opt;
  bool deep = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--no-verify-crc") {
      opt.verify_crc = false;
    } else if (arg == "--no-validate-edges") {
      opt.validate_edges = false;
    } else if (arg == "--deep") {
      deep = true;
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  auto t0 = std::chrono::steady_clock::now();
  auto g = snapshot::Map(path, opt);
  double map_ms = MsSince(t0);
  if (!g.ok()) {
    std::fprintf(stderr, "snapshot load: %s\n",
                 g.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "mapped %s in %.2f ms: %zu objects (%zu complex), %zu edges, "
      "%zu labels, %zu bytes mapped, %zu bytes heap\n",
      path.c_str(), map_ms, (*g)->NumObjects(), (*g)->NumComplexObjects(),
      (*g)->NumEdges(), (*g)->labels().size(), (*g)->MappedBytes(),
      (*g)->MemoryUsage());
  if (deep) {
    auto st = (*g)->Validate();
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot load: deep validation failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("deep validation ok\n");
  }
  return 0;
}

int RunInspect(int argc, char** argv) {
  std::string path;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  auto info = snapshot::Inspect(path);
  if (!info.ok()) {
    std::fprintf(stderr, "snapshot inspect: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  bool all_crc_ok = true;
  for (const auto& s : info->sections) all_crc_ok &= s.crc_ok;

  if (json) {
    std::printf(
        "{\"path\":\"%s\",\"version\":%u,\"file_bytes\":%llu,"
        "\"objects\":%llu,\"complex\":%llu,\"edges\":%llu,\"labels\":%llu,"
        "\"sections\":[",
        path.c_str(), info->version,
        static_cast<unsigned long long>(info->file_bytes),
        static_cast<unsigned long long>(info->num_objects),
        static_cast<unsigned long long>(info->num_complex),
        static_cast<unsigned long long>(info->num_edges),
        static_cast<unsigned long long>(info->num_labels));
    for (size_t i = 0; i < info->sections.size(); ++i) {
      const auto& s = info->sections[i];
      std::printf(
          "%s{\"id\":%u,\"name\":\"%s\",\"encoding\":\"%s\","
          "\"offset\":%llu,\"stored_bytes\":%llu,\"raw_bytes\":%llu,"
          "\"crc32\":\"%08x\",\"crc_ok\":%s}",
          i == 0 ? "" : ",", s.id, s.name.c_str(), s.encoding.c_str(),
          static_cast<unsigned long long>(s.offset),
          static_cast<unsigned long long>(s.stored_bytes),
          static_cast<unsigned long long>(s.raw_bytes), s.crc32,
          s.crc_ok ? "true" : "false");
    }
    std::printf("],\"all_crc_ok\":%s}\n", all_crc_ok ? "true" : "false");
  } else {
    std::printf("snapshot %s\n", path.c_str());
    std::printf("  version %u, %llu bytes, %u sections\n", info->version,
                static_cast<unsigned long long>(info->file_bytes),
                static_cast<unsigned>(info->sections.size()));
    std::printf(
        "  %llu objects (%llu complex, %llu atomic), %llu edges, "
        "%llu labels\n",
        static_cast<unsigned long long>(info->num_objects),
        static_cast<unsigned long long>(info->num_complex),
        static_cast<unsigned long long>(info->num_objects -
                                        info->num_complex),
        static_cast<unsigned long long>(info->num_edges),
        static_cast<unsigned long long>(info->num_labels));
    std::printf("  %-4s %-13s %-13s %10s %10s %10s %-9s %s\n", "id", "name",
                "encoding", "offset", "stored", "raw", "crc32", "ok");
    for (const auto& s : info->sections) {
      std::printf("  %-4u %-13s %-13s %10llu %10llu %10llu %08x  %s\n", s.id,
                  s.name.c_str(), s.encoding.c_str(),
                  static_cast<unsigned long long>(s.offset),
                  static_cast<unsigned long long>(s.stored_bytes),
                  static_cast<unsigned long long>(s.raw_bytes), s.crc32,
                  s.crc_ok ? "ok" : "CRC MISMATCH");
    }
  }
  return all_crc_ok ? 0 : 1;
}

}  // namespace

int SnapshotCliMain(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[0], "snapshot") != 0) return Usage();
  std::string verb = argv[1];
  if (verb == "save") return RunSave(argc - 2, argv + 2);
  if (verb == "load") return RunLoad(argc - 2, argv + 2);
  if (verb == "inspect") return RunInspect(argc - 2, argv + 2);
  return Usage();
}

}  // namespace schemex::tools
