// schemexd — the schema-extraction service daemon.
//
// Speaks newline-delimited JSON (one request per line, one response per
// line; see docs/service.md for the protocol). Three modes:
//
//   schemexd --serve                 read requests from stdin until EOF
//   schemexd --once '<json>'         execute a single request and exit
//   schemexd --listen PORT           serve TCP clients until SIGTERM/SIGINT
//
// Common flags:
//   --threads N          worker threads (default 4)
//   --timeout S          default per-request budget in seconds (default 60)
//   --parallelism N      default Stage-1 parallelism for extract requests
//                        that leave the field unset (0 = auto/hardware,
//                        1 = sequential reference path; default 0)
//   --workspace NAME=DIR preload a SaveWorkspace directory into the cache
//                        (repeatable)
//   --gen-demo DIR       write the paper's DBG-like demo database to DIR
//                        as a graph-only workspace and exit (a ready-made
//                        target for load_workspace / --workspace)
//
// Subcommands:
//   schemexd snapshot save|load|inspect ...
//       offline binary-snapshot tooling (see tools/snapshot_cli.h)
//
// --listen flags:
//   --bind ADDR          bind address (default 127.0.0.1; 0.0.0.0 = all)
//   --idle-timeout S     drop idle connections after S seconds (default 300)
//   --max-line BYTES     per-request line cap (default 1 MiB)
//   --port-file PATH     write the bound port to PATH (useful with
//                        `--listen 0`, which picks an ephemeral port)
//
// stdin/stdout keeps the daemon scriptable and testable without sockets:
//   printf '%s\n' '{"verb":"list_workspaces"}' | schemexd --serve
//
// In --serve and --listen modes requests are dispatched concurrently;
// responses come back in completion order, so clients correlate by "id".
// SIGTERM/SIGINT in --listen mode drains gracefully: the listener closes,
// in-flight requests finish, and their responses are flushed.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "catalog/workspace.h"
#include "gen/dbg.h"
#include "service/framer.h"
#include "service/request.h"
#include "service/server.h"
#include "service/tcp_server.h"
#include "snapshot_cli.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace {

using schemex::service::Request;
using schemex::service::Response;
using schemex::service::Server;
using schemex::service::ServerOptions;
using schemex::service::TcpServer;
using schemex::service::TcpServerOptions;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--serve | --once '<json-request>' | --listen PORT)\n"
      "          [--threads N] [--timeout S] [--parallelism N]\n"
      "          [--workspace NAME=DIR]... [--bind ADDR] [--idle-timeout S]\n"
      "          [--max-line BYTES] [--port-file PATH]\n",
      argv0);
  return 2;
}

// Self-pipe for async-signal-safe shutdown: the handler writes one byte,
// the main thread blocks reading the other end.
int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int /*sig*/) {
  char b = 0;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

/// --serve: stdin bytes run through the shared Framer (the same framing
/// the TCP path uses, so unterminated final lines and embedded NULs get
/// identical treatment), lines fan out onto the pool, and each response
/// is printed whole under a mutex as its worker finishes. in_flight gates
/// shutdown so EOF waits for every outstanding response.
int ServeStdio(Server& server) {
  schemex::util::Mutex io_mu;
  schemex::util::CondVar io_cv;
  size_t in_flight = 0;  // guarded by io_mu

  auto print_response = [&](const Response& resp) {
    schemex::util::MutexLock lock(io_mu);
    std::fputs(schemex::service::SerializeResponse(resp).c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };

  schemex::service::Framer framer;
  char buf[64 * 1024];
  while (!framer.finished()) {
    size_t n = std::fread(buf, 1, sizeof(buf), stdin);
    if (n == 0) {
      framer.Finish();
    } else {
      framer.Feed(std::string_view(buf, n));
    }
    schemex::util::StatusOr<std::string> line = std::string();
    while (framer.Next(&line)) {
      schemex::util::StatusOr<Request> req =
          line.ok() ? schemex::service::ParseRequestJson(*line)
                    : schemex::util::StatusOr<Request>(line.status());
      if (!req.ok()) {
        Response resp;
        resp.status = req.status();
        print_response(resp);
        continue;
      }
      {
        schemex::util::MutexLock lock(io_mu);
        ++in_flight;
      }
      server.HandleAsync(*std::move(req), [&](Response resp) {
        print_response(resp);
        schemex::util::MutexLock lock(io_mu);
        --in_flight;
        io_cv.NotifyAll();
      });
    }
  }

  schemex::util::MutexLock lock(io_mu);
  while (in_flight != 0) io_cv.Wait(io_mu);
  return 0;
}

/// --listen: TCP front end until SIGTERM/SIGINT, then graceful drain.
int ServeTcp(Server& server, const TcpServerOptions& tcp_options,
             const std::string& port_file) {
  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = OnShutdownSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  TcpServer tcp(&server, tcp_options);
  auto st = tcp.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "listen: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "schemexd listening on %s:%u\n",
               tcp_options.bind_address.c_str(), tcp.port());
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --port-file %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", tcp.port());
    std::fclose(f);
  }

  // Block until a shutdown signal lands in the pipe.
  char b = 0;
  while (::read(g_signal_pipe[0], &b, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "schemexd draining (in-flight requests finish)...\n");
  tcp.Shutdown();
  std::fprintf(stderr, "schemexd stopped\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "snapshot") {
    return schemex::tools::SnapshotCliMain(argc - 1, argv + 1);
  }
  bool serve = false;
  bool listen = false;
  std::string once_request;
  std::string port_file;
  ServerOptions options;
  TcpServerOptions tcp_options;
  std::vector<std::pair<std::string, std::string>> preloads;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--serve") {
      serve = true;
    } else if (arg == "--once") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      once_request = v;
    } else if (arg == "--listen") {
      const char* v = next();
      uint64_t port = 0;
      if (v == nullptr || !schemex::util::ParseUint64(v, &port) ||
          port > 65535) {
        return Usage(argv[0]);
      }
      listen = true;
      tcp_options.port = static_cast<uint16_t>(port);
    } else if (arg == "--bind") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      tcp_options.bind_address = v;
    } else if (arg == "--idle-timeout") {
      const char* v = next();
      double s = 0;
      if (v == nullptr || !schemex::util::ParseDouble(v, &s) || s < 0) {
        return Usage(argv[0]);
      }
      tcp_options.idle_timeout_s = s;
    } else if (arg == "--max-line") {
      const char* v = next();
      uint64_t n = 0;
      if (v == nullptr || !schemex::util::ParseUint64(v, &n) || n == 0) {
        return Usage(argv[0]);
      }
      tcp_options.max_line_bytes = static_cast<size_t>(n);
    } else if (arg == "--port-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port_file = v;
    } else if (arg == "--threads") {
      const char* v = next();
      uint64_t n = 0;
      if (v == nullptr || !schemex::util::ParseUint64(v, &n) || n == 0) {
        return Usage(argv[0]);
      }
      options.num_threads = static_cast<size_t>(n);
    } else if (arg == "--timeout") {
      const char* v = next();
      double s = 0;
      if (v == nullptr || !schemex::util::ParseDouble(v, &s) || s < 0) {
        return Usage(argv[0]);
      }
      options.default_timeout_s = s;
    } else if (arg == "--parallelism") {
      const char* v = next();
      uint64_t n = 0;
      if (v == nullptr || !schemex::util::ParseUint64(v, &n)) {
        return Usage(argv[0]);
      }
      options.default_parallelism = static_cast<size_t>(n);
    } else if (arg == "--gen-demo") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      auto g = schemex::gen::MakeDbgDataset();
      if (!g.ok()) {
        std::fprintf(stderr, "gen-demo: %s\n", g.status().ToString().c_str());
        return 1;
      }
      schemex::catalog::Workspace ws;
      ws.SetGraph(*g);
      ws.assignment =
          schemex::typing::TypeAssignment(ws.graph->NumObjects());
      auto st = schemex::catalog::SaveWorkspace(ws, v);
      if (!st.ok()) {
        std::fprintf(stderr, "gen-demo: %s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote demo workspace (%zu objects, %zu edges) to %s\n",
                   ws.graph->NumObjects(), ws.graph->NumEdges(), v);
      return 0;
    } else if (arg == "--workspace") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "--workspace wants NAME=DIR, got \"%s\"\n",
                     spec.c_str());
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      return Usage(argv[0]);
    }
  }
  // Exactly one mode.
  const int modes = (serve ? 1 : 0) + (listen ? 1 : 0) +
                    (once_request.empty() ? 0 : 1);
  if (modes != 1) return Usage(argv[0]);

  Server server(options);

  for (const auto& [name, dir] : preloads) {
    auto ws = schemex::catalog::LoadWorkspace(dir);
    if (!ws.ok()) {
      std::fprintf(stderr, "preload %s=%s: %s\n", name.c_str(), dir.c_str(),
                   ws.status().ToString().c_str());
      return 1;
    }
    auto st = server.InstallWorkspace(name, *std::move(ws));
    if (!st.ok()) {
      std::fprintf(stderr, "preload %s: %s\n", name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded workspace %s from %s\n", name.c_str(),
                 dir.c_str());
  }

  if (!once_request.empty()) {
    std::string out = server.HandleJsonLine(once_request);
    std::fputs(out.c_str(), stdout);
    std::fputc('\n', stdout);
    // Exit status mirrors the response's "ok" so shell scripts can branch
    // without parsing JSON.
    return out.find("\"ok\":true") != std::string::npos ? 0 : 1;
  }

  if (listen) return ServeTcp(server, tcp_options, port_file);
  return ServeStdio(server);
}
