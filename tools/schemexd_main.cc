// schemexd — the schema-extraction service daemon.
//
// Speaks newline-delimited JSON (one request per line, one response per
// line; see docs/service.md for the protocol). Two modes:
//
//   schemexd --serve                 read requests from stdin until EOF
//   schemexd --once '<json>'         execute a single request and exit
//
// Common flags:
//   --threads N          worker threads (default 4)
//   --timeout S          default per-request budget in seconds (default 60)
//   --workspace NAME=DIR preload a SaveWorkspace directory into the cache
//                        (repeatable)
//   --gen-demo DIR       write the paper's DBG-like demo database to DIR
//                        as a graph-only workspace and exit (a ready-made
//                        target for load_workspace / --workspace)
//
// stdin/stdout keeps the daemon scriptable and testable without sockets:
//   printf '%s\n' '{"verb":"list_workspaces"}' | schemexd --serve
//
// In --serve mode requests are dispatched concurrently; responses come
// back in completion order, so clients must correlate by "id".

#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/workspace.h"
#include "gen/dbg.h"
#include "service/request.h"
#include "service/server.h"
#include "util/string_util.h"

namespace {

using schemex::service::Request;
using schemex::service::Response;
using schemex::service::Server;
using schemex::service::ServerOptions;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--serve | --once '<json-request>')\n"
               "          [--threads N] [--timeout S] [--workspace NAME=DIR]...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool serve = false;
  std::string once_request;
  ServerOptions options;
  std::vector<std::pair<std::string, std::string>> preloads;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--serve") {
      serve = true;
    } else if (arg == "--once") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      once_request = v;
    } else if (arg == "--threads") {
      const char* v = next();
      uint64_t n = 0;
      if (v == nullptr || !schemex::util::ParseUint64(v, &n) || n == 0) {
        return Usage(argv[0]);
      }
      options.num_threads = static_cast<size_t>(n);
    } else if (arg == "--timeout") {
      const char* v = next();
      double s = 0;
      if (v == nullptr || !schemex::util::ParseDouble(v, &s) || s < 0) {
        return Usage(argv[0]);
      }
      options.default_timeout_s = s;
    } else if (arg == "--gen-demo") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      auto g = schemex::gen::MakeDbgDataset();
      if (!g.ok()) {
        std::fprintf(stderr, "gen-demo: %s\n", g.status().ToString().c_str());
        return 1;
      }
      schemex::catalog::Workspace ws;
      ws.SetGraph(*g);
      ws.assignment =
          schemex::typing::TypeAssignment(ws.graph->NumObjects());
      auto st = schemex::catalog::SaveWorkspace(ws, v);
      if (!st.ok()) {
        std::fprintf(stderr, "gen-demo: %s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote demo workspace (%zu objects, %zu edges) to %s\n",
                   ws.graph->NumObjects(), ws.graph->NumEdges(), v);
      return 0;
    } else if (arg == "--workspace") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "--workspace wants NAME=DIR, got \"%s\"\n",
                     spec.c_str());
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      return Usage(argv[0]);
    }
  }
  if (serve == !once_request.empty()) return Usage(argv[0]);

  Server server(options);

  for (const auto& [name, dir] : preloads) {
    auto ws = schemex::catalog::LoadWorkspace(dir);
    if (!ws.ok()) {
      std::fprintf(stderr, "preload %s=%s: %s\n", name.c_str(), dir.c_str(),
                   ws.status().ToString().c_str());
      return 1;
    }
    auto st = server.InstallWorkspace(name, *std::move(ws));
    if (!st.ok()) {
      std::fprintf(stderr, "preload %s: %s\n", name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded workspace %s from %s\n", name.c_str(),
                 dir.c_str());
  }

  if (!once_request.empty()) {
    std::string out = server.HandleJsonLine(once_request);
    std::fputs(out.c_str(), stdout);
    std::fputc('\n', stdout);
    // Exit status mirrors the response's "ok" so shell scripts can branch
    // without parsing JSON.
    return out.find("\"ok\":true") != std::string::npos ? 0 : 1;
  }

  // --serve: stdin lines fan out onto the pool; each response is printed
  // whole under a mutex as its worker finishes. in_flight gates shutdown
  // so EOF waits for every outstanding response.
  std::mutex io_mu;
  std::condition_variable io_cv;
  size_t in_flight = 0;

  std::string line;
  while (std::getline(std::cin, line)) {
    if (schemex::util::Trim(line).empty()) continue;
    auto req = schemex::service::ParseRequestJson(line);
    if (!req.ok()) {
      Response resp;
      resp.status = req.status();
      std::lock_guard<std::mutex> lock(io_mu);
      std::fputs(schemex::service::SerializeResponse(resp).c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(io_mu);
      ++in_flight;
    }
    server.HandleAsync(*std::move(req), [&](Response resp) {
      std::lock_guard<std::mutex> lock(io_mu);
      std::fputs(schemex::service::SerializeResponse(resp).c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
      --in_flight;
      io_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(io_mu);
  io_cv.wait(lock, [&] { return in_flight == 0; });
  return 0;
}
