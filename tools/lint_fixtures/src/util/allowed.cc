// Lint fixture: src/util/ is the one place std primitives may appear —
// it is where the annotated wrappers themselves live.
#include <mutex>

namespace util_fixture {

std::mutex g_wrapper_internal_mu;  // allowed: under src/util/

}  // namespace util_fixture
