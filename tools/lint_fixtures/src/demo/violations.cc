// Lint fixture: one deliberate violation per marked line. lint_test.py
// asserts each rule fires exactly where expected.
#include "demo/violations.cc"  // VIOLATION: cc-include

#include <mutex>
#include <thread>

#include "demo/violations.h"

namespace demo {

std::mutex g_mu;  // VIOLATION: naked-mutex

void Spin() {
  std::thread t([] {});
  t.detach();  // VIOLATION: detach
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // VIOLATION: sleep-sync
}

void Drop() {
  DoWork();  // VIOLATION: discarded-status
  (void)ComputeAnswer();  // VIOLATION: discarded-status ((void) escape hatch)
}

void Hidden() NO_THREAD_SAFETY_ANALYSIS {  // VIOLATION: no-suppression
  int x = 0;  // NOLINT
  (void)x;
}

}  // namespace demo
