// Lint fixture: idiomatic code every rule must leave alone.
#include <random>

#include "demo/violations.h"
#include "util/thread_annotations.h"

namespace demo {

util::Mutex g_clean_mu;

util::Status Use() {
  util::MutexLock lock(g_clean_mu);
  SCHEMEX_RETURN_IF_ERROR(DoWork());
  auto answer = ComputeAnswer();
  if (!answer.ok()) return answer.status();
  return util::Status::OK();
}

// Multi-line macro arguments end mid-call; the discarded-status rule
// must not mistake the continuation line for a bare call.
util::Status MultiLine() {
  SCHEMEX_RETURN_IF_ERROR(
      DoWork());
  return util::Status::OK();
}

// Explicitly seeded engines are the sanctioned randomness idiom; the
// rand-seed rule must leave them (and words containing "rand") alone.
unsigned SeededDraw(unsigned seed) {
  std::mt19937 rng(seed);
  unsigned strand = rng();
  return strand;
}

}  // namespace demo
