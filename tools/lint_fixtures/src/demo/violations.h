// Lint fixture: declarations that feed the discarded-status rule.
// This tree is copied into a temporary fake repo root by lint_test.py;
// it is excluded from the real repo lint walk.
#ifndef LINT_FIXTURES_SRC_DEMO_VIOLATIONS_H_
#define LINT_FIXTURES_SRC_DEMO_VIOLATIONS_H_

#include "util/status.h"
#include "util/statusor.h"

namespace demo {

util::Status DoWork();
util::StatusOr<int> ComputeAnswer();

}  // namespace demo

#endif  // LINT_FIXTURES_SRC_DEMO_VIOLATIONS_H_
