// Lint fixture for the rand-seed rule: every RNG in src/ and bench/
// must be an engine with an explicit seed. One violation per marked
// line; lint_test.py pins the line numbers.
#include <cstdlib>
#include <ctime>
#include <random>

namespace demo {

unsigned Entropy() {
  std::random_device rd;  // VIOLATION: rand-seed (line 11)
  return rd();
}

int CRand() {
  srand(42);      // VIOLATION: rand-seed (line 16)
  return rand();  // VIOLATION: rand-seed (line 17)
}

unsigned ClockSeeded() {
  std::mt19937 rng(time(nullptr));  // VIOLATION: rand-seed (line 21)
  return rng();
}

}  // namespace demo
