// Lint fixture: tools/ shares the naked-mutex and detach rules with src/
// (sleep-sync and no-suppression are src/-only).
#include <mutex>
#include <thread>

namespace tool_fixture {

std::mutex g_tool_mu;  // VIOLATION: naked-mutex (tools/ is covered)

void Fire() {
  std::thread t([] {});
  t.detach();  // VIOLATION: detach
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // allowed here
}

}  // namespace tool_fixture
