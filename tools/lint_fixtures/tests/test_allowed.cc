// Lint fixture: tests/ may use std primitives for harness scaffolding
// (gates, latches) and may sleep; only cc-include applies here.
#include <mutex>
#include <random>
#include <thread>

namespace test_fixture {

std::mutex g_test_mu;  // allowed: tests/

void Pause() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // allowed
}

void Shuffle() {
  std::random_device rd;  // allowed: rand-seed scope is src/ + bench/
  (void)rd;
}

}  // namespace test_fixture
