// bench/ is inside rand-seed scope: benchmark rows must reproduce
// run-to-run, so a bench may not draw entropy from the environment.
#include <random>

namespace demo {

unsigned BenchEntropy() {
  std::random_device rd;  // VIOLATION: rand-seed (line 8)
  return rd();
}

unsigned BenchSeeded(unsigned seed) {
  std::mt19937 rng(seed);  // allowed: explicit seed
  return rng();
}

}  // namespace demo
