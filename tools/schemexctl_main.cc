// schemexctl — a tiny NDJSON client for the schemexd TCP front end.
//
//   schemexctl --connect HOST:PORT '<json-request>'
//       send one request, print the one-line response, exit 0 when the
//       response says "ok":true and 1 otherwise (like schemexd --once).
//
//   schemexctl --connect HOST:PORT --stdin
//       pipeline mode: forward every stdin line as a request, print each
//       response as it arrives (completion order — correlate by "id"),
//       exit 0 only if every response was ok.
//
//   schemexctl snapshot save|load|inspect ...
//       offline binary-snapshot tooling (see tools/snapshot_cli.h) —
//       runs locally, no server needed.
//
//   schemexctl --connect HOST:PORT --extract WORKSPACE
//       build and send one extract request without hand-writing JSON.
//       Extract flags: --k N (target type count; 0 = auto knee),
//       --stage1 refinement|gfp, --parallelism N (0 = server default,
//       1 = sequential reference path), --save-dir DIR.
//
//   schemexctl --connect HOST:PORT --apply-delta WORKSPACE --ops '<json>'
//       build and send one apply_delta request; --ops takes the ops
//       array (e.g. '[{"op":"add_link","from":0,"to":3,"label":"x"}]'),
//       --compact folds the overlay after the batch.
//
//   schemexctl --connect HOST:PORT --re-extract WORKSPACE
//       build and send one re_extract request (incremental
//       re-extraction). Takes --k, --parallelism, --save-dir like
//       --extract; k 0 reuses the cached run's k.
//
// Flags:
//   --timeout S   per-response wait budget in seconds (default 30)

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "json/json.h"
#include "service/framer.h"
#include "service/tcp_client.h"
#include "snapshot_cli.h"
#include "util/string_util.h"

namespace {

using schemex::json::Value;
using schemex::service::TcpClient;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT\n"
               "          ('<json-request>' | --stdin | --extract WORKSPACE\n"
               "           | --apply-delta WORKSPACE --ops JSON [--compact]\n"
               "           | --re-extract WORKSPACE)\n"
               "          [--timeout S] [--k N] [--stage1 refinement|gfp]\n"
               "          [--parallelism N] [--save-dir DIR]\n",
               argv0);
  return 2;
}

/// Integer-preserving JSON number (same trick as service::JsonUint).
Value JsonUint(uint64_t n) {
  return Value::Number(static_cast<double>(n), std::to_string(n));
}

bool ResponseOk(const std::string& line) {
  return line.find("\"ok\":true") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "snapshot") {
    return schemex::tools::SnapshotCliMain(argc - 1, argv + 1);
  }
  std::string endpoint;
  std::string request;
  bool from_stdin = false;
  double timeout_s = 30.0;
  std::string extract_workspace;
  uint64_t extract_k = 0;
  std::string extract_stage1;
  uint64_t extract_parallelism = 0;
  std::string extract_save_dir;
  std::string apply_delta_workspace;
  std::string apply_delta_ops;
  bool apply_delta_compact = false;
  std::string re_extract_workspace;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      endpoint = v;
    } else if (arg == "--stdin") {
      from_stdin = true;
    } else if (arg == "--timeout") {
      const char* v = next();
      if (v == nullptr || !schemex::util::ParseDouble(v, &timeout_s) ||
          timeout_s <= 0) {
        return Usage(argv[0]);
      }
    } else if (arg == "--extract") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      extract_workspace = v;
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr || !schemex::util::ParseUint64(v, &extract_k)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--stage1") {
      const char* v = next();
      if (v == nullptr ||
          (std::string(v) != "refinement" && std::string(v) != "gfp")) {
        return Usage(argv[0]);
      }
      extract_stage1 = v;
    } else if (arg == "--parallelism") {
      const char* v = next();
      if (v == nullptr ||
          !schemex::util::ParseUint64(v, &extract_parallelism)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--save-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      extract_save_dir = v;
    } else if (arg == "--apply-delta") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      apply_delta_workspace = v;
    } else if (arg == "--ops") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      apply_delta_ops = v;
    } else if (arg == "--compact") {
      apply_delta_compact = true;
    } else if (arg == "--re-extract") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      re_extract_workspace = v;
    } else if (!arg.empty() && arg[0] != '-' && request.empty()) {
      request = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!extract_workspace.empty()) {
    if (from_stdin || !request.empty()) return Usage(argv[0]);
    // Build the extract request here so shell callers never hand-write
    // JSON (and workspace names are escaped properly).
    std::map<std::string, Value> params;
    params["workspace"] = Value::String(extract_workspace);
    params["k"] = JsonUint(extract_k);
    if (!extract_stage1.empty()) {
      params["stage1"] = Value::String(extract_stage1);
    }
    if (extract_parallelism != 0) {
      params["parallelism"] = JsonUint(extract_parallelism);
    }
    if (!extract_save_dir.empty()) {
      params["save_dir"] = Value::String(extract_save_dir);
    }
    std::map<std::string, Value> top;
    top["id"] = JsonUint(1);
    top["verb"] = Value::String("extract");
    top["params"] = Value::Object(std::move(params));
    request = schemex::json::Serialize(Value::Object(std::move(top)));
  }
  if (!apply_delta_workspace.empty()) {
    if (from_stdin || !request.empty()) return Usage(argv[0]);
    if (apply_delta_ops.empty()) {
      std::fprintf(stderr, "--apply-delta needs --ops '<json array>'\n");
      return 2;
    }
    // Parse the ops array locally so a typo fails here with a parse
    // error, not as a server-side rejection of the whole batch.
    auto ops = schemex::json::Parse(apply_delta_ops);
    if (!ops.ok()) {
      std::fprintf(stderr, "--ops: %s\n", ops.status().ToString().c_str());
      return 2;
    }
    std::map<std::string, Value> params;
    params["workspace"] = Value::String(apply_delta_workspace);
    params["ops"] = *std::move(ops);
    if (apply_delta_compact) params["compact"] = Value::Bool(true);
    std::map<std::string, Value> top;
    top["id"] = JsonUint(1);
    top["verb"] = Value::String("apply_delta");
    top["params"] = Value::Object(std::move(params));
    request = schemex::json::Serialize(Value::Object(std::move(top)));
  }
  if (!re_extract_workspace.empty()) {
    if (from_stdin || !request.empty()) return Usage(argv[0]);
    std::map<std::string, Value> params;
    params["workspace"] = Value::String(re_extract_workspace);
    params["k"] = JsonUint(extract_k);
    if (extract_parallelism != 0) {
      params["parallelism"] = JsonUint(extract_parallelism);
    }
    if (!extract_save_dir.empty()) {
      params["save_dir"] = Value::String(extract_save_dir);
    }
    std::map<std::string, Value> top;
    top["id"] = JsonUint(1);
    top["verb"] = Value::String("re_extract");
    top["params"] = Value::Object(std::move(params));
    request = schemex::json::Serialize(Value::Object(std::move(top)));
  }
  if (endpoint.empty() || from_stdin == !request.empty()) {
    return Usage(argv[0]);
  }

  size_t colon = endpoint.rfind(':');
  uint64_t port = 0;
  if (colon == std::string::npos || colon == 0 ||
      !schemex::util::ParseUint64(endpoint.substr(colon + 1), &port) ||
      port == 0 || port > 65535) {
    std::fprintf(stderr, "--connect wants HOST:PORT, got \"%s\"\n",
                 endpoint.c_str());
    return 2;
  }
  auto client = TcpClient::Connect(endpoint.substr(0, colon),
                                   static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }

  if (!from_stdin) {
    auto st = client->SendLine(request);
    if (!st.ok()) {
      std::fprintf(stderr, "send: %s\n", st.ToString().c_str());
      return 1;
    }
    auto line = client->ReadLine(timeout_s);
    if (!line.ok()) {
      std::fprintf(stderr, "read: %s\n", line.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", line->c_str());
    return ResponseOk(*line) ? 0 : 1;
  }

  // Pipeline mode: send everything, then collect one response per
  // non-blank request line. The same Framer as the server keeps the
  // accounting honest (blank lines and an unterminated final line match
  // what schemexd would admit).
  schemex::service::Framer framer;
  size_t sent = 0;
  bool all_ok = true;
  char buf[64 * 1024];
  while (!framer.finished()) {
    size_t n = std::fread(buf, 1, sizeof(buf), stdin);
    if (n == 0) {
      framer.Finish();
    } else {
      framer.Feed(std::string_view(buf, n));
    }
    schemex::util::StatusOr<std::string> line = std::string();
    while (framer.Next(&line)) {
      if (!line.ok()) {
        // Locally unframeable (oversized / embedded NUL): the server
        // would reject it anyway, so report and keep going.
        std::fprintf(stderr, "request rejected: %s\n",
                     line.status().ToString().c_str());
        all_ok = false;
        continue;
      }
      auto st = client->SendLine(*line);
      if (!st.ok()) {
        std::fprintf(stderr, "send: %s\n", st.ToString().c_str());
        return 1;
      }
      ++sent;
    }
  }
  client->ShutdownWrite();
  for (size_t i = 0; i < sent; ++i) {
    auto line = client->ReadLine(timeout_s);
    if (!line.ok()) {
      std::fprintf(stderr, "read: %s\n", line.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", line->c_str());
    if (!ResponseOk(*line)) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
