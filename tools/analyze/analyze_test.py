#!/usr/bin/env python3
"""Tests for schemex-analyze against the checked-in fixtures.

Copies tools/analyze/fixtures/ into a temporary fake repo root and runs
schemex_analyze.py --root over it as a subprocess (the same way CI and
ctest run it), once per *available* backend — lexical always, libclang
when loadable. Both backends must produce the IDENTICAL finding set:
that contract is what lets CI run the clang backend while local
machines run the lexical one against the same zero-finding budget.

Asserts, per backend:
  * every planted violation fires, with the right rule, file, and line;
  * nothing else fires (clean fixtures, annotated sites, out-of-scope
    dirs, and honored ANALYZE-SKIPs stay silent);
  * exit codes: 1 with findings, 0 for a clean tree.

Run directly or via `ctest -L lint`.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile

ANALYZE_DIR = os.path.dirname(os.path.abspath(__file__))
ANALYZER = os.path.join(ANALYZE_DIR, "schemex_analyze.py")
FIXTURES = os.path.join(ANALYZE_DIR, "fixtures")

# (relative path, line, rule) — must match the VIOLATION markers in the
# fixture files exactly. Update both together.
EXPECTED = {
    ("src/typing/nondet_iter_bad.cc", 17, "nondeterministic-iteration"),
    ("src/typing/nondet_iter_bad.cc", 23, "nondeterministic-iteration"),
    ("src/typing/nondet_iter_bad.cc", 30, "nondeterministic-iteration"),
    ("src/cluster/sort_ties_bad.cc", 14, "unstable-sort-on-ties"),
    ("src/demo/view_escape_bad.h", 30, "view-escape"),
    ("src/demo/view_escape_bad.h", 31, "view-escape"),
    ("src/demo/view_escape_bad.h", 32, "view-escape"),
    ("src/demo/view_escape_bad.h", 33, "view-escape"),
    ("src/demo/view_escape_bad.h", 37, "view-escape"),
    ("src/graph/overlay_span_bad.h", 38, "view-escape"),
    ("src/graph/overlay_span_bad.h", 39, "view-escape"),
    ("src/graph/overlay_span_bad.h", 43, "view-escape"),
    ("src/demo/rand_bad.cc", 11, "unseeded-randomness"),
    ("src/demo/rand_bad.cc", 17, "unseeded-randomness"),
    ("src/demo/rand_bad.cc", 21, "unseeded-randomness"),
    ("src/demo/skip_in_src_bad.cc", 9, "unseeded-randomness"),
    ("src/demo/skip_in_src_bad.cc", 9, "no-suppression"),
}

# Files that must produce zero findings despite containing tokens the
# rules look for (clean idiom, annotations, scope exemptions).
MUST_BE_SILENT = (
    "src/typing/nondet_iter_good.cc",
    "src/cluster/sort_ties_good.cc",
    "src/demo/view_escape_good.h",
    "src/graph/overlay_span_good.h",
    "bench/bench_skip_ok.cc",
    "tests/test_out_of_scope.cc",
)

BAD_FILES = (
    "src/typing/nondet_iter_bad.cc",
    "src/cluster/sort_ties_bad.cc",
    "src/demo/view_escape_bad.h",
    "src/graph/overlay_span_bad.h",
    "src/demo/rand_bad.cc",
    "src/demo/skip_in_src_bad.cc",
)


def available_backends():
    backends = ["lexical"]
    sys.path.insert(0, ANALYZE_DIR)
    import clang_backend  # noqa: E402
    ok, why = clang_backend.available()
    if ok:
        backends.append("clang")
    else:
        print(f"note: clang backend not tested here ({why})")
    return backends


def run_analyzer(root: str, backend: str):
    proc = subprocess.run(
        [sys.executable, ANALYZER, "--root", root, "--backend", backend],
        capture_output=True, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        # path:line: [rule] message
        head, _, rest = line.partition(": [")
        rule = rest.split("]", 1)[0]
        path, _, lineno = head.rpartition(":")
        findings.add((path.replace(os.sep, "/"), int(lineno), rule))
    return proc.returncode, findings, proc


def fail(msg: str, proc) -> None:
    sys.stderr.write(f"FAIL: {msg}\n")
    sys.stderr.write("--- analyzer stdout ---\n" + proc.stdout)
    sys.stderr.write("--- analyzer stderr ---\n" + proc.stderr)
    sys.exit(1)


def check_backend(backend: str) -> None:
    with tempfile.TemporaryDirectory(prefix="schemex_analyze_test_") as tmp:
        # Fixture tree with planted violations.
        shutil.copytree(FIXTURES, tmp, dirs_exist_ok=True)
        rc, findings, proc = run_analyzer(tmp, backend)
        if rc != 1:
            fail(f"[{backend}] expected exit 1 on fixture tree, got {rc}",
                 proc)
        missing = EXPECTED - findings
        if missing:
            fail(f"[{backend}] planted violations did not fire: "
                 f"{sorted(missing)}", proc)
        extra = findings - EXPECTED
        if extra:
            fail(f"[{backend}] unexpected findings: {sorted(extra)}", proc)
        noisy = [f for f in findings if f[0] in MUST_BE_SILENT]
        if noisy:
            fail(f"[{backend}] findings in must-be-silent files: "
                 f"{sorted(noisy)}", proc)
        print(f"[{backend}] fixture tree: all {len(EXPECTED)} planted "
              "violations fired, nothing else")

    with tempfile.TemporaryDirectory(prefix="schemex_analyze_test_") as tmp:
        # Clean tree: the same fixtures minus the violation files.
        shutil.copytree(FIXTURES, tmp, dirs_exist_ok=True)
        for f in BAD_FILES:
            os.remove(os.path.join(tmp, *f.split("/")))
        rc, findings, proc = run_analyzer(tmp, backend)
        if rc != 0 or findings:
            fail(f"[{backend}] expected clean pass, got exit {rc}, "
                 f"findings {sorted(findings)}", proc)
        print(f"[{backend}] clean tree: exit 0, no findings")


def main() -> int:
    for backend in available_backends():
        check_backend(backend)
    print("analyze_test: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
