"""A small C++ lexer for schemex-analyze's lexical backend.

Produces a flat token stream (identifier / number / string / char /
punctuation, each with a 1-based line number) plus a per-line comment
map used for annotation lookup (// DETERMINISM: / // OWNER:). It is not
a preprocessor: macros are lexed as ordinary tokens, #include paths as
string literals. That is exactly enough for the fact extractors in
lex_backend.py, which match local token shapes rather than full syntax.

Handled precisely, because getting them wrong corrupts everything
downstream: line comments, block comments (multi-line), string and
character literals with escapes, and raw string literals
R"delim(...)delim". Only two multi-character punctuators are fused,
`::` and `->`, because the extractors need member/scope chains; all
other operators arrive as single characters (so `>>` closes two
template argument lists, as in C++11).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"


class Token(NamedTuple):
    kind: str
    text: str
    line: int


def _is_ident_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _is_ident_char(c: str) -> bool:
    return c.isalnum() or c == "_"


def lex(text: str) -> Tuple[List[Token], Dict[int, str]]:
    """Returns (tokens, comments) where comments maps a line number to
    the concatenated comment text that appears on that line."""
    tokens: List[Token] = []
    comments: Dict[int, str] = {}
    i, n, line = 0, len(text), 1

    def add_comment(ln: int, body: str) -> None:
        comments[ln] = comments.get(ln, "") + body

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c.isspace():
            i += 1
            continue
        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            add_comment(line, text[i:j])
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            body = text[i:end]
            for k, part in enumerate(body.split("\n")):
                if part.strip():
                    add_comment(line + k, part)
            line += body.count("\n")
            i = end
            continue
        # Raw string literal: R"delim( ... )delim"  (also u8R"..., LR"...).
        if c in "uULR":
            # Peek an identifier; it may be a raw-string prefix.
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            word = text[i:j]
            if (word in ("R", "u8R", "uR", "UR", "LR") and j < n
                    and text[j] == '"'):
                k = text.find("(", j + 1)
                if k != -1:
                    delim = text[j + 1:k]
                    close = ")" + delim + '"'
                    end = text.find(close, k + 1)
                    end = n if end == -1 else end + len(close)
                    body = text[i:end]
                    tokens.append(Token(STRING, body, line))
                    line += body.count("\n")
                    i = end
                    continue
            tokens.append(Token(IDENT, word, line))
            i = j
            continue
        if _is_ident_start(c):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            tokens.append(Token(IDENT, text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i
            while j < n and (_is_ident_char(text[j]) or text[j] == "."
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token(NUMBER, text[i:j], line))
            i = j
            continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break  # unterminated; tolerate
                j += 1
            j = min(j + 1, n)
            tokens.append(Token(STRING if quote == '"' else CHAR,
                                text[i:j], line))
            i = j
            continue
        # Punctuation: fuse only :: and ->.
        if c == ":" and i + 1 < n and text[i + 1] == ":":
            tokens.append(Token(PUNCT, "::", line))
            i += 2
            continue
        if c == "-" and i + 1 < n and text[i + 1] == ">":
            tokens.append(Token(PUNCT, "->", line))
            i += 2
            continue
        tokens.append(Token(PUNCT, c, line))
        i += 1
    return tokens, comments


def match_paren(tokens: List[Token], open_index: int) -> int:
    """Index of the token closing the group opened at open_index
    (one of ( [ {), or len(tokens) if unbalanced."""
    pairs = {"(": ")", "[": "]", "{": "}"}
    opener = tokens[open_index].text
    closer = pairs[opener]
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i]
        if t.kind == PUNCT:
            if t.text == opener:
                depth += 1
            elif t.text == closer:
                depth -= 1
                if depth == 0:
                    return i
    return len(tokens)
