#!/usr/bin/env python3
"""schemex-analyze: AST-level determinism & view-lifetime analysis.

Project-specific rules the regex lint (tools/lint.py) cannot express —
they need types, scopes, and call structure:

  nondeterministic-iteration   unordered_map/set walks in the
                               determinism-critical stages
  unstable-sort-on-ties        std::sort + custom comparator there
  view-escape                  GraphView / string_view / span /
                               BitSignature stored in members, or
                               by-ref lambda captures into the pool
  unseeded-randomness          random_device / srand / clock-seeded
                               engines in src/, tools/, bench/

See rules.py (and docs/static-analysis.md) for the rationale, the
`// DETERMINISM:` / `// OWNER:` annotation grammar, and the
zero-suppression budget for src/.

Backends: `clang` (libclang via clang.cindex — authoritative, used in
CI) and `lexical` (dependency-free token analysis — same rule layer,
for machines without libclang). `--backend auto` picks clang when
loadable. Exit codes match lint.py: 0 clean, 1 findings, 2 usage or
--require-clang unsatisfied.

Usage:
  schemex_analyze.py [--root DIR] [--backend auto|clang|lexical]
                     [--require-clang] [FILE...]
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import facts    # noqa: E402
import rules    # noqa: E402
import lex_backend  # noqa: E402
import clang_backend  # noqa: E402

ANALYZE_DIRS = ("src", "tools", "bench")
CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")
SKIP_DIR_NAMES = ("lint_fixtures", "fixtures", "analyze")


def iter_repo_files(root: str) -> Iterable[str]:
    for top in ANALYZE_DIRS:
        base = os.path.join(root, top)
        for dirpath, dirnames, files in os.walk(base):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIR_NAMES]
            for f in sorted(files):
                if f.endswith(CXX_EXTENSIONS):
                    yield os.path.join(dirpath, f)


def analyze_file(path: str, rel: str, backend: str,
                 root: str) -> List[facts.Finding]:
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as e:
        return [facts.Finding(rel, 0, "io", f"cannot read: {e}")]
    lines = text.splitlines()
    if backend == "clang":
        file_facts = clang_backend.extract_facts(path, root)
    else:
        file_facts = lex_backend.extract_facts(text)
    return rules.apply_rules(rel, file_facts, lines)


def main(argv: List[str]) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    ap.add_argument("--backend", choices=("auto", "clang", "lexical"),
                    default=os.environ.get("SCHEMEX_ANALYZE_BACKEND", "auto"))
    ap.add_argument("--require-clang", action="store_true",
                    help="fail (exit 2) if the libclang backend is "
                         "unavailable instead of falling back")
    ap.add_argument("files", nargs="*",
                    help="specific files (default: src/ tools/ bench/)")
    args = ap.parse_args(argv)

    clang_ok, clang_why = clang_backend.available()
    backend = args.backend
    if backend == "auto":
        backend = "clang" if clang_ok else "lexical"
    if backend == "clang" and not clang_ok:
        print(f"schemex-analyze: clang backend unavailable: {clang_why}",
              file=sys.stderr)
        return 2
    if args.require_clang and backend != "clang":
        print("schemex-analyze: --require-clang but backend is "
              f"{backend} ({clang_why})", file=sys.stderr)
        return 2
    if backend == "lexical" and args.backend == "auto":
        print(f"schemex-analyze: note: using lexical backend ({clang_why})",
              file=sys.stderr)

    root = os.path.abspath(args.root)
    paths = [os.path.abspath(p) for p in args.files] \
        or list(iter_repo_files(root))
    findings: List[facts.Finding] = []
    for path in paths:
        try:
            rel = os.path.relpath(path, root)
        except ValueError:
            rel = path
        findings.extend(analyze_file(path, rel, backend, root))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"schemex-analyze [{backend}]: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"schemex-analyze [{backend}]: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
