"""Fact model shared by schemex-analyze's backends.

A backend (libclang or lexical) reduces a source file to a flat list of
*facts* — syntactic events the rules care about. The rules in rules.py
then decide which facts are findings, applying directory scopes and the
annotation grammar. Keeping the fact vocabulary tiny and backend-
independent is what guarantees the two backends agree: they may differ
in *how* they recognize an unordered-container walk, but they report it
through the same fact, and a fixture suite runs every available backend
against the same expected finding set.
"""

from __future__ import annotations

from typing import NamedTuple


class Finding(NamedTuple):
    path: str   # repo-relative, forward slashes
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class UnorderedIter(NamedTuple):
    """An iteration-order-dependent walk over std::unordered_map/set:
    either a range-for whose range expression is (or chains through) an
    unordered container, or a begin()/cbegin() call on one."""
    line: int
    expr: str   # source-ish rendering of the container expression
    how: str    # "range-for" | "begin"


class SortCall(NamedTuple):
    """A call to std::sort / std::stable_sort. nargs counts top-level
    arguments: 3 or more means a custom comparator was supplied."""
    line: int
    fn: str     # "sort" | "stable_sort"
    nargs: int


class ViewMember(NamedTuple):
    """A class/struct data member whose type is (or contains) a
    non-owning view: GraphView, std::string_view, std::span,
    BitSignature — including containers of them."""
    line: int
    member: str
    type_spelling: str


class RefCapturePool(NamedTuple):
    """A lambda with a by-reference capture passed to ThreadPool::Submit.
    Submitted work can outlive the submitting frame; every referenced
    object needs a named keep-alive."""
    line: int
    callee: str  # e.g. "pool->Submit"


class RandomSeed(NamedTuple):
    """A nondeterminism-injecting randomness source: std::random_device,
    srand()/rand(), or an engine seeded from a clock."""
    line: int
    what: str
