"""Lexical (libclang-free) fact extraction for schemex-analyze.

Works from the token stream of cxx_lexer.py plus a per-file declaration
table: every identifier declared with an unordered-container type (or a
`using`/`typedef` alias of one) in the file — members, locals, and
parameters alike — is recorded, and iteration facts fire when a
range-for's range expression or a begin()/cbegin() call chains through
one of those names. This is deliberately scope-blind (one namespace per
file): the repo's naming conventions make collisions between an
unordered member in one class and an ordered local elsewhere in the
same file vanishingly rare, and the cost of a rare false positive is
one explanatory annotation.

The libclang backend sees real types and scopes and is authoritative in
CI; this backend exists so the analyzer runs (and `ctest -L lint`
passes judgment) on machines without libclang, from the same rule layer
and the same fixtures.
"""

from __future__ import annotations

from typing import List, Set

import cxx_lexer
from cxx_lexer import IDENT, PUNCT, Token, lex, match_paren
import facts

UNORDERED_TYPES = ("unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset")

VIEW_TYPE_IDENTS = ("GraphView", "BitSignature")
# string_view via any alias (std::string_view, wstring_view, ...);
# span only as a template id (`span<`), so a variable named span is not
# a view type.
RNG_ENGINES = ("mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
               "default_random_engine", "ranlux24", "ranlux48", "knuth_b")

CHAIN_PUNCT = ("::", ".", "->")


def _collect_unordered_names(tokens: List[Token]) -> Set[str]:
    """Identifiers declared (anywhere in the file) with an unordered
    container type, plus alias names for such types."""
    names: Set[str] = set()
    aliases: Set[str] = set()

    # Pass 1: `using X = ...unordered_map<...>...;` / `typedef ... X;`
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if t.kind == IDENT and t.text == "using" and i + 2 < len(tokens):
            if (tokens[i + 1].kind == IDENT and tokens[i + 2].text == "="):
                j = i + 3
                rhs: List[str] = []
                while j < len(tokens) and tokens[j].text != ";":
                    rhs.append(tokens[j].text)
                    j += 1
                if any(u in rhs for u in UNORDERED_TYPES) or \
                        any(a in rhs for a in aliases):
                    aliases.add(tokens[i + 1].text)
                i = j
                continue
        if t.kind == IDENT and t.text == "typedef":
            j = i + 1
            body: List[Token] = []
            while j < len(tokens) and tokens[j].text != ";":
                body.append(tokens[j])
                j += 1
            if body and body[-1].kind == IDENT and (
                    any(b.text in UNORDERED_TYPES for b in body[:-1]) or
                    any(b.text in aliases for b in body[:-1])):
                aliases.add(body[-1].text)
            i = j
            continue
        i += 1

    # Pass 2: declarations `unordered_map<...> [&*]name {;,=({)}`.
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if t.kind == IDENT and (t.text in UNORDERED_TYPES or
                                t.text in aliases):
            j = i + 1
            if j < len(tokens) and tokens[j].text == "<":
                depth = 0
                while j < len(tokens):
                    if tokens[j].text == "<":
                        depth += 1
                    elif tokens[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            j += 1
                            break
                    j += 1
            while j < len(tokens) and tokens[j].text in ("&", "*", "const"):
                j += 1
            if (j + 1 < len(tokens) and tokens[j].kind == IDENT and
                    tokens[j + 1].text in (";", "=", ",", ")", "{", "(")):
                names.add(tokens[j].text)
            i = j
            continue
        i += 1
    return names | aliases


def _chain_idents(tokens: List[Token], start: int, end: int) -> List[str]:
    """Identifiers of the leading member/scope chain of tokens
    [start, end): idents joined by :: . -> (stops at anything else)."""
    out: List[str] = []
    expect_ident = True
    for i in range(start, end):
        t = tokens[i]
        if expect_ident:
            if t.kind != IDENT:
                break
            out.append(t.text)
            expect_ident = False
        else:
            if t.kind == PUNCT and t.text in CHAIN_PUNCT:
                expect_ident = True
            else:
                break
    return out


def _render(tokens: List[Token], start: int, end: int, limit: int = 40) -> str:
    s = " ".join(t.text for t in tokens[start:end])
    s = s.replace(" :: ", "::").replace(" . ", ".").replace(" -> ", "->")
    return s[:limit]


def _range_for_facts(tokens, unordered, out: List[facts.UnorderedIter]):
    for i, t in enumerate(tokens):
        if not (t.kind == IDENT and t.text == "for"):
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        close = match_paren(tokens, i + 1)
        # Find the range-for ':' at depth 1 of this paren group.
        depth = 0
        colon = -1
        for j in range(i + 1, close):
            tj = tokens[j]
            if tj.kind == PUNCT:
                if tj.text in "([{":
                    depth += 1
                elif tj.text in ")]}":
                    depth -= 1
                elif tj.text == ":" and depth == 1:
                    colon = j
                    break
                elif tj.text == ";" and depth == 1:
                    break  # classic for loop
        if colon == -1:
            continue
        chain = _chain_idents(tokens, colon + 1, close)
        if any(name in unordered for name in chain):
            out.append(facts.UnorderedIter(
                tokens[colon + 1].line, _render(tokens, colon + 1, close),
                "range-for"))


def _begin_facts(tokens, unordered, out: List[facts.UnorderedIter]):
    for i, t in enumerate(tokens):
        if not (t.kind == IDENT and t.text in ("begin", "cbegin")):
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        if i == 0 or tokens[i - 1].text not in (".", "->"):
            continue
        # Walk the chain backwards: ident ((:: | . | ->) ident)* . begin
        j = i - 1
        chain: List[str] = []
        while j > 0:
            if tokens[j].kind == PUNCT and tokens[j].text in CHAIN_PUNCT \
                    and tokens[j - 1].kind == IDENT:
                chain.append(tokens[j - 1].text)
                j -= 2
            else:
                break
        if any(name in unordered for name in chain):
            out.append(facts.UnorderedIter(
                t.line, _render(tokens, max(j, 0), i + 1), "begin"))


def _sort_facts(tokens, out: List[facts.SortCall]):
    for i, t in enumerate(tokens):
        if not (t.kind == IDENT and t.text in ("sort", "stable_sort")):
            continue
        if i < 2 or tokens[i - 1].text != "::" or tokens[i - 2].text != "std":
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        close = match_paren(tokens, i + 1)
        depth = 0
        commas = 0
        empty = close == i + 2
        for j in range(i + 1, close):
            tj = tokens[j]
            if tj.kind == PUNCT:
                if tj.text in "([{":
                    depth += 1
                elif tj.text in ")]}":
                    depth -= 1
                elif tj.text == "," and depth == 1:
                    commas += 1
        out.append(facts.SortCall(t.line, t.text, 0 if empty else commas + 1))


def _is_view_type_statement(stmt: List[Token]) -> bool:
    for k, t in enumerate(stmt):
        if t.kind != IDENT:
            continue
        if t.text in VIEW_TYPE_IDENTS:
            return True
        if t.text.endswith("string_view"):
            return True
        if t.text == "span" and k + 1 < len(stmt) and stmt[k + 1].text == "<":
            return True
    return False


def _block_kind(stmt: List[Token]) -> str:
    """Classifies the statement a '{' terminates: what kind of block
    opens? Function-ish statements (any paren group — signatures,
    constructor init lists, if/for/while headers) are "function";
    class/struct/union heads (unless `enum class`) are "class";
    namespaces are transparent."""
    if any(t.kind == PUNCT and t.text == "(" for t in stmt):
        return "function"
    words = [t.text for t in stmt if t.kind == IDENT]
    if "namespace" in words or "extern" in words:
        return "namespace"
    for k, w in enumerate(words):
        if w in ("class", "struct", "union"):
            if k > 0 and words[k - 1] == "enum":
                return "other"
            return "class"
    return "other"


def _member_facts(tokens, out: List[facts.ViewMember]):
    """Walks class/struct bodies; flags data-member declarations whose
    type mentions a view type. Namespaces are transparent, function
    bodies recurse (for classes defined inside functions), and paren/
    bracket groups are consumed wholesale so a signature's ';'-free
    commas and nested semicolons never split a statement."""

    def scan(i: int, end: int, in_class: bool) -> None:
        cur: List[Token] = []
        while i < end:
            t = tokens[i]
            if t.kind == PUNCT and t.text in ("(", "["):
                close = match_paren(tokens, i)
                cur.extend(tokens[i:close + 1])
                i = close + 1
                continue
            if t.kind == PUNCT and t.text == "{":
                close = match_paren(tokens, i)
                kind = _block_kind(cur)
                if kind == "class":
                    scan(i + 1, close, True)
                    cur = []
                elif kind == "namespace":
                    scan(i + 1, close, False)
                    cur = []
                elif in_class and cur and kind == "other":
                    # Brace initializer of a member (`string_view v{};`):
                    # keep the statement, skip the initializer tokens.
                    i = close + 1
                    continue
                else:
                    scan(i + 1, close, False)
                    cur = []
                i = close + 1
                continue
            if t.kind == PUNCT and t.text == ";":
                if in_class:
                    _classify_member(cur, out)
                cur = []
                i += 1
                continue
            cur.append(t)
            i += 1
        if in_class and cur:
            _classify_member(cur, out)

    scan(0, len(tokens), False)


ACCESS_SPECIFIERS = ("public", "private", "protected")

NON_MEMBER_LEADS = ("using", "typedef", "friend", "static_assert",
                    "template", "operator", "enum", "return", "class",
                    "struct", "union")


def _classify_member(stmt: List[Token], out: List[facts.ViewMember]) -> None:
    # Strip access-specifier labels (`public:`) fused into the statement.
    while len(stmt) >= 2 and stmt[0].kind == IDENT \
            and stmt[0].text in ACCESS_SPECIFIERS \
            and stmt[1].kind == PUNCT and stmt[1].text == ":":
        stmt = stmt[2:]
    if not stmt:
        return
    words = [t.text for t in stmt if t.kind == IDENT]
    if not words or words[0] in NON_MEMBER_LEADS:
        return
    if "operator" in words:
        return
    # `static constexpr std::string_view kFoo = "...";` points at a
    # string literal with static storage duration — owning in effect.
    if "static" in words or "constexpr" in words:
        return
    if any(t.kind == PUNCT and t.text == "(" for t in stmt):
        return  # function declaration (nested groups were consumed whole)
    if not _is_view_type_statement(stmt):
        return
    # Member name: last identifier before '=' (or the end).
    name = ""
    for t in stmt:
        if t.kind == PUNCT and t.text == "=":
            break
        if t.kind == IDENT:
            name = t.text
    if not name or name in VIEW_TYPE_IDENTS or name.endswith("string_view") \
            or name == "span":
        return  # a bare type mention, not a declaration
    out.append(facts.ViewMember(stmt[0].line, name,
                                _render(stmt, 0, len(stmt), limit=60)))


def _submit_capture_facts(tokens, out: List[facts.RefCapturePool]):
    for i, t in enumerate(tokens):
        if not (t.kind == IDENT and t.text == "Submit"):
            continue
        if i == 0 or tokens[i - 1].text not in (".", "->"):
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        close = match_paren(tokens, i + 1)
        j = i + 2
        while j < close:
            tj = tokens[j]
            if tj.kind == PUNCT and tj.text == "[":
                intro_close = match_paren(tokens, j)
                intro = tokens[j:intro_close]
                if any(x.kind == PUNCT and x.text == "&" for x in intro):
                    base = tokens[i - 2].text if i >= 2 else "?"
                    out.append(facts.RefCapturePool(
                        tj.line, f"{base}{tokens[i - 1].text}Submit"))
                j = intro_close + 1
                continue
            if tj.kind == PUNCT and tj.text in ("(", "{"):
                j = match_paren(tokens, j) + 1
                continue
            j += 1


def _random_facts(tokens, out: List[facts.RandomSeed]):
    for i, t in enumerate(tokens):
        if t.kind != IDENT:
            continue
        nxt = tokens[i + 1].text if i + 1 < len(tokens) else ""
        if t.text == "random_device":
            out.append(facts.RandomSeed(t.line, "std::random_device"))
        elif t.text == "srand" and nxt == "(":
            out.append(facts.RandomSeed(t.line, "srand()"))
        elif t.text == "rand" and nxt == "(" and i > 0 \
                and tokens[i - 1].text not in (".", "->"):
            out.append(facts.RandomSeed(t.line, "rand()"))
        elif t.text in RNG_ENGINES:
            # engine name [ident] ( args )  or  { args } — clock-seeded?
            j = i + 1
            if j < len(tokens) and tokens[j].kind == IDENT:
                j += 1
            if j < len(tokens) and tokens[j].text in ("(", "{"):
                close = match_paren(tokens, j)
                for k in range(j + 1, close):
                    tk = tokens[k]
                    if tk.kind == IDENT and tk.text in ("time", "now", "clock") \
                            and k + 1 < len(tokens) \
                            and tokens[k + 1].text == "(":
                        out.append(facts.RandomSeed(
                            tk.line, f"{t.text} seeded from {tk.text}()"))
                        break


def extract_facts(text: str):
    """All facts for one file's source text."""
    tokens, _comments = lex(text)
    unordered = _collect_unordered_names(tokens)
    out: list = []
    _range_for_facts(tokens, unordered, out)
    _begin_facts(tokens, unordered, out)
    _sort_facts(tokens, out)
    _member_facts(tokens, out)
    _submit_capture_facts(tokens, out)
    _random_facts(tokens, out)
    return out
