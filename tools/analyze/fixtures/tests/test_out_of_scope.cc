// tests/ is outside every rule's scope (harness scaffolding may use
// whatever it likes) — and outside the analyzer's walk entirely. If a
// finding ever points here, the scope filter broke.
#include <random>
#include <unordered_map>

namespace demo {

int Noise() {
  std::random_device rd;
  std::unordered_map<int, int> m{{1, 2}};
  int s = 0;
  for (const auto& kv : m) s += kv.second;
  return s + static_cast<int>(rd());
}

}  // namespace demo
