// Clean overlay-view handling: every stored row or value names its
// keep-alive with an OWNER annotation, and pool work captures the
// overlay by shared_ptr. Must produce zero findings.
#ifndef GRAPH_OVERLAY_SPAN_GOOD_H_
#define GRAPH_OVERLAY_SPAN_GOOD_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace graph_demo {

struct HalfEdge {
  uint32_t label;
  uint32_t other;
};

struct DeltaOverlay {
  std::span<const HalfEdge> OutEdges(uint32_t o) const;
  std::string_view Value(uint32_t o) const;
};

struct Pool {
  template <typename F>
  void Submit(F&& fn) { fn(); }
};

// Pins the overlay it slices: the shared_ptr member outlives the views,
// and the row is re-read after any mutation (generation-checked by the
// caller), so neither view outlives its backing storage.
class PinnedRowCache {
 public:
  PinnedRowCache(std::shared_ptr<const DeltaOverlay> ov, uint32_t o)
      : overlay_(std::move(ov)),
        row_(overlay_->OutEdges(o)),
        value_(overlay_->Value(o)) {}

 private:
  std::shared_ptr<const DeltaOverlay> overlay_;
  std::span<const HalfEdge> row_;  // OWNER: overlay_ — row backed by it
  // OWNER: overlay_ — the atomic's bytes live in the overlay's store.
  std::string_view value_;
};

inline void SumRow(Pool& pool, std::shared_ptr<const DeltaOverlay> ov,
                   std::shared_ptr<long> acc) {
  pool.Submit([ov, acc] { *acc += long(ov->OutEdges(0).size()); });
}

}  // namespace graph_demo

#endif  // GRAPH_OVERLAY_SPAN_GOOD_H_
