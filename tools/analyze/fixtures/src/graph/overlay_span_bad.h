// Planted view-escape violations, overlay flavored: adjacency rows and
// atomic values sliced out of a DeltaOverlay and stored in members with
// no OWNER annotation naming the keep-alive, plus a row summed inside a
// by-reference lambda handed to a pool.
#ifndef GRAPH_OVERLAY_SPAN_BAD_H_
#define GRAPH_OVERLAY_SPAN_BAD_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace graph_demo {

struct HalfEdge {
  uint32_t label;
  uint32_t other;
};

struct DeltaOverlay {
  std::span<const HalfEdge> OutEdges(uint32_t o) const;
  std::string_view Value(uint32_t o) const;
};

struct Pool {
  template <typename F>
  void Submit(F&& fn) { fn(); }
};

// Caches overlay reads without naming what keeps the overlay alive:
// both members dangle once the overlay rematerializes the row (any
// later mutation of the same object) or is destroyed.
class RowCache {
 public:
  RowCache(const DeltaOverlay& ov, uint32_t o)
      : row_(ov.OutEdges(o)), value_(ov.Value(o)) {}

 private:
  std::span<const HalfEdge> row_;  // VIOLATION line 38
  std::string_view value_;  // VIOLATION line 39
};

inline void SumRow(Pool& pool, const DeltaOverlay& ov, long& acc) {
  pool.Submit([&] { acc += long(ov.OutEdges(0).size()); });  // VIOLATION 43
}

}  // namespace graph_demo

#endif  // GRAPH_OVERLAY_SPAN_BAD_H_
