// Tie-safe sorting: a documented total order, std::stable_sort, and
// the default operator< path. Must produce zero findings.
#include <algorithm>
#include <vector>

namespace demo {

struct Move {
  int cost;
  int dest;
};

void RankMovesTotal(std::vector<Move>& moves) {
  // DETERMINISM: (cost, dest) is a total order — dest is unique per move.
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.dest < b.dest;
  });
}

void RankMovesStable(std::vector<Move>& moves) {
  std::stable_sort(moves.begin(), moves.end(),
                   [](const Move& a, const Move& b) { return a.cost < b.cost; });
}

void SortValues(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
}

}  // namespace demo
