// Planted unstable-sort-on-ties violation: a comparator keyed on a
// non-unique field — elements tied on `cost` land in unspecified order.
#include <algorithm>
#include <vector>

namespace demo {

struct Move {
  int cost;
  int dest;
};

void RankMoves(std::vector<Move>& moves) {
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {  // VIOLATION line 14
    return a.cost < b.cost;
  });
}

}  // namespace demo
