// Planted nondeterministic-iteration violations. Each VIOLATION line
// number is pinned in analyze_test.py — update both together.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace demo {

using Index = std::unordered_map<int, int>;

struct Walker {
  std::unordered_map<int, int> map_;
  std::unordered_set<int> set_;

  int SumRangeFor() {
    int s = 0;
    for (const auto& kv : map_) s += kv.second;  // VIOLATION line 17
    return s;
  }

  int SumIterator() {
    int s = 0;
    for (auto it = set_.begin(); it != set_.end(); ++it) s += *it;  // VIOLATION line 23
    return s;
  }

  int SumAlias() {
    Index idx;
    int s = 0;
    for (const auto& kv : idx) s += kv.first;  // VIOLATION line 30
    return s;
  }
};

}  // namespace demo
