// Clean idiom for unordered containers in determinism-critical code:
// sorted copies where order can escape, an annotation where it cannot,
// ordered containers otherwise. Must produce zero findings.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace demo {

struct Accumulator {
  std::unordered_map<int, int> map_;
  std::map<int, int> ordered_;

  // Sorted-copy idiom: materialize keys, sort, iterate the copy.
  std::vector<int> SortedKeys() {
    std::vector<int> keys;
    keys.reserve(map_.size());
    for (const auto& kv : map_) keys.push_back(kv.first);  // DETERMINISM: collected keys are sorted before any order-sensitive use
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  // Order-insensitive reduction, annotated on the preceding line.
  int Sum() {
    int s = 0;
    // DETERMINISM: + is commutative; the visit order cannot escape.
    for (const auto& kv : map_) s += kv.second;
    return s;
  }

  // std::map iterates in key order: nothing to flag.
  int SumOrdered() {
    int s = 0;
    for (const auto& kv : ordered_) s += kv.second;
    return s;
  }

  // Lookups and membership tests are order-free: nothing to flag.
  int Lookup(int k) {
    auto it = map_.find(k);
    return it == map_.end() ? 0 : it->second;
  }
};

}  // namespace demo
