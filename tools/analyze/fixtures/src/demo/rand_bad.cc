// Planted unseeded-randomness violations: every nondeterministic seed
// source the rule knows.
#include <cstdlib>
#include <ctime>
#include <chrono>
#include <random>

namespace demo {

int Roll() {
  std::random_device rd;  // VIOLATION line 11
  std::mt19937 rng(rd());
  return static_cast<int>(rng());
}

void SeedGlobal() {
  srand(time(nullptr));  // VIOLATION line 17
}

int RollClock() {
  std::mt19937 rng(std::chrono::steady_clock::now().time_since_epoch().count());  // VIOLATION line 21
  return static_cast<int>(rng());
}

}  // namespace demo
