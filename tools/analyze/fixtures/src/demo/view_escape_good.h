// Clean view handling: every stored view names its keep-alive with an
// OWNER annotation, submitted lambdas capture by value or shared_ptr,
// and literal-backed static views are exempt. Must produce zero
// findings.
#ifndef DEMO_VIEW_ESCAPE_GOOD_H_
#define DEMO_VIEW_ESCAPE_GOOD_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace demo {

struct BitSignature {
  std::vector<unsigned long long> words;
};

struct BitSignatureIndex {};

struct Pool {
  template <typename F>
  void Submit(F&& fn) { fn(); }
};

class Parser {
 public:
  explicit Parser(std::string text) : owned_(std::move(text)), text_(owned_) {}

 private:
  std::string owned_;
  std::string_view text_;  // OWNER: owned_ — view over the member buffer
  // OWNER: owned_ — spans the same buffer as text_.
  std::span<const char> window_;
};

class Encoded {
 private:
  BitSignatureIndex index_;
  std::vector<BitSignature> encs_;  // OWNER: index_ — bits are index-relative
  static constexpr std::string_view kName = "encoded";  // literal-backed
};

inline void SubmitByValue(Pool& pool, std::shared_ptr<int> counter) {
  pool.Submit([counter] { ++*counter; });
}

// A view as a parameter or local never escapes the frame: not flagged.
inline size_t Measure(std::string_view s) {
  std::string_view local = s;
  return local.size();
}

}  // namespace demo

#endif  // DEMO_VIEW_ESCAPE_GOOD_H_
