// Planted view-escape violations: non-owning types stored in members
// with no OWNER annotation, and a by-reference lambda capture handed to
// a thread pool's Submit.
#ifndef DEMO_VIEW_ESCAPE_BAD_H_
#define DEMO_VIEW_ESCAPE_BAD_H_

#include <functional>
#include <span>
#include <string_view>
#include <vector>

namespace demo {

struct BitSignature {
  std::vector<unsigned long long> words;
};

struct GraphView {};

struct Pool {
  template <typename F>
  void Submit(F&& fn) { fn(); }
};

class Holder {
 public:
  explicit Holder(std::string_view text) : text_(text) {}

 private:
  std::string_view text_;  // VIOLATION line 30
  std::span<const int> window_;  // VIOLATION line 31
  GraphView g_;  // VIOLATION line 32
  std::vector<BitSignature> encs_;  // VIOLATION line 33
};

inline void FireAndForget(Pool& pool, int& counter) {
  pool.Submit([&counter] { ++counter; });  // VIOLATION line 37
}

}  // namespace demo

#endif  // DEMO_VIEW_ESCAPE_BAD_H_
