// Planted no-suppression violation: ANALYZE-SKIP is the blunt escape
// hatch and the budget for src/ is zero — the token itself is flagged,
// and it does NOT suppress the underlying finding.
#include <random>

namespace demo {

int Roll() {
  std::random_device rd;  // ANALYZE-SKIP(unseeded-randomness)  VIOLATION line 9 (twice: the walk and the skip)
  return static_cast<int>(rd());
}

}  // namespace demo
