// Outside src/ the ANALYZE-SKIP(<rule>) escape hatch is honored (a
// bench that deliberately wants wall-clock jitter can say so). Must
// produce zero findings.
#include <random>

namespace demo {

int JitterLatencies() {
  // ANALYZE-SKIP(unseeded-randomness) — deliberate cross-run jitter to
  // randomize contention phase; results are aggregated, not compared.
  std::random_device rd;
  return static_cast<int>(rd());
}

int DeterministicBench() {
  std::mt19937 rng(12345);  // fixed seed: rows reproduce
  return static_cast<int>(rng());
}

}  // namespace demo
