"""libclang (clang.cindex) fact extraction for schemex-analyze.

The authoritative backend: real types and scopes, so alias-obscured
unordered containers, members of template instantiations, and
`auto`-deduced range expressions resolve through canonical types
instead of token shapes. CI pins the `libclang` wheel and runs this
backend with --require-clang; machines without it fall back to
lex_backend (same rule layer, same fixtures).

Parsing is per-file with the repo's include roots and -std=c++20.
Missing system/third-party headers are tolerated — libclang keeps
going, and every fact this backend extracts is local to the file's own
AST nodes (we never chase into included files: findings for a header
come from analyzing that header directly).

The unseeded-randomness facts are token-level in both backends (an AST
adds nothing over spotting `std::random_device`), so this backend
reuses lex_backend's scanner for them — one implementation, identical
behavior.
"""

from __future__ import annotations

import os
import re
from typing import List, Optional, Tuple

import facts
import lex_backend

_IMPORT_ERROR: Optional[str] = None
try:
    from clang import cindex  # type: ignore
except Exception as e:  # ModuleNotFoundError and binding-load errors
    cindex = None  # type: ignore
    _IMPORT_ERROR = str(e)

_INDEX = None


def available() -> Tuple[bool, str]:
    """(usable, reason). Probes the binding *and* the native library."""
    global _INDEX
    if cindex is None:
        return False, f"python clang bindings unavailable: {_IMPORT_ERROR}"
    if _INDEX is not None:
        return True, "ok"
    try:
        lib = os.environ.get("SCHEMEX_LIBCLANG")
        if lib:
            cindex.Config.set_library_file(lib)
        _INDEX = cindex.Index.create()
        return True, "ok"
    except Exception as e:
        return False, f"libclang not loadable: {e}"


_UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")
_VIEW_TYPE_RE = re.compile(
    r"\b(?:basic_)?string_view\b|\bspan\s*<|\bGraphView\b|\bBitSignature\b")


def _type_spellings(t) -> str:
    try:
        return t.spelling + " | " + t.get_canonical().spelling
    except Exception:
        return t.spelling


def _is_unordered(t) -> bool:
    return bool(_UNORDERED_RE.search(_type_spellings(t)))


def _lambda_has_ref_capture(cursor) -> bool:
    """Inspects the capture-intro tokens `[...]` of a LAMBDA_EXPR."""
    depth = 0
    for tok in cursor.get_tokens():
        s = tok.spelling
        if s == "[":
            depth += 1
        elif s == "]":
            return False
        elif depth >= 1 and s in ("&", "&&"):
            return True
        elif depth >= 1 and s == "(":  # intro ended without ']'? defensive
            return False
    return False


def _walk(cursor, path: str, out: List) -> None:
    K = cindex.CursorKind
    for c in cursor.get_children():
        loc_file = c.location.file
        if loc_file is not None and os.path.realpath(loc_file.name) != path:
            continue  # a different file's subtree (includes)

        if c.kind == K.CXX_FOR_RANGE_STMT:
            # Children: [loop var decl, range-init expr, body...] in
            # libclang's flattened view; the range expression is the
            # first expression child.
            for ch in c.get_children():
                if ch.kind.is_expression():
                    if _is_unordered(ch.type):
                        expr = " ".join(
                            t.spelling for t in ch.get_tokens())[:40]
                        out.append(facts.UnorderedIter(
                            ch.location.line, expr or "<range expr>",
                            "range-for"))
                    break
        elif c.kind == K.CALL_EXPR and c.spelling in ("begin", "cbegin"):
            children = list(c.get_children())
            if children and children[0].kind == K.MEMBER_REF_EXPR:
                base = list(children[0].get_children())
                if base and _is_unordered(base[0].type):
                    expr = " ".join(
                        t.spelling for t in children[0].get_tokens())[:40]
                    out.append(facts.UnorderedIter(
                        c.location.line, expr or "<begin call>", "begin"))
        elif c.kind == K.CALL_EXPR and c.spelling in ("sort", "stable_sort"):
            ref = c.referenced
            qual = ""
            if ref is not None and ref.semantic_parent is not None:
                qual = ref.semantic_parent.spelling
            if qual == "std" or qual.startswith("__"):  # libstdc++ inline ns
                nargs = len(list(c.get_arguments()))
                out.append(facts.SortCall(c.location.line, c.spelling, nargs))
        elif c.kind == K.FIELD_DECL:
            if _VIEW_TYPE_RE.search(_type_spellings(c.type)):
                is_static_constexpr = any(
                    t.spelling in ("static", "constexpr")
                    for t in c.get_tokens())
                if not is_static_constexpr:
                    out.append(facts.ViewMember(
                        c.location.line, c.spelling,
                        c.type.spelling[:60]))
        elif c.kind == K.CALL_EXPR and c.spelling == "Submit":
            for arg in c.get_arguments():
                a = arg
                # Unwrap implicit casts/temporaries around the lambda.
                while a is not None and a.kind != K.LAMBDA_EXPR:
                    kids = list(a.get_children())
                    a = kids[0] if len(kids) == 1 else None
                if a is not None and a.kind == K.LAMBDA_EXPR \
                        and _lambda_has_ref_capture(a):
                    out.append(facts.RefCapturePool(
                        a.location.line, "Submit"))

        _walk(c, path, out)


def extract_facts(path: str, root: str) -> List:
    """All facts for one file, parsed in the repo's include context."""
    ok, why = available()
    if not ok:
        raise RuntimeError(why)
    args = ["-x", "c++", "-std=c++20",
            "-I", os.path.join(root, "src"), "-I", root,
            "-ferror-limit=0", "-Wno-everything"]
    tu = _INDEX.parse(path, args=args)
    out: List = []
    _walk(tu.cursor, os.path.realpath(path), out)
    # Randomness facts are token-level in both backends (see module doc).
    with open(path, encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    out.extend(f for f in lex_backend.extract_facts(text)
               if isinstance(f, facts.RandomSeed))
    return out
