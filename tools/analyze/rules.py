"""Rule layer of schemex-analyze: facts -> findings.

Backends hand this module a per-file fact list (facts.py); the rules
here apply directory scopes, the annotation grammar, and the
suppression policy, and emit Findings in lint.py's exact output format.
Keeping policy out of the backends is what makes the libclang and
lexical backends interchangeable.

## Rules

nondeterministic-iteration
    A range-for (or begin()/cbegin() walk) over std::unordered_map /
    std::unordered_set in the determinism-critical directories
    (src/typing, src/cluster, src/extract, src/graph). Iteration order
    of unordered containers is implementation- and seed-dependent, and
    PRs 5/7 guarantee bit-identical extraction at any thread count —
    an unordered walk feeding a reduce, an output, or a hash breaks
    that probabilistically. Fix: iterate a sorted copy / sorted index,
    or annotate `// DETERMINISM: <why the order cannot escape>`.

unstable-sort-on-ties
    std::sort with a custom comparator in the same directories. If the
    comparator's key is not unique, element order on ties is
    unspecified (and differs across standard libraries), which breaks
    the (cost, dest-rank) merge ladders and canonical serializations.
    Fix: make the comparator a total order (unique tie-break), use
    std::stable_sort, or annotate `// DETERMINISM: <total-order
    argument>`.

view-escape
    A non-owning type (GraphView, std::string_view, std::span,
    BitSignature — including containers of them) stored as a class
    member, or a by-reference lambda capture handed to
    ThreadPool::Submit. Views outliving their backing storage are the
    use-after-free class the mmap'd-snapshot work (PR 6) made easy to
    write. Fix: own the data, or annotate `// OWNER: <field>` naming
    the keep-alive whose lifetime covers the view. (BitSignature owns
    its words but is only meaningful relative to the BitSignatureIndex
    that encoded it — the annotation names the index.)

unseeded-randomness
    std::random_device, srand()/rand(), or a random engine seeded from
    a clock, in src/, tools/, or bench/. Nondeterministic seeds make
    failures unreproducible and break run-to-run identity. Fix: a
    fixed seed (tests/benches) or a seed threaded through options, or
    annotate `// DETERMINISM: <why nondeterminism is wanted>`.

## Annotation grammar

`// DETERMINISM: <non-empty reason>` and `// OWNER: <field>[ — reason]`
suppress a finding when placed on the finding's line or in the block of
comment-only lines immediately above it. `// ANALYZE-SKIP(<rule>)` is
the blunt escape hatch: honored outside src/, and itself a finding
inside src/ (the suppression budget for src/ is zero, matching
tools/lint.py's no-suppression rule).
"""

from __future__ import annotations

import os
import re
from typing import Iterable, List

import facts

DETERMINISM_DIRS = ("src/typing", "src/cluster", "src/extract", "src/graph")
VIEW_DIRS = ("src", "tools")
POOL_CAPTURE_EXEMPT = ("src/util",)  # RunShards et al: audited, blocking
RANDOM_DIRS = ("src", "tools", "bench")

DETERMINISM_RE = re.compile(r"//.*\bDETERMINISM:\s*\S")
OWNER_RE = re.compile(r"//.*\bOWNER:\s*\S")
SKIP_RE = re.compile(r"//\s*ANALYZE-SKIP\(([a-z-]+)\)")
COMMENT_ONLY_RE = re.compile(r"^\s*(//|/\*|\*|\*/)")

RULE_NONDET_ITER = "nondeterministic-iteration"
RULE_SORT_TIES = "unstable-sort-on-ties"
RULE_VIEW_ESCAPE = "view-escape"
RULE_RANDOMNESS = "unseeded-randomness"
RULE_NO_SUPPRESSION = "no-suppression"

ALL_RULES = (RULE_NONDET_ITER, RULE_SORT_TIES, RULE_VIEW_ESCAPE,
             RULE_RANDOMNESS)


def _in_dirs(rel: str, dirs: Iterable[str]) -> bool:
    rel = rel.replace(os.sep, "/")
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


def _annotated(lines: List[str], lineno: int, regex: re.Pattern) -> bool:
    """True if `regex` matches the finding's line or any line of the
    contiguous comment-only block immediately above it."""
    if 1 <= lineno <= len(lines) and regex.search(lines[lineno - 1]):
        return True
    ln = lineno - 1
    while ln >= 1 and COMMENT_ONLY_RE.match(lines[ln - 1]):
        if regex.search(lines[ln - 1]):
            return True
        ln -= 1
    return False


def _skipped(lines: List[str], lineno: int, rule: str, rel: str) -> bool:
    """ANALYZE-SKIP(<rule>) on the line or the comment block above —
    only honored outside src/ (inside, the token itself is flagged by
    check_suppressions)."""
    if _in_dirs(rel, ("src",)):
        return False

    def matches(line: str) -> bool:
        m = SKIP_RE.search(line)
        return bool(m) and m.group(1) == rule

    if 1 <= lineno <= len(lines) and matches(lines[lineno - 1]):
        return True
    ln = lineno - 1
    while ln >= 1 and COMMENT_ONLY_RE.match(lines[ln - 1]):
        if matches(lines[ln - 1]):
            return True
        ln -= 1
    return False


def check_suppressions(rel: str, lines: List[str]) -> List[facts.Finding]:
    """ANALYZE-SKIP anywhere under src/ is itself a finding."""
    out: List[facts.Finding] = []
    if not _in_dirs(rel, ("src",)):
        return out
    for ln, line in enumerate(lines, start=1):
        if SKIP_RE.search(line):
            out.append(facts.Finding(
                rel, ln, RULE_NO_SUPPRESSION,
                "ANALYZE-SKIP in src/ (suppression budget is zero; fix "
                "the code or use the semantic DETERMINISM:/OWNER: "
                "annotations with a real justification)"))
    return out


def apply_rules(rel: str, file_facts: list,
                lines: List[str]) -> List[facts.Finding]:
    rel = rel.replace(os.sep, "/")
    out: List[facts.Finding] = []

    def emit(line: int, rule: str, message: str, ann: re.Pattern) -> None:
        if _annotated(lines, line, ann):
            return
        if _skipped(lines, line, rule, rel):
            return
        out.append(facts.Finding(rel, line, rule, message))

    for f in file_facts:
        if isinstance(f, facts.UnorderedIter):
            if not _in_dirs(rel, DETERMINISM_DIRS):
                continue
            how = ("range-for over" if f.how == "range-for"
                   else "iterator walk (begin()) over")
            emit(f.line, RULE_NONDET_ITER,
                 f"{how} unordered container `{f.expr}`: iteration order "
                 "is unspecified and must not reach an output, hash, or "
                 "reduce; iterate a sorted view or annotate "
                 "// DETERMINISM: <why>", DETERMINISM_RE)
        elif isinstance(f, facts.SortCall):
            if not _in_dirs(rel, DETERMINISM_DIRS):
                continue
            if f.fn != "sort" or f.nargs < 3:
                continue  # stable_sort / default operator< are tie-safe
            emit(f.line, RULE_SORT_TIES,
                 "std::sort with a custom comparator: element order on "
                 "comparator ties is unspecified; make the comparator a "
                 "total order (unique tie-break), use std::stable_sort, "
                 "or annotate // DETERMINISM: <total-order argument>",
                 DETERMINISM_RE)
        elif isinstance(f, facts.ViewMember):
            if not _in_dirs(rel, VIEW_DIRS):
                continue
            emit(f.line, RULE_VIEW_ESCAPE,
                 f"non-owning view stored in member `{f.member}` "
                 f"({f.type_spelling}): annotate // OWNER: <field> naming "
                 "the keep-alive that outlives it, or own the data",
                 OWNER_RE)
        elif isinstance(f, facts.RefCapturePool):
            if not _in_dirs(rel, VIEW_DIRS):
                continue
            if _in_dirs(rel, POOL_CAPTURE_EXEMPT):
                continue
            emit(f.line, RULE_VIEW_ESCAPE,
                 f"by-reference lambda capture passed to {f.callee}(): "
                 "submitted work can outlive the submitting frame; "
                 "capture by value / shared_ptr, or annotate "
                 "// OWNER: <what joins before the referents die>",
                 OWNER_RE)
        elif isinstance(f, facts.RandomSeed):
            if not _in_dirs(rel, RANDOM_DIRS):
                continue
            emit(f.line, RULE_RANDOMNESS,
                 f"nondeterministic randomness source ({f.what}): seed "
                 "explicitly (fixed or options-threaded) so runs are "
                 "reproducible, or annotate // DETERMINISM: <why>",
                 DETERMINISM_RE)

    out.extend(check_suppressions(rel, lines))
    # Dedup (two backends or overlapping facts can double-report).
    seen = set()
    uniq: List[facts.Finding] = []
    for f in sorted(out, key=lambda x: (x.path, x.line, x.rule)):
        key = (f.path, f.line, f.rule)
        if key not in seen:
            seen.add(key)
            uniq.append(f)
    return uniq
