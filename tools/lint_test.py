#!/usr/bin/env python3
"""Tests for tools/lint.py against the checked-in fixtures.

Copies tools/lint_fixtures/ into a temporary fake repo root, runs
lint.py --root over it as a subprocess (the same way CI and ctest run
it), and asserts:

  * every planted violation fires, with the right rule, file, and line;
  * nothing else fires (clean fixtures and scope-exempt files stay
    silent);
  * the exit code is 1 with findings and 0 for a clean tree.

Run directly or via `ctest -L lint`.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(TOOLS_DIR, "lint.py")
FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")

# (relative path, line, rule) — must match the VIOLATION markers in the
# fixture files exactly. Update both together.
EXPECTED = {
    ("src/demo/violations.cc", 3, "cc-include"),
    ("src/demo/violations.cc", 12, "naked-mutex"),
    ("src/demo/violations.cc", 16, "detach"),
    ("src/demo/violations.cc", 17, "sleep-sync"),
    ("src/demo/violations.cc", 21, "discarded-status"),
    ("src/demo/violations.cc", 22, "discarded-status"),
    ("src/demo/violations.cc", 25, "no-suppression"),
    ("src/demo/violations.cc", 26, "no-suppression"),
    ("src/demo/rand_violations.cc", 11, "rand-seed"),
    ("src/demo/rand_violations.cc", 16, "rand-seed"),
    ("src/demo/rand_violations.cc", 17, "rand-seed"),
    ("src/demo/rand_violations.cc", 21, "rand-seed"),
    ("bench/bench_rand.cc", 8, "rand-seed"),
    ("tools/tool_violation.cc", 8, "naked-mutex"),
    ("tools/tool_violation.cc", 12, "detach"),
}

# Files that must produce zero findings despite containing tokens the
# rules look for (scope exemptions and clean idiom).
MUST_BE_SILENT = (
    "src/demo/clean.cc",
    "src/util/allowed.cc",
    "tests/test_allowed.cc",
)


def run_lint(root: str):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root],
        capture_output=True, text=True)
    findings = set()
    for line in proc.stdout.splitlines():
        # path:line: [rule] message
        head, _, rest = line.partition(": [")
        rule = rest.split("]", 1)[0]
        path, _, lineno = head.rpartition(":")
        findings.add((path.replace(os.sep, "/"), int(lineno), rule))
    return proc.returncode, findings, proc


def fail(msg: str, proc) -> None:
    sys.stderr.write(f"FAIL: {msg}\n")
    sys.stderr.write("--- lint stdout ---\n" + proc.stdout)
    sys.stderr.write("--- lint stderr ---\n" + proc.stderr)
    sys.exit(1)


def main() -> int:
    failures = 0

    with tempfile.TemporaryDirectory(prefix="schemex_lint_test_") as tmp:
        # Fixture tree with planted violations.
        shutil.copytree(FIXTURES, tmp, dirs_exist_ok=True)
        rc, findings, proc = run_lint(tmp)

        if rc != 1:
            fail(f"expected exit 1 on fixture tree, got {rc}", proc)
        missing = EXPECTED - findings
        if missing:
            fail(f"planted violations did not fire: {sorted(missing)}", proc)
        extra = findings - EXPECTED
        if extra:
            fail(f"unexpected findings: {sorted(extra)}", proc)
        noisy = [f for f in findings if f[0] in MUST_BE_SILENT]
        if noisy:
            fail(f"findings in must-be-silent files: {sorted(noisy)}", proc)
        print(f"fixture tree: all {len(EXPECTED)} planted violations "
              "fired, nothing else")

    with tempfile.TemporaryDirectory(prefix="schemex_lint_test_") as tmp:
        # Clean tree: the same fixtures minus the violation files.
        shutil.copytree(FIXTURES, tmp, dirs_exist_ok=True)
        os.remove(os.path.join(tmp, "src", "demo", "violations.cc"))
        os.remove(os.path.join(tmp, "src", "demo", "rand_violations.cc"))
        os.remove(os.path.join(tmp, "bench", "bench_rand.cc"))
        os.remove(os.path.join(tmp, "tools", "tool_violation.cc"))
        rc, findings, proc = run_lint(tmp)
        if rc != 0 or findings:
            fail(f"expected clean pass, got exit {rc}, "
                 f"findings {sorted(findings)}", proc)
        print("clean tree: exit 0, no findings")

    if failures:
        return 1
    print("lint_test: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
