#!/usr/bin/env python3
"""schemex repo lint: invariants clang-tidy cannot express.

Rules (see docs/static-analysis.md for rationale and policy):

  cc-include        No `#include` of a `.cc` file, anywhere.
  naked-mutex       No `std::mutex` / `std::shared_mutex` /
                    `std::condition_variable[_any]` / std lock guards
                    outside `src/util/` — everything locks through the
                    capability-annotated wrappers in
                    `util/thread_annotations.h`, so Clang's
                    -Wthread-safety analysis can see it. Applies to
                    `src/` and `tools/` (tests may use std primitives
                    for harness scaffolding).
  detach            No `std::thread::detach()` in `src/` or `tools/`:
                    every thread must be joined, or shutdown can race
                    teardown.
  sleep-sync        No `sleep_for` / `sleep_until` / `usleep` in `src/`:
                    sleeping is not synchronization; use a CondVar,
                    future, or poll() timeout.
  discarded-status  A bare-expression call to a function declared (in a
                    src/ header) to return util::Status or
                    util::StatusOr must consume the result. The compiler
                    enforces this via [[nodiscard]]; the lint also bans
                    the `(void)` escape hatch so the build flag cannot
                    be silenced call-site by call-site.
  no-suppression    No thread-safety / TSan / lint suppression tokens in
                    `src/`: NO_THREAD_SAFETY_ANALYSIS,
                    no_sanitize("thread"), NOLINT without a rule name,
                    or SCHEMEX_LINT_SKIP. The suppression budget for
                    src/ is zero (docs/static-analysis.md).
  rand-seed         No nondeterministically seeded randomness in `src/`
                    or `bench/`: std::random_device, srand()/rand(), or
                    an engine seeded from a clock. Extraction is
                    deterministic end-to-end and benchmark rows must
                    reproduce; take an explicit seed instead. (tools/
                    is covered by the deeper unseeded-randomness rule
                    in tools/analyze/.)

Usage:
  lint.py [--root DIR] [FILE...]   lint the repo (or just FILE...)
  exit 0 = clean, 1 = findings (one "path:line: [rule] message" per line)
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterable, List, NamedTuple

LINT_DIRS = ("src", "tools", "tests", "bench", "examples")
CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Blanks out string/char literals and // comments (keeps length)."""
    out: List[str] = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def relpath(path: str, root: str) -> str:
    try:
        return os.path.relpath(path, root)
    except ValueError:
        return path


def in_dir(rel: str, *dirs: str) -> bool:
    parts = rel.replace(os.sep, "/").split("/")
    return bool(parts) and parts[0] in dirs


# --- discarded-status support -------------------------------------------

STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:util::|::schemex::util::|schemex::util::)?"
    r"Status(?:Or<[^;=]*>)?\s+(?:[A-Za-z_]\w*::)*([A-Z]\w*)\s*\("
)


def collect_status_functions(root: str) -> set:
    """Names of functions declared in src/ headers returning Status[Or]."""
    names = set()
    src = os.path.join(root, "src")
    for dirpath, _, files in os.walk(src):
        for f in files:
            if not f.endswith((".h", ".hpp")):
                continue
            try:
                text = open(os.path.join(dirpath, f), encoding="utf-8",
                            errors="replace").read()
            except OSError:
                continue
            for line in text.splitlines():
                m = STATUS_DECL_RE.match(line)
                if m:
                    names.add(m.group(1))
    return names


# A bare statement `Foo(...);` or `obj.Foo(...);` / `ptr->Foo(...);`
# whose result vanishes. Requires the full call on one line (the common
# case); multi-line discards are caught by the compiler's [[nodiscard]].
def bare_call_re(name: str) -> re.Pattern:
    return re.compile(
        r"^\s*(?:\(void\)\s*)?(?:[A-Za-z_]\w*(?:::|\.|->))*" + name +
        r"\s*\(.*\)\s*;\s*$"
    )


VOID_CAST_RE = re.compile(r"\(void\)\s*[A-Za-z_]")

SUPPRESSION_TOKENS = (
    "NO_THREAD_SAFETY_ANALYSIS",
    "no_thread_safety_analysis",
    'no_sanitize("thread")',
    "no_sanitize_thread",
    "SCHEMEX_LINT_SKIP",
)

NAKED_MUTEX_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b"
)

SLEEP_RE = re.compile(r"\b(?:sleep_for|sleep_until|usleep)\s*\(")

DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")

CC_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<][^">]+\.cc[">]')

NOLINT_BARE_RE = re.compile(r"//\s*NOLINT\s*($|[^(])")

# rand-seed: each pattern is one way nondeterminism sneaks into a seed.
# BARE_RAND_RE's lookbehind keeps `strand(`, `.rand(`, `->rand(` (member
# functions on other types) from matching; `srand(` is its own pattern.
RANDOM_DEVICE_RE = re.compile(r"\bstd::random_device\b")
SRAND_RE = re.compile(r"\bsrand\s*\(")
BARE_RAND_RE = re.compile(r"(?<![\w.>])rand\s*\(\s*\)")
CLOCK_SEED_RE = re.compile(
    r"\b(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux\w+|knuth_b)\b[^;]*(?:\btime\s*\(|::now\s*\()")


def lint_file(path: str, rel: str, status_fns: set,
              status_res: dict) -> Iterable[Finding]:
    try:
        text = open(path, encoding="utf-8", errors="replace").read()
    except OSError as e:
        yield Finding(rel, 0, "io", f"cannot read: {e}")
        return

    rel_posix = rel.replace(os.sep, "/")
    is_src = in_dir(rel, "src")
    is_src_or_tools = in_dir(rel, "src", "tools")
    is_src_or_bench = in_dir(rel, "src", "bench")
    is_util = rel_posix.startswith("src/util/")

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = strip_comments_and_strings(raw)

        # Match against the raw line: the include path is a string
        # literal, which strip_comments_and_strings blanks out.
        if CC_INCLUDE_RE.match(raw):
            yield Finding(rel, lineno, "cc-include",
                          "#include of a .cc file")

        if is_src_or_tools and not is_util:
            if NAKED_MUTEX_RE.search(line):
                yield Finding(
                    rel, lineno, "naked-mutex",
                    "naked std locking primitive outside src/util/; use "
                    "util::Mutex / util::MutexLock / util::CondVar from "
                    "util/thread_annotations.h")

        if is_src_or_tools and DETACH_RE.search(line):
            yield Finding(rel, lineno, "detach",
                          "detached thread; join it instead")

        if is_src and SLEEP_RE.search(line):
            yield Finding(
                rel, lineno, "sleep-sync",
                "sleeping is not synchronization; wait on a CondVar, "
                "future, or poll() timeout")

        if is_src:
            for token in SUPPRESSION_TOKENS:
                if token in raw:
                    yield Finding(
                        rel, lineno, "no-suppression",
                        f"suppression token {token!r} in src/ (policy: "
                        "zero suppressions; fix the code instead)")
            if NOLINT_BARE_RE.search(raw):
                yield Finding(
                    rel, lineno, "no-suppression",
                    "bare NOLINT in src/; at minimum name the rule "
                    "(NOLINT(<check>)) outside src/, fix the code inside")

        if is_src_or_bench:
            if RANDOM_DEVICE_RE.search(line):
                yield Finding(
                    rel, lineno, "rand-seed",
                    "std::random_device is nondeterministic; take an "
                    "explicit seed (results must reproduce)")
            if SRAND_RE.search(line) or BARE_RAND_RE.search(line):
                yield Finding(
                    rel, lineno, "rand-seed",
                    "C srand()/rand() (global state, unspecified "
                    "algorithm); use a seeded <random> engine")
            if CLOCK_SEED_RE.search(line):
                yield Finding(
                    rel, lineno, "rand-seed",
                    "RNG engine seeded from a clock; take an explicit "
                    "seed (results must reproduce)")

        if is_src_or_tools:
            stripped = line.strip()
            # A continuation line of a multi-line call or macro argument
            # list (e.g. the second line of SCHEMEX_ASSIGN_OR_RETURN)
            # has unbalanced parens; a genuine bare-statement call is
            # balanced on its own line.
            if stripped.count("(") != stripped.count(")"):
                continue
            for name in status_fns:
                regex = status_res.setdefault(name, bare_call_re(name))
                if regex.match(stripped):
                    if stripped.startswith("(void)"):
                        yield Finding(
                            rel, lineno, "discarded-status",
                            f"(void)-cast of Status-returning {name}(); "
                            "handle or propagate the status")
                    else:
                        yield Finding(
                            rel, lineno, "discarded-status",
                            f"result of Status-returning {name}() is "
                            "discarded")
                    break


def iter_repo_files(root: str) -> Iterable[str]:
    for top in LINT_DIRS:
        base = os.path.join(root, top)
        for dirpath, dirnames, files in os.walk(base):
            # Fixture trees (ours and tools/analyze/'s) are planted
            # violations by design.
            dirnames[:] = [d for d in dirnames
                           if d not in ("lint_fixtures", "fixtures")]
            for f in sorted(files):
                if f.endswith(CXX_EXTENSIONS):
                    yield os.path.join(dirpath, f)


def main(argv: List[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("files", nargs="*",
                    help="specific files (default: whole repo)")
    args = ap.parse_args(argv)

    status_fns = collect_status_functions(args.root)
    # Names whose bare call is legitimately common and whose result is a
    # value, not a Status, in other scopes, would go here; currently the
    # src/ headers produce no such collisions.
    status_res: dict = {}

    paths = args.files or list(iter_repo_files(args.root))
    findings: List[Finding] = []
    for path in paths:
        rel = relpath(os.path.abspath(path), args.root)
        findings.extend(lint_file(path, rel, status_fns, status_res))

    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
