# Empty dependencies file for bench_psi_ablation.
# This may be replaced when dependencies are built.
