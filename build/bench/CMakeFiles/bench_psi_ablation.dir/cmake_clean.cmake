file(REMOVE_RECURSE
  "CMakeFiles/bench_psi_ablation.dir/bench_psi_ablation.cc.o"
  "CMakeFiles/bench_psi_ablation.dir/bench_psi_ablation.cc.o.d"
  "bench_psi_ablation"
  "bench_psi_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psi_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
