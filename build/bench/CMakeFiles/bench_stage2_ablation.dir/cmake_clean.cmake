file(REMOVE_RECURSE
  "CMakeFiles/bench_stage2_ablation.dir/bench_stage2_ablation.cc.o"
  "CMakeFiles/bench_stage2_ablation.dir/bench_stage2_ablation.cc.o.d"
  "bench_stage2_ablation"
  "bench_stage2_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stage2_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
