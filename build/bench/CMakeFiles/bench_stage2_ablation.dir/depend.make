# Empty dependencies file for bench_stage2_ablation.
# This may be replaced when dependencies are built.
