file(REMOVE_RECURSE
  "CMakeFiles/bench_cutoff.dir/bench_cutoff.cc.o"
  "CMakeFiles/bench_cutoff.dir/bench_cutoff.cc.o.d"
  "bench_cutoff"
  "bench_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
