file(REMOVE_RECURSE
  "CMakeFiles/typing_program_test.dir/typing_program_test.cc.o"
  "CMakeFiles/typing_program_test.dir/typing_program_test.cc.o.d"
  "typing_program_test"
  "typing_program_test.pdb"
  "typing_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typing_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
