# Empty compiler generated dependencies file for program_io_test.
# This may be replaced when dependencies are built.
