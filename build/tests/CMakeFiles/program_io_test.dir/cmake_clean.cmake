file(REMOVE_RECURSE
  "CMakeFiles/program_io_test.dir/program_io_test.cc.o"
  "CMakeFiles/program_io_test.dir/program_io_test.cc.o.d"
  "program_io_test"
  "program_io_test.pdb"
  "program_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
