file(REMOVE_RECURSE
  "CMakeFiles/prior_report_test.dir/prior_report_test.cc.o"
  "CMakeFiles/prior_report_test.dir/prior_report_test.cc.o.d"
  "prior_report_test"
  "prior_report_test.pdb"
  "prior_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prior_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
