# Empty dependencies file for prior_report_test.
# This may be replaced when dependencies are built.
