# Empty dependencies file for diff_sampled_test.
# This may be replaced when dependencies are built.
