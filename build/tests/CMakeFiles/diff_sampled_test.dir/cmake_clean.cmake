file(REMOVE_RECURSE
  "CMakeFiles/diff_sampled_test.dir/diff_sampled_test.cc.o"
  "CMakeFiles/diff_sampled_test.dir/diff_sampled_test.cc.o.d"
  "diff_sampled_test"
  "diff_sampled_test.pdb"
  "diff_sampled_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_sampled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
