# Empty compiler generated dependencies file for perfect_typing_test.
# This may be replaced when dependencies are built.
