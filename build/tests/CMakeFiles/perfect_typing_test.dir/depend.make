# Empty dependencies file for perfect_typing_test.
# This may be replaced when dependencies are built.
