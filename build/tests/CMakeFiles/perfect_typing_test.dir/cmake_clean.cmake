file(REMOVE_RECURSE
  "CMakeFiles/perfect_typing_test.dir/perfect_typing_test.cc.o"
  "CMakeFiles/perfect_typing_test.dir/perfect_typing_test.cc.o.d"
  "perfect_typing_test"
  "perfect_typing_test.pdb"
  "perfect_typing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfect_typing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
