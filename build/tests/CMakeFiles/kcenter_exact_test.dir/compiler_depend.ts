# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for kcenter_exact_test.
