# Empty dependencies file for kcenter_exact_test.
# This may be replaced when dependencies are built.
