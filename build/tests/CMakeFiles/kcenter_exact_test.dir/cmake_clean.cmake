file(REMOVE_RECURSE
  "CMakeFiles/kcenter_exact_test.dir/kcenter_exact_test.cc.o"
  "CMakeFiles/kcenter_exact_test.dir/kcenter_exact_test.cc.o.d"
  "kcenter_exact_test"
  "kcenter_exact_test.pdb"
  "kcenter_exact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcenter_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
