file(REMOVE_RECURSE
  "CMakeFiles/greedy_reference_test.dir/greedy_reference_test.cc.o"
  "CMakeFiles/greedy_reference_test.dir/greedy_reference_test.cc.o.d"
  "greedy_reference_test"
  "greedy_reference_test.pdb"
  "greedy_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
