# Empty dependencies file for greedy_reference_test.
# This may be replaced when dependencies are built.
