
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/defect_test.cc" "tests/CMakeFiles/defect_test.dir/defect_test.cc.o" "gcc" "tests/CMakeFiles/defect_test.dir/defect_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/schemex_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/schemex_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/typing/CMakeFiles/schemex_typing.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/schemex_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/schemex_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/schemex_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/schemex_json.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/schemex_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/schemex_query.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/schemex_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/schemex_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/schemex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/schemex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
