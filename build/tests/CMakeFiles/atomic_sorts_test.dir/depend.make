# Empty dependencies file for atomic_sorts_test.
# This may be replaced when dependencies are built.
