file(REMOVE_RECURSE
  "CMakeFiles/atomic_sorts_test.dir/atomic_sorts_test.cc.o"
  "CMakeFiles/atomic_sorts_test.dir/atomic_sorts_test.cc.o.d"
  "atomic_sorts_test"
  "atomic_sorts_test.pdb"
  "atomic_sorts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_sorts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
