# Empty dependencies file for recast_test.
# This may be replaced when dependencies are built.
