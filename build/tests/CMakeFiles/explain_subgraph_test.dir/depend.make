# Empty dependencies file for explain_subgraph_test.
# This may be replaced when dependencies are built.
