file(REMOVE_RECURSE
  "CMakeFiles/explain_subgraph_test.dir/explain_subgraph_test.cc.o"
  "CMakeFiles/explain_subgraph_test.dir/explain_subgraph_test.cc.o.d"
  "explain_subgraph_test"
  "explain_subgraph_test.pdb"
  "explain_subgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_subgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
