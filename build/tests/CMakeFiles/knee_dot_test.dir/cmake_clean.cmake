file(REMOVE_RECURSE
  "CMakeFiles/knee_dot_test.dir/knee_dot_test.cc.o"
  "CMakeFiles/knee_dot_test.dir/knee_dot_test.cc.o.d"
  "knee_dot_test"
  "knee_dot_test.pdb"
  "knee_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knee_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
