# Empty compiler generated dependencies file for knee_dot_test.
# This may be replaced when dependencies are built.
