# Empty dependencies file for schemex_extract.
# This may be replaced when dependencies are built.
