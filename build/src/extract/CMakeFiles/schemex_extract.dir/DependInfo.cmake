
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/extractor.cc" "src/extract/CMakeFiles/schemex_extract.dir/extractor.cc.o" "gcc" "src/extract/CMakeFiles/schemex_extract.dir/extractor.cc.o.d"
  "/root/repo/src/extract/knee.cc" "src/extract/CMakeFiles/schemex_extract.dir/knee.cc.o" "gcc" "src/extract/CMakeFiles/schemex_extract.dir/knee.cc.o.d"
  "/root/repo/src/extract/prior.cc" "src/extract/CMakeFiles/schemex_extract.dir/prior.cc.o" "gcc" "src/extract/CMakeFiles/schemex_extract.dir/prior.cc.o.d"
  "/root/repo/src/extract/sampled.cc" "src/extract/CMakeFiles/schemex_extract.dir/sampled.cc.o" "gcc" "src/extract/CMakeFiles/schemex_extract.dir/sampled.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/schemex_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/typing/CMakeFiles/schemex_typing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/schemex_util.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/schemex_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/schemex_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
