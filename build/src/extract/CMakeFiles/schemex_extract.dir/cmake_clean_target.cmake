file(REMOVE_RECURSE
  "libschemex_extract.a"
)
