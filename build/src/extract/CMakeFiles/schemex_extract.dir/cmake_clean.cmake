file(REMOVE_RECURSE
  "CMakeFiles/schemex_extract.dir/extractor.cc.o"
  "CMakeFiles/schemex_extract.dir/extractor.cc.o.d"
  "CMakeFiles/schemex_extract.dir/knee.cc.o"
  "CMakeFiles/schemex_extract.dir/knee.cc.o.d"
  "CMakeFiles/schemex_extract.dir/prior.cc.o"
  "CMakeFiles/schemex_extract.dir/prior.cc.o.d"
  "CMakeFiles/schemex_extract.dir/sampled.cc.o"
  "CMakeFiles/schemex_extract.dir/sampled.cc.o.d"
  "libschemex_extract.a"
  "libschemex_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
