# Empty compiler generated dependencies file for schemex_xml.
# This may be replaced when dependencies are built.
