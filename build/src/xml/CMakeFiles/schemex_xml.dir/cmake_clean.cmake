file(REMOVE_RECURSE
  "CMakeFiles/schemex_xml.dir/import.cc.o"
  "CMakeFiles/schemex_xml.dir/import.cc.o.d"
  "CMakeFiles/schemex_xml.dir/xml.cc.o"
  "CMakeFiles/schemex_xml.dir/xml.cc.o.d"
  "libschemex_xml.a"
  "libschemex_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
