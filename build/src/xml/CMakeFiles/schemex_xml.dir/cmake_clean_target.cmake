file(REMOVE_RECURSE
  "libschemex_xml.a"
)
