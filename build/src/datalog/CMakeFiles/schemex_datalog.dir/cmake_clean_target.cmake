file(REMOVE_RECURSE
  "libschemex_datalog.a"
)
