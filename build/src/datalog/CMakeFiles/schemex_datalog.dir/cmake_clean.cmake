file(REMOVE_RECURSE
  "CMakeFiles/schemex_datalog.dir/ast.cc.o"
  "CMakeFiles/schemex_datalog.dir/ast.cc.o.d"
  "CMakeFiles/schemex_datalog.dir/evaluator.cc.o"
  "CMakeFiles/schemex_datalog.dir/evaluator.cc.o.d"
  "CMakeFiles/schemex_datalog.dir/parser.cc.o"
  "CMakeFiles/schemex_datalog.dir/parser.cc.o.d"
  "CMakeFiles/schemex_datalog.dir/printer.cc.o"
  "CMakeFiles/schemex_datalog.dir/printer.cc.o.d"
  "libschemex_datalog.a"
  "libschemex_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
