# Empty dependencies file for schemex_datalog.
# This may be replaced when dependencies are built.
