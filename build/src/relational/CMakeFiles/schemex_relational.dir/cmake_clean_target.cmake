file(REMOVE_RECURSE
  "libschemex_relational.a"
)
