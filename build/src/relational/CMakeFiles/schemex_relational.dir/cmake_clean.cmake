file(REMOVE_RECURSE
  "CMakeFiles/schemex_relational.dir/csv.cc.o"
  "CMakeFiles/schemex_relational.dir/csv.cc.o.d"
  "CMakeFiles/schemex_relational.dir/import.cc.o"
  "CMakeFiles/schemex_relational.dir/import.cc.o.d"
  "libschemex_relational.a"
  "libschemex_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
