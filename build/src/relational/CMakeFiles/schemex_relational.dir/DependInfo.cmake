
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/csv.cc" "src/relational/CMakeFiles/schemex_relational.dir/csv.cc.o" "gcc" "src/relational/CMakeFiles/schemex_relational.dir/csv.cc.o.d"
  "/root/repo/src/relational/import.cc" "src/relational/CMakeFiles/schemex_relational.dir/import.cc.o" "gcc" "src/relational/CMakeFiles/schemex_relational.dir/import.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/schemex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/schemex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
