# Empty dependencies file for schemex_relational.
# This may be replaced when dependencies are built.
