file(REMOVE_RECURSE
  "libschemex_catalog.a"
)
