# Empty compiler generated dependencies file for schemex_catalog.
# This may be replaced when dependencies are built.
