file(REMOVE_RECURSE
  "CMakeFiles/schemex_catalog.dir/report.cc.o"
  "CMakeFiles/schemex_catalog.dir/report.cc.o.d"
  "CMakeFiles/schemex_catalog.dir/workspace.cc.o"
  "CMakeFiles/schemex_catalog.dir/workspace.cc.o.d"
  "libschemex_catalog.a"
  "libschemex_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
