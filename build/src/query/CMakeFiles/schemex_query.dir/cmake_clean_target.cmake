file(REMOVE_RECURSE
  "libschemex_query.a"
)
