# Empty compiler generated dependencies file for schemex_query.
# This may be replaced when dependencies are built.
