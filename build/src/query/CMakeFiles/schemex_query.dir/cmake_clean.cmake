file(REMOVE_RECURSE
  "CMakeFiles/schemex_query.dir/path_query.cc.o"
  "CMakeFiles/schemex_query.dir/path_query.cc.o.d"
  "CMakeFiles/schemex_query.dir/schema_guide.cc.o"
  "CMakeFiles/schemex_query.dir/schema_guide.cc.o.d"
  "libschemex_query.a"
  "libschemex_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
