file(REMOVE_RECURSE
  "libschemex_util.a"
)
