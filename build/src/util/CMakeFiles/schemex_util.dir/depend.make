# Empty dependencies file for schemex_util.
# This may be replaced when dependencies are built.
