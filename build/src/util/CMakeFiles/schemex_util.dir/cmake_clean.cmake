file(REMOVE_RECURSE
  "CMakeFiles/schemex_util.dir/random.cc.o"
  "CMakeFiles/schemex_util.dir/random.cc.o.d"
  "CMakeFiles/schemex_util.dir/status.cc.o"
  "CMakeFiles/schemex_util.dir/status.cc.o.d"
  "CMakeFiles/schemex_util.dir/string_util.cc.o"
  "CMakeFiles/schemex_util.dir/string_util.cc.o.d"
  "CMakeFiles/schemex_util.dir/table_printer.cc.o"
  "CMakeFiles/schemex_util.dir/table_printer.cc.o.d"
  "libschemex_util.a"
  "libschemex_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
