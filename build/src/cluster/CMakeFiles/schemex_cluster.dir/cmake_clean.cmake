file(REMOVE_RECURSE
  "CMakeFiles/schemex_cluster.dir/distance.cc.o"
  "CMakeFiles/schemex_cluster.dir/distance.cc.o.d"
  "CMakeFiles/schemex_cluster.dir/exact.cc.o"
  "CMakeFiles/schemex_cluster.dir/exact.cc.o.d"
  "CMakeFiles/schemex_cluster.dir/greedy.cc.o"
  "CMakeFiles/schemex_cluster.dir/greedy.cc.o.d"
  "CMakeFiles/schemex_cluster.dir/kcenter.cc.o"
  "CMakeFiles/schemex_cluster.dir/kcenter.cc.o.d"
  "libschemex_cluster.a"
  "libschemex_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
