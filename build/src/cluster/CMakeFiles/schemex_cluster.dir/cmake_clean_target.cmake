file(REMOVE_RECURSE
  "libschemex_cluster.a"
)
