# Empty dependencies file for schemex_cluster.
# This may be replaced when dependencies are built.
