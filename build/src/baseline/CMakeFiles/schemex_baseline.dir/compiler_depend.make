# Empty compiler generated dependencies file for schemex_baseline.
# This may be replaced when dependencies are built.
