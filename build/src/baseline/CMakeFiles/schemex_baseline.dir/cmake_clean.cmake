file(REMOVE_RECURSE
  "CMakeFiles/schemex_baseline.dir/dataguide.cc.o"
  "CMakeFiles/schemex_baseline.dir/dataguide.cc.o.d"
  "CMakeFiles/schemex_baseline.dir/rep_objects.cc.o"
  "CMakeFiles/schemex_baseline.dir/rep_objects.cc.o.d"
  "libschemex_baseline.a"
  "libschemex_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
