file(REMOVE_RECURSE
  "libschemex_baseline.a"
)
