file(REMOVE_RECURSE
  "CMakeFiles/schemex_graph.dir/data_graph.cc.o"
  "CMakeFiles/schemex_graph.dir/data_graph.cc.o.d"
  "CMakeFiles/schemex_graph.dir/graph_builder.cc.o"
  "CMakeFiles/schemex_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/schemex_graph.dir/graph_io.cc.o"
  "CMakeFiles/schemex_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/schemex_graph.dir/graph_stats.cc.o"
  "CMakeFiles/schemex_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/schemex_graph.dir/label.cc.o"
  "CMakeFiles/schemex_graph.dir/label.cc.o.d"
  "CMakeFiles/schemex_graph.dir/merge.cc.o"
  "CMakeFiles/schemex_graph.dir/merge.cc.o.d"
  "CMakeFiles/schemex_graph.dir/subgraph.cc.o"
  "CMakeFiles/schemex_graph.dir/subgraph.cc.o.d"
  "libschemex_graph.a"
  "libschemex_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
