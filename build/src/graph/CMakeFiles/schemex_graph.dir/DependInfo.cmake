
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/data_graph.cc" "src/graph/CMakeFiles/schemex_graph.dir/data_graph.cc.o" "gcc" "src/graph/CMakeFiles/schemex_graph.dir/data_graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/schemex_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/schemex_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/schemex_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/schemex_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/schemex_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/schemex_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/label.cc" "src/graph/CMakeFiles/schemex_graph.dir/label.cc.o" "gcc" "src/graph/CMakeFiles/schemex_graph.dir/label.cc.o.d"
  "/root/repo/src/graph/merge.cc" "src/graph/CMakeFiles/schemex_graph.dir/merge.cc.o" "gcc" "src/graph/CMakeFiles/schemex_graph.dir/merge.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/schemex_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/schemex_graph.dir/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/schemex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
