# Empty dependencies file for schemex_graph.
# This may be replaced when dependencies are built.
