file(REMOVE_RECURSE
  "libschemex_graph.a"
)
