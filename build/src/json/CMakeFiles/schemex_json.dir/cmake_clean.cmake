file(REMOVE_RECURSE
  "CMakeFiles/schemex_json.dir/import.cc.o"
  "CMakeFiles/schemex_json.dir/import.cc.o.d"
  "CMakeFiles/schemex_json.dir/json.cc.o"
  "CMakeFiles/schemex_json.dir/json.cc.o.d"
  "libschemex_json.a"
  "libschemex_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
