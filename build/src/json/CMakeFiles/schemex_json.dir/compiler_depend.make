# Empty compiler generated dependencies file for schemex_json.
# This may be replaced when dependencies are built.
