file(REMOVE_RECURSE
  "libschemex_json.a"
)
