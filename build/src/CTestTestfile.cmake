# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("graph")
subdirs("datalog")
subdirs("typing")
subdirs("cluster")
subdirs("extract")
subdirs("gen")
subdirs("baseline")
subdirs("json")
subdirs("relational")
subdirs("query")
subdirs("xml")
subdirs("catalog")
