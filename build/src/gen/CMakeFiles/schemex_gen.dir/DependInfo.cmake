
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/dbg.cc" "src/gen/CMakeFiles/schemex_gen.dir/dbg.cc.o" "gcc" "src/gen/CMakeFiles/schemex_gen.dir/dbg.cc.o.d"
  "/root/repo/src/gen/perturb.cc" "src/gen/CMakeFiles/schemex_gen.dir/perturb.cc.o" "gcc" "src/gen/CMakeFiles/schemex_gen.dir/perturb.cc.o.d"
  "/root/repo/src/gen/random_graph.cc" "src/gen/CMakeFiles/schemex_gen.dir/random_graph.cc.o" "gcc" "src/gen/CMakeFiles/schemex_gen.dir/random_graph.cc.o.d"
  "/root/repo/src/gen/spec.cc" "src/gen/CMakeFiles/schemex_gen.dir/spec.cc.o" "gcc" "src/gen/CMakeFiles/schemex_gen.dir/spec.cc.o.d"
  "/root/repo/src/gen/table1.cc" "src/gen/CMakeFiles/schemex_gen.dir/table1.cc.o" "gcc" "src/gen/CMakeFiles/schemex_gen.dir/table1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/schemex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/schemex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
