# Empty dependencies file for schemex_gen.
# This may be replaced when dependencies are built.
