file(REMOVE_RECURSE
  "libschemex_gen.a"
)
