file(REMOVE_RECURSE
  "CMakeFiles/schemex_gen.dir/dbg.cc.o"
  "CMakeFiles/schemex_gen.dir/dbg.cc.o.d"
  "CMakeFiles/schemex_gen.dir/perturb.cc.o"
  "CMakeFiles/schemex_gen.dir/perturb.cc.o.d"
  "CMakeFiles/schemex_gen.dir/random_graph.cc.o"
  "CMakeFiles/schemex_gen.dir/random_graph.cc.o.d"
  "CMakeFiles/schemex_gen.dir/spec.cc.o"
  "CMakeFiles/schemex_gen.dir/spec.cc.o.d"
  "CMakeFiles/schemex_gen.dir/table1.cc.o"
  "CMakeFiles/schemex_gen.dir/table1.cc.o.d"
  "libschemex_gen.a"
  "libschemex_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
