file(REMOVE_RECURSE
  "libschemex_typing.a"
)
