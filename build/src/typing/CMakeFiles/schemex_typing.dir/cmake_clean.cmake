file(REMOVE_RECURSE
  "CMakeFiles/schemex_typing.dir/atomic_sorts.cc.o"
  "CMakeFiles/schemex_typing.dir/atomic_sorts.cc.o.d"
  "CMakeFiles/schemex_typing.dir/defect.cc.o"
  "CMakeFiles/schemex_typing.dir/defect.cc.o.d"
  "CMakeFiles/schemex_typing.dir/dot_export.cc.o"
  "CMakeFiles/schemex_typing.dir/dot_export.cc.o.d"
  "CMakeFiles/schemex_typing.dir/explain.cc.o"
  "CMakeFiles/schemex_typing.dir/explain.cc.o.d"
  "CMakeFiles/schemex_typing.dir/gfp.cc.o"
  "CMakeFiles/schemex_typing.dir/gfp.cc.o.d"
  "CMakeFiles/schemex_typing.dir/incremental.cc.o"
  "CMakeFiles/schemex_typing.dir/incremental.cc.o.d"
  "CMakeFiles/schemex_typing.dir/perfect_typing.cc.o"
  "CMakeFiles/schemex_typing.dir/perfect_typing.cc.o.d"
  "CMakeFiles/schemex_typing.dir/program_diff.cc.o"
  "CMakeFiles/schemex_typing.dir/program_diff.cc.o.d"
  "CMakeFiles/schemex_typing.dir/program_io.cc.o"
  "CMakeFiles/schemex_typing.dir/program_io.cc.o.d"
  "CMakeFiles/schemex_typing.dir/recast.cc.o"
  "CMakeFiles/schemex_typing.dir/recast.cc.o.d"
  "CMakeFiles/schemex_typing.dir/roles.cc.o"
  "CMakeFiles/schemex_typing.dir/roles.cc.o.d"
  "CMakeFiles/schemex_typing.dir/type_signature.cc.o"
  "CMakeFiles/schemex_typing.dir/type_signature.cc.o.d"
  "CMakeFiles/schemex_typing.dir/typed_link.cc.o"
  "CMakeFiles/schemex_typing.dir/typed_link.cc.o.d"
  "CMakeFiles/schemex_typing.dir/typing_program.cc.o"
  "CMakeFiles/schemex_typing.dir/typing_program.cc.o.d"
  "libschemex_typing.a"
  "libschemex_typing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemex_typing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
