# Empty compiler generated dependencies file for schemex_typing.
# This may be replaced when dependencies are built.
