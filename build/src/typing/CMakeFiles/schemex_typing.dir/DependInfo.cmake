
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/typing/atomic_sorts.cc" "src/typing/CMakeFiles/schemex_typing.dir/atomic_sorts.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/atomic_sorts.cc.o.d"
  "/root/repo/src/typing/defect.cc" "src/typing/CMakeFiles/schemex_typing.dir/defect.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/defect.cc.o.d"
  "/root/repo/src/typing/dot_export.cc" "src/typing/CMakeFiles/schemex_typing.dir/dot_export.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/dot_export.cc.o.d"
  "/root/repo/src/typing/explain.cc" "src/typing/CMakeFiles/schemex_typing.dir/explain.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/explain.cc.o.d"
  "/root/repo/src/typing/gfp.cc" "src/typing/CMakeFiles/schemex_typing.dir/gfp.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/gfp.cc.o.d"
  "/root/repo/src/typing/incremental.cc" "src/typing/CMakeFiles/schemex_typing.dir/incremental.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/incremental.cc.o.d"
  "/root/repo/src/typing/perfect_typing.cc" "src/typing/CMakeFiles/schemex_typing.dir/perfect_typing.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/perfect_typing.cc.o.d"
  "/root/repo/src/typing/program_diff.cc" "src/typing/CMakeFiles/schemex_typing.dir/program_diff.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/program_diff.cc.o.d"
  "/root/repo/src/typing/program_io.cc" "src/typing/CMakeFiles/schemex_typing.dir/program_io.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/program_io.cc.o.d"
  "/root/repo/src/typing/recast.cc" "src/typing/CMakeFiles/schemex_typing.dir/recast.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/recast.cc.o.d"
  "/root/repo/src/typing/roles.cc" "src/typing/CMakeFiles/schemex_typing.dir/roles.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/roles.cc.o.d"
  "/root/repo/src/typing/type_signature.cc" "src/typing/CMakeFiles/schemex_typing.dir/type_signature.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/type_signature.cc.o.d"
  "/root/repo/src/typing/typed_link.cc" "src/typing/CMakeFiles/schemex_typing.dir/typed_link.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/typed_link.cc.o.d"
  "/root/repo/src/typing/typing_program.cc" "src/typing/CMakeFiles/schemex_typing.dir/typing_program.cc.o" "gcc" "src/typing/CMakeFiles/schemex_typing.dir/typing_program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/schemex_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/schemex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/schemex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
