# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;12;schemex_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_json_schema_inference "/root/repo/build/examples/json_schema_inference")
set_tests_properties(example_json_schema_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;13;schemex_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_website_typing "/root/repo/build/examples/website_typing")
set_tests_properties(example_website_typing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;14;schemex_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_movie_soccer_roles "/root/repo/build/examples/movie_soccer_roles")
set_tests_properties(example_movie_soccer_roles PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;15;schemex_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_typing_tool "/root/repo/build/examples/typing_tool")
set_tests_properties(example_typing_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;16;schemex_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_relational_integration "/root/repo/build/examples/relational_integration")
set_tests_properties(example_relational_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;17;schemex_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schema_evolution "/root/repo/build/examples/schema_evolution")
set_tests_properties(example_schema_evolution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;18;schemex_example;/root/repo/examples/CMakeLists.txt;0;")
