# Empty dependencies file for relational_integration.
# This may be replaced when dependencies are built.
