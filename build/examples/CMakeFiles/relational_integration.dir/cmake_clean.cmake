file(REMOVE_RECURSE
  "CMakeFiles/relational_integration.dir/relational_integration.cpp.o"
  "CMakeFiles/relational_integration.dir/relational_integration.cpp.o.d"
  "relational_integration"
  "relational_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
