file(REMOVE_RECURSE
  "CMakeFiles/typing_tool.dir/typing_tool.cpp.o"
  "CMakeFiles/typing_tool.dir/typing_tool.cpp.o.d"
  "typing_tool"
  "typing_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typing_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
