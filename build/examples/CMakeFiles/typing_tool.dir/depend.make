# Empty dependencies file for typing_tool.
# This may be replaced when dependencies are built.
