# Empty dependencies file for movie_soccer_roles.
# This may be replaced when dependencies are built.
