file(REMOVE_RECURSE
  "CMakeFiles/movie_soccer_roles.dir/movie_soccer_roles.cpp.o"
  "CMakeFiles/movie_soccer_roles.dir/movie_soccer_roles.cpp.o.d"
  "movie_soccer_roles"
  "movie_soccer_roles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_soccer_roles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
