# Empty dependencies file for website_typing.
# This may be replaced when dependencies are built.
