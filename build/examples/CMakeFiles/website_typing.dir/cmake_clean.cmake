file(REMOVE_RECURSE
  "CMakeFiles/website_typing.dir/website_typing.cpp.o"
  "CMakeFiles/website_typing.dir/website_typing.cpp.o.d"
  "website_typing"
  "website_typing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/website_typing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
