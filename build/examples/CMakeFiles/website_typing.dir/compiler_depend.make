# Empty compiler generated dependencies file for website_typing.
# This may be replaced when dependencies are built.
