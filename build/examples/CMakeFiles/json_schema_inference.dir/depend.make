# Empty dependencies file for json_schema_inference.
# This may be replaced when dependencies are built.
