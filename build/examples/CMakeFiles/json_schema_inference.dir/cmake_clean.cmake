file(REMOVE_RECURSE
  "CMakeFiles/json_schema_inference.dir/json_schema_inference.cpp.o"
  "CMakeFiles/json_schema_inference.dir/json_schema_inference.cpp.o.d"
  "json_schema_inference"
  "json_schema_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_schema_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
