// Snapshot load latency vs the text loader: how long until a workspace
// is servable after process start. The snapshot's claim is "no per-edge
// parsing" — mapping the CSR directly must beat re-parsing graph.sxg by
// an order of magnitude, and the raw encoding must load without heap
// growth proportional to the graph.
//
// Measures, per DBG scale:
//   text_ms      catalog::LoadWorkspace via graph.sxg (snapshot removed)
//   snap_ms      catalog::LoadWorkspace via snapshot.bin
//   map_ms       bare snapshot::Map (no schema/assignment/validation I/O)
//   file sizes   graph.sxg vs snapshot.bin vs compact snapshot.bin
//   heap bytes   FrozenGraph::MemoryUsage() after each load path
//
// Flags:
//   --json    one machine-consumable JSON row per scale
//   --smoke   scales {1, 5} only (CI-sized; `ctest -L bench-smoke`)

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <vector>

#include <unistd.h>

#include "catalog/workspace.h"
#include "gen/dbg.h"
#include "gen/spec.h"
#include "snapshot/snapshot.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace schemex;  // NOLINT

namespace fs = std::filesystem;

uint64_t FileBytes(const fs::path& p) {
  std::error_code ec;
  auto n = fs::file_size(p, ec);
  return ec ? 0 : static_cast<uint64_t>(n);
}

/// Best-of-N wall time for `fn` (loads are I/O-ish; min is the stable
/// statistic once the page cache is warm, which is the serving-relevant
/// regime — both paths read warm files).
template <typename Fn>
double BestMillis(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    util::WallTimer t;
    fn();
    best = std::min(best, t.ElapsedMillis());
  }
  return best;
}

int Run(bool json, bool smoke) {
  if (!json) {
    std::cout << "== Workspace load: text parse vs binary snapshot ==\n";
  }
  util::TablePrinter table;
  table.SetHeader({"scale", "objects", "edges", "text (ms)", "snap (ms)",
                   "map (ms)", "speedup", "sxg (KB)", "snap (KB)",
                   "compact (KB)", "heap text (KB)", "heap snap (KB)"});

  std::vector<int> scales = smoke ? std::vector<int>{1, 5}
                                  : std::vector<int>{1, 5, 25, 100};
  const int reps = smoke ? 3 : 5;
  bool speedup_ok = true;

  for (int scale : scales) {
    gen::DatasetSpec spec = gen::DbgSpec();
    for (auto& t : spec.types) t.count *= static_cast<size_t>(scale);
    auto g = gen::Generate(spec, 4242);
    if (!g.ok()) return 1;

    fs::path dir = fs::temp_directory_path() /
                   util::StringPrintf("schemex_bench_snap_%d_%d",
                                      static_cast<int>(::getpid()), scale);
    fs::remove_all(dir);
    catalog::Workspace ws;
    ws.SetGraph(*g);
    ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
    if (!catalog::SaveWorkspace(ws, dir.string()).ok()) return 1;

    snapshot::WriteOptions compact;
    compact.compact = true;
    if (!snapshot::Write(*ws.graph, (dir / "compact.bin").string(), compact)
             .ok()) {
      return 1;
    }

    const std::string snap_path = (dir / "snapshot.bin").string();
    size_t heap_text = 0, heap_snap = 0;

    // Text path: hide the snapshot so LoadWorkspace parses graph.sxg.
    fs::rename(dir / "snapshot.bin", dir / "snapshot.hidden");
    double text_ms = BestMillis(reps, [&] {
      auto back = catalog::LoadWorkspace(dir.string());
      heap_text = back.ok() ? (*back).graph->MemoryUsage() : 0;
    });
    fs::rename(dir / "snapshot.hidden", dir / "snapshot.bin");

    double snap_ms = BestMillis(reps, [&] {
      catalog::LoadInfo info;
      auto back = catalog::LoadWorkspace(dir.string(), &info);
      heap_snap =
          back.ok() && info.from_snapshot ? (*back).graph->MemoryUsage() : 0;
    });
    double map_ms = BestMillis(reps, [&] {
      auto mapped = snapshot::Map(snap_path);
      if (!mapped.ok()) std::abort();
    });

    double speedup = snap_ms > 0 ? text_ms / snap_ms : 0;
    if (speedup < 10.0) speedup_ok = false;

    uint64_t sxg_b = FileBytes(dir / "graph.sxg");
    uint64_t snap_b = FileBytes(dir / "snapshot.bin");
    uint64_t compact_b = FileBytes(dir / "compact.bin");

    if (json) {
      std::printf(
          "{\"bench\":\"snapshot\",\"scale\":%d,\"objects\":%zu,"
          "\"edges\":%zu,\"text_ms\":%.3f,\"snapshot_ms\":%.3f,"
          "\"map_ms\":%.3f,\"speedup\":%.1f,\"sxg_bytes\":%llu,"
          "\"snapshot_bytes\":%llu,\"compact_bytes\":%llu,"
          "\"heap_text_bytes\":%zu,\"heap_snapshot_bytes\":%zu}\n",
          scale, g->NumObjects(), g->NumEdges(), text_ms, snap_ms, map_ms,
          speedup, static_cast<unsigned long long>(sxg_b),
          static_cast<unsigned long long>(snap_b),
          static_cast<unsigned long long>(compact_b), heap_text, heap_snap);
    } else {
      table.AddRow({util::StringPrintf("%dx", scale),
                    util::StringPrintf("%zu", g->NumObjects()),
                    util::StringPrintf("%zu", g->NumEdges()),
                    util::StringPrintf("%.2f", text_ms),
                    util::StringPrintf("%.2f", snap_ms),
                    util::StringPrintf("%.3f", map_ms),
                    util::StringPrintf("%.0fx", speedup),
                    util::StringPrintf("%llu",
                                       static_cast<unsigned long long>(
                                           sxg_b / 1024)),
                    util::StringPrintf("%llu",
                                       static_cast<unsigned long long>(
                                           snap_b / 1024)),
                    util::StringPrintf("%llu",
                                       static_cast<unsigned long long>(
                                           compact_b / 1024)),
                    util::StringPrintf("%zu", heap_text / 1024),
                    util::StringPrintf("%zu", heap_snap / 1024)});
    }
    fs::remove_all(dir);
  }
  if (!json) {
    table.Print(std::cout);
    std::cout << (speedup_ok
                      ? "snapshot load >= 10x faster than text at every "
                        "scale\n"
                      : "WARNING: snapshot speedup fell below 10x\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return Run(json, smoke);
}
