// Regenerates the paper's Table 1 (Synthetic Data Results): for each of
// the eight synthetic databases, the object/link counts, the size of the
// minimal perfect typing, and the size and defect of the optimal
// (clustered) typing at the intended type count.
//
// The paper's generator specs are not published; ours match every
// published attribute (bipartite?, overlap?, perturbation, intended type
// count, object/link scale) — compare *shapes*, not absolute numbers:
//  * perturbation explodes the perfect-type count but barely moves the
//    optimal typing;
//  * bipartite databases are far easier (fewer perfect types) than
//    general graphs, whose perfect typings approach one type per object.

#include <cstdio>
#include <iostream>

#include "extract/extractor.h"
#include "gen/table1.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace schemex;  // NOLINT

int Run() {
  util::TablePrinter table;
  table.SetHeader({"DB No", "Bipartite?", "Overlap?", "Perturb?",
                   "Intended Types", "Objects", "Links", "Perfect Types",
                   "Optimal Types", "Defect", "(excess)", "(deficit)"});

  util::WallTimer timer;
  for (const gen::Table1Entry& entry : gen::Table1Datasets()) {
    auto g = gen::MakeTable1Database(entry);
    if (!g.ok()) {
      std::cerr << entry.db_name << ": " << g.status() << "\n";
      return 1;
    }
    extract::ExtractorOptions opt;
    opt.target_num_types = entry.intended_types;
    opt.psi = cluster::PsiKind::kPsi2;  // the paper's weighted Manhattan
    auto r = extract::SchemaExtractor(opt).Run(*g);
    if (!r.ok()) {
      std::cerr << entry.db_name << ": " << r.status() << "\n";
      return 1;
    }
    table.AddRow({entry.db_name.substr(2),
                  entry.spec.IsBipartite() ? "Y" : "N",
                  entry.spec.HasOverlap() ? "Y" : "N",
                  entry.perturbed ? "Y" : "N",
                  util::StringPrintf("%zu", entry.intended_types),
                  util::StringPrintf("%zu", g->NumObjects()),
                  util::StringPrintf("%zu", g->NumEdges()),
                  util::StringPrintf("%zu", r->num_perfect_types),
                  util::StringPrintf("%zu", r->num_final_types),
                  util::StringPrintf("%zu", r->defect.defect()),
                  util::StringPrintf("%zu", r->defect.excess),
                  util::StringPrintf("%zu", r->defect.deficit)});
  }

  std::cout << "== Table 1: Synthetic Data Results ==\n";
  table.Print(std::cout);
  std::cout << util::StringPrintf("(all eight pipelines: %.2f s)\n\n",
                                  timer.ElapsedSeconds());
  std::cout << "Paper reference (SIGMOD '98, Table 1):\n"
            << "  DB1..8 perfect types: 30 52 19 35 317 341 375 381\n"
            << "  optimal types:        10 10  6  6   5   5   5   5\n"
            << "  defect:              225 307 239 283 181 310 291 333\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
