// TCP front-end latency/throughput bench: an in-process TcpServer on an
// ephemeral loopback port, hammered by 1, 4, and 16 blocking client
// connections issuing `query` requests. Emits one JSON row per
// configuration so CI or a notebook can track socket-path overhead over
// time:
//
//   {"bench":"tcp","connections":4,"requests":8000,"p50_ms":0.11,
//    "p99_ms":0.52,"req_per_s":35714.3}
//
//   $ ./bench/bench_tcp [requests_per_connection]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "service/server.h"
#include "service/tcp_client.h"
#include "service/tcp_server.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace schemex;  // NOLINT

namespace {

catalog::Workspace MakeWorkspace(uint64_t seed) {
  auto g = gen::MakeDbgDataset(seed);
  if (!g.ok()) {
    std::fprintf(stderr, "gen: %s\n", g.status().ToString().c_str());
    std::exit(1);
  }
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  if (!r.ok()) {
    std::fprintf(stderr, "extract: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  catalog::Workspace ws;
  ws.SetGraph(*g);
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;
  return ws;
}

constexpr const char* kQueries[] = {"project.name", "author.name", "*.email",
                                    "member.project", "publication.name"};

/// One bench configuration: `connections` threads, each with its own TCP
/// connection, issuing `per_conn` serial request/response round trips.
/// Returns per-request latencies (ms) via `lat_ms` and total seconds.
double RunFleet(uint16_t port, size_t connections, size_t per_conn,
                std::vector<double>* lat_ms) {
  std::mutex mu;
  util::WallTimer timer;
  std::vector<std::thread> fleet;
  for (size_t c = 0; c < connections; ++c) {
    fleet.emplace_back([&, c] {
      auto client = service::TcpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        std::fprintf(stderr, "connect: %s\n",
                     client.status().ToString().c_str());
        std::exit(1);
      }
      std::vector<double> local;
      local.reserve(per_conn);
      for (size_t i = 0; i < per_conn; ++i) {
        std::string line = util::StringPrintf(
            "{\"id\":%zu,\"verb\":\"query\",\"params\":{\"workspace\":"
            "\"ws%zu\",\"query\":\"%s\",\"limit\":0}}",
            c * per_conn + i, (c + i) % 3, kQueries[(c + i) % 5]);
        util::WallTimer rt;
        auto resp = client->Call(line);
        if (!resp.ok()) {
          std::fprintf(stderr, "call: %s\n", resp.status().ToString().c_str());
          std::exit(1);
        }
        local.push_back(rt.ElapsedSeconds() * 1e3);
      }
      std::lock_guard<std::mutex> lock(mu);
      lat_ms->insert(lat_ms->end(), local.begin(), local.end());
    });
  }
  for (auto& t : fleet) t.join();
  return timer.ElapsedSeconds();
}

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<long>(idx), v.end());
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  size_t per_conn = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

  service::ServerOptions sopt;
  sopt.num_threads = 4;
  sopt.default_timeout_s = 0;  // measure work, not budget bookkeeping
  service::Server server(sopt);
  for (uint64_t s = 0; s < 3; ++s) {
    auto st = server.InstallWorkspace("ws" + std::to_string(s),
                                      MakeWorkspace(11 + s));
    if (!st.ok()) {
      std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  service::TcpServer tcp(&server);
  if (auto st = tcp.Start(); !st.ok()) {
    std::fprintf(stderr, "listen: %s\n", st.ToString().c_str());
    return 1;
  }

  for (size_t connections : {1, 4, 16}) {
    std::vector<double> lat_ms;
    lat_ms.reserve(connections * per_conn);
    double elapsed = RunFleet(tcp.port(), connections, per_conn, &lat_ms);
    size_t requests = connections * per_conn;
    std::printf(
        "{\"bench\":\"tcp\",\"connections\":%zu,\"requests\":%zu,"
        "\"p50_ms\":%.4f,\"p99_ms\":%.4f,\"req_per_s\":%.1f}\n",
        connections, requests, Percentile(lat_ms, 0.50),
        Percentile(lat_ms, 0.99),
        static_cast<double>(requests) / elapsed);
    std::fflush(stdout);
  }

  tcp.Shutdown();
  return 0;
}
