// Ablation over the §5.2 design choice the paper leaves open: which
// weighted distance function psi drives the greedy clustering. For each
// dataset, cluster to the intended type count under every psi and report
// the resulting defect — psi2 (the paper's experimental choice) should be
// competitive everywhere, and the exponential/ratio forms should show
// their failure modes.

#include <cstdio>
#include <iostream>

#include "extract/extractor.h"
#include "gen/dbg.h"
#include "gen/table1.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace schemex;  // NOLINT
using cluster::PsiKind;

const PsiKind kKinds[] = {PsiKind::kSimpleD, PsiKind::kPsi1, PsiKind::kPsi2,
                          PsiKind::kPsi3, PsiKind::kPsi4, PsiKind::kPsi5};

int Run() {
  std::cout << "== Ablation: defect at the intended type count, per "
               "distance function ==\n";
  util::TablePrinter table;
  std::vector<std::string> header = {"dataset", "k"};
  for (PsiKind kind : kKinds) header.emplace_back(cluster::PsiKindName(kind));
  table.SetHeader(header);

  auto add_dataset = [&](const std::string& name, const graph::DataGraph& g,
                         size_t k) {
    std::vector<std::string> row = {name, util::StringPrintf("%zu", k)};
    for (PsiKind kind : kKinds) {
      extract::ExtractorOptions opt;
      opt.target_num_types = k;
      opt.psi = kind;
      auto r = extract::SchemaExtractor(opt).Run(g);
      row.push_back(r.ok() ? util::StringPrintf("%zu", r->defect.defect())
                           : "err");
    }
    table.AddRow(std::move(row));
  };

  for (const gen::Table1Entry& entry : gen::Table1Datasets()) {
    if (entry.perturbed) continue;  // unperturbed rows suffice here
    auto g = gen::MakeTable1Database(entry);
    if (g.ok()) add_dataset(entry.db_name, *g, entry.intended_types);
  }
  auto dbg = gen::MakeDbgDataset();
  if (dbg.ok()) add_dataset("DBG", *dbg, 6);

  table.Print(std::cout);
  std::cout << "\nReading: lower is better per row. psi2 = d*w2 (the "
               "paper's weighted Manhattan distance)\nis the robust "
               "default; unweighted d ignores extent sizes and suffers on "
               "skewed data.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
