// Parallel Stages 1-3: sharded wall-clock vs the sequential reference at
// 1/2/4/8 worker threads on scaled DBG-style data.
//
// Emits one JSON row per measurement (machine-consumable, same schema as
// `bench_scale --json`):
//
//   {"bench":"parallel_stage1","algo":"hash","objects":N,"edges":M,
//    "threads":T,"stage1_ms":X,"speedup":S}
//   {"bench":"parallel_stage2","algo":"greedy","types":T,"threads":N,
//    "cluster_ms":X,"speedup":S}
//   {"bench":"parallel_stage3","algo":"recast","objects":N,"edges":M,
//    "threads":T,"recast_ms":X,"speedup":S}
//
// "speedup" is sequential-reference-ms / this-row-ms, so the reference row
// itself reports 1.0. Every parallel run is verified bit-identical to the
// reference before its row prints — Stage 1: home vector AND typing
// program; Stage 2: merge steps, final program, map, weights; Stage 3:
// full assignment and exact/fallback/untyped counts. A mismatch exits 1.
// Wall-clock parallel speedup obviously requires the machine to have
// cores — the row stream includes a "context" row with
// hardware_concurrency so downstream plots can annotate single-core boxes.
//
// Flags:
//   --smoke   5x DBG scale and 1 repetition (CI-sized); default is 25x
//             and best-of-3.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "cluster/greedy.h"
#include "gen/dbg.h"
#include "gen/spec.h"
#include "typing/perfect_typing.h"
#include "typing/recast.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace {

using namespace schemex;  // NOLINT

struct Measurement {
  double ms = 0;
  typing::PerfectTypingResult result;
};

/// Best-of-reps wall clock; the returned result comes from the last run
/// (all runs produce identical results by construction).
template <typename Fn>
Measurement Measure(int reps, Fn&& fn) {
  Measurement m;
  m.ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer t;
    m.result = fn();
    m.ms = std::min(m.ms, t.ElapsedMillis());
  }
  return m;
}

void PrintRow(const char* algo, size_t objects, size_t edges, size_t threads,
              double ms, double seq_ms) {
  std::printf(
      "{\"bench\":\"parallel_stage1\",\"algo\":\"%s\",\"objects\":%zu,"
      "\"edges\":%zu,\"threads\":%zu,\"stage1_ms\":%.3f,\"speedup\":%.3f}\n",
      algo, objects, edges, threads, ms, ms > 0 ? seq_ms / ms : 0.0);
}

int Run(int scale, int reps) {
  gen::DatasetSpec spec = gen::DbgSpec();
  for (auto& t : spec.types) t.count *= static_cast<size_t>(scale);
  auto g = gen::Generate(spec, 4242);
  if (!g.ok()) {
    std::fprintf(stderr, "generate: %s\n", g.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "{\"bench\":\"parallel_stage1\",\"context\":true,\"scale\":%d,"
      "\"objects\":%zu,\"edges\":%zu,\"hardware_concurrency\":%u}\n",
      scale, g->NumObjects(), g->NumEdges(),
      std::thread::hardware_concurrency());

  // Sequential map-based reference: the baseline every speedup is
  // relative to, and the oracle every parallel run is checked against.
  Measurement ref = Measure(
      reps, [&] { return *typing::PerfectTypingViaRefinement(*g); });
  PrintRow("refinement_map", g->NumObjects(), g->NumEdges(), 1, ref.ms,
           ref.ms);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    // One pool across the reps so thread spin-up is not billed to the
    // algorithm (matches how the extractor owns its pool per request).
    util::PoolRef pool(nullptr, threads);
    typing::ExecOptions exec;
    exec.num_threads = threads;
    exec.pool = pool.get();
    Measurement m = Measure(reps, [&] {
      return *typing::PerfectTypingViaHashRefinement(*g, exec);
    });
    if (m.result.home != ref.result.home ||
        m.result.program != ref.result.program) {
      std::fprintf(stderr,
                   "FAIL: hash refinement at %zu threads diverged from the "
                   "sequential reference\n",
                   threads);
      return 1;
    }
    PrintRow("hash", g->NumObjects(), g->NumEdges(), threads, m.ms, ref.ms);
  }

  // ---- Stage 2: greedy clustering, sharded distance scan + maintenance.
  const typing::PerfectTypingResult& stage1 = ref.result;
  cluster::ClusteringOptions copt;
  copt.target_num_types = 6;

  auto measure_cluster = [&](const typing::ExecOptions& exec) {
    double ms = 1e300;
    cluster::ClusteringResult out;
    for (int r = 0; r < reps; ++r) {
      util::WallTimer t;
      out = *cluster::ClusterTypes(stage1.program, stage1.weight, copt, exec);
      ms = std::min(ms, t.ElapsedMillis());
    }
    return std::pair<double, cluster::ClusteringResult>(ms, std::move(out));
  };

  auto [seq2_ms, ref_cluster] = measure_cluster({});
  std::printf(
      "{\"bench\":\"parallel_stage2\",\"algo\":\"greedy\",\"types\":%zu,"
      "\"threads\":1,\"cluster_ms\":%.3f,\"speedup\":1.000}\n",
      stage1.program.NumTypes(), seq2_ms);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    util::PoolRef pool(nullptr, threads);
    typing::ExecOptions exec;
    exec.num_threads = threads;
    exec.pool = pool.get();
    auto [ms, r] = measure_cluster(exec);
    bool same_steps = r.steps.size() == ref_cluster.steps.size();
    for (size_t i = 0; same_steps && i < r.steps.size(); ++i) {
      same_steps = r.steps[i].source == ref_cluster.steps[i].source &&
                   r.steps[i].dest == ref_cluster.steps[i].dest &&
                   r.steps[i].cost == ref_cluster.steps[i].cost;
    }
    if (!same_steps || !(r.final_program == ref_cluster.final_program) ||
        r.final_map != ref_cluster.final_map ||
        r.final_weights != ref_cluster.final_weights) {
      std::fprintf(stderr,
                   "FAIL: clustering at %zu threads diverged from the "
                   "sequential reference\n",
                   threads);
      return 1;
    }
    std::printf(
        "{\"bench\":\"parallel_stage2\",\"algo\":\"greedy\",\"types\":%zu,"
        "\"threads\":%zu,\"cluster_ms\":%.3f,\"speedup\":%.3f}\n",
        stage1.program.NumTypes(), threads, ms,
        ms > 0 ? seq2_ms / ms : 0.0);
  }

  // ---- Stage 3: recast (parallel GFP + sharded sweep + fallback).
  std::vector<std::vector<typing::TypeId>> homes(g->NumObjects());
  for (size_t o = 0; o < stage1.home.size(); ++o) {
    if (stage1.home[o] == typing::kInvalidType) continue;
    typing::TypeId m =
        ref_cluster.final_map[static_cast<size_t>(stage1.home[o])];
    if (m != cluster::kEmptyType) homes[o] = {m};
  }

  auto measure_recast = [&](const typing::ExecOptions& exec) {
    double ms = 1e300;
    typing::RecastResult out;
    for (int r = 0; r < reps; ++r) {
      util::WallTimer t;
      out = *typing::Recast(ref_cluster.final_program, *g, homes, {}, exec);
      ms = std::min(ms, t.ElapsedMillis());
    }
    return std::pair<double, typing::RecastResult>(ms, std::move(out));
  };

  auto [seq3_ms, ref_recast] = measure_recast({});
  std::printf(
      "{\"bench\":\"parallel_stage3\",\"algo\":\"recast\",\"objects\":%zu,"
      "\"edges\":%zu,\"threads\":1,\"recast_ms\":%.3f,\"speedup\":1.000}\n",
      g->NumObjects(), g->NumEdges(), seq3_ms);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    util::PoolRef pool(nullptr, threads);
    typing::ExecOptions exec;
    exec.num_threads = threads;
    exec.pool = pool.get();
    auto [ms, r] = measure_recast(exec);
    if (!(r.assignment == ref_recast.assignment) ||
        r.num_exact != ref_recast.num_exact ||
        r.num_fallback != ref_recast.num_fallback ||
        r.num_untyped != ref_recast.num_untyped) {
      std::fprintf(stderr,
                   "FAIL: recast at %zu threads diverged from the "
                   "sequential reference\n",
                   threads);
      return 1;
    }
    std::printf(
        "{\"bench\":\"parallel_stage3\",\"algo\":\"recast\",\"objects\":%zu,"
        "\"edges\":%zu,\"threads\":%zu,\"recast_ms\":%.3f,\"speedup\":%.3f}\n",
        g->NumObjects(), g->NumEdges(), threads, ms,
        ms > 0 ? seq3_ms / ms : 0.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return Run(smoke ? 5 : 25, smoke ? 1 : 3);
}
