// Incremental re-extraction vs cold extraction as the delta size grows.
//
// Setup per scale: generate a DBG-style database, extract once (the
// cached run a service workspace would hold), then mutate an overlay and
// measure
//   cold        — SchemaExtractor::Run over the compacted mutated graph
//   incremental — extract::ReExtract over the overlay, seeded with the
//                 cached partition/clustering and the overlay's touched
//                 set
// Before any timing, the two results are checked bit-identical (final
// program and recast assignment); a mismatch exits 1 — a fast wrong
// answer is not a speedup.
//
// Two delta classes bound the behaviour:
//   rewire  — type-preserving edge swaps inside Stage-1 blocks: objects
//             a,b in one block swap same-label targets x,y from one
//             block. Local pictures are unchanged, so incremental
//             Stage 1 converges without fallback and Stage 2 is reused
//             verbatim. This is the intended O(changed-neighbourhood)
//             fast path.
//   perturb — random structural edits (new objects, new edges, edge
//             deletions): the partition genuinely changes, Stage 2
//             re-runs, and the speedup decays toward 1x as the touched
//             fraction grows.
//
// Flags:
//   --json    one machine-consumable row per measurement. Row schema:
//             {"bench":"incremental","delta":"rewire"|"perturb",
//              "objects":N,"edges":N,"touched":N,
//              "touched_fraction":F,"cold_ms":F,"incremental_ms":F,
//              "speedup":F,"stage1_fallback":B,"stage2_reused":B}
//   --smoke   smallest scale and one delta size per class (CI-sized;
//             run under `ctest -L bench-smoke`)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "extract/extractor.h"
#include "extract/incremental_extract.h"
#include "gen/dbg.h"
#include "gen/spec.h"
#include "graph/delta_overlay.h"
#include "graph/frozen_graph.h"
#include "graph/graph_view.h"
#include "typing/perfect_typing.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace schemex;  // NOLINT
using graph::DeltaOverlay;
using graph::GraphView;
using graph::ObjectId;

/// Applies up to `want` type-preserving swaps: for a,b in one Stage-1
/// block with same-label edges a->x, b->y whose targets are
/// interchangeable under the refinement encoding — both atomic (encoded
/// uniformly as kAtomicType) or both complex in one block — rewire to
/// a->y, b->x. Local pictures are untouched, so the Stage-1 partition
/// of the mutated graph equals the cached one. Returns the number of
/// swaps applied.
size_t ApplyRewire(DeltaOverlay& ov, const typing::PerfectTypingResult& pt,
                   size_t want) {
  std::vector<std::vector<ObjectId>> blocks(pt.program.NumTypes());
  for (ObjectId o = 0; o < static_cast<ObjectId>(pt.home.size()); ++o) {
    if (ov.IsComplex(o) && pt.home[o] != typing::kInvalidType) {
      blocks[static_cast<size_t>(pt.home[o])].push_back(o);
    }
  }
  auto home = [&](ObjectId o) {
    return o < pt.home.size() ? pt.home[o] : typing::kInvalidType;
  };
  size_t done = 0;
  for (const auto& members : blocks) {
    if (done >= want) break;
    for (size_t i = 0; i + 1 < members.size() && done < want; i += 2) {
      ObjectId a = members[i], b = members[i + 1];
      bool swapped = false;
      for (const graph::HalfEdge& ea : ov.OutEdges(a)) {
        if (swapped) break;
        ObjectId x = ea.other;
        if (x == a || x == b) continue;
        for (const graph::HalfEdge& eb : ov.OutEdges(b)) {
          ObjectId y = eb.other;
          if (eb.label != ea.label) continue;
          if (y == x || y == a || y == b) continue;
          bool interchangeable =
              (ov.IsAtomic(x) && ov.IsAtomic(y)) ||
              (ov.IsComplex(x) && ov.IsComplex(y) && home(x) == home(y));
          if (!interchangeable) continue;
          if (ov.HasEdge(a, y, ea.label) || ov.HasEdge(b, x, ea.label)) {
            continue;
          }
          if (!ov.RemoveEdge(a, x, ea.label).ok()) continue;
          if (!ov.RemoveEdge(b, y, ea.label).ok()) {
            (void)ov.AddEdge(a, x, ea.label);
            continue;
          }
          (void)ov.AddEdge(a, y, ea.label);
          (void)ov.AddEdge(b, x, ea.label);
          ++done;
          swapped = true;
          break;
        }
      }
    }
  }
  return done;
}

/// Random structural edits: new objects wired into the graph, new edges
/// under existing labels, deletions. ~3 ops per unit of `want`.
void ApplyPerturb(DeltaOverlay& ov, size_t want, uint64_t seed) {
  std::mt19937 rng(seed);
  auto rnd = [&](size_t n) { return static_cast<uint32_t>(rng() % n); };
  std::vector<ObjectId> complexes;
  for (ObjectId o = 0; o < ov.NumObjects(); ++o) {
    if (ov.IsComplex(o)) complexes.push_back(o);
  }
  for (size_t i = 0; i < want * 3; ++i) {
    switch (rng() % 3) {
      case 0: {
        ObjectId c = ov.AddComplex();
        (void)ov.AddEdge(complexes[rnd(complexes.size())], c, "ref");
        (void)ov.AddEdge(c, complexes[rnd(complexes.size())], "ref");
        complexes.push_back(c);
        break;
      }
      case 1:
        (void)ov.AddEdge(complexes[rnd(complexes.size())],
                         rnd(ov.NumObjects()), "extra");
        break;
      default: {
        ObjectId from = complexes[rnd(complexes.size())];
        auto out = ov.OutEdges(from);
        if (!out.empty()) {
          auto e = out[rnd(out.size())];
          (void)ov.RemoveEdge(from, e.other, e.label);
        }
        break;
      }
    }
  }
}

struct Measurement {
  std::string delta;
  size_t objects = 0;
  size_t edges = 0;
  size_t touched = 0;
  double touched_fraction = 0.0;
  double cold_ms = 0.0;
  double incremental_ms = 0.0;
  bool stage1_fallback = false;
  bool stage2_reused = false;
};

/// Cold-vs-incremental over one mutated overlay. Returns false when the
/// two results are not bit-identical.
bool Measure(const DeltaOverlay& ov, const extract::ExtractionCache& cache,
             const extract::ExtractorOptions& opt, Measurement* m) {
  std::vector<ObjectId> touched = ov.TouchedComplexObjects();
  m->objects = ov.NumObjects();
  m->edges = ov.NumEdges();
  m->touched = touched.size();
  m->touched_fraction =
      ov.NumComplexObjects() == 0
          ? 0.0
          : static_cast<double>(touched.size()) /
                static_cast<double>(ov.NumComplexObjects());

  auto compacted = ov.Compact();
  extract::IncrementalOptions inc;

  // Identity gate first, then best-of-3 timing.
  auto cold = extract::SchemaExtractor(opt).Run(GraphView(*compacted));
  if (!cold.ok()) {
    std::fprintf(stderr, "cold extraction failed: %s\n",
                 cold.status().ToString().c_str());
    return false;
  }
  extract::ReExtractStats st;
  auto fast = extract::ReExtract(GraphView(ov), cache, touched, /*k=*/0,
                                 /*parallelism=*/1, nullptr, inc, &st);
  if (!fast.ok()) {
    std::fprintf(stderr, "incremental extraction failed: %s\n",
                 fast.status().ToString().c_str());
    return false;
  }
  if (fast->final_program != cold->final_program ||
      fast->recast.assignment != cold->recast.assignment) {
    std::fprintf(stderr,
                 "FAIL: incremental result drifted from cold extraction "
                 "(delta=%s, touched=%zu)\n",
                 m->delta.c_str(), touched.size());
    return false;
  }
  m->stage1_fallback = !st.incremental_stage1;
  m->stage2_reused = st.stage2_reused;

  m->cold_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    util::WallTimer t;
    auto r = extract::SchemaExtractor(opt).Run(GraphView(*compacted));
    if (!r.ok()) return false;
    m->cold_ms = std::min(m->cold_ms, t.ElapsedMillis());
  }
  m->incremental_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    util::WallTimer t;
    auto r = extract::ReExtract(GraphView(ov), cache, touched, 0, 1, nullptr,
                                inc, nullptr);
    if (!r.ok()) return false;
    m->incremental_ms = std::min(m->incremental_ms, t.ElapsedMillis());
  }
  return true;
}

int Run(bool json, bool smoke) {
  if (!json) {
    std::cout << "== Incremental re-extraction vs cold (DBG-style data, "
                 "k=6) ==\n";
  }
  util::TablePrinter table;
  table.SetHeader({"scale", "delta", "touched", "touched %", "cold (ms)",
                   "incremental (ms)", "speedup", "stage1", "stage2"});
  std::vector<int> scales = smoke ? std::vector<int>{5}
                                  : std::vector<int>{5, 25};
  // Swap budgets as fractions of the complex-object count; each rewire
  // swap touches ~4 complex objects.
  std::vector<double> fractions =
      smoke ? std::vector<double>{0.0025} : std::vector<double>{0.0025, 0.01,
                                                                0.05};
  for (int scale : scales) {
    gen::DatasetSpec spec = gen::DbgSpec();
    for (auto& t : spec.types) t.count *= static_cast<size_t>(scale);
    auto g = gen::Generate(spec, 4242);
    if (!g.ok()) return 1;
    auto frozen = graph::Freeze(*g);

    extract::ExtractorOptions opt;
    opt.target_num_types = 6;
    auto seed = extract::SchemaExtractor(opt).Run(GraphView(*frozen));
    if (!seed.ok()) return 1;
    extract::ExtractionCache cache = extract::MakeExtractionCache(*seed, opt);

    for (const char* delta : {"rewire", "perturb"}) {
      for (double frac : fractions) {
        size_t want = std::max<size_t>(
            1, static_cast<size_t>(frac * static_cast<double>(
                                              frozen->NumComplexObjects()) /
                                   4.0));
        DeltaOverlay ov(frozen);
        if (std::strcmp(delta, "rewire") == 0) {
          if (ApplyRewire(ov, cache.perfect, want) == 0) continue;
        } else {
          ApplyPerturb(ov, want, 7u * static_cast<uint64_t>(scale) + want);
        }
        Measurement m;
        m.delta = delta;
        if (!Measure(ov, cache, opt, &m)) return 1;
        double speedup =
            m.incremental_ms > 0 ? m.cold_ms / m.incremental_ms : 0.0;
        if (json) {
          std::printf(
              "{\"bench\":\"incremental\",\"delta\":\"%s\",\"objects\":%zu,"
              "\"edges\":%zu,\"touched\":%zu,\"touched_fraction\":%.5f,"
              "\"cold_ms\":%.3f,\"incremental_ms\":%.3f,\"speedup\":%.3f,"
              "\"stage1_fallback\":%s,\"stage2_reused\":%s}\n",
              m.delta.c_str(), m.objects, m.edges, m.touched,
              m.touched_fraction, m.cold_ms, m.incremental_ms, speedup,
              m.stage1_fallback ? "true" : "false",
              m.stage2_reused ? "true" : "false");
        } else {
          table.AddRow({util::StringPrintf("%dx", scale), m.delta,
                        util::StringPrintf("%zu", m.touched),
                        util::StringPrintf("%.2f%%",
                                           100.0 * m.touched_fraction),
                        util::StringPrintf("%.2f", m.cold_ms),
                        util::StringPrintf("%.2f", m.incremental_ms),
                        util::StringPrintf("%.1fx", speedup),
                        m.stage1_fallback ? "fallback" : "incremental",
                        m.stage2_reused ? "reused" : "re-ran"});
        }
      }
    }
  }
  if (!json) {
    table.Print(std::cout);
    std::cout << "\nReading: type-preserving deltas keep the cached Stage-2 "
                 "clustering valid, so the\nincremental path pays only the "
                 "changed-neighbourhood Stage 1 plus recast; random\n"
                 "perturbations force progressively more of the cold "
                 "pipeline to re-run.\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return Run(json, smoke);
}
