// Example 5.3 ablation: how the choice of weighted distance function
// (psi1..psi5) moves the cut-off points between "merge the small outlier
// type into the big one", "stop classifying the outlier", and "displace
// the medium type". The paper observes that "the two cut-off points
// depend on the distance function that is chosen" — this bench prints
// the chosen step for each psi across a sweep of outlier widths k.

#include <cstdio>
#include <iostream>

#include "cluster/distance.h"
#include "cluster/greedy.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace schemex;  // NOLINT
using cluster::PsiKind;
using typing::TypedLink;
using typing::TypeSignature;
using typing::TypingProgram;

/// Builds Example 5.3's three types over a shared label space:
///   t1 = a, b                      (100000 objects)
///   t2 = a, b, c                   (1000 objects)
///   t3 = a, b, l1..lk              (100 objects)
TypingProgram MakeProgram(graph::LabelInterner* labels, size_t k) {
  TypingProgram p;
  graph::LabelId a = labels->Intern("a");
  graph::LabelId b = labels->Intern("b");
  graph::LabelId c = labels->Intern("c");
  p.AddType("t1", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(a), TypedLink::OutAtomic(b)}));
  p.AddType("t2",
            TypeSignature::FromLinks({TypedLink::OutAtomic(a),
                                      TypedLink::OutAtomic(b),
                                      TypedLink::OutAtomic(c)}));
  std::vector<TypedLink> t3 = {TypedLink::OutAtomic(a),
                               TypedLink::OutAtomic(b)};
  for (size_t i = 0; i < k; ++i) {
    t3.push_back(TypedLink::OutAtomic(
        labels->Intern(util::StringPrintf("l%zu", i))));
  }
  p.AddType("t3", TypeSignature::FromLinks(std::move(t3)));
  return p;
}

std::string StepName(const cluster::MergeStep& step) {
  const char* src = step.source == 1 ? "t2" : "t3";
  if (step.dest == cluster::kEmptyType) {
    return util::StringPrintf("%s -> empty", src);
  }
  return util::StringPrintf("%s -> t%d", src, step.dest + 1);
}

int Run() {
  const std::vector<uint32_t> weights = {100000, 1000, 100};
  const std::vector<PsiKind> kinds = {PsiKind::kSimpleD, PsiKind::kPsi1,
                                      PsiKind::kPsi2, PsiKind::kPsi3,
                                      PsiKind::kPsi4, PsiKind::kPsi5};
  std::cout << "== Example 5.3: cut-off behaviour vs distance function ==\n"
            << "First greedy step from 3 types to 2, per outlier width k\n\n";
  util::TablePrinter table;
  std::vector<std::string> header = {"k"};
  for (PsiKind kind : kinds) header.emplace_back(cluster::PsiKindName(kind));
  table.SetHeader(header);

  for (size_t k : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> row = {util::StringPrintf("%zu", k)};
    for (PsiKind kind : kinds) {
      graph::LabelInterner labels;
      TypingProgram p = MakeProgram(&labels, k);
      cluster::ClusteringOptions opt;
      opt.psi = kind;
      opt.target_num_types = 2;
      auto r = cluster::ClusterTypes(p, weights, opt);
      if (!r.ok() || r->steps.empty()) {
        row.emplace_back("(none)");
        continue;
      }
      row.push_back(StepName(r->steps[0]));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nReading: for psi2 (the paper's choice) small-k outliers "
               "merge into the big type;\nas k grows the cheapest step "
               "flips to displacing t2 — the cut-offs move per function, "
               "as §5.2 predicts.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
