// Stage-2 algorithm ablation: the greedy agglomerative clustering (§5,
// used in the paper's experiments), the §5.2 k-center "variation", and —
// on instances small enough to enumerate — the exhaustive optimum over
// the same search space. The paper cites an O(log n)-approximation for
// greedy under assumptions [11]; the "gap" columns measure it.

#include <cstdio>
#include <iostream>

#include "cluster/exact.h"
#include "cluster/greedy.h"
#include "cluster/kcenter.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "gen/spec.h"
#include "typing/defect.h"
#include "typing/recast.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace schemex;  // NOLINT
using typing::TypeId;

/// Defect of a (program, stage1->final map) pair on g.
util::StatusOr<size_t> MeasureDefect(
    const graph::DataGraph& g, const typing::PerfectTypingResult& stage1,
    const typing::TypingProgram& program,
    const std::vector<TypeId>& map) {
  std::vector<std::vector<TypeId>> homes(g.NumObjects());
  for (size_t o = 0; o < stage1.home.size(); ++o) {
    if (stage1.home[o] == typing::kInvalidType) continue;
    TypeId m = map[static_cast<size_t>(stage1.home[o])];
    if (m != cluster::kEmptyType) homes[o] = {m};
  }
  SCHEMEX_ASSIGN_OR_RETURN(typing::RecastResult recast,
                           typing::Recast(program, g, homes));
  return typing::ComputeDefect(program, g, recast.assignment).defect();
}

int Run() {
  std::cout << "== Stage-2 ablation: greedy vs k-center vs exact ==\n";
  util::TablePrinter table;
  table.SetHeader({"dataset", "stage1 types", "k", "greedy(psi2)",
                   "k-center", "exact", "greedy gap", "note"});

  struct Workload {
    std::string name;
    graph::DataGraph g;
    size_t k;
  };
  std::vector<Workload> workloads;

  // Small instances (exact feasible).
  for (uint64_t seed : {11u, 22u, 33u}) {
    gen::DatasetSpec spec;
    spec.name = "tiny";
    spec.atomic_pool_per_label = 4;
    spec.types.push_back(gen::TypeSpec{
        "u", 15, {{"p", gen::kAtomicTarget, 1.0},
                  {"q", gen::kAtomicTarget, 0.5}}});
    spec.types.push_back(gen::TypeSpec{
        "v", 15, {{"r", gen::kAtomicTarget, 1.0},
                  {"s", gen::kAtomicTarget, 0.5}}});
    auto g = gen::Generate(spec, seed);
    workloads.push_back(
        {util::StringPrintf("tiny-%llu",
                            static_cast<unsigned long long>(seed)),
         std::move(g).value(), 2});
  }
  // DBG (exact infeasible; heuristics only).
  {
    auto g = gen::MakeDbgDataset();
    workloads.push_back({"DBG", std::move(g).value(), 6});
  }

  for (const Workload& w : workloads) {
    auto stage1 = typing::PerfectTypingViaRefinement(w.g);
    if (!stage1.ok()) continue;

    cluster::ClusteringOptions gopt;
    gopt.target_num_types = w.k;
    gopt.enable_empty_type = false;
    auto greedy = cluster::ClusterTypes(stage1->program, stage1->weight, gopt);
    auto greedy_defect =
        MeasureDefect(w.g, *stage1, greedy->final_program, greedy->final_map);

    auto kcenter =
        cluster::KCenterCluster(stage1->program, stage1->weight, w.k);
    auto kcenter_defect =
        MeasureDefect(w.g, *stage1, kcenter->program, kcenter->map);

    std::string exact_str = "-", gap = "-", note;
    if (stage1->program.NumTypes() <= 9) {
      cluster::ExactOptions eopt;
      eopt.k = w.k;
      auto exact = cluster::ExactOptimalTyping(w.g, *stage1, eopt);
      if (exact.ok()) {
        exact_str = util::StringPrintf("%zu", exact->defect);
        if (exact->defect > 0) {
          gap = util::StringPrintf(
              "%.2fx", static_cast<double>(*greedy_defect) /
                           static_cast<double>(exact->defect));
        } else {
          gap = *greedy_defect == 0 ? "1.00x" : "inf";
        }
        note = util::StringPrintf("%zu partitions", exact->partitions_tried);
      }
    } else {
      note = "exact skipped (too many stage-1 types)";
    }
    table.AddRow({w.name,
                  util::StringPrintf("%zu", stage1->program.NumTypes()),
                  util::StringPrintf("%zu", w.k),
                  util::StringPrintf("%zu", *greedy_defect),
                  util::StringPrintf("%zu", *kcenter_defect), exact_str, gap,
                  note});
  }
  table.Print(std::cout);
  std::cout << "\nReading: greedy should track the exact optimum closely on "
               "small instances; the k-center\nvariation is competitive but "
               "chases outliers when the hypercube is densely populated "
               "(§5.2's caveat).\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
