// Regenerates the paper's Figure 6 (sensitivity graph for the DBG data
// set): total clustering distance and defect as a function of the number
// of types in the approximate typing. The paper's observation — a small
// range of type counts (6-10) yields the best defect/size trade-off, with
// the defect exploding for very small k — should be visible in the
// printed series (and the CSV block for plotting).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "extract/extractor.h"
#include "gen/dbg.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace schemex;  // NOLINT

int Run() {
  auto g = gen::MakeDbgDataset();
  if (!g.ok()) {
    std::cerr << g.status() << "\n";
    return 1;
  }
  extract::ExtractorOptions opt;
  opt.stage1 = extract::ExtractorOptions::Stage1Algorithm::kGfp;
  opt.psi = cluster::PsiKind::kPsi2;
  auto points = extract::SensitivitySweep(*g, opt);
  if (!points.ok()) {
    std::cerr << points.status() << "\n";
    return 1;
  }

  std::cout << "== Figure 6: Sensitivity graph for DBG data set ==\n";
  std::cout << util::StringPrintf(
      "DBG dataset: %zu objects, %zu links; perfect typing: %zu types\n\n",
      g->NumObjects(), g->NumEdges(), points->front().k);

  util::TablePrinter table;
  table.SetHeader({"types (k)", "total distance", "defect", "excess",
                   "deficit"});
  for (const auto& p : *points) {
    table.AddRow({util::StringPrintf("%zu", p.k),
                  util::StringPrintf("%.1f", p.total_distance),
                  util::StringPrintf("%zu", p.defect),
                  util::StringPrintf("%zu", p.excess),
                  util::StringPrintf("%zu", p.deficit)});
  }
  table.Print(std::cout);

  // Locate the knee: the k in [2, 15] minimizing defect, echoing the
  // paper's "optimal range 6-10".
  size_t best_k = 0, best_defect = static_cast<size_t>(-1);
  for (const auto& p : *points) {
    if (p.k >= 2 && p.k <= 15 && p.defect < best_defect) {
      best_defect = p.defect;
      best_k = p.k;
    }
  }
  std::cout << util::StringPrintf(
      "\nBest small-k typing: k=%zu with defect %zu (paper: optimal "
      "trade-off in the 6-10 range)\n",
      best_k, best_defect);

  std::cout << "\n-- CSV (k,total_distance,defect) --\n";
  for (const auto& p : *points) {
    std::cout << util::StringPrintf("%zu,%.1f,%zu\n", p.k, p.total_distance,
                                    p.defect);
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
