// Scalability of the pipeline (§3: "be able to approximately type a
// LARGE collection of semistructured data efficiently"): wall-clock of
// each stage as the DBG-style database grows from ~0.5k to ~200k
// objects. Stage 1 uses partition refinement (the scalable algorithm);
// clustering cost depends on the Stage-1 type count, not the object
// count, which is the method's point.
//
// Flags:
//   --json    emit one machine-consumable JSON row per measurement
//             (same schema as bench_parallel) instead of tables
//   --smoke   scales {1, 5} only and skip the large Stage-1-only section
//             (CI-sized)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "cluster/greedy.h"
#include "gen/dbg.h"
#include "gen/spec.h"
#include "typing/defect.h"
#include "typing/perfect_typing.h"
#include "typing/recast.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace schemex;  // NOLINT

void PrintJsonRow(size_t objects, size_t edges, double stage1_ms) {
  std::printf(
      "{\"bench\":\"scale\",\"algo\":\"refinement_map\",\"objects\":%zu,"
      "\"edges\":%zu,\"threads\":1,\"stage1_ms\":%.3f,\"speedup\":1.000}\n",
      objects, edges, stage1_ms);
}

int Run(bool json, bool smoke) {
  if (!json) {
    std::cout << "== Pipeline scalability (DBG-style data, refinement Stage "
                 "1) ==\n";
  }
  util::TablePrinter table;
  table.SetHeader({"scale", "objects", "links", "stage1 (ms)",
                   "stage1 types", "cluster->6 (ms)", "recast+defect (ms)",
                   "total (ms)", "defect"});
  std::vector<int> scales = smoke ? std::vector<int>{1, 5}
                                  : std::vector<int>{1, 5, 25};
  for (int scale : scales) {
    gen::DatasetSpec spec = gen::DbgSpec();
    for (auto& t : spec.types) t.count *= static_cast<size_t>(scale);
    auto g = gen::Generate(spec, 4242);
    if (!g.ok()) return 1;

    util::WallTimer total;
    util::WallTimer t1;
    auto stage1 = typing::PerfectTypingViaRefinement(*g);
    double stage1_ms = t1.ElapsedMillis();

    util::WallTimer t2;
    cluster::ClusteringOptions copt;
    copt.target_num_types = 6;
    auto clustering =
        cluster::ClusterTypes(stage1->program, stage1->weight, copt);
    double cluster_ms = t2.ElapsedMillis();

    util::WallTimer t3;
    std::vector<std::vector<typing::TypeId>> homes(g->NumObjects());
    for (size_t o = 0; o < stage1->home.size(); ++o) {
      if (stage1->home[o] == typing::kInvalidType) continue;
      typing::TypeId m =
          clustering->final_map[static_cast<size_t>(stage1->home[o])];
      if (m != cluster::kEmptyType) homes[o] = {m};
    }
    auto recast = typing::Recast(clustering->final_program, *g, homes);
    auto defect = typing::ComputeDefect(clustering->final_program, *g,
                                        recast->assignment);
    double recast_ms = t3.ElapsedMillis();

    if (json) {
      PrintJsonRow(g->NumObjects(), g->NumEdges(), stage1_ms);
    } else {
      table.AddRow({util::StringPrintf("%dx", scale),
                    util::StringPrintf("%zu", g->NumObjects()),
                    util::StringPrintf("%zu", g->NumEdges()),
                    util::StringPrintf("%.1f", stage1_ms),
                    util::StringPrintf("%zu", stage1->program.NumTypes()),
                    util::StringPrintf("%.1f", cluster_ms),
                    util::StringPrintf("%.1f", recast_ms),
                    util::StringPrintf("%.1f", total.ElapsedMillis()),
                    util::StringPrintf("%zu", defect.defect())});
    }
  }
  if (!json) table.Print(std::cout);

  // Stage 1 alone keeps scaling far past where the O(T^2..3) clustering
  // becomes the bottleneck (T = stage-1 type count, which grows with the
  // data's irregularity).
  if (!smoke) {
    util::TablePrinter big;
    big.SetHeader(
        {"scale", "objects", "links", "stage1 (ms)", "stage1 types"});
    for (int scale : {100, 500}) {
      gen::DatasetSpec spec = gen::DbgSpec();
      for (auto& t : spec.types) t.count *= static_cast<size_t>(scale);
      auto g = gen::Generate(spec, 4242);
      if (!g.ok()) return 1;
      util::WallTimer t1;
      auto stage1 = typing::PerfectTypingViaRefinement(*g);
      double stage1_ms = t1.ElapsedMillis();
      if (json) {
        PrintJsonRow(g->NumObjects(), g->NumEdges(), stage1_ms);
      } else {
        big.AddRow({util::StringPrintf("%dx", scale),
                    util::StringPrintf("%zu", g->NumObjects()),
                    util::StringPrintf("%zu", g->NumEdges()),
                    util::StringPrintf("%.1f", stage1_ms),
                    util::StringPrintf("%zu", stage1->program.NumTypes())});
      }
    }
    if (!json) {
      std::cout << "\n-- Stage 1 only, larger scales --\n";
      big.Print(std::cout);
    }
  }

  if (!json) {
    std::cout << "\nReading: Stage 1 scales near-linearly in edges; Stage 2 "
                 "depends on the Stage-1 TYPE count\n(which grows with "
                 "irregularity, not raw size); the defect grows linearly "
                 "with the data since\nthe same fraction of objects misses "
                 "the same optional links.\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return Run(json, smoke);
}
