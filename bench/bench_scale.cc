// Scalability of the pipeline (§3: "be able to approximately type a
// LARGE collection of semistructured data efficiently"): wall-clock of
// each stage as the DBG-style database grows from ~0.5k to ~200k
// objects. Stage 1 uses partition refinement (the scalable algorithm);
// clustering cost depends on the Stage-1 type count, not the object
// count, which is the method's point.
//
// Flags:
//   --json    emit one machine-consumable JSON row per measurement
//             instead of tables. Row schemas (trajectory diffs parse
//             these; keep them stable):
//               pipeline row —
//                 {"bench":"scale","algo":"refinement_map","objects":N,
//                  "edges":N,"stage1_types":N,"threads":1,"stage1_ms":F,
//                  "cluster_ms":F,"recast_ms":F,"apply_delta_ms":F,
//                  "speedup":1.000}
//                 apply_delta_ms is the wall-clock of applying a
//                 64-op mutation batch to a DeltaOverlay over the
//                 frozen graph (best of 3) — the generation-swap cost a
//                 service apply_delta pays before any retyping.
//               stage1-only row (large scales) —
//                 {"bench":"scale","algo":"refinement_map","objects":N,
//                  "edges":N,"threads":1,"stage1_ms":F,"speedup":1.000}
//               cluster_kernel row —
//                 {"bench":"cluster_kernel","kernel":"sorted"|"bit",
//                  "types":N,"pairs":N,"reps":N,"ms":F,"speedup":F}
//   --smoke   scales {1, 5} only and skip the large Stage-1-only section
//             (CI-sized)
//
// Besides the per-stage pipeline rows, --json emits a "cluster_kernel"
// pair per scale comparing the two distance implementations over the
// Stage-1 all-pairs scan: the sorted-vector reference
// (TypeSignature::SymmetricDifferenceSize) vs the packed XOR+popcount
// kernel (BitSignatureIndex). Both sums are checked equal before the rows
// print; a mismatch exits 1.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "cluster/greedy.h"
#include "gen/dbg.h"
#include "gen/spec.h"
#include "graph/delta_overlay.h"
#include "graph/frozen_graph.h"
#include "typing/bit_signature.h"
#include "typing/defect.h"
#include "typing/perfect_typing.h"
#include "typing/recast.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace schemex;  // NOLINT

void PrintJsonRow(size_t objects, size_t edges, double stage1_ms) {
  std::printf(
      "{\"bench\":\"scale\",\"algo\":\"refinement_map\",\"objects\":%zu,"
      "\"edges\":%zu,\"threads\":1,\"stage1_ms\":%.3f,\"speedup\":1.000}\n",
      objects, edges, stage1_ms);
}

void PrintJsonPipelineRow(size_t objects, size_t edges, size_t stage1_types,
                          double stage1_ms, double cluster_ms,
                          double recast_ms, double apply_delta_ms) {
  std::printf(
      "{\"bench\":\"scale\",\"algo\":\"refinement_map\",\"objects\":%zu,"
      "\"edges\":%zu,\"stage1_types\":%zu,\"threads\":1,\"stage1_ms\":%.3f,"
      "\"cluster_ms\":%.3f,\"recast_ms\":%.3f,\"apply_delta_ms\":%.3f,"
      "\"speedup\":1.000}\n",
      objects, edges, stage1_types, stage1_ms, cluster_ms, recast_ms,
      apply_delta_ms);
}

/// Wall-clock of a 64-op mutation batch (adds, links, deletes) against a
/// fresh DeltaOverlay over `frozen`, best of 3 — the pure overlay cost of
/// a service apply_delta, before online typing or re-extraction.
double BenchApplyDelta(const std::shared_ptr<const graph::FrozenGraph>& frozen) {
  std::vector<graph::ObjectId> complexes;
  for (graph::ObjectId o = 0; o < frozen->NumObjects(); ++o) {
    if (frozen->IsComplex(o)) complexes.push_back(o);
  }
  if (complexes.empty()) return 0.0;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    graph::DeltaOverlay ov(frozen);
    util::WallTimer t;
    for (size_t i = 0; i < 64; ++i) {
      switch (i % 4) {
        case 0: {
          graph::ObjectId c = ov.AddComplex();
          (void)ov.AddEdge(complexes[i % complexes.size()], c, "ref");
          break;
        }
        case 1:
          (void)ov.AddAtomic("v");
          break;
        case 2:
          (void)ov.AddEdge(complexes[i % complexes.size()],
                           complexes[(i * 7 + 1) % complexes.size()],
                           "extra");
          break;
        default: {
          graph::ObjectId from = complexes[i % complexes.size()];
          auto out = ov.OutEdges(from);
          if (!out.empty()) {
            (void)ov.RemoveEdge(from, out[0].other, out[0].label);
          }
          break;
        }
      }
    }
    best = std::min(best, t.ElapsedMillis());
  }
  return best;
}

/// Times the Stage-2 all-pairs distance scan on both kernels (best of 3,
/// repeated until each timed run covers a few million pair distances so
/// small scales still produce stable numbers). Returns false if the two
/// kernels disagree on the summed distance.
bool BenchDistanceKernels(const typing::TypingProgram& p, bool json,
                          std::vector<std::string>* table_lines) {
  const size_t n = p.NumTypes();
  if (n < 2) return true;
  const size_t pairs = n * (n - 1) / 2;
  const int reps = static_cast<int>(std::max<size_t>(1, 4'000'000 / pairs));

  uint64_t sorted_sum = 0;
  double sorted_ms = 1e300;
  for (int best = 0; best < 3; ++best) {
    util::WallTimer t;
    uint64_t sum = 0;
    for (int r = 0; r < reps; ++r) {
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          sum += typing::TypeSignature::SymmetricDifferenceSize(
              p.type(static_cast<typing::TypeId>(i)).signature,
              p.type(static_cast<typing::TypeId>(j)).signature);
        }
      }
    }
    sorted_ms = std::min(sorted_ms, t.ElapsedMillis());
    sorted_sum = sum;
  }

  uint64_t bit_sum = 0;
  double bit_ms = 1e300;
  for (int best = 0; best < 3; ++best) {
    util::WallTimer t;
    // Encoding is part of the kernel's cost: bill it like the clusterer
    // does (once per scan, then XOR+popcount per pair).
    typing::BitSignatureIndex index(p);
    std::vector<typing::BitSignature> enc(n);
    for (size_t i = 0; i < n; ++i) {
      enc[i] = index.Encode(p.type(static_cast<typing::TypeId>(i)).signature);
    }
    uint64_t sum = 0;
    for (int r = 0; r < reps; ++r) {
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          sum += typing::BitSignatureIndex::Distance(enc[i], enc[j]);
        }
      }
    }
    bit_ms = std::min(bit_ms, t.ElapsedMillis());
    bit_sum = sum;
  }

  if (sorted_sum != bit_sum) {
    std::fprintf(stderr,
                 "FAIL: kernel distance sums diverge (sorted %llu, bit %llu)\n",
                 static_cast<unsigned long long>(sorted_sum),
                 static_cast<unsigned long long>(bit_sum));
    return false;
  }
  if (json) {
    std::printf(
        "{\"bench\":\"cluster_kernel\",\"kernel\":\"sorted\",\"types\":%zu,"
        "\"pairs\":%zu,\"reps\":%d,\"ms\":%.3f,\"speedup\":1.000}\n",
        n, pairs, reps, sorted_ms);
    std::printf(
        "{\"bench\":\"cluster_kernel\",\"kernel\":\"bit\",\"types\":%zu,"
        "\"pairs\":%zu,\"reps\":%d,\"ms\":%.3f,\"speedup\":%.3f}\n",
        n, pairs, reps, bit_ms, bit_ms > 0 ? sorted_ms / bit_ms : 0.0);
  } else {
    table_lines->push_back(util::StringPrintf(
        "%zu types (%zu pairs x %d reps): sorted %.1f ms, bit %.1f ms "
        "(%.1fx)",
        n, pairs, reps, sorted_ms, bit_ms,
        bit_ms > 0 ? sorted_ms / bit_ms : 0.0));
  }
  return true;
}

int Run(bool json, bool smoke) {
  if (!json) {
    std::cout << "== Pipeline scalability (DBG-style data, refinement Stage "
                 "1) ==\n";
  }
  util::TablePrinter table;
  std::vector<std::string> kernel_lines;
  table.SetHeader({"scale", "objects", "links", "stage1 (ms)",
                   "stage1 types", "cluster->6 (ms)", "recast+defect (ms)",
                   "apply_delta (ms)", "total (ms)", "defect"});
  std::vector<int> scales = smoke ? std::vector<int>{1, 5}
                                  : std::vector<int>{1, 5, 25};
  for (int scale : scales) {
    gen::DatasetSpec spec = gen::DbgSpec();
    for (auto& t : spec.types) t.count *= static_cast<size_t>(scale);
    auto g = gen::Generate(spec, 4242);
    if (!g.ok()) return 1;

    util::WallTimer total;
    util::WallTimer t1;
    auto stage1 = typing::PerfectTypingViaRefinement(*g);
    double stage1_ms = t1.ElapsedMillis();

    util::WallTimer t2;
    cluster::ClusteringOptions copt;
    copt.target_num_types = 6;
    auto clustering =
        cluster::ClusterTypes(stage1->program, stage1->weight, copt);
    double cluster_ms = t2.ElapsedMillis();

    util::WallTimer t3;
    std::vector<std::vector<typing::TypeId>> homes(g->NumObjects());
    for (size_t o = 0; o < stage1->home.size(); ++o) {
      if (stage1->home[o] == typing::kInvalidType) continue;
      typing::TypeId m =
          clustering->final_map[static_cast<size_t>(stage1->home[o])];
      if (m != cluster::kEmptyType) homes[o] = {m};
    }
    auto recast = typing::Recast(clustering->final_program, *g, homes);
    auto defect = typing::ComputeDefect(clustering->final_program, *g,
                                        recast->assignment);
    double recast_ms = t3.ElapsedMillis();
    double apply_delta_ms = BenchApplyDelta(graph::Freeze(*g));

    if (json) {
      PrintJsonPipelineRow(g->NumObjects(), g->NumEdges(),
                           stage1->program.NumTypes(), stage1_ms, cluster_ms,
                           recast_ms, apply_delta_ms);
    } else {
      table.AddRow({util::StringPrintf("%dx", scale),
                    util::StringPrintf("%zu", g->NumObjects()),
                    util::StringPrintf("%zu", g->NumEdges()),
                    util::StringPrintf("%.1f", stage1_ms),
                    util::StringPrintf("%zu", stage1->program.NumTypes()),
                    util::StringPrintf("%.1f", cluster_ms),
                    util::StringPrintf("%.1f", recast_ms),
                    util::StringPrintf("%.2f", apply_delta_ms),
                    util::StringPrintf("%.1f", total.ElapsedMillis()),
                    util::StringPrintf("%zu", defect.defect())});
    }
    if (!BenchDistanceKernels(stage1->program, json, &kernel_lines)) return 1;
  }
  if (!json) {
    table.Print(std::cout);
    std::cout << "\n-- Stage-2 distance kernel, sorted vs bit-parallel --\n";
    for (const std::string& line : kernel_lines) {
      std::cout << line << "\n";
    }
  }

  // Stage 1 alone keeps scaling far past where the O(T^2..3) clustering
  // becomes the bottleneck (T = stage-1 type count, which grows with the
  // data's irregularity).
  if (!smoke) {
    util::TablePrinter big;
    big.SetHeader(
        {"scale", "objects", "links", "stage1 (ms)", "stage1 types"});
    for (int scale : {100, 500}) {
      gen::DatasetSpec spec = gen::DbgSpec();
      for (auto& t : spec.types) t.count *= static_cast<size_t>(scale);
      auto g = gen::Generate(spec, 4242);
      if (!g.ok()) return 1;
      util::WallTimer t1;
      auto stage1 = typing::PerfectTypingViaRefinement(*g);
      double stage1_ms = t1.ElapsedMillis();
      if (json) {
        PrintJsonRow(g->NumObjects(), g->NumEdges(), stage1_ms);
      } else {
        big.AddRow({util::StringPrintf("%dx", scale),
                    util::StringPrintf("%zu", g->NumObjects()),
                    util::StringPrintf("%zu", g->NumEdges()),
                    util::StringPrintf("%.1f", stage1_ms),
                    util::StringPrintf("%zu", stage1->program.NumTypes())});
      }
    }
    if (!json) {
      std::cout << "\n-- Stage 1 only, larger scales --\n";
      big.Print(std::cout);
    }
  }

  if (!json) {
    std::cout << "\nReading: Stage 1 scales near-linearly in edges; Stage 2 "
                 "depends on the Stage-1 TYPE count\n(which grows with "
                 "irregularity, not raw size); the defect grows linearly "
                 "with the data since\nthe same fraction of objects misses "
                 "the same optional links.\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return Run(json, smoke);
}
