// Scalability of the pipeline (§3: "be able to approximately type a
// LARGE collection of semistructured data efficiently"): wall-clock of
// each stage as the DBG-style database grows from ~0.5k to ~200k
// objects. Stage 1 uses partition refinement (the scalable algorithm);
// clustering cost depends on the Stage-1 type count, not the object
// count, which is the method's point.

#include <cstdio>
#include <iostream>

#include "cluster/greedy.h"
#include "gen/dbg.h"
#include "gen/spec.h"
#include "typing/defect.h"
#include "typing/perfect_typing.h"
#include "typing/recast.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace schemex;  // NOLINT

int Run() {
  std::cout << "== Pipeline scalability (DBG-style data, refinement Stage 1) "
               "==\n";
  util::TablePrinter table;
  table.SetHeader({"scale", "objects", "links", "stage1 (ms)",
                   "stage1 types", "cluster->6 (ms)", "recast+defect (ms)",
                   "total (ms)", "defect"});
  for (int scale : {1, 5, 25}) {
    gen::DatasetSpec spec = gen::DbgSpec();
    for (auto& t : spec.types) t.count *= static_cast<size_t>(scale);
    auto g = gen::Generate(spec, 4242);
    if (!g.ok()) return 1;

    util::WallTimer total;
    util::WallTimer t1;
    auto stage1 = typing::PerfectTypingViaRefinement(*g);
    double stage1_ms = t1.ElapsedMillis();

    util::WallTimer t2;
    cluster::ClusteringOptions copt;
    copt.target_num_types = 6;
    auto clustering =
        cluster::ClusterTypes(stage1->program, stage1->weight, copt);
    double cluster_ms = t2.ElapsedMillis();

    util::WallTimer t3;
    std::vector<std::vector<typing::TypeId>> homes(g->NumObjects());
    for (size_t o = 0; o < stage1->home.size(); ++o) {
      if (stage1->home[o] == typing::kInvalidType) continue;
      typing::TypeId m =
          clustering->final_map[static_cast<size_t>(stage1->home[o])];
      if (m != cluster::kEmptyType) homes[o] = {m};
    }
    auto recast = typing::Recast(clustering->final_program, *g, homes);
    auto defect = typing::ComputeDefect(clustering->final_program, *g,
                                        recast->assignment);
    double recast_ms = t3.ElapsedMillis();

    table.AddRow({util::StringPrintf("%dx", scale),
                  util::StringPrintf("%zu", g->NumObjects()),
                  util::StringPrintf("%zu", g->NumEdges()),
                  util::StringPrintf("%.1f", stage1_ms),
                  util::StringPrintf("%zu", stage1->program.NumTypes()),
                  util::StringPrintf("%.1f", cluster_ms),
                  util::StringPrintf("%.1f", recast_ms),
                  util::StringPrintf("%.1f", total.ElapsedMillis()),
                  util::StringPrintf("%zu", defect.defect())});
  }
  table.Print(std::cout);

  // Stage 1 alone keeps scaling far past where the O(T^2..3) clustering
  // becomes the bottleneck (T = stage-1 type count, which grows with the
  // data's irregularity).
  util::TablePrinter big;
  big.SetHeader({"scale", "objects", "links", "stage1 (ms)", "stage1 types"});
  for (int scale : {100, 500}) {
    gen::DatasetSpec spec = gen::DbgSpec();
    for (auto& t : spec.types) t.count *= static_cast<size_t>(scale);
    auto g = gen::Generate(spec, 4242);
    if (!g.ok()) return 1;
    util::WallTimer t1;
    auto stage1 = typing::PerfectTypingViaRefinement(*g);
    big.AddRow({util::StringPrintf("%dx", scale),
                util::StringPrintf("%zu", g->NumObjects()),
                util::StringPrintf("%zu", g->NumEdges()),
                util::StringPrintf("%.1f", t1.ElapsedMillis()),
                util::StringPrintf("%zu", stage1->program.NumTypes())});
  }
  std::cout << "\n-- Stage 1 only, larger scales --\n";
  big.Print(std::cout);

  std::cout << "\nReading: Stage 1 scales near-linearly in edges; Stage 2 "
               "depends on the Stage-1 TYPE count\n(which grows with "
               "irregularity, not raw size); the defect grows linearly "
               "with the data since\nthe same fraction of objects misses "
               "the same optional links.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
