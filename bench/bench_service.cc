// Service throughput bench: N client threads x M mixed query/extract
// requests against cached workspaces, at several worker-pool sizes.
//
//   $ ./bench/bench_service [clients] [queries_per_client]
//
// Two sections:
//  1. Query scaling — a fixed client fleet hammers `query` while the
//     worker pool grows 1 -> 2 -> 4. Queries are CPU-bound and
//     independent (read-only snapshots, no shared lock held during
//     evaluation), so throughput should scale with workers up to the
//     machine's core count. On a single-core host the expected ratio is
//     ~1x — the pool can only help as far as the hardware allows.
//  2. Mixed traffic — 4 client threads interleave query and re-extract
//     against the same workspace, validating the cache under write
//     pressure and reporting the per-verb latency histogram.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "service/request.h"
#include "service/server.h"
#include "util/timer.h"

using namespace schemex;  // NOLINT

namespace {

catalog::Workspace MakeWorkspace(uint64_t seed) {
  auto g = gen::MakeDbgDataset(seed);
  if (!g.ok()) {
    std::fprintf(stderr, "gen: %s\n", g.status().ToString().c_str());
    std::exit(1);
  }
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  if (!r.ok()) {
    std::fprintf(stderr, "extract: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  catalog::Workspace ws;
  ws.SetGraph(*g);
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;
  return ws;
}

service::Request QueryRequest(int64_t id, const std::string& ws,
                              const char* query) {
  service::Request req;
  req.id = id;
  req.verb = service::Verb::kQuery;
  req.query.workspace = ws;
  req.query.query = query;
  req.query.limit = 0;  // count only; skip result materialization
  return req;
}

constexpr const char* kQueries[] = {"project.name", "author.name", "*.email",
                                    "member.project", "publication.name"};

/// Runs `clients` threads of `per_client` queries against a server with
/// `workers` pool threads; returns queries/second.
double QueryThroughput(size_t workers, size_t clients, size_t per_client) {
  service::ServerOptions opt;
  opt.num_threads = workers;
  opt.default_timeout_s = 0;  // measure work, not budget bookkeeping
  service::Server server(opt);
  // Several cached workspaces so clients spread across cache entries the
  // way a real multi-tenant service would.
  for (uint64_t s = 0; s < 3; ++s) {
    auto st = server.InstallWorkspace("ws" + std::to_string(s),
                                      MakeWorkspace(11 + s));
    if (!st.ok()) std::exit(1);
  }

  util::WallTimer timer;
  std::vector<std::thread> fleet;
  for (size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      for (size_t i = 0; i < per_client; ++i) {
        service::Request req =
            QueryRequest(static_cast<int64_t>(c * per_client + i),
                         "ws" + std::to_string((c + i) % 3),
                         kQueries[(c + i) % 5]);
        service::Response resp = server.Handle(req);
        if (!resp.status.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       resp.status.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : fleet) t.join();
  return static_cast<double>(clients * per_client) / timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  size_t clients = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  size_t per_client = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;

  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  std::printf("clients: %zu, queries/client: %zu\n\n", clients, per_client);

  // --- 1. Query throughput vs. worker count. -------------------------
  std::printf("%-10s %14s %10s\n", "workers", "queries/sec", "vs 1");
  double base = 0;
  for (size_t workers : {1, 2, 4}) {
    double qps = QueryThroughput(workers, clients, per_client);
    if (workers == 1) base = qps;
    std::printf("%-10zu %14.0f %9.2fx\n", workers, qps, qps / base);
  }

  // --- 2. Mixed query + re-extract traffic at 4 workers. -------------
  std::printf("\nmixed traffic: 4 clients, query + interleaved re-extract\n");
  service::ServerOptions opt;
  opt.num_threads = 4;
  opt.default_timeout_s = 0;
  service::Server server(opt);
  if (!server.InstallWorkspace("dbg", MakeWorkspace(42)).ok()) return 1;

  util::WallTimer timer;
  std::vector<std::thread> fleet;
  for (size_t c = 0; c < 4; ++c) {
    fleet.emplace_back([&, c] {
      for (size_t i = 0; i < per_client / 4; ++i) {
        service::Request req;
        if (c == 0 && i % 64 == 0) {
          // Client 0 periodically re-extracts, swapping the schema under
          // the other clients' feet.
          req.id = static_cast<int64_t>(i);
          req.verb = service::Verb::kExtract;
          req.extract.workspace = "dbg";
          req.extract.k = (i / 64) % 2 == 0 ? 6 : 9;
        } else {
          req = QueryRequest(static_cast<int64_t>(c * per_client + i), "dbg",
                             kQueries[(c + i) % 5]);
        }
        service::Response resp = server.Handle(req);
        if (!resp.status.ok()) {
          std::fprintf(stderr, "mixed request failed: %s\n",
                       resp.status.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : fleet) t.join();
  double elapsed = timer.ElapsedSeconds();

  uint64_t total = 0;
  std::printf("%-10s %8s %7s %9s %9s %9s %9s\n", "verb", "count", "errors",
              "p50 ms", "p95 ms", "p99 ms", "max ms");
  for (const service::VerbStats& s : server.metrics().Snapshot()) {
    total += s.count;
    std::printf("%-10s %8llu %7llu %9.3f %9.3f %9.3f %9.3f\n", s.verb.c_str(),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.errors), s.p50_ms, s.p95_ms,
                s.p99_ms, s.max_ms);
  }
  std::printf("\n%.0f mixed requests/sec (%llu requests in %.2fs)\n",
              static_cast<double>(total) / elapsed,
              static_cast<unsigned long long>(total), elapsed);
  return 0;
}
