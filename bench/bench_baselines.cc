// Baseline comparison (the paper's §1/§8 claim): the perfect typing —
// like the prior perfect-summary structures, strong DataGuides [10] and
// representative objects [15] — grows with the data's irregularity,
// sometimes approaching the size of the data itself, while the paper's
// approximate typing stays at a chosen budget with bounded defect.
//
// Prints, for every dataset: #objects, strong-DataGuide nodes, full
// representative-object classes, perfect types, and the 6-type
// approximate typing's defect.

#include <cstdio>
#include <iostream>

#include "baseline/dataguide.h"
#include "baseline/rep_objects.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "gen/table1.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace schemex;  // NOLINT

void AddRow(util::TablePrinter* table, const std::string& name,
            const graph::DataGraph& g, size_t intended) {
  auto guide = baseline::BuildStrongDataGuide(g, /*max_nodes=*/200000);
  std::string guide_nodes =
      guide.ok() ? util::StringPrintf("%zu", guide->NumNodes()) : "blow-up";
  size_t ro = baseline::FullRepObjectClassCount(g);

  extract::ExtractorOptions opt;
  opt.target_num_types = intended;
  auto r = extract::SchemaExtractor(opt).Run(g);
  if (!r.ok()) {
    std::cerr << name << ": " << r.status() << "\n";
    return;
  }
  table->AddRow({name, util::StringPrintf("%zu", g.NumComplexObjects()),
                 util::StringPrintf("%zu", g.NumEdges()), guide_nodes,
                 util::StringPrintf("%zu", ro),
                 util::StringPrintf("%zu", r->num_perfect_types),
                 util::StringPrintf("%zu", intended),
                 util::StringPrintf("%zu", r->defect.defect())});
}

int Run() {
  std::cout << "== Baselines: perfect summaries vs approximate typing ==\n";
  util::TablePrinter table;
  table.SetHeader({"dataset", "complex objs", "links", "DataGuide nodes",
                   "RO classes", "perfect types", "approx types",
                   "approx defect"});
  for (const gen::Table1Entry& entry : gen::Table1Datasets()) {
    auto g = gen::MakeTable1Database(entry);
    if (!g.ok()) continue;
    AddRow(&table, entry.db_name, *g, entry.intended_types);
  }
  auto dbg = gen::MakeDbgDataset();
  if (dbg.ok()) AddRow(&table, "DBG", *dbg, 6);
  table.Print(std::cout);
  std::cout
      << "\nReading: DataGuide/RO (outgoing-path summaries) and the "
         "perfect typing all grow with irregularity —\non the general-"
         "graph databases the perfect typing approaches one type per "
         "object (the paper's\n\"roughly the size of the data\") while "
         "the approximate typing stays at the chosen budget.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
