// DataGraph vs FrozenGraph on identical workloads: the specialized GFP
// solver and the full three-stage extraction, at several database scales.
// One JSON row per (dataset, representation) pair, e.g.
//   {"bench":"frozen","dataset":"structured-x4","repr":"frozen", ...}
// plus a closing summary row with the frozen/data speedup ratios, so the
// acceptance criterion ("FrozenGraph no slower") is machine-checkable.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "extract/extractor.h"
#include "gen/random_graph.h"
#include "gen/spec.h"
#include "graph/frozen_graph.h"
#include "graph/graph_view.h"
#include "typing/gfp.h"
#include "typing/perfect_typing.h"

namespace {

using namespace schemex;  // NOLINT
using Clock = std::chrono::steady_clock;

/// A structured database with `scale`x objects per intended type.
graph::DataGraph MakeStructured(int scale) {
  gen::DatasetSpec spec;
  spec.name = "bench";
  spec.atomic_pool_per_label = 20;
  for (int t = 0; t < 5; ++t) {
    gen::TypeSpec ts;
    ts.name = "t" + std::to_string(t);
    ts.count = static_cast<size_t>(20 * scale);
    ts.links = {
        {"a" + std::to_string(t), gen::kAtomicTarget, 1.0},
        {"r" + std::to_string(t), (t + 1) % 5, 0.9},
        {"b" + std::to_string(t), gen::kAtomicTarget, 0.6},
    };
    spec.types.push_back(std::move(ts));
  }
  auto g = gen::Generate(spec, 1234);
  return std::move(g).value();
}

/// Best-of-`reps` wall time of `fn`, in milliseconds.
template <typename Fn>
double BestMs(int reps, Fn&& fn) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto t0 = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(Clock::now() - t0)
                        .count());
  }
  return best;
}

struct Measurement {
  double gfp_ms;
  double extract_ms;
  size_t bytes;
};

Measurement Measure(graph::GraphView g, const typing::TypingProgram& program,
                    size_t bytes, int reps) {
  Measurement m;
  m.bytes = bytes;
  m.gfp_ms = BestMs(reps, [&] {
    auto extents = typing::ComputeGfp(program, g);
    if (!extents.ok()) std::abort();
  });
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  m.extract_ms = BestMs(reps, [&] {
    auto r = extract::SchemaExtractor(opt).Run(g);
    if (!r.ok()) std::abort();
  });
  return m;
}

void EmitRow(const std::string& dataset, const char* repr,
             size_t objects, size_t edges, const Measurement& m) {
  std::printf(
      "{\"bench\":\"frozen\",\"dataset\":\"%s\",\"repr\":\"%s\","
      "\"objects\":%zu,\"edges\":%zu,\"gfp_ms\":%.3f,\"extract_ms\":%.3f,"
      "\"resident_bytes\":%zu}\n",
      dataset.c_str(), repr, objects, edges, m.gfp_ms, m.extract_ms, m.bytes);
}

void RunDataset(const std::string& name, const graph::DataGraph& g, int reps,
                std::vector<double>* gfp_speedups,
                std::vector<double>* extract_speedups) {
  auto frozen = graph::Freeze(g);
  // The same typing program drives GFP on both representations.
  auto stage1 = typing::PerfectTypingViaRefinement(g);
  if (!stage1.ok()) std::abort();

  Measurement data =
      Measure(g, stage1->program, g.MemoryUsage(), reps);
  Measurement froz =
      Measure(*frozen, stage1->program, frozen->MemoryUsage(), reps);

  EmitRow(name, "data", g.NumObjects(), g.NumEdges(), data);
  EmitRow(name, "frozen", g.NumObjects(), g.NumEdges(), froz);
  gfp_speedups->push_back(data.gfp_ms / froz.gfp_ms);
  extract_speedups->push_back(data.extract_ms / froz.extract_ms);
}

}  // namespace

int main(int argc, char** argv) {
  int reps = argc > 1 ? std::atoi(argv[1]) : 5;
  std::vector<double> gfp_speedups, extract_speedups;

  for (int scale : {1, 4, 16}) {
    RunDataset("structured-x" + std::to_string(scale), MakeStructured(scale),
               reps, &gfp_speedups, &extract_speedups);
  }
  {
    gen::RandomGraphOptions opt;
    opt.num_complex = 4000;
    opt.num_atomic = 4000;
    opt.num_edges = 20000;
    opt.num_labels = 8;
    RunDataset("random-8k", gen::RandomGraph(opt), reps, &gfp_speedups,
               &extract_speedups);
  }

  auto geomean = [](const std::vector<double>& v) {
    double log_sum = 0;
    for (double x : v) log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
  };
  std::printf(
      "{\"bench\":\"frozen\",\"summary\":true,"
      "\"gfp_speedup_geomean\":%.3f,\"extract_speedup_geomean\":%.3f}\n",
      geomean(gfp_speedups), geomean(extract_speedups));
  return 0;
}
