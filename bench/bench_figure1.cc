// Regenerates the paper's Figure 1 (optimal typing program for the DBG
// data set): runs the full pipeline on the DBG-like dataset with a
// 6-type target and prints the resulting program in the paper's
// "<name> : <i> = <typed links>" notation, next to the perfect-type count
// it was condensed from (paper: 53 perfect -> 6 optimal).
//
// The printed program should read like Figure 1: a project type defined
// by incoming member links and name/home-page attributes, a publication
// type with author links, person/student types with project and advisor
// links, and birthday/degree records.

#include <cstdio>
#include <iostream>
#include <map>

#include "extract/extractor.h"
#include "gen/dbg.h"
#include "util/string_util.h"

namespace {

using namespace schemex;  // NOLINT

int Run() {
  auto g = gen::MakeDbgDataset();
  if (!g.ok()) {
    std::cerr << g.status() << "\n";
    return 1;
  }
  extract::ExtractorOptions opt;
  opt.stage1 = extract::ExtractorOptions::Stage1Algorithm::kGfp;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  if (!r.ok()) {
    std::cerr << r.status() << "\n";
    return 1;
  }

  std::cout << "== Figure 1: Optimal typing program for DBG data set ==\n";
  std::cout << util::StringPrintf(
      "DBG dataset: %zu objects, %zu links\n"
      "perfect typing: %zu types (paper: 53); optimal typing: %zu types "
      "(paper: 6)\n\n",
      g->NumObjects(), g->NumEdges(), r->num_perfect_types,
      r->num_final_types);

  // Give each final type an intuitive name: the dominant intended role
  // among its home objects (object names are "<role>_<i>").
  std::vector<std::string> display(r->final_program.NumTypes());
  for (size_t t = 0; t < r->final_program.NumTypes(); ++t) {
    std::map<std::string, size_t> votes;
    for (graph::ObjectId o = 0; o < g->NumObjects(); ++o) {
      const auto& homes = r->final_homes[o];
      if (std::find(homes.begin(), homes.end(),
                    static_cast<typing::TypeId>(t)) == homes.end()) {
        continue;
      }
      std::string name = g->Name(o);
      ++votes[name.substr(0, name.rfind('_'))];
    }
    std::string best = "type";
    size_t best_n = 0;
    for (const auto& [role, n] : votes) {
      if (n > best_n) {
        best = role;
        best_n = n;
      }
    }
    display[t] = best;
    r->final_program.type(static_cast<typing::TypeId>(t)).name = best;
  }

  std::cout << r->final_program.ToString(g->labels());
  std::cout << util::StringPrintf(
      "\nfinal defect: %s over %zu links\n",
      r->defect.ToString().c_str(), g->NumEdges());

  // How well do the recovered types track the intended roles?
  std::cout << "\n-- role purity (home objects per recovered type) --\n";
  for (size_t t = 0; t < r->final_program.NumTypes(); ++t) {
    size_t total = 0, majority = 0;
    std::map<std::string, size_t> votes;
    for (graph::ObjectId o = 0; o < g->NumObjects(); ++o) {
      const auto& homes = r->final_homes[o];
      if (std::find(homes.begin(), homes.end(),
                    static_cast<typing::TypeId>(t)) == homes.end()) {
        continue;
      }
      std::string name = g->Name(o);
      ++votes[name.substr(0, name.rfind('_'))];
      ++total;
    }
    for (const auto& [role, n] : votes) majority = std::max(majority, n);
    std::cout << util::StringPrintf(
        "  %-12s %3zu objects, %5.1f%% from role '%s'\n", display[t].c_str(),
        total, total == 0 ? 0.0 : 100.0 * majority / total,
        display[t].c_str());
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
