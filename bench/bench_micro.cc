// Micro-benchmarks (google-benchmark) for the computational claims of §4
// "Computational Efficiency":
//  * the specialized worklist GFP vs the generic datalog evaluator on the
//    same typing programs (the paper's "double-quadratic" naive bound vs
//    the differential approach);
//  * Stage 1 via the literal candidate-program + extent-merge algorithm
//    vs partition refinement ("bisimulation-style computation"), across
//    database sizes;
//  * greedy clustering cost as the number of Stage-1 types grows.

#include <benchmark/benchmark.h>

#include "baseline/dataguide.h"
#include "cluster/greedy.h"
#include "datalog/evaluator.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "gen/random_graph.h"
#include "gen/spec.h"
#include "typing/gfp.h"
#include "typing/perfect_typing.h"

namespace {

using namespace schemex;  // NOLINT

/// A structured database with `scale`x objects per intended type.
graph::DataGraph MakeStructured(int scale) {
  gen::DatasetSpec spec;
  spec.name = "bench";
  spec.atomic_pool_per_label = 20;
  for (int t = 0; t < 5; ++t) {
    gen::TypeSpec ts;
    ts.name = "t" + std::to_string(t);
    ts.count = static_cast<size_t>(20 * scale);
    ts.links = {
        {"a" + std::to_string(t), gen::kAtomicTarget, 1.0},
        {"r" + std::to_string(t), (t + 1) % 5, 0.9},
        {"b" + std::to_string(t), gen::kAtomicTarget, 0.6},
    };
    spec.types.push_back(std::move(ts));
  }
  auto g = gen::Generate(spec, 1234);
  return std::move(g).value();
}

void BM_GfpSpecialized(benchmark::State& state) {
  graph::DataGraph g = MakeStructured(static_cast<int>(state.range(0)));
  auto stage1 = typing::PerfectTypingViaRefinement(g);
  for (auto _ : state) {
    auto m = typing::ComputeGfp(stage1->program, g);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumObjects()));
}
BENCHMARK(BM_GfpSpecialized)->Arg(1)->Arg(4)->Arg(16);

void BM_GfpGenericDatalog(benchmark::State& state) {
  graph::DataGraph g = MakeStructured(static_cast<int>(state.range(0)));
  auto stage1 = typing::PerfectTypingViaRefinement(g);
  datalog::Program p = stage1->program.ToDatalog();
  for (auto _ : state) {
    auto m = datalog::Evaluate(p, g);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumObjects()));
}
BENCHMARK(BM_GfpGenericDatalog)->Arg(1)->Arg(4);

void BM_Stage1ViaGfp(benchmark::State& state) {
  graph::DataGraph g = MakeStructured(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = typing::PerfectTypingViaGfp(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Stage1ViaGfp)->Arg(1)->Arg(4)->Arg(16);

void BM_Stage1ViaRefinement(benchmark::State& state) {
  graph::DataGraph g = MakeStructured(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = typing::PerfectTypingViaRefinement(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Stage1ViaRefinement)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_Stage1RefinementRandom(benchmark::State& state) {
  // Random (irregular) graphs: the worst case for type counts.
  gen::RandomGraphOptions opt;
  opt.num_complex = static_cast<size_t>(state.range(0));
  opt.num_atomic = opt.num_complex;
  opt.num_edges = opt.num_complex * 3;
  opt.num_labels = 8;
  opt.seed = 99;
  graph::DataGraph g = gen::RandomGraph(opt);
  for (auto _ : state) {
    auto r = typing::PerfectTypingViaRefinement(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Stage1RefinementRandom)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GreedyClustering(benchmark::State& state) {
  graph::DataGraph g = gen::RandomGraph(gen::RandomGraphOptions{
      .num_complex = static_cast<size_t>(state.range(0)),
      .num_atomic = static_cast<size_t>(state.range(0)),
      .num_edges = static_cast<size_t>(state.range(0)) * 2,
      .num_labels = 6,
      .atomic_target_fraction = 0.5,
      .seed = 5});
  auto stage1 = typing::PerfectTypingViaRefinement(g);
  cluster::ClusteringOptions copt;
  copt.target_num_types = 5;
  for (auto _ : state) {
    auto r = cluster::ClusterTypes(stage1->program, stage1->weight, copt);
    benchmark::DoNotOptimize(r);
  }
  state.counters["stage1_types"] =
      static_cast<double>(stage1->program.NumTypes());
}
BENCHMARK(BM_GreedyClustering)->Arg(50)->Arg(150)->Arg(400);

void BM_FullPipelineDbg(benchmark::State& state) {
  auto g = gen::MakeDbgDataset();
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  extract::SchemaExtractor ex(opt);
  for (auto _ : state) {
    auto r = ex.Run(*g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullPipelineDbg);

void BM_SensitivitySweepDbg(benchmark::State& state) {
  auto g = gen::MakeDbgDataset();
  extract::ExtractorOptions opt;
  for (auto _ : state) {
    auto pts = extract::SensitivitySweep(*g, opt);
    benchmark::DoNotOptimize(pts);
  }
}
BENCHMARK(BM_SensitivitySweepDbg);

/// Naive vs semi-naive LFP on an L-shaped reachability program over a
/// long chain — the paper's §4 pointer to "differentiation techniques".
graph::DataGraph MakeChain(size_t n) {
  graph::DataGraph g;
  graph::ObjectId flag = g.AddAtomic("1");
  graph::ObjectId prev = g.AddComplex("n0");
  (void)g.AddEdge(prev, flag, "start");
  for (size_t i = 1; i < n; ++i) {
    graph::ObjectId next = g.AddComplex("n" + std::to_string(i));
    (void)g.AddEdge(prev, next, "next");
    prev = next;
  }
  return g;
}

datalog::Program ReachProgram(graph::DataGraph* g) {
  datalog::Program p;
  datalog::PredId reach = p.AddPred("reach");
  graph::LabelId start = g->InternLabel("start");
  graph::LabelId next = g->InternLabel("next");
  {
    datalog::Rule base;
    base.head_pred = reach;
    base.num_vars = 2;
    base.body = {datalog::Atom::Link(0, 1, start), datalog::Atom::Atomic(1)};
    p.rules.push_back(base);
  }
  {
    datalog::Rule step;
    step.head_pred = reach;
    step.num_vars = 2;
    step.body = {datalog::Atom::Link(1, 0, next), datalog::Atom::Idb(reach, 1)};
    p.rules.push_back(step);
  }
  return p;
}

void BM_LfpNaiveChain(benchmark::State& state) {
  graph::DataGraph g = MakeChain(static_cast<size_t>(state.range(0)));
  datalog::Program p = ReachProgram(&g);
  datalog::EvalOptions opt;
  opt.fixpoint = datalog::FixpointKind::kLeast;
  for (auto _ : state) {
    auto m = datalog::Evaluate(p, g, opt);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_LfpNaiveChain)->Arg(50)->Arg(200);

void BM_LfpSemiNaiveChain(benchmark::State& state) {
  graph::DataGraph g = MakeChain(static_cast<size_t>(state.range(0)));
  datalog::Program p = ReachProgram(&g);
  datalog::EvalOptions opt;
  opt.fixpoint = datalog::FixpointKind::kLeast;
  opt.strategy = datalog::Strategy::kSemiNaive;
  for (auto _ : state) {
    auto m = datalog::Evaluate(p, g, opt);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_LfpSemiNaiveChain)->Arg(50)->Arg(200)->Arg(1000);

void BM_StrongDataGuideDbg(benchmark::State& state) {
  auto g = gen::MakeDbgDataset();
  for (auto _ : state) {
    auto guide = baseline::BuildStrongDataGuide(*g);
    benchmark::DoNotOptimize(guide);
  }
}
BENCHMARK(BM_StrongDataGuideDbg);

}  // namespace

BENCHMARK_MAIN();
