// Schema-guided query pruning — quantifying the paper's §1 motivation
// ("performance is greatly improved by taking advantage of the existing
// structure"). For a battery of path queries over a scaled-up DBG-style
// database, compares full evaluation against SchemaGuide-pruned
// evaluation under (a) the minimal perfect typing (pruning provably
// exact: zero excess) and (b) the 6-type approximate typing (pruning may
// under-report through excess edges; recall is measured).

#include <cstdio>
#include <iostream>

#include "extract/extractor.h"
#include "gen/dbg.h"
#include "gen/spec.h"
#include "query/path_query.h"
#include "query/schema_guide.h"
#include "typing/perfect_typing.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace schemex;  // NOLINT

graph::DataGraph MakeBigDbg() {
  gen::DatasetSpec spec = gen::DbgSpec();
  for (auto& t : spec.types) t.count *= 20;  // ~9k objects
  auto g = gen::Generate(spec, 77);
  return std::move(g).value();
}

int Run() {
  graph::DataGraph g = MakeBigDbg();
  std::cout << util::StringPrintf(
      "== Schema-guided path queries (DBG x20: %zu objects, %zu links) ==\n",
      g.NumObjects(), g.NumEdges());

  // Perfect typing: exact pruning.
  auto stage1 = typing::PerfectTypingViaRefinement(g);
  typing::TypeAssignment perfect_tau(g.NumObjects());
  for (size_t o = 0; o < stage1->home.size(); ++o) {
    if (stage1->home[o] != typing::kInvalidType) {
      perfect_tau.Assign(static_cast<graph::ObjectId>(o), stage1->home[o]);
    }
  }
  query::SchemaGuide perfect_guide(stage1->program, perfect_tau);

  // Approximate typing: 6 types.
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto approx = extract::SchemaExtractor(opt).Run(g);
  query::SchemaGuide approx_guide(approx->final_program,
                                  approx->recast.assignment);

  util::TablePrinter table;
  table.SetHeader({"query", "results", "visited (full)",
                   "visited (perfect)", "visited (approx)", "speedup",
                   "approx recall"});
  for (const char* text :
       {"author.name", "advisor.email", "birthday.month", "degree.school",
        "project_member.advisor.name", "author.publication.name",
        "postscript", "nickname"}) {
    auto q = query::ParsePathQuery(text);
    query::QueryStats full_s, perf_s, approx_s;
    auto full = query::EvaluatePathQuery(g, *q, {}, &full_s);
    auto perf = perfect_guide.Evaluate(g, *q, &perf_s);
    auto appr = approx_guide.Evaluate(g, *q, &approx_s);
    if (perf != full) {
      std::cerr << "BUG: perfect-typing pruning changed the result of "
                << text << "\n";
      return 1;
    }
    size_t hit = 0;
    for (graph::ObjectId o : appr) {
      hit += std::binary_search(full.begin(), full.end(), o) ? 1 : 0;
    }
    double recall = full.empty() ? 1.0
                                 : static_cast<double>(hit) /
                                       static_cast<double>(full.size());
    table.AddRow(
        {text, util::StringPrintf("%zu", full.size()),
         util::StringPrintf("%zu", full_s.objects_visited),
         util::StringPrintf("%zu", perf_s.objects_visited),
         util::StringPrintf("%zu", approx_s.objects_visited),
         util::StringPrintf("%.1fx", perf_s.objects_visited == 0
                                         ? 0.0
                                         : static_cast<double>(
                                               full_s.objects_visited) /
                                               static_cast<double>(
                                                   perf_s.objects_visited)),
         util::StringPrintf("%.0f%%", 100.0 * recall)});
  }
  table.Print(std::cout);
  std::cout << "\nReading: pruning with the (zero-excess) perfect typing "
               "is exact and skips most of the\ndatabase; the compact "
               "approximate schema prunes further at the cost of recall "
               "through\nexcess edges — the defect/size trade-off again, "
               "now on the query path.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
