#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gen/perturb.h"
#include "gen/random_graph.h"
#include "gen/spec.h"
#include "tests/test_util.h"
#include "typing/perfect_typing.h"

namespace schemex::typing {
namespace {

graph::ObjectId Obj(const graph::DataGraph& g, const char* name) {
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.Name(o) == name) return o;
  }
  return graph::kInvalidObject;
}

/// Canonicalizes a home assignment for partition comparison: the induced
/// partition of complex objects, as sorted blocks of object ids.
std::vector<std::vector<graph::ObjectId>> Partition(
    const std::vector<TypeId>& home) {
  std::map<TypeId, std::vector<graph::ObjectId>> blocks;
  for (size_t o = 0; o < home.size(); ++o) {
    if (home[o] != kInvalidType) {
      blocks[home[o]].push_back(static_cast<graph::ObjectId>(o));
    }
  }
  std::vector<std::vector<graph::ObjectId>> out;
  for (auto& [t, block] : blocks) out.push_back(std::move(block));
  std::sort(out.begin(), out.end());
  return out;
}

class Example42 : public ::testing::TestWithParam<bool> {
 protected:
  util::StatusOr<PerfectTypingResult> RunStage1(const graph::DataGraph& g) {
    return GetParam() ? PerfectTypingViaGfp(g) : PerfectTypingViaRefinement(g);
  }
};

TEST_P(Example42, FigureFourYieldsThreeTypes) {
  // The paper's Example 4.2: candidate types type2 and type3 have equal
  // extents {o2,o3,o4} and merge; the minimal perfect typing has 3 types.
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r, RunStage1(g));
  EXPECT_EQ(r.program.NumTypes(), 3u);

  TypeId h1 = r.home[Obj(g, "o1")];
  TypeId h2 = r.home[Obj(g, "o2")];
  TypeId h3 = r.home[Obj(g, "o3")];
  TypeId h4 = r.home[Obj(g, "o4")];
  EXPECT_EQ(h2, h3);  // o2 and o3 share a home type
  EXPECT_NE(h1, h2);
  EXPECT_NE(h4, h2);
  EXPECT_NE(h1, h4);

  // Weights: home of o1 has 1 object, o2/o3's has 2, o4's has 1.
  EXPECT_EQ(r.weight[static_cast<size_t>(h1)], 1u);
  EXPECT_EQ(r.weight[static_cast<size_t>(h2)], 2u);
  EXPECT_EQ(r.weight[static_cast<size_t>(h4)], 1u);

  // Rule bodies (the paper's P_D): o2's home is {<-a^h1, ->b^0}; o4's is
  // {<-a^h1, ->b^0, ->c^0}; o1's has outgoing a-links to both homes.
  graph::LabelId a = g.labels().Find("a");
  graph::LabelId b = g.labels().Find("b");
  graph::LabelId c = g.labels().Find("c");
  EXPECT_EQ(r.program.type(h2).signature,
            TypeSignature::FromLinks(
                {TypedLink::In(a, h1), TypedLink::OutAtomic(b)}));
  EXPECT_EQ(r.program.type(h4).signature,
            TypeSignature::FromLinks({TypedLink::In(a, h1),
                                      TypedLink::OutAtomic(b),
                                      TypedLink::OutAtomic(c)}));
  EXPECT_EQ(r.program.type(h1).signature,
            TypeSignature::FromLinks(
                {TypedLink::Out(a, h2), TypedLink::Out(a, h4)}));

  // Atomic objects have no home.
  EXPECT_EQ(r.home[Obj(g, "o5")], kInvalidType);
  EXPECT_EQ(r.NumComplexObjects(), 4u);
}

TEST_P(Example42, PerfectTypingHasZeroDeficitOnHomes) {
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r, RunStage1(g));
  // Every object satisfies its home type exactly: the home assignment is
  // contained in the GFP extents.
  ASSERT_OK_AND_ASSIGN(Extents m, PerfectTypingExtents(r, g));
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (r.home[o] == kInvalidType) continue;
    EXPECT_TRUE(m.Contains(r.home[o], o)) << "object " << o;
  }
}

TEST_P(Example42, ExtentsMayOverlapHomes) {
  // §4.2: no negation, so an object with extra links is also in richer
  // types' extents — o4 lands in o2's home type as well.
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r, RunStage1(g));
  ASSERT_OK_AND_ASSIGN(Extents m, PerfectTypingExtents(r, g));
  TypeId h2 = r.home[Obj(g, "o2")];
  EXPECT_TRUE(m.Contains(h2, Obj(g, "o4")));
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, Example42, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Gfp" : "Refinement";
                         });

TEST(PerfectTypingTest, RegularDataGetsOneTypePerIntendedType) {
  // Figure 2 is perfectly regular: 2 complex "shapes" -> 2 perfect types.
  graph::DataGraph g = test::MakeFigure2Database();
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r, PerfectTypingViaGfp(g));
  EXPECT_EQ(r.program.NumTypes(), 2u);
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r2, PerfectTypingViaRefinement(g));
  EXPECT_EQ(r2.program.NumTypes(), 2u);
}

TEST(PerfectTypingTest, EmptyAndDegenerateGraphs) {
  graph::DataGraph empty;
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r, PerfectTypingViaGfp(empty));
  EXPECT_EQ(r.program.NumTypes(), 0u);
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r2,
                       PerfectTypingViaRefinement(empty));
  EXPECT_EQ(r2.program.NumTypes(), 0u);

  graph::DataGraph lonely;
  lonely.AddComplex("x");
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r3, PerfectTypingViaGfp(lonely));
  EXPECT_EQ(r3.program.NumTypes(), 1u);
  EXPECT_TRUE(r3.program.type(0).signature.empty());
}

TEST(PerfectTypingTest, IsolatedObjectsShareOneType) {
  graph::DataGraph g;
  for (int i = 0; i < 5; ++i) g.AddComplex();
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r, PerfectTypingViaGfp(g));
  EXPECT_EQ(r.program.NumTypes(), 1u);
  EXPECT_EQ(r.weight[0], 5u);
}

TEST(PerfectTypingTest, CyclesHandledByBothAlgorithms) {
  // Self-loop vs 2-cycle: locally indistinguishable under set-based
  // pictures; both algorithms must agree and terminate.
  graph::GraphBuilder b;
  ASSERT_OK(b.Edge("s", "next", "s"));
  ASSERT_OK(b.Edge("p", "next", "q"));
  ASSERT_OK(b.Edge("q", "next", "p"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult via_gfp, PerfectTypingViaGfp(g));
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult via_ref,
                       PerfectTypingViaRefinement(g));
  EXPECT_EQ(via_gfp.program.NumTypes(), 1u);
  EXPECT_EQ(via_ref.program.NumTypes(), 1u);
}

TEST(PerfectTypingTest, AlgorithmsAgreeOnRandomGraphs) {
  // Property: on a spread of random graphs the GFP-merge partition and
  // the refinement partition coincide.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    gen::RandomGraphOptions opt;
    opt.num_complex = 40;
    opt.num_atomic = 25;
    opt.num_edges = 90;
    opt.num_labels = 4;
    opt.seed = seed;
    graph::DataGraph g = gen::RandomGraph(opt);
    ASSERT_OK_AND_ASSIGN(PerfectTypingResult a, PerfectTypingViaGfp(g));
    ASSERT_OK_AND_ASSIGN(PerfectTypingResult b, PerfectTypingViaRefinement(g));
    EXPECT_EQ(a.program.NumTypes(), b.program.NumTypes()) << "seed " << seed;
    EXPECT_EQ(Partition(a.home), Partition(b.home)) << "seed " << seed;
  }
}

TEST(PerfectTypingTest, AlgorithmsAgreeOnStructuredData) {
  gen::DatasetSpec spec;
  spec.name = "mini";
  spec.atomic_pool_per_label = 5;
  spec.types.push_back(
      gen::TypeSpec{"a", 20, {{"x", gen::kAtomicTarget, 1.0},
                              {"y", gen::kAtomicTarget, 0.5}}});
  spec.types.push_back(gen::TypeSpec{"b", 20, {{"z", 0, 0.8}}});
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::Generate(spec, 11));
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult a, PerfectTypingViaGfp(g));
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult b, PerfectTypingViaRefinement(g));
  EXPECT_EQ(Partition(a.home), Partition(b.home));
}

TEST(PerfectTypingTest, PerturbationExplodesPerfectTypeCount) {
  // Table 1's headline observation: a slight perturbation dramatically
  // increases the number of perfect types.
  gen::DatasetSpec spec;
  spec.name = "regular";
  spec.atomic_pool_per_label = 10;
  for (int t = 0; t < 4; ++t) {
    spec.types.push_back(gen::TypeSpec{
        "t" + std::to_string(t),
        50,
        {{"a" + std::to_string(t), gen::kAtomicTarget, 1.0},
         {"b" + std::to_string(t), gen::kAtomicTarget, 1.0}}});
  }
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::Generate(spec, 21));
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult before,
                       PerfectTypingViaRefinement(g));

  gen::PerturbOptions popt;
  popt.delete_links = 5;
  popt.add_links = 20;
  popt.seed = 9;
  ASSERT_OK(gen::Perturb(&g, popt));
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult after,
                       PerfectTypingViaRefinement(g));
  EXPECT_GT(after.program.NumTypes(), before.program.NumTypes() * 2);
}

}  // namespace
}  // namespace schemex::typing
