#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "tests/test_util.h"

namespace schemex::datalog {
namespace {

constexpr const char* kFigure2Program = R"(
% The paper's program P0.
person(X) :- link(X, Y, "is-manager-of"), firm(Y),
             link(X, Z, "name"), atomic(Z, V).
firm(X)   :- link(X, Y, "is-managed-by"), person(Y),
             link(X, Z, "name"), atomic(Z, V).
)";

TEST(ParserTest, ParsesFigure2Program) {
  graph::DataGraph g = test::MakeFigure2Database();
  ASSERT_OK_AND_ASSIGN(Program p, ParseProgram(kFigure2Program, &g.labels()));
  EXPECT_EQ(p.num_preds(), 2u);
  EXPECT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.FindPred("person"), 0);
  EXPECT_EQ(p.FindPred("firm"), 1);
  EXPECT_EQ(p.rules[0].body.size(), 4u);
  ASSERT_OK(p.Validate());
  EXPECT_TRUE(p.IsRecursive());
}

TEST(ParserTest, BareLabelsAndAnonValue) {
  graph::LabelInterner labels;
  ASSERT_OK_AND_ASSIGN(
      Program p, ParseProgram("t(X) :- link(X, Y, name), atomic(Y).",
                              &labels));
  EXPECT_EQ(p.rules[0].body.size(), 2u);
  EXPECT_EQ(p.rules[0].body[1].arg1, kAnonVar);
  EXPECT_NE(labels.Find("name"), graph::kInvalidLabel);
}

TEST(ParserTest, RejectsMalformedInput) {
  graph::LabelInterner labels;
  EXPECT_FALSE(ParseProgram("t(X) :- link(X, Y).", &labels).ok());
  EXPECT_FALSE(ParseProgram("t(X) :- t2(Y)", &labels).ok());  // missing dot
  EXPECT_FALSE(ParseProgram("link(X) :- atomic(X).", &labels).ok());
  EXPECT_FALSE(ParseProgram("t(x) :- atomic(x).", &labels).ok());  // lowercase head var
  EXPECT_FALSE(ParseProgram("t(_) :- atomic(X).", &labels).ok());
  EXPECT_FALSE(ParseProgram("t(X) :- link(_, X, a).", &labels).ok());
  EXPECT_FALSE(ParseProgram("t(X) : atomic(X).", &labels).ok());
  EXPECT_FALSE(ParseProgram("t(X) :- atomic(X", &labels).ok());
  EXPECT_FALSE(ParseProgram(R"(t(X) :- link(X, Y, "unterminated).)", &labels)
                   .ok());
}

TEST(ParserTest, CommentsAndMultiRule) {
  graph::LabelInterner labels;
  ASSERT_OK_AND_ASSIGN(Program p, ParseProgram(R"(
# hash comment
a(X) :- link(X, Y, l1), b(Y).  % trailing
b(X) :- link(Y, X, l1), a(Y).
)",
                                               &labels));
  EXPECT_EQ(p.rules.size(), 2u);
  EXPECT_TRUE(p.IsRecursive());
}

TEST(PrinterTest, RoundTripsThroughParser) {
  graph::LabelInterner labels;
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram(
          "t1(X) :- link(X, Y, a), t2(Y), link(Z, X, b), atomic(W), "
          "link(X, W, c).\nt2(X) :- atomic(X).",
          &labels));
  std::string text = PrintProgram(p, labels);
  ASSERT_OK_AND_ASSIGN(Program p2, ParseProgram(text, &labels));
  EXPECT_EQ(PrintProgram(p2, labels), text);
}

TEST(AstTest, ValidateCatchesBadIndices) {
  Program p;
  PredId t = p.AddPred("t");
  Rule r;
  r.head_pred = t;
  r.num_vars = 1;
  r.body.push_back(Atom::Idb(5, 0));  // no such predicate
  p.rules.push_back(r);
  EXPECT_FALSE(p.Validate().ok());

  p.rules[0].body[0] = Atom::Idb(t, 3);  // variable out of range
  EXPECT_FALSE(p.Validate().ok());

  p.rules[0].body[0] = Atom::Link(0, 1, 0);  // var 1 not declared
  EXPECT_FALSE(p.Validate().ok());
}

TEST(AstTest, NonRecursiveProgramDetected) {
  graph::LabelInterner labels;
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("a(X) :- link(X, Y, l), b(Y).\nb(X) :- atomic(X).",
                   &labels));
  EXPECT_FALSE(p.IsRecursive());
}

class Figure2Eval : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = test::MakeFigure2Database();
    auto parsed = ParseProgram(kFigure2Program, &g_.labels());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    p_ = std::move(parsed).value();
  }

  graph::ObjectId Obj(const char* name) {
    for (graph::ObjectId o = 0; o < g_.NumObjects(); ++o) {
      if (g_.Name(o) == name) return o;
    }
    return graph::kInvalidObject;
  }

  graph::DataGraph g_;
  Program p_;
};

TEST_F(Figure2Eval, GreatestFixpointClassifiesEverything) {
  // The paper (§2): GFP = {person(g), person(j), firm(a), firm(m)}.
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p_, g_));
  PredId person = p_.FindPred("person");
  PredId firm = p_.FindPred("firm");
  EXPECT_TRUE(m.Contains(person, Obj("g")));
  EXPECT_TRUE(m.Contains(person, Obj("j")));
  EXPECT_FALSE(m.Contains(person, Obj("m")));
  EXPECT_FALSE(m.Contains(person, Obj("a")));
  EXPECT_TRUE(m.Contains(firm, Obj("m")));
  EXPECT_TRUE(m.Contains(firm, Obj("a")));
  EXPECT_FALSE(m.Contains(firm, Obj("g")));
  EXPECT_EQ(m.extents[person].Count(), 2u);
  EXPECT_EQ(m.extents[firm].Count(), 2u);
}

TEST_F(Figure2Eval, LeastFixpointFailsToClassify) {
  // The paper (§2): "for this program, a least fixpoint semantics would
  // fail to classify any object" — the mutual recursion has no base case.
  EvalOptions opts;
  opts.fixpoint = FixpointKind::kLeast;
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p_, g_, opts));
  EXPECT_TRUE(m.extents[0].None());
  EXPECT_TRUE(m.extents[1].None());
}

TEST_F(Figure2Eval, NonRecursiveLfpEqualsGfp) {
  // §2: for non-recursive programs the two fixpoints coincide.
  graph::LabelInterner& labels = g_.labels();
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("named(X) :- link(X, Y, name), atomic(Y).", &labels));
  ASSERT_OK_AND_ASSIGN(Interpretation gfp, Evaluate(p, g_));
  EvalOptions opts;
  opts.fixpoint = FixpointKind::kLeast;
  ASSERT_OK_AND_ASSIGN(Interpretation lfp, Evaluate(p, g_, opts));
  EXPECT_EQ(gfp, lfp);
  EXPECT_EQ(gfp.extents[0].Count(), 4u);  // g, j, m, a all have names
}

TEST_F(Figure2Eval, StatsReported) {
  EvalStats stats;
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p_, g_, {}, &stats));
  (void)m;
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.rule_checks, 0u);
}

TEST_F(Figure2Eval, MaxIterationsStopsEarly) {
  EvalOptions opts;
  opts.max_iterations = 1;
  EvalStats stats;
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p_, g_, opts, &stats));
  (void)m;
  EXPECT_EQ(stats.iterations, 1u);
}

TEST(EvaluatorTest, RuleSatisfiedDirectly) {
  graph::DataGraph g = test::MakeFigure2Database();
  graph::LabelInterner& labels = g.labels();
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("boss(X) :- link(X, Y, "
                   "\"is-manager-of\"), link(Y, X, \"is-managed-by\").",
                   &labels));
  Interpretation m;
  m.extents.assign(1, util::DenseBitset(g.NumObjects()));
  graph::ObjectId gates = 0;  // first object added
  EXPECT_TRUE(RuleSatisfied(p.rules[0], g, m, gates));
  graph::ObjectId microsoft = 2;
  EXPECT_FALSE(RuleSatisfied(p.rules[0], g, m, microsoft));
}

TEST(EvaluatorTest, ValueJoinAcrossAtomicAtoms) {
  // twin(X): X has two different labels leading to atomics with the SAME
  // value — exercises value-variable joins.
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("p", "42"));
  ASSERT_OK(b.Atomic("q", "42"));
  ASSERT_OK(b.Atomic("r", "43"));
  ASSERT_OK(b.Edge("x", "u", "p"));
  ASSERT_OK(b.Edge("x", "v", "q"));
  ASSERT_OK(b.Edge("y", "u", "p"));
  ASSERT_OK(b.Edge("y", "v", "r"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("twin(X) :- link(X, Y, u), atomic(Y, V), "
                   "link(X, Z, v), atomic(Z, V).",
                   &g.labels()));
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p, g));
  EXPECT_EQ(m.extents[0].Count(), 1u);
  graph::ObjectId x = graph::kInvalidObject;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.Name(o) == "x") x = o;
  }
  EXPECT_TRUE(m.Contains(0, x));
}

TEST(EvaluatorTest, EmptyBodyMatchesAllComplexObjects) {
  graph::DataGraph g = test::MakeFigure4Database();
  Program p;
  PredId any = p.AddPred("any");
  p.rules.push_back(Rule{any, 1, {}});
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p, g));
  EXPECT_EQ(m.extents[0].Count(), g.NumComplexObjects());
}

TEST(EvaluatorTest, PredicateWithoutRuleHasEmptyGfp) {
  graph::DataGraph g = test::MakeFigure4Database();
  graph::LabelInterner& labels = g.labels();
  // `ghost` is referenced but never defined: its extent must drain to
  // empty, and `t` (which requires a ghost neighbor) drains with it.
  ASSERT_OK_AND_ASSIGN(
      Program p, ParseProgram("t(X) :- link(X, Y, a), ghost(Y).", &labels));
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p, g));
  EXPECT_TRUE(m.extents[p.FindPred("ghost")].None());
  EXPECT_TRUE(m.extents[p.FindPred("t")].None());
}

TEST(EvaluatorTest, DisconnectedBodyComponent) {
  // q(X) holds iff X has label-a edge AND somewhere in the graph some
  // object has a c-edge to an atomic (disconnected existential).
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("q(X) :- link(X, Y, b), atomic(Y), link(Z, W, c), "
                   "atomic(W).",
                   &g.labels()));
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p, g));
  EXPECT_EQ(m.extents[0].Count(), 3u);  // o2, o3, o4 (o4 provides the c)
}

}  // namespace
}  // namespace schemex::datalog
