// Cross-module property tests: invariants that must hold on arbitrary
// (seeded random or generated) databases, parameterized over seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "baseline/dataguide.h"
#include "cluster/greedy.h"
#include "datalog/evaluator.h"
#include "extract/extractor.h"
#include "gen/random_graph.h"
#include "gen/spec.h"
#include "graph/graph_io.h"
#include "query/path_query.h"
#include "tests/test_util.h"
#include "typing/defect.h"
#include "typing/gfp.h"
#include "typing/perfect_typing.h"
#include "typing/recast.h"

namespace schemex {
namespace {

class RandomGraphProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  graph::DataGraph MakeGraph() const {
    gen::RandomGraphOptions opt;
    opt.num_complex = 60;
    opt.num_atomic = 40;
    opt.num_edges = 150;
    opt.num_labels = 5;
    opt.atomic_target_fraction = 0.4;
    opt.seed = GetParam();
    return gen::RandomGraph(opt);
  }
};

TEST_P(RandomGraphProperty, GraphIoRoundTripPreservesEverything) {
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g2, graph::ReadGraph(WriteGraph(g)));
  ASSERT_OK(g2.Validate());
  ASSERT_EQ(g.NumObjects(), g2.NumObjects());
  ASSERT_EQ(g.NumEdges(), g2.NumEdges());
  // Edge multiset identical (by names, since label ids may permute).
  EXPECT_EQ(WriteGraph(g), WriteGraph(g2));
}

TEST_P(RandomGraphProperty, GfpIsAFixpoint) {
  // Every member of every extent satisfies its signature under the
  // extents; and extents are closed (no removable member was kept).
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ASSERT_OK_AND_ASSIGN(typing::Extents m,
                       typing::ComputeGfp(stage1.program, g));
  for (size_t t = 0; t < m.per_type.size(); ++t) {
    m.per_type[t].ForEach([&](size_t o) {
      EXPECT_TRUE(typing::SatisfiesSignature(
          stage1.program.type(static_cast<typing::TypeId>(t)).signature, g, m,
          static_cast<graph::ObjectId>(o)))
          << "type " << t << " object " << o;
    });
  }
}

TEST_P(RandomGraphProperty, HomeAssignmentInsideGfpExtents) {
  // Stage-1 homes always satisfy their types exactly.
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ASSERT_OK_AND_ASSIGN(typing::Extents m,
                       typing::ComputeGfp(stage1.program, g));
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (stage1.home[o] != typing::kInvalidType) {
      EXPECT_TRUE(m.Contains(stage1.home[o], o)) << "object " << o;
    }
  }
}

TEST_P(RandomGraphProperty, PerfectTypingHasZeroDefect) {
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ASSERT_OK_AND_ASSIGN(typing::Extents m,
                       typing::ComputeGfp(stage1.program, g));
  typing::DefectReport report = typing::ComputeDefect(
      stage1.program, g, typing::ExtentsToAssignment(m));
  EXPECT_EQ(report.defect(), 0u);
}

TEST_P(RandomGraphProperty, GfpDominatesLfp) {
  // For any program, LFP extents are contained in GFP extents.
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  datalog::Program p = stage1.program.ToDatalog();
  ASSERT_OK_AND_ASSIGN(datalog::Interpretation gfp, datalog::Evaluate(p, g));
  datalog::EvalOptions lopt;
  lopt.fixpoint = datalog::FixpointKind::kLeast;
  ASSERT_OK_AND_ASSIGN(datalog::Interpretation lfp,
                       datalog::Evaluate(p, g, lopt));
  for (size_t t = 0; t < gfp.extents.size(); ++t) {
    lfp.extents[t].ForEach([&](size_t o) {
      EXPECT_TRUE(gfp.extents[t].Test(o)) << "pred " << t << " obj " << o;
    });
  }
}

TEST_P(RandomGraphProperty, ClusteringInvariants) {
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  if (stage1.program.NumTypes() < 3) GTEST_SKIP();
  cluster::ClusteringOptions opt;
  opt.target_num_types = 3;
  opt.record_snapshots = true;
  ASSERT_OK_AND_ASSIGN(
      cluster::ClusteringResult r,
      cluster::ClusterTypes(stage1.program, stage1.weight, opt));
  // Snapshot k decreases by exactly 1 per step; every snapshot program
  // validates; costs are non-negative.
  for (size_t i = 1; i < r.snapshots.size(); ++i) {
    EXPECT_EQ(r.snapshots[i].num_types, r.snapshots[i - 1].num_types - 1);
    ASSERT_OK(r.snapshots[i].program.Validate());
  }
  for (const cluster::MergeStep& s : r.steps) {
    EXPECT_GE(s.cost, 0.0);
  }
  // final_map is total and in range.
  ASSERT_EQ(r.final_map.size(), stage1.program.NumTypes());
  for (typing::TypeId m : r.final_map) {
    EXPECT_TRUE(m == cluster::kEmptyType ||
                (m >= 0 && static_cast<size_t>(m) <
                               r.final_program.NumTypes()));
  }
  // Weight conservation: final weights + empty-typed weight == total.
  uint64_t total_in = 0, total_out = 0;
  for (size_t t = 0; t < stage1.weight.size(); ++t) {
    total_in += stage1.weight[t];
    if (r.final_map[t] == cluster::kEmptyType) total_out += stage1.weight[t];
  }
  for (uint64_t w : r.final_weights) total_out += w;
  EXPECT_EQ(total_in, total_out);
}

TEST_P(RandomGraphProperty, RecastTypesEveryComplexObject) {
  graph::DataGraph g = MakeGraph();
  extract::ExtractorOptions opt;
  opt.target_num_types = 4;
  ASSERT_OK_AND_ASSIGN(extract::ExtractionResult r,
                       extract::SchemaExtractor(opt).Run(g));
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsComplex(o)) {
      EXPECT_FALSE(r.recast.assignment.TypesOf(o).empty()) << "object " << o;
    } else {
      EXPECT_TRUE(r.recast.assignment.TypesOf(o).empty());
    }
  }
}

TEST_P(RandomGraphProperty, DataGuideLookupMatchesPathEvaluation) {
  // The DataGuide's answer for a label path equals brute-force path
  // evaluation from the guide's root set.
  graph::DataGraph g = MakeGraph();
  auto guide = baseline::BuildStrongDataGuide(g);
  ASSERT_TRUE(guide.ok());
  std::vector<graph::ObjectId> roots = guide->nodes[0].targets;
  // Probe a few 1- and 2-label paths drawn from the label set.
  for (size_t l1 = 0; l1 < g.labels().size(); ++l1) {
    std::string a = g.labels().Name(static_cast<graph::LabelId>(l1));
    for (size_t l2 = 0; l2 < g.labels().size(); l2 += 2) {
      std::string b = g.labels().Name(static_cast<graph::LabelId>(l2));
      auto q = query::ParsePathQuery(a + "." + b);
      std::vector<graph::ObjectId> brute =
          query::EvaluatePathQuery(g, *q, roots);
      std::vector<graph::ObjectId> guided = guide->Lookup(g, {a, b});
      std::sort(guided.begin(), guided.end());
      EXPECT_EQ(brute, guided) << a << "." << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

class StructuredProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  graph::DataGraph MakeGraph() const {
    gen::DatasetSpec spec;
    spec.name = "structured";
    spec.atomic_pool_per_label = 8;
    spec.types.push_back(gen::TypeSpec{
        "order", 40, {{"total", gen::kAtomicTarget, 1.0},
                      {"rush", gen::kAtomicTarget, 0.3},
                      {"customer", 1, 0.95}}});
    spec.types.push_back(gen::TypeSpec{
        "customer", 20, {{"name", gen::kAtomicTarget, 1.0},
                         {"vip", gen::kAtomicTarget, 0.2}}});
    auto g = gen::Generate(spec, GetParam());
    return std::move(g).value();
  }
};

TEST_P(StructuredProperty, SweepDefectZeroAtPerfectK) {
  graph::DataGraph g = MakeGraph();
  extract::ExtractorOptions opt;
  ASSERT_OK_AND_ASSIGN(std::vector<extract::SensitivityPoint> pts,
                       extract::SensitivitySweep(g, opt));
  EXPECT_EQ(pts.front().defect, 0u);
  EXPECT_EQ(pts.front().total_distance, 0.0);
}

TEST_P(StructuredProperty, MoreTypesNeverWorseAtTheTop) {
  // Between the perfect typing and one merge below it the defect can
  // only grow (first merge introduces the first imperfection).
  graph::DataGraph g = MakeGraph();
  extract::ExtractorOptions opt;
  ASSERT_OK_AND_ASSIGN(std::vector<extract::SensitivityPoint> pts,
                       extract::SensitivitySweep(g, opt));
  ASSERT_GE(pts.size(), 2u);
  EXPECT_GE(pts[1].defect, pts[0].defect);
}

TEST_P(StructuredProperty, IntendedTypesRecoveredAtIntendedK) {
  // Clustering down to the intended 2 types keeps each generated type's
  // objects together (majority-wise).
  graph::DataGraph g = MakeGraph();
  extract::ExtractorOptions opt;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(extract::ExtractionResult r,
                       extract::SchemaExtractor(opt).Run(g));
  ASSERT_EQ(r.num_final_types, 2u);
  // Count order/customer homes per final type.
  size_t agree = 0, total = 0;
  std::vector<std::array<size_t, 2>> votes(2, {0, 0});
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (!g.IsComplex(o)) continue;
    const auto& homes = r.final_homes[o];
    if (homes.size() != 1) continue;
    bool is_order = g.Name(o).substr(0, 5) == "order";
    ++votes[static_cast<size_t>(homes[0])][is_order ? 0 : 1];
  }
  for (const auto& v : votes) {
    agree += std::max(v[0], v[1]);
    total += v[0] + v[1];
  }
  EXPECT_GT(agree * 10, total * 9) << "role purity below 90%";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuredProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace schemex
