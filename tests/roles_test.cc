#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "typing/perfect_typing.h"
#include "typing/roles.h"

namespace schemex::typing {
namespace {

graph::ObjectId Obj(const graph::DataGraph& g, const char* name) {
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.Name(o) == name) return o;
  }
  return graph::kInvalidObject;
}

class Example43 : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = test::MakeFigure5Database();
    auto stage1 = PerfectTypingViaGfp(g_);
    ASSERT_TRUE(stage1.ok()) << stage1.status();
    perfect_ = std::move(stage1).value();
    ASSERT_EQ(perfect_.program.NumTypes(), 3u);
    soccer_ = perfect_.home[Obj(g_, "o1")];
    both_ = perfect_.home[Obj(g_, "o2")];
    movie_ = perfect_.home[Obj(g_, "o3")];
  }

  graph::DataGraph g_;
  PerfectTypingResult perfect_;
  TypeId soccer_, both_, movie_;
};

TEST_F(Example43, GfpExtentsMatchPaper) {
  // "type1 contains o1 and o2; type2 contains o2; type3 contains o2 and
  // o3."
  ASSERT_OK_AND_ASSIGN(Extents m, PerfectTypingExtents(perfect_, g_));
  EXPECT_TRUE(m.Contains(soccer_, Obj(g_, "o1")));
  EXPECT_TRUE(m.Contains(soccer_, Obj(g_, "o2")));
  EXPECT_FALSE(m.Contains(soccer_, Obj(g_, "o3")));
  EXPECT_EQ(m.per_type[static_cast<size_t>(both_)].Count(), 1u);
  EXPECT_TRUE(m.Contains(movie_, Obj(g_, "o2")));
  EXPECT_TRUE(m.Contains(movie_, Obj(g_, "o3")));
}

TEST_F(Example43, CompositeTypeEliminated) {
  // o2's type (soccer+movie star) = union of the two simpler types, so
  // the roles pass removes it and o2 becomes a multi-role object.
  RoleDecomposition d = DecomposeRoles(perfect_.program);
  EXPECT_EQ(d.num_eliminated, 1u);
  EXPECT_EQ(d.program.NumTypes(), 2u);
  EXPECT_EQ(d.type_map[static_cast<size_t>(both_)], kInvalidType);
  ASSERT_EQ(d.covers[static_cast<size_t>(both_)].size(), 2u);

  auto homes = d.MapHomes(perfect_.home);
  EXPECT_EQ(homes[Obj(g_, "o1")].size(), 1u);
  EXPECT_EQ(homes[Obj(g_, "o2")].size(), 2u);  // both roles
  EXPECT_EQ(homes[Obj(g_, "o3")].size(), 1u);
  // o2's roles are exactly o1's and o3's home types (in new ids).
  EXPECT_EQ(homes[Obj(g_, "o2")][0], homes[Obj(g_, "o1")][0]);
  EXPECT_EQ(homes[Obj(g_, "o2")][1], homes[Obj(g_, "o3")][0]);

  ASSERT_OK(d.program.Validate());
}

TEST_F(Example43, MinCoverSizeGuardsDecomposition) {
  // Requiring covers of >= 3 types leaves everything in place.
  RoleDecomposition d = DecomposeRoles(perfect_.program, 3);
  EXPECT_EQ(d.num_eliminated, 0u);
  EXPECT_EQ(d.program.NumTypes(), 3u);
}

TEST(RolesTest, NoSpuriousDecomposition) {
  // Figure 2's two types do not cover each other: nothing is eliminated.
  graph::DataGraph g = test::MakeFigure2Database();
  auto stage1 = PerfectTypingViaGfp(g);
  ASSERT_TRUE(stage1.ok());
  RoleDecomposition d = DecomposeRoles(stage1->program);
  EXPECT_EQ(d.num_eliminated, 0u);
  EXPECT_EQ(d.program.NumTypes(), 2u);
  // Surviving ids map through unchanged.
  EXPECT_EQ(d.type_map[0], 0);
  EXPECT_EQ(d.type_map[1], 1);
}

TEST(RolesTest, ReferencesToEliminatedTypeRemapped) {
  // A type pointing at the eliminated composite keeps a valid target.
  graph::LabelInterner labels;
  graph::LabelId a = labels.Intern("a");
  graph::LabelId b = labels.Intern("b");
  graph::LabelId r = labels.Intern("r");
  TypingProgram p;
  TypeId t_a = p.AddType("ta", TypeSignature::FromLinks(
                                   {TypedLink::OutAtomic(a)}));
  TypeId t_b = p.AddType("tb", TypeSignature::FromLinks(
                                   {TypedLink::OutAtomic(b)}));
  TypeId t_ab = p.AddType(
      "tab", TypeSignature::FromLinks(
                 {TypedLink::OutAtomic(a), TypedLink::OutAtomic(b)}));
  TypeId t_ref = p.AddType("tref", TypeSignature::FromLinks(
                                       {TypedLink::Out(r, t_ab)}));
  (void)t_a;
  (void)t_b;
  RoleDecomposition d = DecomposeRoles(p);
  EXPECT_EQ(d.type_map[static_cast<size_t>(t_ab)], kInvalidType);
  TypeId new_ref = d.type_map[static_cast<size_t>(t_ref)];
  ASSERT_NE(new_ref, kInvalidType);
  ASSERT_OK(d.program.Validate());
  // The reference now targets one of the cover members (both have size-1
  // signatures; the "largest" rule picks the first of equal size).
  const TypeSignature& sig = d.program.type(new_ref).signature;
  ASSERT_EQ(sig.size(), 1u);
  EXPECT_EQ(sig.links()[0].label, r);
  EXPECT_NE(sig.links()[0].target, kInvalidType);
}

TEST(RolesTest, ChainedCoversResolveTransitively) {
  // t_abc ⊃ t_ab ⊃ {t_a, t_b}; t_abc covered by {t_ab, t_c}; t_ab itself
  // covered by {t_a, t_b}. Final cover of t_abc: {t_a, t_b, t_c}.
  graph::LabelInterner labels;
  graph::LabelId a = labels.Intern("a");
  graph::LabelId b = labels.Intern("b");
  graph::LabelId c = labels.Intern("c");
  TypingProgram p;
  p.AddType("ta", TypeSignature::FromLinks({TypedLink::OutAtomic(a)}));
  p.AddType("tb", TypeSignature::FromLinks({TypedLink::OutAtomic(b)}));
  p.AddType("tc", TypeSignature::FromLinks({TypedLink::OutAtomic(c)}));
  p.AddType("tab", TypeSignature::FromLinks(
                       {TypedLink::OutAtomic(a), TypedLink::OutAtomic(b)}));
  TypeId t_abc = p.AddType(
      "tabc",
      TypeSignature::FromLinks({TypedLink::OutAtomic(a),
                                TypedLink::OutAtomic(b),
                                TypedLink::OutAtomic(c)}));
  RoleDecomposition d = DecomposeRoles(p);
  EXPECT_EQ(d.num_eliminated, 2u);  // tab and tabc
  EXPECT_EQ(d.program.NumTypes(), 3u);
  EXPECT_EQ(d.covers[static_cast<size_t>(t_abc)].size(), 3u);
}

TEST(RolesTest, SingletonSignaturesNeverEliminated) {
  graph::LabelInterner labels;
  graph::LabelId a = labels.Intern("a");
  TypingProgram p;
  p.AddType("t1", TypeSignature::FromLinks({TypedLink::OutAtomic(a)}));
  p.AddType("t2", TypeSignature::FromLinks({TypedLink::OutAtomic(a)}));
  RoleDecomposition d = DecomposeRoles(p);
  EXPECT_EQ(d.num_eliminated, 0u);
}

}  // namespace
}  // namespace schemex::typing
