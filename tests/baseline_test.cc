#include <gtest/gtest.h>

#include "baseline/dataguide.h"
#include "baseline/rep_objects.h"
#include "gen/dbg.h"
#include "tests/test_util.h"
#include "typing/perfect_typing.h"

namespace schemex::baseline {
namespace {

TEST(DataGuideTest, LinearChain) {
  // root: a -> b -> c (atomic): the guide is a 3-node path + root.
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("leaf", "v"));
  ASSERT_OK(b.Edge("x", "a", "y"));
  ASSERT_OK(b.Edge("y", "b", "leaf"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  ASSERT_OK_AND_ASSIGN(DataGuide guide, BuildStrongDataGuide(g));
  EXPECT_EQ(guide.NumNodes(), 3u);  // {x}, {y}, {leaf}
  EXPECT_EQ(guide.num_edges, 2u);

  auto hits = guide.Lookup(g, {"a", "b"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(g.Value(hits[0]), "v");
  EXPECT_TRUE(guide.Lookup(g, {"a", "zzz"}).empty());
  EXPECT_TRUE(guide.Lookup(g, {"b"}).empty());
}

TEST(DataGuideTest, SharedTargetsCollapse) {
  // Two parents pointing at the same child via the same label produce ONE
  // guide node {child}.
  graph::GraphBuilder b;
  ASSERT_OK(b.Edge("p1", "c", "kid"));
  ASSERT_OK(b.Edge("p2", "c", "kid"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  ASSERT_OK_AND_ASSIGN(DataGuide guide, BuildStrongDataGuide(g));
  // Root targets {p1, p2}; its c-child targets {kid}.
  EXPECT_EQ(guide.NumNodes(), 2u);
  auto hits = guide.Lookup(g, {"c"});
  EXPECT_EQ(hits.size(), 1u);
}

TEST(DataGuideTest, PowersetSplit) {
  // p1 -a-> x, p2 -a-> y, p1 -b-> x: path `a` reaches {x,y}, path `b`
  // reaches {x} — distinct guide nodes even though x is shared.
  graph::GraphBuilder b;
  ASSERT_OK(b.Edge("p1", "a", "x"));
  ASSERT_OK(b.Edge("p2", "a", "y"));
  ASSERT_OK(b.Edge("p1", "b", "x"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  ASSERT_OK_AND_ASSIGN(DataGuide guide, BuildStrongDataGuide(g));
  EXPECT_EQ(guide.Lookup(g, {"a"}).size(), 2u);
  EXPECT_EQ(guide.Lookup(g, {"b"}).size(), 1u);
}

TEST(DataGuideTest, CyclicGraphTerminates) {
  graph::GraphBuilder b;
  ASSERT_OK(b.Edge("p", "next", "q"));
  ASSERT_OK(b.Edge("q", "next", "p"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  // No sources: the virtual root's target set is {p, q}; following `next`
  // maps {p, q} back to itself, so the guide is a single self-looping
  // node.
  ASSERT_OK_AND_ASSIGN(DataGuide guide, BuildStrongDataGuide(g));
  EXPECT_EQ(guide.NumNodes(), 1u);
  EXPECT_EQ(guide.num_edges, 1u);
  EXPECT_EQ(guide.Lookup(g, {"next", "next", "next"}).size(), 2u);
}

TEST(DataGuideTest, NodeBudgetEnforced) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  util::StatusOr<DataGuide> guide = BuildStrongDataGuide(g, /*max_nodes=*/3);
  EXPECT_FALSE(guide.ok());
  EXPECT_EQ(guide.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(DataGuideTest, DbgGuideBuilds) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  ASSERT_OK_AND_ASSIGN(DataGuide guide, BuildStrongDataGuide(g));
  EXPECT_GT(guide.NumNodes(), 6u);
  // Guide lookups follow real paths.
  EXPECT_FALSE(guide.Lookup(g, {"author"}).empty());
}

TEST(RepObjectsTest, DegreeZeroIsOneClass) {
  graph::DataGraph g = test::MakeFigure4Database();
  size_t classes = 0;
  auto block = DegreeKClasses(g, 0, &classes);
  EXPECT_EQ(classes, 1u);
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsComplex(o)) {
      EXPECT_EQ(block[o], 0);
    } else {
      EXPECT_EQ(block[o], typing::kInvalidType);
    }
  }
}

TEST(RepObjectsTest, RefinementIsMonotoneInK) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  size_t prev = 0;
  for (size_t k = 0; k <= 5; ++k) {
    size_t classes = 0;
    DegreeKClasses(g, k, &classes);
    EXPECT_GE(classes, prev) << "k=" << k;
    prev = classes;
  }
  EXPECT_EQ(FullRepObjectClassCount(g), prev);  // converged by k=5? then
  // equality; otherwise the full count is at least the k=5 count.
  EXPECT_GE(FullRepObjectClassCount(g), prev);
}

TEST(RepObjectsTest, OutgoingOnlyIsCoarserThanStage1) {
  // Stage 1 refines on incoming AND outgoing edges, so its partition is
  // at least as fine as the (converged) outgoing-only one.
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  size_t ro = FullRepObjectClassCount(g);
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  EXPECT_LE(ro, stage1.program.NumTypes());
}

TEST(RepObjectsTest, DistinguishesByOutgoingLabelSets) {
  graph::DataGraph g = test::MakeFigure4Database();
  size_t classes = 0;
  auto block = DegreeKClasses(g, 1, &classes);
  // o1 {a}, o2/o3/o4 {b} or {b, c}: three classes after one round.
  EXPECT_EQ(classes, 3u);
  EXPECT_EQ(block[1], block[2]);  // o2, o3 (b only)
  EXPECT_NE(block[1], block[3]);  // o4 has c as well
}

}  // namespace
}  // namespace schemex::baseline
