#include <gtest/gtest.h>

#include "graph/graph_stats.h"
#include "json/import.h"
#include "json/json.h"
#include "tests/test_util.h"

namespace schemex::json {
namespace {

TEST(JsonParseTest, Scalars) {
  ASSERT_OK_AND_ASSIGN(Value null_value, Parse("null"));
  EXPECT_TRUE(null_value.is_null());
  ASSERT_OK_AND_ASSIGN(Value t, Parse("true"));
  EXPECT_TRUE(t.AsBool());
  ASSERT_OK_AND_ASSIGN(Value f, Parse(" false "));
  EXPECT_FALSE(f.AsBool());
  ASSERT_OK_AND_ASSIGN(Value n, Parse("-12.5e2"));
  EXPECT_DOUBLE_EQ(n.AsNumber(), -1250.0);
  EXPECT_EQ(n.ScalarToString(), "-12.5e2");  // source text preserved
  ASSERT_OK_AND_ASSIGN(Value s, Parse(R"("hi there")"));
  EXPECT_EQ(s.AsString(), "hi there");
}

TEST(JsonParseTest, StringEscapes) {
  ASSERT_OK_AND_ASSIGN(Value s, Parse(R"("a\"b\\c\nd\teA")"));
  EXPECT_EQ(s.AsString(), "a\"b\\c\nd\teA");
  ASSERT_OK_AND_ASSIGN(Value u, Parse(R"("é")"));  // é in UTF-8
  EXPECT_EQ(u.AsString(), "\xc3\xa9");
}

TEST(JsonParseTest, ArraysAndObjects) {
  ASSERT_OK_AND_ASSIGN(Value v, Parse(R"({"a": [1, 2, {"b": null}], "c": {}})"));
  ASSERT_EQ(v.kind(), Value::Kind::kObject);
  const auto& obj = v.AsObject();
  ASSERT_EQ(obj.size(), 2u);
  const Value& a = obj.at("a");
  ASSERT_EQ(a.kind(), Value::Kind::kArray);
  ASSERT_EQ(a.AsArray().size(), 3u);
  EXPECT_TRUE(a.AsArray()[2].AsObject().at("b").is_null());
  EXPECT_TRUE(obj.at("c").AsObject().empty());
}

TEST(JsonParseTest, Malformed) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("12 34").ok());
  EXPECT_FALSE(Parse("nul").ok());
  EXPECT_FALSE(Parse("\"bad\\q\"").ok());
  EXPECT_FALSE(Parse("\"trunc\\u00\"").ok());
}

TEST(JsonParseTest, DuplicateKeysLastWins) {
  ASSERT_OK_AND_ASSIGN(Value v, Parse(R"({"k": 1, "k": 2})"));
  EXPECT_DOUBLE_EQ(v.AsObject().at("k").AsNumber(), 2.0);
}

TEST(ImportTest, FlatObject) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g,
                       ImportJson(R"({"name": "Ada", "born": 1815})"));
  EXPECT_EQ(g.NumComplexObjects(), 1u);
  EXPECT_EQ(g.NumAtomicObjects(), 2u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.IsBipartite());
  graph::LabelId name = g.labels().Find("name");
  ASSERT_NE(name, graph::kInvalidLabel);
  // The root's name edge leads to the atomic "Ada".
  bool found = false;
  for (const graph::HalfEdge& e : g.OutEdges(0)) {
    if (e.label == name) {
      EXPECT_EQ(g.Value(e.other), "Ada");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ImportTest, NestedObjectsBecomeComplexNodes) {
  ASSERT_OK_AND_ASSIGN(
      graph::DataGraph g,
      ImportJson(R"({"person": {"name": "Ada"}, "tag": "x"})"));
  EXPECT_EQ(g.NumComplexObjects(), 2u);
  EXPECT_FALSE(g.IsBipartite());
  ASSERT_OK(g.Validate());
}

TEST(ImportTest, ArraysFanOut) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g,
                       ImportJson(R"({"tags": ["a", "b", "c"]})"));
  graph::LabelId tags = g.labels().Find("tags");
  size_t count = 0;
  for (const graph::HalfEdge& e : g.OutEdges(0)) {
    if (e.label == tags) ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(ImportTest, TopLevelArrayUsesRootLabel) {
  ImportOptions opt;
  opt.root_label = "rec";
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g,
                       ImportJson(R"([{"a": 1}, {"a": 2}])", opt));
  graph::LabelId rec = g.labels().Find("rec");
  ASSERT_NE(rec, graph::kInvalidLabel);
  EXPECT_EQ(g.NumComplexObjects(), 3u);  // root + 2 records
}

TEST(ImportTest, NestedArraysGetWrapperNodes) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g,
                       ImportJson(R"({"m": [[1, 2], [3]]})"));
  // Two wrapper nodes under "m", each with "item" edges.
  graph::LabelId item = g.labels().Find("item");
  ASSERT_NE(item, graph::kInvalidLabel);
  EXPECT_EQ(g.NumComplexObjects(), 3u);
  EXPECT_EQ(g.NumAtomicObjects(), 3u);
  ASSERT_OK(g.Validate());
}

TEST(ImportTest, ScalarRoot) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, ImportJson("42"));
  EXPECT_EQ(g.NumObjects(), 1u);
  EXPECT_TRUE(g.IsAtomic(0));
  EXPECT_EQ(g.Value(0), "42");
}

TEST(ImportTest, RecordsCollectionIsSchemaExtractable) {
  // The motivating workload: many similar JSON records with optional
  // fields — exactly the paper's "member home pages" scenario.
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, ImportJson(R"([
    {"name": "a", "email": "a@x", "phone": "1"},
    {"name": "b", "email": "b@x"},
    {"name": "c", "email": "c@x", "phone": "3"},
    {"name": "d", "photo": "d.gif"}
  ])"));
  graph::GraphStats s = graph::ComputeStats(g);
  EXPECT_EQ(s.num_complex, 5u);
  EXPECT_EQ(s.num_edges, 4u + 10u);  // 4 item edges + 10 field edges
}

}  // namespace
}  // namespace schemex::json
